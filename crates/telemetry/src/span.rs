//! Lock-cheap per-rank span recording.
//!
//! Each GPU thread owns a [`RankTracer`] — a ring-buffered, single-writer
//! span log. Recording a span is a plain `Vec` write (no atomics, no lock);
//! the only synchronized operation is publishing the finished buffer into
//! the shared [`TraceHub`] once, when the thread ends (the tracer's `Drop`
//! does this, so spans survive error unwinding too).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::metrics::Counter;

/// (pipeline index, data-parallel index, tensor-parallel index) — mirrors
/// `megatron_dist::ThreadKey` without depending on that crate.
pub type RankKey = (usize, usize, usize);

/// Taxonomy of what a rank spends time on. Categories match the Chrome
/// trace `cat` field, so a viewer can color/filter by phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Forward compute for one microbatch (includes in-layer tensor-parallel
    /// all-reduces, matching how the simulator prices forward stages).
    Forward,
    /// Backward compute for one microbatch (same nesting convention).
    Backward,
    /// An explicit communication step: p2p activation send, gradient
    /// all-reduce / reduce-scatter / all-gather, loss all-reduce.
    Comm,
    /// Optimizer (Adam) step.
    Optimizer,
    /// Checkpoint save.
    Checkpoint,
    /// Pipeline bubble: blocked waiting on an upstream/downstream stage.
    Bubble,
}

impl SpanKind {
    /// Chrome trace category string.
    pub fn category(self) -> &'static str {
        match self {
            SpanKind::Forward => "fwd",
            SpanKind::Backward => "bwd",
            SpanKind::Comm => "comm",
            SpanKind::Optimizer => "opt",
            SpanKind::Checkpoint => "ckpt",
            SpanKind::Bubble => "bubble",
        }
    }

    /// All categories a complete trace can contain.
    pub const ALL_CATEGORIES: [&'static str; 6] = ["fwd", "bwd", "comm", "opt", "ckpt", "bubble"];
}

/// Optional per-span payload, exported as Chrome trace `args`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanArgs {
    /// Bytes moved, for communication spans.
    pub bytes: Option<f64>,
    /// Microbatch index within the iteration.
    pub microbatch: Option<usize>,
    /// Virtual-pipeline chunk (interleaved schedule).
    pub chunk: Option<usize>,
}

impl SpanArgs {
    /// No payload.
    pub const NONE: SpanArgs = SpanArgs {
        bytes: None,
        microbatch: None,
        chunk: None,
    };

    /// Payload carrying only a byte volume.
    pub fn bytes(bytes: f64) -> SpanArgs {
        SpanArgs {
            bytes: Some(bytes),
            ..SpanArgs::NONE
        }
    }
}

/// One recorded span. Timestamps are nanoseconds relative to the owning
/// [`TraceHub`]'s epoch, so spans from all ranks share a clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Phase taxonomy bucket.
    pub kind: SpanKind,
    /// Display name (e.g. `"forward"`, `"p2p-send-fwd"`).
    pub name: &'static str,
    /// Start, ns since the hub epoch.
    pub start_ns: u64,
    /// Duration in ns.
    pub dur_ns: u64,
    /// Training iteration the span belongs to.
    pub iteration: usize,
    /// Supervisor incident epoch (0 for a clean run).
    pub epoch: usize,
    /// Optional payload.
    pub args: SpanArgs,
}

/// A rank's published span log.
#[derive(Debug, Clone)]
pub struct RankTrace {
    /// Flat rank id.
    pub rank: usize,
    /// (pipeline, data, tensor) coordinates.
    pub key: RankKey,
    /// Spans in the order recorded (oldest first, post-ring-rotation).
    pub spans: Vec<Span>,
    /// Spans overwritten because the ring filled up.
    pub dropped: u64,
}

/// Shared collection point for all ranks' span logs, plus the common clock.
#[derive(Debug)]
pub struct TraceHub {
    epoch: Instant,
    ranks: Mutex<BTreeMap<usize, RankTrace>>,
}

impl TraceHub {
    /// Default per-rank ring capacity (spans).
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// A fresh hub whose clock starts now.
    pub fn new() -> Arc<TraceHub> {
        Arc::new(TraceHub {
            epoch: Instant::now(),
            ranks: Mutex::new(BTreeMap::new()),
        })
    }

    /// Nanoseconds since the hub epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Create the single-writer tracer for one rank.
    pub fn tracer(self: &Arc<Self>, rank: usize, key: RankKey) -> RankTracer {
        self.tracer_with_capacity(rank, key, Self::DEFAULT_CAPACITY)
    }

    /// Like [`TraceHub::tracer`] with an explicit ring capacity.
    pub fn tracer_with_capacity(
        self: &Arc<Self>,
        rank: usize,
        key: RankKey,
        cap: usize,
    ) -> RankTracer {
        RankTracer {
            hub: Arc::clone(self),
            rank,
            key,
            buf: Vec::new(),
            head: 0,
            dropped: 0,
            cap: cap.max(1),
            drop_counter: None,
        }
    }

    /// Snapshot of every published rank trace, ordered by flat rank.
    pub fn ranks(&self) -> Vec<RankTrace> {
        self.ranks.lock().unwrap().values().cloned().collect()
    }

    fn publish(&self, trace: RankTrace) {
        let mut ranks = self.ranks.lock().unwrap();
        // A rank restarted by the supervisor publishes again: append so both
        // epochs stay visible in one timeline.
        match ranks.get_mut(&trace.rank) {
            Some(existing) => {
                existing.spans.extend(trace.spans);
                existing.dropped += trace.dropped;
            }
            None => {
                ranks.insert(trace.rank, trace);
            }
        }
    }
}

/// Single-writer span recorder for one GPU thread. Not `Sync` on purpose:
/// exactly one thread writes, so `push` is lock-free by construction.
#[derive(Debug)]
pub struct RankTracer {
    hub: Arc<TraceHub>,
    rank: usize,
    key: RankKey,
    buf: Vec<Span>,
    head: usize,
    dropped: u64,
    cap: usize,
    drop_counter: Option<Arc<Counter>>,
}

impl RankTracer {
    /// Current time on the hub clock (ns).
    pub fn now(&self) -> u64 {
        self.hub.now_ns()
    }

    /// Attach a metrics counter that ring overflow is charged to, so a
    /// tracer that loses spans says so in the metrics snapshot instead of
    /// dropping them silently. The counter is bumped at overwrite time, not
    /// at publish, so a live registry shows losses as they happen.
    pub fn with_drop_counter(mut self, counter: Arc<Counter>) -> RankTracer {
        self.drop_counter = Some(counter);
        self
    }

    /// Record a span. When the ring is full the oldest span is overwritten
    /// and counted in `dropped` — recent history wins, recording never
    /// blocks or reallocates past capacity.
    pub fn push(&mut self, span: Span) {
        if self.buf.len() < self.cap {
            self.buf.push(span);
        } else {
            self.buf[self.head] = span;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
            if let Some(c) = &self.drop_counter {
                c.inc();
            }
        }
    }

    /// Close a span that started at `start_ns` (from [`RankTracer::now`])
    /// and ends now. Returns the duration in ns, so callers can accumulate
    /// e.g. bubble time without re-reading the clock.
    #[allow(clippy::too_many_arguments)]
    pub fn close(
        &mut self,
        kind: SpanKind,
        name: &'static str,
        start_ns: u64,
        iteration: usize,
        epoch: usize,
        args: SpanArgs,
    ) -> u64 {
        let dur_ns = self.now().saturating_sub(start_ns);
        self.push(Span {
            kind,
            name,
            start_ns,
            dur_ns,
            iteration,
            epoch,
            args,
        });
        dur_ns
    }

    fn take(&mut self) -> RankTrace {
        // Rotate the ring so spans come out oldest-first.
        let mut spans = self.buf.split_off(self.head);
        spans.append(&mut self.buf);
        self.head = 0;
        RankTrace {
            rank: self.rank,
            key: self.key,
            spans,
            dropped: std::mem::take(&mut self.dropped),
        }
    }
}

impl Drop for RankTracer {
    fn drop(&mut self) {
        let trace = self.take();
        if !trace.spans.is_empty() || trace.dropped > 0 {
            self.hub.publish(trace);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: SpanKind, start_ns: u64) -> Span {
        Span {
            kind,
            name: "x",
            start_ns,
            dur_ns: 1,
            iteration: 0,
            epoch: 0,
            args: SpanArgs::NONE,
        }
    }

    #[test]
    fn tracer_publishes_on_drop() {
        let hub = TraceHub::new();
        {
            let mut tr = hub.tracer(3, (1, 0, 1));
            tr.push(span(SpanKind::Forward, 10));
            tr.push(span(SpanKind::Backward, 20));
        }
        let ranks = hub.ranks();
        assert_eq!(ranks.len(), 1);
        assert_eq!(ranks[0].rank, 3);
        assert_eq!(ranks[0].key, (1, 0, 1));
        assert_eq!(ranks[0].spans.len(), 2);
        assert_eq!(ranks[0].dropped, 0);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let hub = TraceHub::new();
        {
            let mut tr = hub.tracer_with_capacity(0, (0, 0, 0), 3);
            for i in 0..5u64 {
                tr.push(span(SpanKind::Comm, i));
            }
        }
        let ranks = hub.ranks();
        assert_eq!(ranks[0].dropped, 2);
        let starts: Vec<u64> = ranks[0].spans.iter().map(|s| s.start_ns).collect();
        assert_eq!(starts, vec![2, 3, 4], "oldest spans evicted, order kept");
    }

    #[test]
    fn ring_overflow_charges_drop_counter() {
        use crate::metrics::MetricsRegistry;
        let hub = TraceHub::new();
        let reg = MetricsRegistry::new();
        let counter = reg.counter("spans_dropped.rank0");
        {
            let mut tr = hub
                .tracer_with_capacity(0, (0, 0, 0), 3)
                .with_drop_counter(Arc::clone(&counter));
            for i in 0..5u64 {
                tr.push(span(SpanKind::Comm, i));
            }
            // Charged live, before the tracer publishes.
            assert_eq!(counter.get(), 2);
        }
        assert_eq!(hub.ranks()[0].dropped, 2);
        assert_eq!(reg.counter("spans_dropped.rank0").get(), 2);
    }

    #[test]
    fn republish_after_restart_appends() {
        let hub = TraceHub::new();
        {
            let mut tr = hub.tracer(1, (0, 0, 1));
            tr.push(span(SpanKind::Forward, 1));
        }
        {
            let mut tr = hub.tracer(1, (0, 0, 1));
            tr.push(span(SpanKind::Forward, 2));
        }
        let ranks = hub.ranks();
        assert_eq!(ranks.len(), 1);
        assert_eq!(ranks[0].spans.len(), 2);
    }

    #[test]
    fn close_measures_nonnegative_duration() {
        let hub = TraceHub::new();
        let mut tr = hub.tracer(0, (0, 0, 0));
        let t0 = tr.now();
        let dur = tr.close(
            SpanKind::Optimizer,
            "adam-step",
            t0,
            7,
            2,
            SpanArgs::bytes(64.0),
        );
        drop(tr);
        let ranks = hub.ranks();
        let s = ranks[0].spans[0];
        assert_eq!(s.iteration, 7);
        assert_eq!(s.epoch, 2);
        assert_eq!(s.args.bytes, Some(64.0));
        assert_eq!(s.dur_ns, dur);
    }

    #[test]
    fn categories_cover_all_kinds() {
        for k in [
            SpanKind::Forward,
            SpanKind::Backward,
            SpanKind::Comm,
            SpanKind::Optimizer,
            SpanKind::Checkpoint,
            SpanKind::Bubble,
        ] {
            assert!(SpanKind::ALL_CATEGORIES.contains(&k.category()));
        }
    }
}
