//! Exact time attribution and analytic what-if bounds.
//!
//! [`Attribution`] folds a [`CriticalPath`]'s segments into the taxonomy
//! the paper's §5 discussion needs — on-path compute, exposed
//! communication, pipeline bubble, straggler-induced wait, optimizer,
//! checkpoint, retransmission overhead, untraced other — in seconds.
//! Because the path segments tile the analysis window exactly, the
//! categories sum to the measured iteration time with zero residue (the
//! analyzer invariant the proptests pin down).
//!
//! [`WhatIf`] turns the same breakdown into the three bounds ROADMAP item
//! 4 (comm overlap) needs before any overlap work exists: the iteration
//! time with communication free, with communication perfectly overlapped,
//! and with no stragglers.

use crate::critical_path::{CriticalPath, PathCat, Window};
use crate::dag::{Phase, TraceDag};

/// Where one iteration's wall-clock time went, in seconds. Categories sum
/// to `measured_s` exactly (see [`Attribution::residual_s`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Attribution {
    /// Measured iteration time: the analysis window length.
    pub measured_s: f64,
    /// On-path forward/backward compute.
    pub compute_s: f64,
    /// Communication the path waited on (transfer time).
    pub exposed_comm_s: f64,
    /// Pipeline bubble (stage waits).
    pub bubble_s: f64,
    /// Collective wait for the last-arriving member beyond the
    /// straggler-free transfer time.
    pub straggler_wait_s: f64,
    /// Optimizer step.
    pub optimizer_s: f64,
    /// Checkpoint saves.
    pub checkpoint_s: f64,
    /// Transport recovery overhead (carved out of exposed comm when the
    /// reliable transport reports recovery wait; zero on a clean fabric).
    pub retransmission_s: f64,
    /// Untraced overhead (scheduling gaps, dataloader).
    pub other_s: f64,
}

impl Attribution {
    /// Fold a critical path into category seconds.
    pub fn from_path(path: &CriticalPath) -> Attribution {
        let ns = |cat| path.total_ns(cat) as f64 / 1e9;
        Attribution {
            measured_s: path.length_ns() as f64 / 1e9,
            compute_s: ns(PathCat::Compute),
            exposed_comm_s: ns(PathCat::ExposedComm),
            bubble_s: ns(PathCat::Bubble),
            straggler_wait_s: ns(PathCat::StragglerWait),
            optimizer_s: ns(PathCat::Optimizer),
            checkpoint_s: ns(PathCat::Checkpoint),
            retransmission_s: 0.0,
            other_s: ns(PathCat::Other),
        }
    }

    /// Sum of all categories.
    pub fn accounted_s(&self) -> f64 {
        self.compute_s
            + self.exposed_comm_s
            + self.bubble_s
            + self.straggler_wait_s
            + self.optimizer_s
            + self.checkpoint_s
            + self.retransmission_s
            + self.other_s
    }

    /// `measured − accounted`: zero up to float rounding by construction.
    pub fn residual_s(&self) -> f64 {
        self.measured_s - self.accounted_s()
    }

    /// Move transport recovery time out of exposed comm into its own
    /// category. Recovery (backoff polls, retransmit round trips) happens
    /// *inside* comm spans, so the total is preserved; the estimate is
    /// clamped to the exposed-comm time actually on the path.
    pub fn carve_retransmission(&mut self, recovery_s: f64) {
        let x = recovery_s.clamp(0.0, self.exposed_comm_s);
        self.exposed_comm_s -= x;
        self.retransmission_s += x;
    }

    /// Element-wise mean over per-iteration attributions.
    pub fn mean(items: &[Attribution]) -> Attribution {
        let n = items.len().max(1) as f64;
        let mut out = Attribution::default();
        for a in items {
            out.measured_s += a.measured_s;
            out.compute_s += a.compute_s;
            out.exposed_comm_s += a.exposed_comm_s;
            out.bubble_s += a.bubble_s;
            out.straggler_wait_s += a.straggler_wait_s;
            out.optimizer_s += a.optimizer_s;
            out.checkpoint_s += a.checkpoint_s;
            out.retransmission_s += a.retransmission_s;
            out.other_s += a.other_s;
        }
        out.measured_s /= n;
        out.compute_s /= n;
        out.exposed_comm_s /= n;
        out.bubble_s /= n;
        out.straggler_wait_s /= n;
        out.optimizer_s /= n;
        out.checkpoint_s /= n;
        out.retransmission_s /= n;
        out.other_s /= n;
        out
    }

    /// `(label, seconds, share-of-measured)` rows in report order.
    pub fn rows(&self) -> Vec<(&'static str, f64, f64)> {
        let share = |s: f64| {
            if self.measured_s > 0.0 {
                s / self.measured_s
            } else {
                0.0
            }
        };
        vec![
            ("compute", self.compute_s, share(self.compute_s)),
            (
                "exposed-comm",
                self.exposed_comm_s,
                share(self.exposed_comm_s),
            ),
            ("pipeline-bubble", self.bubble_s, share(self.bubble_s)),
            (
                "straggler-wait",
                self.straggler_wait_s,
                share(self.straggler_wait_s),
            ),
            ("optimizer", self.optimizer_s, share(self.optimizer_s)),
            ("checkpoint", self.checkpoint_s, share(self.checkpoint_s)),
            (
                "retransmission",
                self.retransmission_s,
                share(self.retransmission_s),
            ),
            ("other", self.other_s, share(self.other_s)),
        ]
    }
}

/// Analytic lower bounds on the iteration time under three idealizations.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WhatIf {
    /// All communication free: measured minus every comm-induced path
    /// category (exposed comm, retransmission, straggler wait).
    pub zero_comm_s: f64,
    /// Communication perfectly overlapped with compute: bounded below by
    /// both the zero-comm path and the busiest rank's serial work — comm
    /// can be hidden but neither compute nor the wire can be compressed.
    pub perfect_overlap_s: f64,
    /// No stragglers: measured minus straggler-induced wait.
    pub no_straggler_s: f64,
}

/// Derive the what-if bounds from an attribution plus the per-rank busy
/// times of the same analysis window.
pub fn what_if(attr: &Attribution, dag: &TraceDag, window: Window) -> WhatIf {
    let mut max_work = 0.0f64; // busiest rank: compute + opt + ckpt
    let mut max_comm = 0.0f64; // busiest rank: comm transfer time
    for r in &dag.ranks {
        let (mut work, mut comm) = (0.0, 0.0);
        for s in r.spans.iter().filter(|s| window.keeps(s)) {
            let secs = s.dur_ns as f64 / 1e9;
            match s.phase {
                Phase::Compute | Phase::Optimizer | Phase::Checkpoint => work += secs,
                Phase::Comm => comm += secs,
                _ => {}
            }
        }
        max_work = max_work.max(work);
        max_comm = max_comm.max(comm);
    }
    let comm_free =
        attr.measured_s - attr.exposed_comm_s - attr.retransmission_s - attr.straggler_wait_s;
    WhatIf {
        zero_comm_s: comm_free.max(max_work),
        perfect_overlap_s: comm_free.max(max_work).max(max_comm),
        no_straggler_s: attr.measured_s - attr.straggler_wait_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critical_path::{critical_path, Window};
    use crate::dag::{build_dag, ARank, ASpan, Phase};

    fn sp(name: &str, phase: Phase, start: u64, dur: u64) -> ASpan {
        ASpan {
            name: name.to_string(),
            phase,
            start_ns: start,
            dur_ns: dur,
            epoch: Some(0),
            iteration: Some(0),
            microbatch: Some(0),
            chunk: Some(0),
            pass: None,
            bytes: None,
        }
    }

    #[test]
    fn categories_sum_to_measured_and_whatifs_order() {
        let r0 = ARank {
            rank: 0,
            key: (0, 0, 0),
            spans: vec![
                sp("forward", Phase::Compute, 0, 100),
                sp("p2p-send-fwd", Phase::Comm, 100, 10),
                sp("adam-step", Phase::Optimizer, 300, 20),
            ],
        };
        let r1 = ARank {
            rank: 1,
            key: (1, 0, 0),
            spans: vec![
                sp("pipeline-wait-fwd", Phase::Bubble, 0, 110),
                sp("forward", Phase::Compute, 110, 150),
                sp("adam-step", Phase::Optimizer, 260, 40),
            ],
        };
        let dag = build_dag(vec![r0, r1], 2, false);
        let w = Window::iteration(0);
        let path = critical_path(&dag, w).unwrap();
        let attr = Attribution::from_path(&path);
        assert!(attr.residual_s().abs() < 1e-12, "no unattributed residue");
        assert!(attr.compute_s > 0.0 && attr.optimizer_s > 0.0);
        let wi = what_if(&attr, &dag, w);
        assert!(wi.zero_comm_s <= attr.measured_s + 1e-12);
        assert!(wi.perfect_overlap_s >= wi.zero_comm_s - 1e-12);
        assert!(wi.no_straggler_s <= attr.measured_s + 1e-12);
    }

    #[test]
    fn carve_retransmission_preserves_total() {
        let mut a = Attribution {
            measured_s: 1.0,
            exposed_comm_s: 0.3,
            compute_s: 0.7,
            ..Default::default()
        };
        a.carve_retransmission(0.1);
        assert!((a.exposed_comm_s - 0.2).abs() < 1e-12);
        assert!((a.retransmission_s - 0.1).abs() < 1e-12);
        assert!(a.residual_s().abs() < 1e-12);
        // Clamped: can't carve more than is exposed.
        a.carve_retransmission(5.0);
        assert!(a.exposed_comm_s.abs() < 1e-12);
        assert!((a.retransmission_s - 0.3).abs() < 1e-12);
    }
}
