//! Per-iteration critical path through the cross-rank DAG.
//!
//! The walk starts at the globally last span end of the analysis window
//! and moves backwards in wall-clock time, always standing on exactly one
//! rank: processing a span attributes its on-path interval to a category,
//! and reaching a synchronization point *hops* to the rank that caused the
//! wait — a pipeline wait hops to the sender at the transfer's completion,
//! a collective hops to the last-arriving member of the instance (its
//! gating role justified by the program's dependency closure, see
//! [`dependency_closure`](crate::dag::dependency_closure)). Because every
//! step attributes the contiguous interval it walked over and hops never
//! skip time, the produced segments *tile* the window exactly: categories
//! sum to the measured iteration time with zero residue by construction.

use crate::dag::{Phase, TraceDag};

/// Where one on-path interval of wall-clock time went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathCat {
    /// Forward/backward compute on the critical path.
    Compute,
    /// Communication the path could not avoid waiting on (transfer time).
    ExposedComm,
    /// Pipeline bubble: waiting for an upstream/downstream stage.
    Bubble,
    /// Waiting inside a collective for its last-arriving member beyond the
    /// straggler-free transfer time.
    StragglerWait,
    /// Optimizer step.
    Optimizer,
    /// Checkpoint save.
    Checkpoint,
    /// Untraced overhead (scheduling, dataloader, gaps between spans).
    Other,
}

impl PathCat {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            PathCat::Compute => "compute",
            PathCat::ExposedComm => "exposed-comm",
            PathCat::Bubble => "pipeline-bubble",
            PathCat::StragglerWait => "straggler-wait",
            PathCat::Optimizer => "optimizer",
            PathCat::Checkpoint => "checkpoint",
            PathCat::Other => "other",
        }
    }

    /// Every category, in report order.
    pub const ALL: [PathCat; 7] = [
        PathCat::Compute,
        PathCat::ExposedComm,
        PathCat::Bubble,
        PathCat::StragglerWait,
        PathCat::Optimizer,
        PathCat::Checkpoint,
        PathCat::Other,
    ];
}

/// One contiguous on-path interval on one rank.
#[derive(Debug, Clone, Copy)]
pub struct PathSegment {
    /// Rank index into [`TraceDag::ranks`] the path stood on.
    pub rank: usize,
    /// Interval start, ns.
    pub start_ns: u64,
    /// Interval end, ns (exclusive; `end > start` for every segment).
    pub end_ns: u64,
    /// Attribution category.
    pub cat: PathCat,
}

/// The critical path of one analysis window.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Segments in forward time order; they tile `[window_start,
    /// window_end]` exactly (contiguous, non-overlapping, no gaps).
    pub segments: Vec<PathSegment>,
    /// Window start: earliest span start considered, ns.
    pub window_start_ns: u64,
    /// Window end: latest span end considered, ns.
    pub window_end_ns: u64,
    /// True if the walk hit its step budget (malformed trace) and closed
    /// the remaining window as one `Other` segment.
    pub truncated: bool,
}

impl CriticalPath {
    /// Window length, ns — the measured iteration time the categories sum to.
    pub fn length_ns(&self) -> u64 {
        self.window_end_ns - self.window_start_ns
    }

    /// Total nanoseconds attributed to `cat`.
    pub fn total_ns(&self, cat: PathCat) -> u64 {
        self.segments
            .iter()
            .filter(|s| s.cat == cat)
            .map(|s| s.end_ns - s.start_ns)
            .sum()
    }
}

/// Span filter for one analysis window.
#[derive(Debug, Clone, Copy, Default)]
pub struct Window {
    /// Keep only spans with this supervisor epoch (None = any).
    pub epoch: Option<u64>,
    /// Keep only spans with this iteration (None = any — sim traces carry
    /// no iteration arg, so a sim analysis passes None).
    pub iteration: Option<u64>,
}

impl Window {
    /// One real-trace iteration of a clean (epoch 0) run.
    pub fn iteration(it: u64) -> Window {
        Window {
            epoch: Some(0),
            iteration: Some(it),
        }
    }

    /// Whether a span belongs to this window.
    pub fn keeps(&self, s: &crate::dag::ASpan) -> bool {
        if let Some(e) = self.epoch {
            if s.epoch != Some(e) {
                return false;
            }
        }
        if let Some(it) = self.iteration {
            if s.iteration != Some(it) {
                return false;
            }
        }
        true
    }
}

struct Walker<'a> {
    dag: &'a TraceDag,
    /// Per rank: kept span indices sorted by start.
    kept: Vec<Vec<usize>>,
    /// Per rank: prefix max of span end over `kept` (handles nesting).
    frontier: Vec<Vec<u64>>,
    t0: u64,
    segs: Vec<PathSegment>,
}

impl<'a> Walker<'a> {
    fn span(&self, node: (usize, usize)) -> &'a crate::dag::ASpan {
        &self.dag.ranks[node.0].spans[node.1]
    }

    fn push(&mut self, rank: usize, start: u64, end: u64, cat: PathCat) {
        let start = start.max(self.t0);
        if end > start {
            self.segs.push(PathSegment {
                rank,
                start_ns: start,
                end_ns: end,
                cat,
            });
        }
    }

    /// Index into `kept[rank]` of the last kept span with `start < t`,
    /// plus whether some such span's end reaches `t` (i.e. `t` is inside
    /// recorded activity, not a gap).
    fn locate(&self, rank: usize, t: u64) -> Option<(usize, u64)> {
        let starts = &self.kept[rank];
        let spans = &self.dag.ranks[rank].spans;
        let n = starts.partition_point(|&si| spans[si].start_ns < t);
        if n == 0 {
            return None;
        }
        Some((n - 1, self.frontier[rank][n - 1]))
    }
}

/// Compute the critical path of the spans selected by `window`. Returns
/// `None` when the window matches no spans.
pub fn critical_path(dag: &TraceDag, window: Window) -> Option<CriticalPath> {
    let mut kept: Vec<Vec<usize>> = Vec::with_capacity(dag.ranks.len());
    let mut frontier: Vec<Vec<u64>> = Vec::with_capacity(dag.ranks.len());
    let (mut t0, mut t1) = (u64::MAX, 0u64);
    let (mut start_rank, mut total) = (0usize, 0usize);
    for (ri, r) in dag.ranks.iter().enumerate() {
        let idx: Vec<usize> = (0..r.spans.len())
            .filter(|&si| window.keeps(&r.spans[si]))
            .collect();
        let mut fmax = Vec::with_capacity(idx.len());
        let mut run = 0u64;
        for &si in &idx {
            let s = &r.spans[si];
            t0 = t0.min(s.start_ns);
            if s.end_ns() > t1 {
                t1 = s.end_ns();
                start_rank = ri;
            }
            run = run.max(s.end_ns());
            fmax.push(run);
        }
        total += idx.len();
        kept.push(idx);
        frontier.push(fmax);
    }
    if total == 0 {
        return None;
    }

    let mut w = Walker {
        dag,
        kept,
        frontier,
        t0,
        segs: Vec::new(),
    };
    let budget = total * 4 + 64;
    let mut steps = 0usize;
    let mut truncated = false;
    let mut rank = start_rank;
    let mut t = t1;
    // Edge gating the start of the span just processed (sim semantics):
    // consulted when the preceding interval turns out to be a gap.
    let mut pending: Option<crate::dag::Edge> = None;

    while t > t0 {
        steps += 1;
        if steps > budget {
            truncated = true;
            w.push(rank, t0, t, PathCat::Other);
            break;
        }
        let Some((ki, reach)) = w.locate(rank, t) else {
            // Nothing recorded on this rank before t: leading idle region.
            w.push(rank, t0, t, PathCat::Other);
            break;
        };
        if reach < t {
            // Gap [reach, t]. If the span that starts at `t` was gated by a
            // cross-rank arrival (sim compute gating), the tail of the gap
            // was spent waiting for it — attribute it as bubble and hop to
            // the transfer; the head of the gap (before the arrival) stays
            // on this rank's earlier timeline.
            let gap_lo = reach.max(t0);
            match pending.take() {
                Some(e) => {
                    let se = w.span(e.from).end_ns();
                    let lo = se.clamp(gap_lo, t);
                    w.push(rank, lo, t, PathCat::Bubble);
                    if se > gap_lo {
                        rank = e.from.0;
                    }
                    t = lo;
                }
                None => {
                    w.push(rank, gap_lo, t, PathCat::Other);
                    t = gap_lo;
                }
            }
            continue;
        }
        // Inside recorded activity: the span with the greatest start whose
        // end reaches t (scan back from the latest-starting candidate to
        // step over nested/overlapping earlier spans).
        let spans = &dag.ranks[rank].spans;
        let mut pick = w.kept[rank][ki];
        if spans[pick].end_ns() < t {
            for &si in w.kept[rank][..ki].iter().rev() {
                if spans[si].end_ns() >= t {
                    pick = si;
                    break;
                }
            }
        }
        let s = &spans[pick];
        let node = (rank, pick);
        let lo_base = s.start_ns.max(t0);
        pending = None;
        if let Some(&ci) = dag.member_of.get(&node) {
            // Collective: the last-arriving member gates every member's
            // completion (full dependency closure). The tail of the
            // on-path interval is the straggler-free transfer (the fastest
            // member's duration); anything before it since the last
            // arrival is straggler-induced wait.
            let inst = &dag.collectives[ci];
            if inst.full_closure {
                let gate = inst
                    .members
                    .iter()
                    .copied()
                    .max_by_key(|&m| w.span(m).start_ns)
                    .expect("collective instance has members");
                let min_dur = inst
                    .members
                    .iter()
                    .map(|&m| w.span(m).dur_ns)
                    .min()
                    .unwrap_or(0);
                let gstart = w.span(gate).start_ns;
                let lo = gstart.clamp(lo_base, t);
                let comm = (t - lo).min(min_dur.max(1));
                w.push(rank, t - comm, t, PathCat::ExposedComm);
                w.push(rank, lo, t - comm, PathCat::StragglerWait);
                if gstart > lo_base && gate.0 != rank {
                    rank = gate.0;
                }
                t = lo;
                continue;
            }
        }
        match s.phase {
            Phase::Bubble => match dag.incoming.get(&node).copied() {
                Some(e) => {
                    // Wait for a pipeline transfer: bubble from the
                    // transfer's completion to the wait's end, then hop to
                    // the sender at that completion.
                    let se = w.span(e.from).end_ns();
                    let lo = se.clamp(lo_base, t);
                    w.push(rank, lo, t, PathCat::Bubble);
                    if se > lo_base {
                        rank = e.from.0;
                    }
                    t = lo;
                }
                None => {
                    w.push(rank, lo_base, t, PathCat::Bubble);
                    t = lo_base;
                }
            },
            Phase::Comm => {
                w.push(rank, lo_base, t, PathCat::ExposedComm);
                pending = dag.incoming.get(&node).copied();
                t = lo_base;
            }
            phase => {
                let cat = match phase {
                    Phase::Compute => PathCat::Compute,
                    Phase::Optimizer => PathCat::Optimizer,
                    Phase::Checkpoint => PathCat::Checkpoint,
                    _ => PathCat::Other,
                };
                w.push(rank, lo_base, t, cat);
                pending = dag.incoming.get(&node).copied();
                t = lo_base;
            }
        }
    }

    let mut segments = w.segs;
    segments.reverse();
    // Tiling invariant: contiguous, in order, covering the whole window.
    debug_assert!(segments.windows(2).all(|p| p[0].end_ns == p[1].start_ns));
    debug_assert_eq!(
        segments.iter().map(|s| s.end_ns - s.start_ns).sum::<u64>(),
        t1 - t0
    );
    Some(CriticalPath {
        segments,
        window_start_ns: t0,
        window_end_ns: t1,
        truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{build_dag, ARank, ASpan, Phase};

    fn sp(name: &str, phase: Phase, start: u64, dur: u64) -> ASpan {
        ASpan {
            name: name.to_string(),
            phase,
            start_ns: start,
            dur_ns: dur,
            epoch: Some(0),
            iteration: Some(0),
            microbatch: Some(0),
            chunk: Some(0),
            pass: None,
            bytes: None,
        }
    }

    /// Two-stage pipeline: stage 0 computes [0,100], sends [100,110];
    /// stage 1 waits [0,110], computes [110,210]. Path: stage-1 compute
    /// (100) + send (10) [+ bubble 0] + stage-0 compute (100) = 210.
    #[test]
    fn two_stage_pipeline_path_tiles_exactly() {
        let r0 = ARank {
            rank: 0,
            key: (0, 0, 0),
            spans: vec![
                sp("forward", Phase::Compute, 0, 100),
                sp("p2p-send-fwd", Phase::Comm, 100, 10),
            ],
        };
        let r1 = ARank {
            rank: 1,
            key: (1, 0, 0),
            spans: vec![
                sp("pipeline-wait-fwd", Phase::Bubble, 0, 110),
                sp("forward", Phase::Compute, 110, 100),
            ],
        };
        let dag = build_dag(vec![r0, r1], 2, false);
        assert_eq!(dag.incoming.len(), 1, "send matched to wait");
        let path = critical_path(&dag, Window::iteration(0)).unwrap();
        assert_eq!(path.length_ns(), 210);
        let total: u64 = path.segments.iter().map(|s| s.end_ns - s.start_ns).sum();
        assert_eq!(total, 210, "segments tile the window");
        assert_eq!(path.total_ns(PathCat::Compute), 200);
        assert_eq!(path.total_ns(PathCat::ExposedComm), 10);
        assert_eq!(path.total_ns(PathCat::Bubble), 0, "wait fully explained");
        assert!(!path.truncated);
    }

    /// Same, but the sender idles 50 ns before sending: the receiver's
    /// wait tail is bubble on the path only up to the transfer completion;
    /// the hop lands on the sender whose gap becomes Other.
    #[test]
    fn late_send_attributes_sender_side_time() {
        let r0 = ARank {
            rank: 0,
            key: (0, 0, 0),
            spans: vec![
                sp("forward", Phase::Compute, 0, 100),
                sp("p2p-send-fwd", Phase::Comm, 150, 10),
            ],
        };
        let r1 = ARank {
            rank: 1,
            key: (1, 0, 0),
            spans: vec![
                sp("pipeline-wait-fwd", Phase::Bubble, 0, 160),
                sp("forward", Phase::Compute, 160, 100),
            ],
        };
        let dag = build_dag(vec![r0, r1], 2, false);
        let path = critical_path(&dag, Window::iteration(0)).unwrap();
        assert_eq!(path.length_ns(), 260);
        assert_eq!(path.total_ns(PathCat::Compute), 200);
        assert_eq!(path.total_ns(PathCat::ExposedComm), 10);
        // The sender's 50 ns idle [100,150] lands as Other via the hop.
        assert_eq!(path.total_ns(PathCat::Other), 50);
        let total: u64 = path.segments.iter().map(|s| s.end_ns - s.start_ns).sum();
        assert_eq!(total, 260);
    }

    /// A 2-member grad-allreduce where rank 1 arrives 40 ns late: the path
    /// charges the transfer (min duration) as exposed comm and hops to the
    /// straggler, attributing its extra compute on-path.
    #[test]
    fn collective_hops_to_last_arrival() {
        let r0 = ARank {
            rank: 0,
            key: (0, 0, 0),
            spans: vec![
                sp("backward", Phase::Compute, 0, 60),
                sp("grad-allreduce", Phase::Comm, 60, 60), // waits + transfer
            ],
        };
        let r1 = ARank {
            rank: 1,
            key: (0, 1, 0),
            spans: vec![
                sp("backward", Phase::Compute, 0, 100),
                sp("grad-allreduce", Phase::Comm, 100, 20), // pure transfer
            ],
        };
        let dag = build_dag(vec![r0, r1], 1, false);
        assert_eq!(dag.collectives.len(), 1);
        assert!(dag.collectives[0].full_closure);
        let path = critical_path(&dag, Window::iteration(0)).unwrap();
        assert_eq!(path.length_ns(), 120);
        // Path: rank0 ar [100,120] → exposed 20 (min dur), hop to rank 1 at
        // 100 → its backward [0,100] compute.
        assert_eq!(path.total_ns(PathCat::ExposedComm), 20);
        assert_eq!(path.total_ns(PathCat::Compute), 100);
        assert_eq!(path.total_ns(PathCat::StragglerWait), 0);
        let total: u64 = path.segments.iter().map(|s| s.end_ns - s.start_ns).sum();
        assert_eq!(total, 120);
    }
}
