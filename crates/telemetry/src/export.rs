//! Exporters: Chrome/Perfetto trace JSON and phase-share aggregation.
//!
//! The real trainer's trace reuses the simulator's [`TraceEvent`] format so
//! both open side by side in one viewer. Placement convention:
//!
//! * simulator: `pid 0`, `tid = p` index for `dev{p}.compute`, `tid = P + p`
//!   for `dev{p}.net` (resource insertion order in `megatron-core`);
//! * real run: `pid = 1 + flat rank`, `tid = p` for compute/optimizer/
//!   checkpoint/bubble spans and `tid = P + p` for communication spans,
//!   where `p` is the rank's pipeline-stage index.
//!
//! So each real rank's rows line up under the simulated device with the same
//! pipeline stage, and comm rows sit where the sim's net-port rows sit.

use megatron_sim::json::Json;
use megatron_sim::{events_json, TraceEvent};

use crate::span::{RankTrace, SpanKind, TraceHub};

/// Pid offset for real ranks (`pid 0` is the simulator's process row).
pub const REAL_PID_BASE: usize = 1;

/// Chrome trace pid for a flat rank.
pub fn rank_pid(rank: usize) -> usize {
    REAL_PID_BASE + rank
}

/// Lower one rank's spans to trace events.
fn rank_events(trace: &RankTrace, pipeline_stages: usize, out: &mut Vec<TraceEvent>) {
    let (pi, di, ti) = trace.key;
    let pid = rank_pid(trace.rank);
    out.push(TraceEvent::process_name(
        pid,
        format!("rank{} (p{pi},d{di},t{ti})", trace.rank),
    ));
    for s in &trace.spans {
        let tid = match s.kind {
            SpanKind::Comm => pipeline_stages + pi,
            _ => pi,
        };
        let mut ev = TraceEvent::span(
            s.name,
            s.kind.category(),
            s.start_ns as f64 / 1e3,
            s.dur_ns as f64 / 1e3,
        )
        .at(pid, tid)
        .arg("iteration", Json::Num(s.iteration as f64))
        .arg("epoch", Json::Num(s.epoch as f64));
        if let Some(b) = s.args.bytes {
            ev = ev.arg("bytes", Json::Num(b));
        }
        if let Some(m) = s.args.microbatch {
            ev = ev.arg("microbatch", Json::Num(m as f64));
        }
        if let Some(c) = s.args.chunk {
            ev = ev.arg("chunk", Json::Num(c as f64));
        }
        out.push(ev);
    }
}

/// Export every published rank's spans as Chrome trace JSON.
/// `pipeline_stages` is the schedule's `p`, used for comm-row tids.
pub fn chrome_trace_json(hub: &TraceHub, pipeline_stages: usize) -> String {
    let mut events = Vec::new();
    for trace in hub.ranks() {
        rank_events(&trace, pipeline_stages, &mut events);
    }
    events_json(&events)
}

/// Merge several Chrome traces (each a JSON event array, e.g. one
/// `rank-R.trace.json` per rank process of a `repro launch` run) into one
/// trace. Rank pids never collide — every rank's events already carry
/// `pid = `[`rank_pid`]`(flat rank)` regardless of which process lowered
/// them — so the merge is event-array concatenation in input order, and
/// the merged file opens in one viewer with every rank's rows in place.
pub fn merge_chrome_traces<'a>(parts: impl IntoIterator<Item = &'a str>) -> Result<String, String> {
    let mut events = Vec::new();
    for (i, part) in parts.into_iter().enumerate() {
        match Json::parse(part) {
            Ok(Json::Arr(evs)) => events.extend(evs),
            Ok(_) => return Err(format!("trace part {i}: not a JSON event array")),
            Err(e) => return Err(format!("trace part {i}: {e:?}")),
        }
    }
    Ok(Json::Arr(events).to_string())
}

/// Where a run's rank-time went, as fractions of `1.0`. Shares are over
/// total rank-seconds (sum over ranks of wall time), so a phase that all
/// ranks spend half their time in has share 0.5.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseShares {
    /// Forward + backward compute (includes nested tensor-parallel
    /// all-reduces, matching the simulator's stage pricing).
    pub compute: f64,
    /// Explicit communication spans (p2p sends, gradient collectives).
    pub comm: f64,
    /// Pipeline wait (bubble) time.
    pub bubble: f64,
    /// Optimizer step.
    pub optimizer: f64,
    /// Checkpoint saves.
    pub checkpoint: f64,
}

impl PhaseShares {
    /// Sum of all accounted shares (the rest is untraced overhead).
    pub fn accounted(&self) -> f64 {
        self.compute + self.comm + self.bubble + self.optimizer + self.checkpoint
    }
}

/// Aggregate span durations by phase across all ranks, normalized by
/// `total_rank_seconds` (e.g. Σ over ranks of Σ per-iteration step time).
pub fn phase_shares(hub: &TraceHub, total_rank_seconds: f64) -> PhaseShares {
    let mut sums = PhaseShares::default();
    for trace in hub.ranks() {
        for s in &trace.spans {
            let secs = s.dur_ns as f64 / 1e9;
            match s.kind {
                SpanKind::Forward | SpanKind::Backward => sums.compute += secs,
                SpanKind::Comm => sums.comm += secs,
                SpanKind::Bubble => sums.bubble += secs,
                SpanKind::Optimizer => sums.optimizer += secs,
                SpanKind::Checkpoint => sums.checkpoint += secs,
            }
        }
    }
    if total_rank_seconds > 0.0 {
        sums.compute /= total_rank_seconds;
        sums.comm /= total_rank_seconds;
        sums.bubble /= total_rank_seconds;
        sums.optimizer /= total_rank_seconds;
        sums.checkpoint /= total_rank_seconds;
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Span, SpanArgs};

    fn hub_with_spans() -> std::sync::Arc<TraceHub> {
        let hub = TraceHub::new();
        let mut tr = hub.tracer(2, (1, 0, 0));
        for (kind, name, dur) in [
            (SpanKind::Forward, "forward", 6u64),
            (SpanKind::Comm, "p2p-send-fwd", 2),
            (SpanKind::Bubble, "pipeline-wait", 2),
        ] {
            tr.push(Span {
                kind,
                name,
                start_ns: 0,
                dur_ns: dur * 1_000_000_000,
                iteration: 1,
                epoch: 0,
                args: SpanArgs::bytes(128.0),
            });
        }
        drop(tr);
        hub
    }

    #[test]
    fn chrome_export_places_ranks_as_pids() {
        let hub = hub_with_spans();
        let s = chrome_trace_json(&hub, 2);
        let v = Json::parse(&s).unwrap();
        let events = v.as_array().unwrap();
        // metadata + 3 spans
        assert_eq!(events.len(), 4);
        assert_eq!(events[0]["ph"].as_str(), Some("M"));
        assert_eq!(events[0]["args"]["name"].as_str(), Some("rank2 (p1,d0,t0)"));
        let fwd = &events[1];
        assert_eq!(fwd["pid"].as_f64(), Some(3.0)); // rank 2 → pid 3
        assert_eq!(fwd["tid"].as_f64(), Some(1.0)); // compute row = pi
        assert_eq!(fwd["cat"].as_str(), Some("fwd"));
        assert_eq!(fwd["args"]["bytes"].as_f64(), Some(128.0));
        let comm = &events[2];
        assert_eq!(comm["tid"].as_f64(), Some(3.0)); // comm row = P + pi
    }

    #[test]
    fn phase_shares_normalize() {
        let hub = hub_with_spans();
        // One rank, 10 rank-seconds of wall time.
        let sh = phase_shares(&hub, 10.0);
        assert!((sh.compute - 0.6).abs() < 1e-12);
        assert!((sh.comm - 0.2).abs() < 1e-12);
        assert!((sh.bubble - 0.2).abs() < 1e-12);
        assert!((sh.accounted() - 1.0).abs() < 1e-12);
    }
}
