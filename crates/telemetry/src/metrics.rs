//! Metrics registry: counters, gauges, and log-scale histograms.
//!
//! All instruments are atomics, so any number of rank threads can update
//! them concurrently; `Arc` handles are cached by callers so the registry
//! lock is only taken on first lookup and at snapshot time. Snapshots are
//! deterministic: `BTreeMap` ordering plus the in-repo JSON writer's sorted
//! keys mean the same instrument state always renders the same string.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use megatron_sim::json::Json;

/// Monotonic counter (u64, wrapping add).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins f64 gauge (stored as bits in an `AtomicU64`).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Histogram over positive values with fixed log-scale (power-of-two)
/// buckets: bucket `i` covers `[SMALLEST·2^i, SMALLEST·2^(i+1))`. With
/// `SMALLEST = 1 µs` and 64 buckets the range spans from microseconds to
/// ~5·10^5 years, so iteration times never fall off either end.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum in nanounits (value × 1e9 rounded) so concurrent adds stay exact
    /// for the magnitudes we record.
    sum_nano: AtomicU64,
}

impl Histogram {
    /// Lower bound of bucket 0 (seconds, when recording seconds).
    pub const SMALLEST: f64 = 1e-6;
    /// Number of buckets.
    pub const BUCKETS: usize = 64;

    fn new() -> Histogram {
        Histogram {
            buckets: (0..Self::BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_nano: AtomicU64::new(0),
        }
    }

    /// Bucket index for a value: `floor(log2(v / SMALLEST))`, clamped to the
    /// table. Non-positive and sub-`SMALLEST` values land in bucket 0.
    pub fn bucket_index(v: f64) -> usize {
        if v.is_nan() || v <= Self::SMALLEST {
            return 0;
        }
        let idx = (v / Self::SMALLEST).log2().floor();
        // `as usize` saturates, so +inf lands in the last bucket.
        (idx as usize).min(Self::BUCKETS - 1)
    }

    /// `(low, high)` bounds of bucket `i`.
    pub fn bucket_bounds(i: usize) -> (f64, f64) {
        let lo = Self::SMALLEST * (2f64).powi(i as i32);
        (lo, lo * 2.0)
    }

    /// Record one observation.
    pub fn record(&self, v: f64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let nanos = (v.max(0.0) * 1e9).round() as u64;
        self.sum_nano.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum_nano.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Count in bucket `i`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    /// Quantile estimate for `q ∈ [0, 1]`: locates the bucket holding the
    /// rank-`⌈q·count⌉` observation and interpolates linearly inside it
    /// (bucket 0 interpolates from zero, since it also absorbs
    /// sub-`SMALLEST` values). Resolution is bounded by the power-of-two
    /// bucket width. An empty histogram has no quantiles (`None`); a
    /// single-sample histogram returns that sample exactly (recovered from
    /// the sum) rather than a bucket interpolation.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        if n == 1 {
            return Some(self.sum());
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for i in 0..Self::BUCKETS {
            let c = self.bucket_count(i);
            if c == 0 {
                continue;
            }
            cum += c;
            if cum >= target {
                let (lo, hi) = Self::bucket_bounds(i);
                let lo = if i == 0 { 0.0 } else { lo };
                let into = (target - (cum - c)) as f64 / c as f64;
                return Some(lo + (hi - lo) * into);
            }
        }
        // Unreachable unless counts raced with records mid-scan; report
        // the table's upper edge rather than inventing a value.
        Some(Self::bucket_bounds(Self::BUCKETS - 1).1)
    }

    /// `(p50, p95, p99)` convenience tuple; `None` on an empty histogram.
    pub fn percentiles(&self) -> Option<(f64, f64, f64)> {
        Some((
            self.quantile(0.50)?,
            self.quantile(0.95)?,
            self.quantile(0.99)?,
        ))
    }

    fn snapshot_json(&self) -> Json {
        let mut buckets = BTreeMap::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.insert(format!("b{i:02}"), Json::Num(c as f64));
            }
        }
        Json::obj([
            ("count", Json::Num(self.count() as f64)),
            ("sum", Json::Num(self.sum())),
            ("buckets", Json::Obj(buckets)),
        ])
    }
}

/// Named instrument registry with get-or-create semantics and deterministic
/// JSON snapshots.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get or create a counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Get or create a gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Get or create a histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Deterministic JSON snapshot of every instrument, grouped by type.
    pub fn snapshot(&self) -> Json {
        let counters: BTreeMap<String, Json> = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), Json::Num(v.get() as f64)))
            .collect();
        let gauges: BTreeMap<String, Json> = self
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), Json::Num(v.get())))
            .collect();
        let histograms: BTreeMap<String, Json> = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot_json()))
            .collect();
        Json::obj([
            ("counters", Json::Obj(counters)),
            ("gauges", Json::Obj(gauges)),
            ("histograms", Json::Obj(histograms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket i covers [1e-6 · 2^i, 1e-6 · 2^(i+1)).
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(-1.0), 0);
        assert_eq!(Histogram::bucket_index(0.5e-6), 0);
        assert_eq!(Histogram::bucket_index(1.5e-6), 0);
        assert_eq!(Histogram::bucket_index(3e-6), 1); // ratio 3 → floor(log2)=1
        assert_eq!(Histogram::bucket_index(1e-3), 9); // ratio 1000 → floor(log2)=9
        assert_eq!(Histogram::bucket_index(1.0), 19); // ratio 1e6 → floor(log2)=19
        assert_eq!(Histogram::bucket_index(f64::MAX), Histogram::BUCKETS - 1);
        // Bounds are consistent with the index mapping.
        for i in [0usize, 1, 9, 19, 40] {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert!((hi / lo - 2.0).abs() < 1e-12);
            // A value strictly inside the bucket maps back to it.
            assert_eq!(Histogram::bucket_index(lo * 1.5), i);
        }
    }

    #[test]
    fn histogram_records_count_and_sum() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("iteration_seconds");
        h.record(0.25);
        h.record(0.5);
        h.record(0.25);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 1.0).abs() < 1e-9);
        assert_eq!(h.bucket_count(Histogram::bucket_index(0.25)), 2);
        assert_eq!(h.bucket_count(Histogram::bucket_index(0.5)), 1);
    }

    #[test]
    fn concurrent_per_rank_counter_increments() {
        let reg = Arc::new(MetricsRegistry::new());
        let shared = reg.counter("comm_ops_total");
        let mut handles = Vec::new();
        for rank in 0..8usize {
            let reg = Arc::clone(&reg);
            handles.push(thread::spawn(move || {
                // Each "rank" hammers both a shared counter and its own.
                let shared = reg.counter("comm_ops_total");
                let own = reg.counter(&format!("comm_ops.rank{rank}"));
                for _ in 0..10_000 {
                    shared.inc();
                    own.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.get(), 80_000);
        for rank in 0..8usize {
            assert_eq!(reg.counter(&format!("comm_ops.rank{rank}")).get(), 10_000);
        }
    }

    #[test]
    fn snapshot_deterministic_under_fixed_interleaving() {
        // Two registries driven by the same per-thread op sequences must
        // produce byte-identical snapshots once all threads have joined:
        // atomics commute, BTreeMap orders names, Json sorts keys.
        let run = || {
            let reg = Arc::new(MetricsRegistry::new());
            let mut handles = Vec::new();
            for rank in 0..4usize {
                let reg = Arc::clone(&reg);
                handles.push(thread::spawn(move || {
                    reg.counter("steps").add(5);
                    reg.counter(&format!("rank{rank}.bytes"))
                        .add(100 * rank as u64);
                    reg.gauge("bubble_fraction").set(0.125);
                    reg.histogram("iteration_seconds")
                        .record(0.01 * (rank + 1) as f64);
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            reg.snapshot().to_string()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        let v = Json::parse(&a).unwrap();
        assert_eq!(v["counters"]["steps"].as_f64(), Some(20.0));
        assert_eq!(
            v["histograms"]["iteration_seconds"]["count"].as_f64(),
            Some(4.0)
        );
    }

    #[test]
    fn quantile_empty_is_none() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("latency_seconds");
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile(1.0), None);
        assert_eq!(h.percentiles(), None);
    }

    #[test]
    fn quantile_single_sample_is_exact() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("latency_seconds");
        // 0.25 s sits strictly inside its power-of-two bucket, so an
        // interpolation could never return it exactly; the single-sample
        // path must recover it from the sum instead.
        h.record(0.25);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = h.quantile(q).unwrap();
            assert!((v - 0.25).abs() < 1e-9, "q{q} = {v}, want the sample");
        }
        assert_eq!(h.percentiles(), Some((0.25, 0.25, 0.25)));
    }

    #[test]
    fn quantiles_are_ordered_and_bucket_accurate() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("latency_seconds");
        // 90 fast observations, 10 slow ones: p50 sits in the fast bucket,
        // p95/p99 in the slow one.
        for _ in 0..90 {
            h.record(1e-3);
        }
        for _ in 0..10 {
            h.record(1.0);
        }
        let (p50, p95, p99) = h.percentiles().unwrap();
        assert!(p50 <= p95 && p95 <= p99);
        let fast = Histogram::bucket_bounds(Histogram::bucket_index(1e-3));
        let slow = Histogram::bucket_bounds(Histogram::bucket_index(1.0));
        assert!(p50 >= fast.0 && p50 <= fast.1, "p50 = {p50}");
        assert!(p95 >= slow.0 && p95 <= slow.1, "p95 = {p95}");
        assert!(p99 >= slow.0 && p99 <= slow.1, "p99 = {p99}");
    }

    #[test]
    fn quantile_interpolates_from_zero_in_bucket_zero() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("latency_seconds");
        // Two samples so the multi-sample interpolation path runs.
        h.record(0.0);
        h.record(0.0);
        let v = h.quantile(0.5).unwrap();
        assert!((0.0..=Histogram::bucket_bounds(0).1).contains(&v));
    }

    #[test]
    fn gauge_last_write_wins() {
        let g = Gauge::default();
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(g.get(), -2.25);
    }
}
