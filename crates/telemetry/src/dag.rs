//! Cross-rank happens-before DAG built from trace spans.
//!
//! Input is the Chrome-trace JSON both exporters already emit — the real
//! trainer's [`chrome_trace_json`](crate::chrome_trace_json) (`pid = 1 +
//! rank`) and the simulator's `simulate_traced` (`pid 0`, rows = device
//! compute/net ports) — so one analyzer runs unchanged on either trace.
//! Nodes are spans; edges are:
//!
//! * **program order**: spans on one rank happen in recorded order;
//! * **pipeline p2p**: a `p2p-send-{fwd,bwd}` span on stage `pi` matches
//!   the `pipeline-wait-{fwd,bwd}` span with the same (epoch, iteration,
//!   microbatch, chunk) on the stage neighbour with the same `(di, ti)` —
//!   the boundary/peer identification `StallContext` names at runtime; in
//!   the sim trace a `pipeline-p2p` net-row span gates the compute span
//!   with the same (pass, microbatch) on the adjacent device row;
//! * **collectives**: the k-th `grad-allreduce` / `grad-reduce-scatter` /
//!   `param-allgather` / `loss-allreduce` span of an iteration is matched
//!   across the data-parallel group (ranks sharing `(pi, ti)`). The claim
//!   that the *last-arriving* member gates every member's completion is
//!   not assumed — it is derived from the round structure of the
//!   `megatron-collective` step [`Program`]: [`dependency_closure`]
//!   propagates contributor sets through each round's send/recv dataflow,
//!   and the ring programs the trainer runs yield the full closure (every
//!   rank's output depends on every rank's input).
//!
//! The joined DAG is what [`critical_path`](crate::critical_path) walks.

use std::collections::HashMap;

use megatron_collective::{Combine, Program};
use megatron_sim::json::Json;

use crate::span::RankKey;

/// Analyzer phase taxonomy: the span categories plus `Other` for anything
/// a future exporter might add.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Forward/backward compute (incl. nested tensor-parallel collectives).
    Compute,
    /// Explicit communication.
    Comm,
    /// Pipeline wait.
    Bubble,
    /// Optimizer step.
    Optimizer,
    /// Checkpoint save.
    Checkpoint,
    /// Unrecognized category.
    Other,
}

/// One span as the analyzer sees it — exporter-independent: names and
/// categories are owned strings, timestamps are hub-relative nanoseconds,
/// and the matching keys (`iteration`, `microbatch`, ...) are optional
/// because the sim trace only carries the subset it needs.
#[derive(Debug, Clone)]
pub struct ASpan {
    /// Display name (`"forward"`, `"p2p-send-fwd"`, `"pipeline-p2p"`...).
    pub name: String,
    /// Phase bucket, derived from the trace `cat` (real) or name (sim).
    pub phase: Phase,
    /// Start, ns.
    pub start_ns: u64,
    /// Duration, ns.
    pub dur_ns: u64,
    /// Supervisor epoch (real traces).
    pub epoch: Option<u64>,
    /// Training iteration (real traces).
    pub iteration: Option<u64>,
    /// Microbatch matching key.
    pub microbatch: Option<u64>,
    /// Virtual-pipeline chunk matching key.
    pub chunk: Option<u64>,
    /// `"fwd"` / `"bwd"` direction (sim p2p / compute spans).
    pub pass: Option<String>,
    /// Bytes moved (comm spans).
    pub bytes: Option<f64>,
}

impl ASpan {
    /// End timestamp, ns.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

/// One rank's (or sim device row pair's) span timeline, sorted by start.
#[derive(Debug, Clone)]
pub struct ARank {
    /// Flat rank id (real) or pipeline device index (sim).
    pub rank: usize,
    /// `(pi, di, ti)` coordinates; sim devices map to `(dev, 0, 0)`.
    pub key: RankKey,
    /// Spans sorted by `start_ns`.
    pub spans: Vec<ASpan>,
}

/// Node address: `(rank index, span index)` into [`TraceDag::ranks`].
pub type Node = (usize, usize);

/// Why an edge exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Pipeline point-to-point transfer feeding a stage neighbour.
    P2p,
}

/// A cross-rank happens-before edge. For real traces the target is the
/// *wait* span whose end the source's completion gates; for sim traces
/// the target is the *compute* span whose start the transfer gates.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Source node (the send/transfer span).
    pub from: Node,
    /// Edge type.
    pub kind: EdgeKind,
}

/// One matched collective instance: the same logical collective's span on
/// every participating rank.
#[derive(Debug, Clone)]
pub struct CollInstance {
    /// Member spans, one per participating rank.
    pub members: Vec<Node>,
    /// Whether the program's dependency closure is complete — every
    /// member's output depends on every member's input, so the last
    /// arrival gates all completions (true for the ring programs).
    pub full_closure: bool,
}

/// The joined cross-rank DAG.
#[derive(Debug)]
pub struct TraceDag {
    /// Per-rank timelines.
    pub ranks: Vec<ARank>,
    /// Pipeline stage count the trace was exported with.
    pub pipeline_stages: usize,
    /// True when the spans came from the simulator (`pid 0`).
    pub sim: bool,
    /// Cross-rank edge gating each target node, if any.
    pub incoming: HashMap<Node, Edge>,
    /// Matched collective instances.
    pub collectives: Vec<CollInstance>,
    /// Collective instance index each member span belongs to.
    pub member_of: HashMap<Node, usize>,
}

/// Collective span names the trainer emits over the data-parallel group.
const COLLECTIVE_NAMES: [&str; 4] = [
    "grad-allreduce",
    "grad-reduce-scatter",
    "param-allgather",
    "loss-allreduce",
];

fn phase_of(cat: &str, name: &str) -> Phase {
    match cat {
        "fwd" | "bwd" => Phase::Compute,
        "comm" => Phase::Comm,
        "bubble" => Phase::Bubble,
        "opt" => Phase::Optimizer,
        "ckpt" => Phase::Checkpoint,
        // Sim traces classify by task name: the exporter tags everything
        // with cat "sim".
        "sim" => match name {
            "forward" | "backward" => Phase::Compute,
            "pipeline-p2p" | "grad-allreduce" => Phase::Comm,
            "optimizer" => Phase::Optimizer,
            _ => Phase::Other,
        },
        _ => Phase::Other,
    }
}

/// Parse a `"rankN (pX,dY,tZ)"` process-name metadata string.
fn parse_rank_key(name: &str) -> Option<RankKey> {
    let open = name.find('(')?;
    let close = name.find(')')?;
    let mut parts = name[open + 1..close].split(',');
    let mut next = |prefix: char| -> Option<usize> {
        let p = parts.next()?.trim();
        p.strip_prefix(prefix)?.parse().ok()
    };
    Some((next('p')?, next('d')?, next('t')?))
}

fn opt_u64(v: &Json) -> Option<u64> {
    v.as_f64().map(|x| x as u64)
}

/// Parse a Chrome-trace JSON string (either exporter) into per-rank
/// timelines and build the cross-rank DAG. `pipeline_stages` is the
/// schedule's `p` — the same value both exporters were given, needed to
/// tell sim compute rows (`tid < p`) from net rows (`tid >= p`).
///
/// A trace mixing sim (`pid 0`) and real (`pid >= 1`) spans is rejected:
/// the two describe different executions and must be analyzed separately.
pub fn parse_chrome_trace(json: &str, pipeline_stages: usize) -> Result<TraceDag, String> {
    let v = Json::parse(json).map_err(|e| format!("trace does not parse as JSON: {e:?}"))?;
    let events = v.as_array().ok_or("Chrome trace must be a JSON array")?;
    let p = pipeline_stages.max(1);

    // pid -> (pi, di, ti) from process_name metadata (real ranks only).
    let mut keys: HashMap<usize, RankKey> = HashMap::new();
    for ev in events {
        if ev["ph"].as_str() == Some("M") && ev["name"].as_str() == Some("process_name") {
            if let (Some(pid), Some(pname)) = (ev["pid"].as_f64(), ev["args"]["name"].as_str()) {
                if let Some(key) = parse_rank_key(pname) {
                    keys.insert(pid as usize, key);
                }
            }
        }
    }

    let mut ranks: HashMap<usize, ARank> = HashMap::new();
    let (mut saw_sim, mut saw_real) = (false, false);
    for ev in events {
        if ev["ph"].as_str() != Some("X") {
            continue;
        }
        let pid = ev["pid"].as_f64().ok_or("span without pid")? as usize;
        let tid = ev["tid"].as_f64().unwrap_or(0.0) as usize;
        let name = ev["name"].as_str().unwrap_or("").to_string();
        let cat = ev["cat"].as_str().unwrap_or("");
        let start_ns = (ev["ts"].as_f64().unwrap_or(0.0) * 1e3).round() as u64;
        let dur_ns = (ev["dur"].as_f64().unwrap_or(0.0) * 1e3).round() as u64;
        let (rank, key) = if pid == 0 {
            saw_sim = true;
            let dev = tid % p;
            (dev, (dev, 0, 0))
        } else {
            saw_real = true;
            let r = pid - 1;
            let key = *keys
                .get(&pid)
                .ok_or_else(|| format!("pid {pid} has spans but no process_name metadata"))?;
            (r, key)
        };
        let span = ASpan {
            phase: phase_of(cat, &name),
            name,
            start_ns,
            dur_ns,
            epoch: opt_u64(&ev["args"]["epoch"]),
            iteration: opt_u64(&ev["args"]["iteration"]),
            microbatch: opt_u64(&ev["args"]["microbatch"]),
            chunk: opt_u64(&ev["args"]["chunk"]),
            pass: ev["args"]["pass"].as_str().map(str::to_string),
            bytes: ev["args"]["bytes"].as_f64(),
        };
        ranks
            .entry(rank)
            .or_insert_with(|| ARank {
                rank,
                key,
                spans: Vec::new(),
            })
            .spans
            .push(span);
    }
    if saw_sim && saw_real {
        return Err("trace mixes sim (pid 0) and real (pid >= 1) spans".into());
    }
    let mut ranks: Vec<ARank> = ranks.into_values().collect();
    ranks.sort_by_key(|r| r.rank);
    for r in &mut ranks {
        r.spans.sort_by_key(|s| (s.start_ns, s.dur_ns));
    }
    Ok(build_dag(ranks, p, saw_sim))
}

/// Build the DAG from already-parsed timelines (the JSON-free entry point
/// tests and synthetic-trace proptests use).
pub fn build_dag(ranks: Vec<ARank>, pipeline_stages: usize, sim: bool) -> TraceDag {
    let mut dag = TraceDag {
        ranks,
        pipeline_stages,
        sim,
        incoming: HashMap::new(),
        collectives: Vec::new(),
        member_of: HashMap::new(),
    };
    if sim {
        join_sim_p2p(&mut dag);
    } else {
        join_real_p2p(&mut dag);
        join_collectives(&mut dag);
    }
    dag
}

/// Real traces: `p2p-send-{fwd,bwd}` on `(pi, di, ti)` gates the matching
/// `pipeline-wait-{fwd,bwd}` on `(pi±1, di, ti)`.
fn join_real_p2p(dag: &mut TraceDag) {
    type WaitKey = (
        bool,
        Option<u64>,
        Option<u64>,
        Option<u64>,
        Option<u64>,
        RankKey,
    );
    let mut waits: HashMap<WaitKey, Node> = HashMap::new();
    for (ri, r) in dag.ranks.iter().enumerate() {
        for (si, s) in r.spans.iter().enumerate() {
            let fwd = match s.name.as_str() {
                "pipeline-wait-fwd" => true,
                "pipeline-wait-bwd" => false,
                _ => continue,
            };
            waits.insert(
                (fwd, s.epoch, s.iteration, s.microbatch, s.chunk, r.key),
                (ri, si),
            );
        }
    }
    for (ri, r) in dag.ranks.iter().enumerate() {
        let (pi, di, ti) = r.key;
        for (si, s) in r.spans.iter().enumerate() {
            let (fwd, peer) = match s.name.as_str() {
                "p2p-send-fwd" => (true, pi + 1),
                "p2p-send-bwd" if pi > 0 => (false, pi - 1),
                _ => continue,
            };
            let k = (
                fwd,
                s.epoch,
                s.iteration,
                s.microbatch,
                s.chunk,
                (peer, di, ti),
            );
            if let Some(&to) = waits.get(&k) {
                dag.incoming.insert(
                    to,
                    Edge {
                        from: (ri, si),
                        kind: EdgeKind::P2p,
                    },
                );
            }
        }
    }
}

/// Sim traces: a `pipeline-p2p` net-row span with `(pass, microbatch)`
/// gates the `forward`/`backward` compute span with the same microbatch on
/// the adjacent device row. (Scope: the non-interleaved schedule, where
/// device index == stage index — the interleaved mapping is ambiguous
/// without a chunk arg, and unmatched transfers degrade gracefully to
/// unattributed gaps.)
fn join_sim_p2p(dag: &mut TraceDag) {
    let mut compute: HashMap<(bool, Option<u64>, usize), Node> = HashMap::new();
    for (ri, r) in dag.ranks.iter().enumerate() {
        for (si, s) in r.spans.iter().enumerate() {
            let fwd = match s.name.as_str() {
                "forward" => true,
                "backward" => false,
                _ => continue,
            };
            compute.insert((fwd, s.microbatch, r.rank), (ri, si));
        }
    }
    for (ri, r) in dag.ranks.iter().enumerate() {
        for (si, s) in r.spans.iter().enumerate() {
            if s.name != "pipeline-p2p" {
                continue;
            }
            let fwd = match s.pass.as_deref() {
                Some("fwd") => true,
                Some("bwd") => false,
                _ => continue,
            };
            let dev = r.rank;
            let peer = if fwd {
                dev + 1
            } else if dev > 0 {
                dev - 1
            } else {
                continue;
            };
            if let Some(&to) = compute.get(&(fwd, s.microbatch, peer)) {
                dag.incoming.insert(
                    to,
                    Edge {
                        from: (ri, si),
                        kind: EdgeKind::P2p,
                    },
                );
            }
        }
    }
}

/// Match data-parallel collective spans across the group (ranks sharing
/// `(pi, ti)`), k-th occurrence to k-th occurrence per iteration.
fn join_collectives(dag: &mut TraceDag) {
    // (name index, epoch, iteration, pi, ti) -> per-di occurrence lists.
    type BucketKey = (usize, Option<u64>, Option<u64>, usize, usize);
    type Bucket = HashMap<usize, Vec<Node>>;
    let mut buckets: HashMap<BucketKey, Bucket> = HashMap::new();
    for (ri, r) in dag.ranks.iter().enumerate() {
        let (pi, di, ti) = r.key;
        for (si, s) in r.spans.iter().enumerate() {
            let Some(ni) = COLLECTIVE_NAMES.iter().position(|n| *n == s.name) else {
                continue;
            };
            buckets
                .entry((ni, s.epoch, s.iteration, pi, ti))
                .or_default()
                .entry(di)
                .or_default()
                .push((ri, si));
        }
    }
    let mut keys: Vec<_> = buckets.keys().copied().collect();
    keys.sort();
    for bk in keys {
        let by_di = &buckets[&bk];
        if by_di.len() < 2 {
            continue; // group of one: nothing to synchronize with
        }
        let g = by_di.len();
        let full = ring_closure_is_full(COLLECTIVE_NAMES[bk.0], g);
        let depth = by_di.values().map(Vec::len).min().unwrap_or(0);
        let mut dis: Vec<_> = by_di.keys().copied().collect();
        dis.sort();
        #[allow(clippy::needless_range_loop)] // k indexes every di's occurrence list
        for k in 0..depth {
            let members: Vec<Node> = dis.iter().map(|di| by_di[di][k]).collect();
            let idx = dag.collectives.len();
            for &m in &members {
                dag.member_of.insert(m, idx);
            }
            dag.collectives.push(CollInstance {
                members,
                full_closure: full,
            });
        }
    }
}

/// `closure[j][i]` = rank `j`'s final buffer depends on rank `i`'s initial
/// buffer, computed by propagating per-element contributor sets through
/// the program's rounds (sends read end-of-previous-round state, exactly
/// the executor's semantics; `Replace` substitutes the sender's
/// contributors, `Reduce` unions them).
pub fn dependency_closure(prog: &Program) -> Vec<Vec<bool>> {
    let r = prog.ranks;
    let n = prog.len;
    let mut contrib = vec![vec![vec![false; r]; n]; r];
    for (j, rank) in contrib.iter_mut().enumerate() {
        for elem in rank.iter_mut() {
            elem[j] = true;
        }
    }
    for round in &prog.rounds {
        let snapshot = contrib.clone();
        for (j, step) in round.steps.iter().enumerate() {
            let Some(rcv) = step.recv else { continue };
            for e in rcv.range.lo..rcv.range.hi.min(n) {
                match rcv.combine {
                    Combine::Replace => contrib[j][e].clone_from(&snapshot[rcv.from][e]),
                    Combine::Reduce(_) => {
                        for c in 0..r {
                            contrib[j][e][c] |= snapshot[rcv.from][e][c];
                        }
                    }
                }
            }
        }
    }
    contrib
        .iter()
        .map(|rank| (0..r).map(|i| rank.iter().any(|elem| elem[i])).collect())
        .collect()
}

/// Whether the named trainer collective has the full dependency closure at
/// group size `g` — derived from the actual step program, not assumed.
fn ring_closure_is_full(name: &str, g: usize) -> bool {
    use megatron_collective as coll;
    let prog = match name {
        "grad-allreduce" | "loss-allreduce" => coll::ring_all_reduce(g, g, coll::ReduceOp::Sum),
        "grad-reduce-scatter" => coll::ring_reduce_scatter(g, g, coll::ReduceOp::Sum),
        "param-allgather" => coll::ring_all_gather(g, 1),
        _ => return false,
    };
    dependency_closure(&prog)
        .iter()
        .all(|row| row.iter().all(|&d| d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use megatron_collective as coll;

    #[test]
    fn ring_programs_have_full_closure() {
        for g in 2..=5 {
            let ar = coll::ring_all_reduce(g, g, coll::ReduceOp::Sum);
            assert!(
                dependency_closure(&ar).iter().all(|r| r.iter().all(|&d| d)),
                "all-reduce g={g} not fully connected"
            );
            let rs = coll::ring_reduce_scatter(g, g, coll::ReduceOp::Sum);
            let rs_deps = dependency_closure(&rs);
            // Each rank's owned chunk is fully reduced: depends on everyone.
            assert!(rs_deps.iter().all(|r| r.iter().all(|&d| d)));
            let ag = coll::ring_all_gather(g, 1);
            assert!(dependency_closure(&ag).iter().all(|r| r.iter().all(|&d| d)));
        }
    }

    #[test]
    fn broadcast_closure_is_root_only() {
        let g = 4;
        let root = 2;
        let bc = coll::ring_broadcast(g, g, root);
        let deps = dependency_closure(&bc);
        for (j, row) in deps.iter().enumerate() {
            for (i, &d) in row.iter().enumerate() {
                let want = i == root || (i == j && j == root);
                // A non-root rank may keep untouched initial elements only
                // if the broadcast leaves part of its buffer alone — ring
                // broadcast overwrites everything, so: root always, self
                // only at the root.
                assert_eq!(
                    d, want,
                    "rank {j} dep on {i}: got {d}, want {want} (root {root})"
                );
            }
        }
    }

    #[test]
    fn parse_rank_key_roundtrip() {
        assert_eq!(parse_rank_key("rank5 (p1,d0,t1)"), Some((1, 0, 1)));
        assert_eq!(parse_rank_key("no coords"), None);
    }
}
