//! megatron-telemetry: unified observability for the reproduction.
//!
//! Three pieces, mirroring what the paper's analysis needs (per-rank
//! timelines §2.2, comm accounting §3, achieved-TFLOPs tables §5):
//!
//! * **span recording** ([`TraceHub`] / [`RankTracer`]): lock-cheap,
//!   ring-buffered, one writer per GPU thread — the real trainer tags every
//!   forward/backward microbatch, collective (with byte volume), optimizer
//!   step, checkpoint save, and pipeline-wait bubble;
//! * **metrics** ([`MetricsRegistry`]): atomic counters / gauges /
//!   log-bucket histograms with deterministic JSON snapshots;
//! * **exporters** ([`chrome_trace_json`], [`TelemetrySink::metrics_jsonl`]):
//!   Chrome/Perfetto trace JSON sharing `megatron-sim`'s event format so a
//!   real run and its simulated twin open side by side, plus per-iteration
//!   JSONL metric snapshots.
//!
//! [`TelemetrySink`] bundles all three behind one `Arc` the distributed
//! runtime threads through `RunControl`.

mod attribution;
mod critical_path;
mod dag;
mod export;
mod metrics;
mod span;

pub use attribution::{what_if, Attribution, WhatIf};
pub use critical_path::{critical_path, CriticalPath, PathCat, PathSegment, Window};
pub use dag::{
    build_dag, dependency_closure, parse_chrome_trace, ARank, ASpan, CollInstance, Edge, EdgeKind,
    Node, Phase, TraceDag,
};
pub use export::{
    chrome_trace_json, merge_chrome_traces, phase_shares, rank_pid, PhaseShares, REAL_PID_BASE,
};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use span::{RankKey, RankTrace, RankTracer, Span, SpanArgs, SpanKind, TraceHub};

// Re-exported so dependents can build a `SinkConfig` without naming
// `megatron-cluster` directly.
pub use megatron_cluster::GpuSpec;

use megatron_sim::json::Json;
use std::sync::{Arc, Mutex};

/// Static facts the sink needs to turn raw timings into throughput metrics.
#[derive(Debug, Clone)]
pub struct SinkConfig {
    /// World size (number of rank threads).
    pub world: usize,
    /// Model FLOPs per training iteration, whole cluster (e.g. from
    /// `GptConfig::flops_per_iteration`). Zero disables TFLOPs/MFU gauges.
    pub flops_per_iteration: f64,
    /// Roofline device the run is measured against; `None` disables MFU.
    pub gpu: Option<GpuSpec>,
}

impl Default for SinkConfig {
    fn default() -> Self {
        SinkConfig {
            world: 1,
            flops_per_iteration: 0.0,
            gpu: None,
        }
    }
}

/// Everything a run publishes: span hub + metrics registry + the JSONL
/// iteration log. One `Arc<TelemetrySink>` is shared by all rank threads,
/// the supervisor, and the exporting caller.
#[derive(Debug)]
pub struct TelemetrySink {
    /// Span collection point (per-rank tracers hang off this).
    pub hub: Arc<TraceHub>,
    /// Metrics registry.
    pub metrics: MetricsRegistry,
    cfg: SinkConfig,
    iter_lines: Mutex<Vec<String>>,
}

impl TelemetrySink {
    /// Counter name: cumulative pipeline-wait nanoseconds across ranks.
    pub const BUBBLE_NS: &'static str = "bubble_ns_total";
    /// Counter name: cumulative per-rank step nanoseconds across ranks.
    pub const STEP_NS: &'static str = "step_ns_total";

    /// A fresh sink.
    pub fn new(cfg: SinkConfig) -> Arc<TelemetrySink> {
        Arc::new(TelemetrySink {
            hub: TraceHub::new(),
            metrics: MetricsRegistry::new(),
            cfg,
            iter_lines: Mutex::new(Vec::new()),
        })
    }

    /// The sink's static configuration.
    pub fn config(&self) -> &SinkConfig {
        &self.cfg
    }

    /// Cumulative pipeline-bubble fraction: bubble rank-time over total
    /// rank step time, from the counters the trainer feeds every iteration.
    pub fn bubble_fraction(&self) -> f64 {
        let step = self.metrics.counter(Self::STEP_NS).get();
        if step == 0 {
            return 0.0;
        }
        self.metrics.counter(Self::BUBBLE_NS).get() as f64 / step as f64
    }

    /// Called once per iteration by the loss-owning rank: updates the
    /// iteration-time histogram, throughput/bubble gauges, and appends one
    /// JSONL metrics snapshot line.
    pub fn record_iteration(&self, epoch: usize, iteration: usize, seconds: f64) {
        self.metrics.histogram("iteration_seconds").record(seconds);
        if self.cfg.flops_per_iteration > 0.0 && seconds > 0.0 && self.cfg.world > 0 {
            let per_gpu_flops = self.cfg.flops_per_iteration / self.cfg.world as f64;
            let tflops = per_gpu_flops / seconds / 1e12;
            self.metrics.gauge("achieved_tflops_per_gpu").set(tflops);
            if let Some(gpu) = &self.cfg.gpu {
                self.metrics
                    .gauge("mfu")
                    .set(gpu.mfu(per_gpu_flops, seconds));
            }
        }
        self.metrics
            .gauge("bubble_fraction")
            .set(self.bubble_fraction());

        let mut obj = match self.metrics.snapshot() {
            Json::Obj(map) => map,
            _ => unreachable!("snapshot is always an object"),
        };
        obj.insert("epoch".to_string(), Json::Num(epoch as f64));
        obj.insert("iteration".to_string(), Json::Num(iteration as f64));
        obj.insert("seconds".to_string(), Json::Num(seconds));
        self.iter_lines
            .lock()
            .unwrap()
            .push(Json::Obj(obj).to_string());
    }

    /// The per-iteration metrics stream: one JSON object per line.
    pub fn metrics_jsonl(&self) -> String {
        self.iter_lines.lock().unwrap().join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_iteration_emits_jsonl_with_throughput() {
        let sink = TelemetrySink::new(SinkConfig {
            world: 8,
            flops_per_iteration: 8.0 * 156e12, // 156 TFLOP per GPU per iter
            gpu: Some(GpuSpec::a100_80gb()),
        });
        // Simulate the trainer's per-iteration counter feed: 8 ranks, 1 s
        // steps, 0.125 s of bubble each.
        sink.metrics
            .counter(TelemetrySink::STEP_NS)
            .add(8_000_000_000);
        sink.metrics
            .counter(TelemetrySink::BUBBLE_NS)
            .add(1_000_000_000);
        sink.record_iteration(0, 0, 1.0);
        sink.record_iteration(0, 1, 2.0);

        let jsonl = sink.metrics_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first["iteration"].as_f64(), Some(0.0));
        assert_eq!(first["epoch"].as_f64(), Some(0.0));
        assert_eq!(first["seconds"].as_f64(), Some(1.0));
        // 156e12 FLOPs in 1 s = 156 TFLOP/s = 50 % of A100 peak.
        let tf = first["gauges"]["achieved_tflops_per_gpu"].as_f64().unwrap();
        assert!((tf - 156.0).abs() < 1e-9);
        let mfu = first["gauges"]["mfu"].as_f64().unwrap();
        assert!((mfu - 0.5).abs() < 1e-12);
        let bub = first["gauges"]["bubble_fraction"].as_f64().unwrap();
        assert!((bub - 0.125).abs() < 1e-12);
        // Second iteration: half the throughput.
        let second = Json::parse(lines[1]).unwrap();
        let tf2 = second["gauges"]["achieved_tflops_per_gpu"]
            .as_f64()
            .unwrap();
        assert!((tf2 - 78.0).abs() < 1e-9);
        assert_eq!(
            second["histograms"]["iteration_seconds"]["count"].as_f64(),
            Some(2.0)
        );
    }

    #[test]
    fn zero_flops_config_skips_throughput_gauges() {
        let sink = TelemetrySink::new(SinkConfig::default());
        sink.record_iteration(0, 0, 0.5);
        let v = Json::parse(&sink.metrics_jsonl()).unwrap();
        assert!(v["gauges"]["achieved_tflops_per_gpu"].as_f64().is_none());
        assert!(v["gauges"]["mfu"].as_f64().is_none());
    }
}
