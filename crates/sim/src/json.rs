//! Minimal JSON tree, writer, and parser.
//!
//! The workspace emits Chrome traces and machine-readable experiment output
//! as JSON, and tests parse them back. The build environment is offline, so
//! instead of `serde_json` this module provides the tiny subset actually
//! needed: a [`Json`] value tree with escaping-correct serialization and a
//! strict recursive-descent parser.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as f64, written without a trailing `.0` when
    /// integral).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (sorted keys, deterministic output).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Borrow as an array.
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Read as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Object field access (`Json::Null` when absent or not an object).
    pub fn get(&self, key: &str) -> &Json {
        const NULL: Json = Json::Null;
        match self {
            Json::Obj(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = fmt::Write::write_fmt(out, format_args!("{}", *n as i64));
                } else {
                    let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError { at: pos });
        }
        Ok(value)
    }
}

/// Compact serialization (and, via the `ToString` blanket impl, the
/// `to_string()` used throughout the trace exporter).
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl std::ops::Index<&str> for Json {
    type Output = Json;
    fn index(&self, key: &str) -> &Json {
        self.get(key)
    }
}

impl std::ops::Index<usize> for Json {
    type Output = Json;
    fn index(&self, i: usize) -> &Json {
        const NULL: Json = Json::Null;
        match self {
            Json::Arr(v) => v.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}", self.at)
    }
}

impl std::error::Error for ParseError {}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), ParseError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(ParseError { at: *pos })
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(ParseError { at: *pos }),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(ParseError { at: *pos }),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(ParseError { at: *pos });
                }
                *pos += 1;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(ParseError { at: *pos }),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if b.get(*pos) != Some(&b'"') {
        return Err(ParseError { at: *pos });
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(ParseError { at: *pos }),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(ParseError { at: *pos })?;
                        // Surrogate pairs are not needed for trace output;
                        // reject rather than silently corrupting.
                        out.push(char::from_u32(hex).ok_or(ParseError { at: *pos })?);
                        *pos += 4;
                    }
                    _ => return Err(ParseError { at: *pos }),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| ParseError { at: *pos })?;
                let c = s.chars().next().ok_or(ParseError { at: *pos })?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or(ParseError { at: start })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let doc = Json::Arr(vec![
            Json::obj([
                ("name", Json::from("fwd \"x\"\n")),
                ("ts", Json::from(1.5)),
                ("pid", Json::from(0usize)),
                ("ok", Json::Bool(true)),
                ("none", Json::Null),
            ]),
            Json::Arr(vec![Json::from(3.0), Json::from(-2.25)]),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::from(3.0).to_string(), "3");
        assert_eq!(Json::from(3.5).to_string(), "3.5");
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , \"b\\u0041\\n\" ] } ").unwrap();
        assert_eq!(v["a"][0].as_f64(), Some(1.0));
        assert_eq!(v["a"][1].as_str(), Some("bA\n"));
        assert_eq!(v["missing"], Json::Null);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
    }

    #[test]
    fn deterministic_object_key_order() {
        let a = Json::obj([("z", Json::Null), ("a", Json::Null)]);
        assert_eq!(a.to_string(), "{\"a\":null,\"z\":null}");
    }
}
