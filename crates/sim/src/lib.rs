//! Deterministic discrete-event simulation kernel.
//!
//! The unit of work is a task: a fixed-duration occupation of exactly one
//! resource, gated on the completion of a set of predecessor tasks. The
//! simulator executes the task DAG to completion, respecting resource
//! exclusivity (each resource runs one task at a time, in FIFO order of
//! readiness, with deterministic tie-breaking), and reports the makespan,
//! per-task spans, and per-resource utilization.
//!
//! This kernel is domain-agnostic: the Megatron reproduction maps GPU compute
//! streams and network links to resources, and kernels / message transfers to
//! tasks. Time is kept in integer nanoseconds so runs are exactly
//! reproducible across platforms.
//!
//! The [`serving`] module holds the continuous-batching scheduler shared
//! by the real inference engine (`megatron-serve`) and its discrete-event
//! mirror, plus the calibrated step-cost model the mirror runs on. The
//! [`elastic`] module is the training-side analog: the (p, t, d) cost
//! model the elastic supervisor ranks degraded topologies with, and the
//! capacity-schedule pricer that compares shrink-and-continue against
//! restart-at-full over schedules the real engine never runs.

pub mod elastic;
mod engine;
pub mod json;
pub mod serving;
mod trace;

pub use engine::{DagSim, ResourceId, ResourceStats, SimError, SimResult, TaskId, TaskSpan};
pub use trace::{
    chrome_trace_json, chrome_trace_json_with_args, chrome_trace_json_with_instants, events_json,
    render_gantt, TraceEvent, TraceInstant,
};

/// Simulated time in nanoseconds.
pub type Time = u64;

/// Convert seconds (f64) to simulated nanoseconds, saturating and rounding.
#[inline]
pub fn secs_to_time(s: f64) -> Time {
    debug_assert!(s >= 0.0, "negative duration {s}");
    let ns = s * 1e9;
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns.round() as u64
    }
}

/// Convert simulated nanoseconds back to seconds.
#[inline]
pub fn time_to_secs(t: Time) -> f64 {
    t as f64 * 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_roundtrip() {
        let s = 1.234567;
        let t = secs_to_time(s);
        assert!((time_to_secs(t) - s).abs() < 1e-9);
    }

    #[test]
    fn secs_to_time_saturates() {
        assert_eq!(secs_to_time(1e30), u64::MAX);
    }

    #[test]
    fn zero_is_zero() {
        assert_eq!(secs_to_time(0.0), 0);
        assert_eq!(time_to_secs(0), 0.0);
    }
}
