//! Trace export and ASCII visualization of simulation results.

use crate::engine::{SimResult, TaskSpan};
use crate::json::Json;
use crate::{time_to_secs, Time};

/// A point event to overlay on the trace timeline (e.g. an injected fault).
/// Rendered as a Chrome-trace instant event (`"ph": "i"`) with its own
/// category, so it is visually distinct from compute/comm spans.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceInstant {
    /// When the event fires.
    pub time: Time,
    /// Display name (e.g. `"gpu-death node3/gpu1"`).
    pub name: String,
    /// Trace category (e.g. `"fault"`); span events use `"sim"`.
    pub category: String,
}

/// Serialize spans in the Chrome `about:tracing` / Perfetto JSON array
/// format. `names` maps each task `kind` code to a display name; unknown
/// kinds render as `kind-N`.
pub fn chrome_trace_json(result: &SimResult, names: &dyn Fn(u32) -> String) -> String {
    chrome_trace_json_with_instants(result, names, &[])
}

/// Like [`chrome_trace_json`], additionally emitting `instants` as
/// process-scoped instant events interleaved with the spans.
pub fn chrome_trace_json_with_instants(
    result: &SimResult,
    names: &dyn Fn(u32) -> String,
    instants: &[TraceInstant],
) -> String {
    let mut events = Vec::with_capacity(result.spans.len() + instants.len());
    for s in &result.spans {
        events.push(Json::obj([
            ("name", Json::from(names(s.kind))),
            ("cat", Json::from("sim")),
            ("ph", Json::from("X")),
            // chrome trace wants microseconds
            ("ts", Json::from(s.start as f64 / 1e3)),
            ("dur", Json::from((s.end - s.start) as f64 / 1e3)),
            ("pid", Json::from(0usize)),
            ("tid", Json::from(s.resource.index())),
        ]));
    }
    for i in instants {
        events.push(Json::obj([
            ("name", Json::from(i.name.as_str())),
            ("cat", Json::from(i.category.as_str())),
            ("ph", Json::from("i")),
            ("ts", Json::from(i.time as f64 / 1e3)),
            ("s", Json::from("p")), // process-scoped instant
            ("pid", Json::from(0usize)),
            ("tid", Json::from(0usize)),
        ]));
    }
    Json::Arr(events).to_string()
}

/// Render an ASCII Gantt chart of the run: one row per resource, `width`
/// character columns spanning the makespan. `glyph` maps a span to the
/// character drawn for it (e.g. microbatch digit for pipeline schedules);
/// idle time renders as `.`.
pub fn render_gantt(result: &SimResult, width: usize, glyph: &dyn Fn(&TaskSpan) -> char) -> String {
    let n_res = result.resources.len();
    if result.makespan == 0 || n_res == 0 || width == 0 {
        return String::new();
    }
    let mut rows = vec![vec!['.'; width]; n_res];
    let scale = width as f64 / result.makespan as f64;
    for s in &result.spans {
        let c0 = ((s.start as f64 * scale) as usize).min(width - 1);
        let c1 = (((s.end as f64 * scale).ceil() as usize).max(c0 + 1)).min(width);
        let ch = glyph(s);
        let row = &mut rows[s.resource.index()];
        for cell in row.iter_mut().take(c1).skip(c0) {
            *cell = ch;
        }
    }
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        let name = &result.resources[i].name;
        out.push_str(&format!("{name:>12} |"));
        out.extend(row.iter());
        out.push('|');
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>12}  makespan = {:.3} ms\n",
        "",
        time_to_secs(result.makespan) * 1e3
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DagSim;

    fn two_task_result() -> SimResult {
        let mut sim = DagSim::new();
        let a = sim.add_resource("gpu0");
        let b = sim.add_resource("gpu1");
        let t = sim.add_task(a, 100, &[], 1);
        sim.add_task(b, 50, &[t], 2);
        sim.run().unwrap()
    }

    #[test]
    fn chrome_trace_is_valid_json_with_all_spans() {
        let r = two_task_result();
        let s = chrome_trace_json(&r, &|k| format!("k{k}"));
        let v = Json::parse(&s).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 2);
        assert_eq!(v[0]["name"].as_str(), Some("k1"));
        assert_eq!(v[0]["ph"].as_str(), Some("X"));
    }

    #[test]
    fn instants_emitted_with_distinct_category() {
        let r = two_task_result();
        let instants = vec![TraceInstant {
            time: 75,
            name: "gpu-death gpu1".to_string(),
            category: "fault".to_string(),
        }];
        let s = chrome_trace_json_with_instants(&r, &|k| format!("k{k}"), &instants);
        let v = Json::parse(&s).unwrap();
        let events = v.as_array().unwrap();
        assert_eq!(events.len(), 3);
        let inst = &events[2];
        assert_eq!(inst["ph"].as_str(), Some("i"));
        assert_eq!(inst["cat"].as_str(), Some("fault"));
        assert_eq!(inst["name"].as_str(), Some("gpu-death gpu1"));
        assert_eq!(inst["ts"].as_f64(), Some(0.075));
        // Span events keep the "sim" category.
        assert_eq!(events[0]["cat"].as_str(), Some("sim"));
    }

    #[test]
    fn gantt_has_one_row_per_resource() {
        let r = two_task_result();
        let g = render_gantt(&r, 30, &|s| char::from_digit(s.kind, 10).unwrap());
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3); // 2 resources + footer
        assert!(lines[0].contains('1'));
        assert!(lines[1].contains('2'));
        // gpu1 idle for first 2/3 of the chart.
        assert!(lines[1].contains('.'));
    }

    #[test]
    fn gantt_empty_result_is_empty() {
        let r = DagSim::new().run().unwrap();
        assert_eq!(render_gantt(&r, 30, &|_| 'x'), "");
    }
}
