//! Trace export and ASCII visualization of simulation results.
//!
//! The Chrome `about:tracing` / Perfetto JSON event format is shared by the
//! simulator and the real trainer (`megatron-telemetry`): both lower their
//! spans to [`TraceEvent`] and serialize with [`events_json`], so a real run
//! and its simulated twin can be loaded side by side in one viewer.

use crate::engine::{SimResult, TaskSpan};
use crate::json::Json;
use crate::{time_to_secs, Time};

/// A point event to overlay on the trace timeline (e.g. an injected fault).
/// Rendered as a Chrome-trace instant event (`"ph": "i"`) with its own
/// category, so it is visually distinct from compute/comm spans.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceInstant {
    /// When the event fires.
    pub time: Time,
    /// Display name (e.g. `"gpu-death node3/gpu1"`).
    pub name: String,
    /// Trace category (e.g. `"fault"`); span events use `"sim"`.
    pub category: String,
}

/// One Chrome-trace event: a complete span (`ph = "X"`), an instant
/// (`ph = "i"`), or process metadata (`ph = "M"`). The unified event type
/// both exporters (simulated and real) serialize through, including
/// per-event `args` (byte volumes, microbatch ids, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Display name.
    pub name: String,
    /// Category (`"sim"`, `"fwd"`, `"comm"`, `"fault"`, ...).
    pub cat: String,
    /// Chrome phase: `"X"` complete span, `"i"` instant, `"M"` metadata.
    pub ph: &'static str,
    /// Start timestamp in microseconds.
    pub ts_us: f64,
    /// Duration in microseconds (spans only).
    pub dur_us: Option<f64>,
    /// Process id row group.
    pub pid: usize,
    /// Thread id row within the process.
    pub tid: usize,
    /// Extra key/value payload rendered under the event in the viewer.
    pub args: Vec<(String, Json)>,
}

impl TraceEvent {
    /// A complete span (`ph = "X"`).
    pub fn span(name: impl Into<String>, cat: impl Into<String>, ts_us: f64, dur_us: f64) -> Self {
        TraceEvent {
            name: name.into(),
            cat: cat.into(),
            ph: "X",
            ts_us,
            dur_us: Some(dur_us),
            pid: 0,
            tid: 0,
            args: Vec::new(),
        }
    }

    /// A process-scoped instant event (`ph = "i"`).
    pub fn instant(name: impl Into<String>, cat: impl Into<String>, ts_us: f64) -> Self {
        TraceEvent {
            name: name.into(),
            cat: cat.into(),
            ph: "i",
            ts_us,
            dur_us: None,
            pid: 0,
            tid: 0,
            args: Vec::new(),
        }
    }

    /// A `process_name` metadata event labelling `pid` in the viewer.
    pub fn process_name(pid: usize, label: impl Into<String>) -> Self {
        TraceEvent {
            name: "process_name".to_string(),
            cat: "__metadata".to_string(),
            ph: "M",
            ts_us: 0.0,
            dur_us: None,
            pid,
            tid: 0,
            args: vec![("name".to_string(), Json::from(label.into()))],
        }
    }

    /// Set the pid/tid placement.
    #[must_use]
    pub fn at(mut self, pid: usize, tid: usize) -> Self {
        self.pid = pid;
        self.tid = tid;
        self
    }

    /// Append one args entry.
    #[must_use]
    pub fn arg(mut self, key: &str, value: Json) -> Self {
        self.args.push((key.to_string(), value));
        self
    }

    /// Lower to the Chrome-trace JSON object.
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("name", Json::from(self.name.as_str())),
            ("cat", Json::from(self.cat.as_str())),
            ("ph", Json::from(self.ph)),
            ("ts", Json::from(self.ts_us)),
            ("pid", Json::from(self.pid)),
            ("tid", Json::from(self.tid)),
        ];
        if let Some(d) = self.dur_us {
            obj.push(("dur", Json::from(d)));
        }
        if self.ph == "i" {
            obj.push(("s", Json::from("p"))); // process-scoped instant
        }
        if !self.args.is_empty() {
            obj.push((
                "args",
                Json::Obj(
                    self.args
                        .iter()
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect(),
                ),
            ));
        }
        let mut map = std::collections::BTreeMap::new();
        for (k, v) in obj {
            map.insert(k.to_string(), v);
        }
        Json::Obj(map)
    }
}

/// Serialize a batch of events as the Chrome JSON array format.
pub fn events_json(events: &[TraceEvent]) -> String {
    Json::Arr(events.iter().map(TraceEvent::to_json).collect()).to_string()
}

/// Serialize spans in the Chrome `about:tracing` / Perfetto JSON array
/// format. `names` maps each task `kind` code to a display name; unknown
/// kinds render as `kind-N`.
pub fn chrome_trace_json(result: &SimResult, names: &dyn Fn(u32) -> String) -> String {
    chrome_trace_json_with_instants(result, names, &[])
}

/// Like [`chrome_trace_json`], additionally emitting `instants` as
/// process-scoped instant events interleaved with the spans.
pub fn chrome_trace_json_with_instants(
    result: &SimResult,
    names: &dyn Fn(u32) -> String,
    instants: &[TraceInstant],
) -> String {
    chrome_trace_json_with_args(result, names, &|_| Vec::new(), instants)
}

/// Full-control sim export: `args` attaches per-event payload (byte
/// volumes, microbatch ids, ...) to each task span, keyed off the span
/// itself. Both the simulator (`megatron-core`) and the real-trainer
/// exporter (`megatron-telemetry`) feed the same [`TraceEvent`] format.
pub fn chrome_trace_json_with_args(
    result: &SimResult,
    names: &dyn Fn(u32) -> String,
    args: &dyn Fn(&TaskSpan) -> Vec<(String, Json)>,
    instants: &[TraceInstant],
) -> String {
    let mut events = Vec::with_capacity(result.spans.len() + instants.len());
    for s in &result.spans {
        let mut ev = TraceEvent::span(
            names(s.kind),
            "sim",
            s.start as f64 / 1e3, // chrome trace wants microseconds
            (s.end - s.start) as f64 / 1e3,
        )
        .at(0, s.resource.index());
        ev.args = args(s);
        events.push(ev);
    }
    for i in instants {
        events.push(
            TraceEvent::instant(i.name.as_str(), i.category.as_str(), i.time as f64 / 1e3).at(0, 0),
        );
    }
    events_json(&events)
}

/// Render an ASCII Gantt chart of the run: one row per resource, `width`
/// character columns spanning the makespan. `glyph` maps a span to the
/// character drawn for it (e.g. microbatch digit for pipeline schedules);
/// idle time renders as `.`.
pub fn render_gantt(result: &SimResult, width: usize, glyph: &dyn Fn(&TaskSpan) -> char) -> String {
    let n_res = result.resources.len();
    if result.makespan == 0 || n_res == 0 || width == 0 {
        return String::new();
    }
    let mut rows = vec![vec!['.'; width]; n_res];
    let scale = width as f64 / result.makespan as f64;
    for s in &result.spans {
        let c0 = ((s.start as f64 * scale) as usize).min(width - 1);
        let c1 = (((s.end as f64 * scale).ceil() as usize).max(c0 + 1)).min(width);
        let ch = glyph(s);
        let row = &mut rows[s.resource.index()];
        for cell in row.iter_mut().take(c1).skip(c0) {
            *cell = ch;
        }
    }
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        let name = &result.resources[i].name;
        out.push_str(&format!("{name:>12} |"));
        out.extend(row.iter());
        out.push('|');
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>12}  makespan = {:.3} ms\n",
        "",
        time_to_secs(result.makespan) * 1e3
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DagSim;

    fn two_task_result() -> SimResult {
        let mut sim = DagSim::new();
        let a = sim.add_resource("gpu0");
        let b = sim.add_resource("gpu1");
        let t = sim.add_task(a, 100, &[], 1);
        sim.add_task(b, 50, &[t], 2);
        sim.run().unwrap()
    }

    #[test]
    fn chrome_trace_is_valid_json_with_all_spans() {
        let r = two_task_result();
        let s = chrome_trace_json(&r, &|k| format!("k{k}"));
        let v = Json::parse(&s).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 2);
        assert_eq!(v[0]["name"].as_str(), Some("k1"));
        assert_eq!(v[0]["ph"].as_str(), Some("X"));
    }

    #[test]
    fn instants_emitted_with_distinct_category() {
        let r = two_task_result();
        let instants = vec![TraceInstant {
            time: 75,
            name: "gpu-death gpu1".to_string(),
            category: "fault".to_string(),
        }];
        let s = chrome_trace_json_with_instants(&r, &|k| format!("k{k}"), &instants);
        let v = Json::parse(&s).unwrap();
        let events = v.as_array().unwrap();
        assert_eq!(events.len(), 3);
        let inst = &events[2];
        assert_eq!(inst["ph"].as_str(), Some("i"));
        assert_eq!(inst["cat"].as_str(), Some("fault"));
        assert_eq!(inst["name"].as_str(), Some("gpu-death gpu1"));
        assert_eq!(inst["ts"].as_f64(), Some(0.075));
        // Span events keep the "sim" category.
        assert_eq!(events[0]["cat"].as_str(), Some("sim"));
    }

    #[test]
    fn span_args_reach_the_json() {
        let r = two_task_result();
        let s = chrome_trace_json_with_args(
            &r,
            &|k| format!("k{k}"),
            &|span| vec![("bytes".to_string(), Json::from(span.kind as usize * 100))],
            &[],
        );
        let v = Json::parse(&s).unwrap();
        assert_eq!(v[0]["args"]["bytes"].as_f64(), Some(100.0));
        assert_eq!(v[1]["args"]["bytes"].as_f64(), Some(200.0));
    }

    #[test]
    fn trace_event_builder_round_trips() {
        let ev = TraceEvent::span("fwd", "fwd", 1.5, 2.5)
            .at(3, 4)
            .arg("microbatch", Json::from(7usize));
        let v = Json::parse(&events_json(&[ev.clone()])).unwrap();
        assert_eq!(v[0]["name"].as_str(), Some("fwd"));
        assert_eq!(v[0]["ts"].as_f64(), Some(1.5));
        assert_eq!(v[0]["dur"].as_f64(), Some(2.5));
        assert_eq!(v[0]["pid"].as_f64(), Some(3.0));
        assert_eq!(v[0]["tid"].as_f64(), Some(4.0));
        assert_eq!(v[0]["args"]["microbatch"].as_f64(), Some(7.0));
        // Metadata events label processes.
        let m = TraceEvent::process_name(3, "rank 3");
        let v = Json::parse(&events_json(&[m])).unwrap();
        assert_eq!(v[0]["ph"].as_str(), Some("M"));
        assert_eq!(v[0]["args"]["name"].as_str(), Some("rank 3"));
    }

    #[test]
    fn gantt_has_one_row_per_resource() {
        let r = two_task_result();
        let g = render_gantt(&r, 30, &|s| char::from_digit(s.kind, 10).unwrap());
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3); // 2 resources + footer
        assert!(lines[0].contains('1'));
        assert!(lines[1].contains('2'));
        // gpu1 idle for first 2/3 of the chart.
        assert!(lines[1].contains('.'));
    }

    #[test]
    fn gantt_empty_result_is_empty() {
        let r = DagSim::new().run().unwrap();
        assert_eq!(render_gantt(&r, 30, &|_| 'x'), "");
    }
}
