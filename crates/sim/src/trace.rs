//! Trace export and ASCII visualization of simulation results.

use crate::engine::{SimResult, TaskSpan};
use crate::time_to_secs;

/// Serialize spans in the Chrome `about:tracing` / Perfetto JSON array
/// format. `names` maps each task `kind` code to a display name; unknown
/// kinds render as `kind-N`.
pub fn chrome_trace_json(result: &SimResult, names: &dyn Fn(u32) -> String) -> String {
    let mut events = Vec::with_capacity(result.spans.len());
    for s in &result.spans {
        events.push(serde_json::json!({
            "name": names(s.kind),
            "cat": "sim",
            "ph": "X",
            "ts": s.start as f64 / 1e3, // chrome trace wants microseconds
            "dur": (s.end - s.start) as f64 / 1e3,
            "pid": 0,
            "tid": s.resource.index(),
        }));
    }
    serde_json::to_string(&events).expect("trace serialization cannot fail")
}

/// Render an ASCII Gantt chart of the run: one row per resource, `width`
/// character columns spanning the makespan. `glyph` maps a span to the
/// character drawn for it (e.g. microbatch digit for pipeline schedules);
/// idle time renders as `.`.
pub fn render_gantt(
    result: &SimResult,
    width: usize,
    glyph: &dyn Fn(&TaskSpan) -> char,
) -> String {
    let n_res = result.resources.len();
    if result.makespan == 0 || n_res == 0 || width == 0 {
        return String::new();
    }
    let mut rows = vec![vec!['.'; width]; n_res];
    let scale = width as f64 / result.makespan as f64;
    for s in &result.spans {
        let c0 = ((s.start as f64 * scale) as usize).min(width - 1);
        let c1 = (((s.end as f64 * scale).ceil() as usize).max(c0 + 1)).min(width);
        let ch = glyph(s);
        let row = &mut rows[s.resource.index()];
        for cell in row.iter_mut().take(c1).skip(c0) {
            *cell = ch;
        }
    }
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        let name = &result.resources[i].name;
        out.push_str(&format!("{name:>12} |"));
        out.extend(row.iter());
        out.push('|');
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>12}  makespan = {:.3} ms\n",
        "",
        time_to_secs(result.makespan) * 1e3
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DagSim;

    fn two_task_result() -> SimResult {
        let mut sim = DagSim::new();
        let a = sim.add_resource("gpu0");
        let b = sim.add_resource("gpu1");
        let t = sim.add_task(a, 100, &[], 1);
        sim.add_task(b, 50, &[t], 2);
        sim.run().unwrap()
    }

    #[test]
    fn chrome_trace_is_valid_json_with_all_spans() {
        let r = two_task_result();
        let s = chrome_trace_json(&r, &|k| format!("k{k}"));
        let v: serde_json::Value = serde_json::from_str(&s).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 2);
        assert_eq!(v[0]["name"], "k1");
    }

    #[test]
    fn gantt_has_one_row_per_resource() {
        let r = two_task_result();
        let g = render_gantt(&r, 30, &|s| char::from_digit(s.kind, 10).unwrap());
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3); // 2 resources + footer
        assert!(lines[0].contains('1'));
        assert!(lines[1].contains('2'));
        // gpu1 idle for first 2/3 of the chart.
        assert!(lines[1].contains('.'));
    }

    #[test]
    fn gantt_empty_result_is_empty() {
        let r = DagSim::new().run().unwrap();
        assert_eq!(render_gantt(&r, 30, &|_| 'x'), "");
    }
}
