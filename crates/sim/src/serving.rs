//! Continuous-batching scheduler and its discrete-event serving mirror.
//!
//! This module is the single definition of the serving control plane:
//! [`ContinuousBatcher`] decides, between decode steps, which queued
//! requests join the running batch (admission caps on sequences and live
//! KV tokens), how prefill is chunked, and when finished sequences retire
//! and free their cache budget. The real tensor-parallel engine in
//! `megatron-serve` executes the batcher's [`StepPlan`]s with actual
//! GEMMs and all-reduces; [`simulate`] executes the *same* plans against
//! a calibrated linear step-cost model, so batching policies can be swept
//! at request counts the CPU engine can't run — mirroring how
//! `megatron-collective` programs run on both the real transport and the
//! network simulator.
//!
//! Determinism: admission is driven by a **virtual clock** in
//! machine-independent cost units ([`vcost`]), never by the wall clock.
//! Every tensor rank of the real engine runs an identical batcher on the
//! same seeded request list and therefore computes the same admission
//! order, batch composition, and collective schedule with no control
//! channel; the mirror replays the identical sequence of plans. Wall
//! time (real) or modelled seconds (sim) are layered on top purely as
//! measurements.

use std::collections::{BTreeMap, VecDeque};

/// One inference request: arrival instant (virtual cost units), prompt
/// length, and the number of tokens to generate.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Request id (unique; ties in arrival order break by id).
    pub id: usize,
    /// Arrival time on the virtual clock.
    pub arrival: f64,
    /// Prompt length in tokens.
    pub prompt: usize,
    /// Tokens to generate (≥ 1).
    pub max_new: usize,
}

impl Request {
    /// Peak KV-cache rows this request ever occupies: the whole prompt
    /// plus every generated token except the last (whose KV is never
    /// needed — no step follows it).
    pub fn kv_budget(&self) -> usize {
        self.prompt + self.max_new - 1
    }
}

/// Admission policy for the running batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Maximum sequences decoding concurrently.
    pub max_seqs: usize,
    /// Cap on the summed [`Request::kv_budget`] of admitted sequences
    /// (a KV-cache memory budget in token rows).
    pub max_live_tokens: usize,
    /// Prefill chunk size in tokens; `0` runs each prompt in one chunk.
    pub prefill_chunk: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_seqs: 8,
            max_live_tokens: 4096,
            prefill_chunk: 0,
        }
    }
}

/// Virtual cost-unit overhead charged per step (collective latency and
/// scheduler bookkeeping — fixed, machine-independent units).
pub const VSTEP_OVERHEAD: f64 = 4.0;
/// Virtual cost units per new-token row (dense GEMM work).
pub const VCOST_PER_ROW: f64 = 1.0;
/// Virtual cost units per attended cache token (attention work).
pub const VCOST_PER_ATTENDED: f64 = 1.0 / 64.0;

/// Virtual cost of a step with `rows` new-token rows attending over
/// `attended` total cache positions. Drives the admission clock on both
/// the real engine and the mirror; deliberately in arbitrary fixed units
/// so the admission order is identical on every machine.
pub fn vcost(rows: usize, attended: usize) -> f64 {
    VSTEP_OVERHEAD + VCOST_PER_ROW * rows as f64 + VCOST_PER_ATTENDED * attended as f64
}

/// One running sequence's share of a step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqStep {
    /// Request id.
    pub id: usize,
    /// Absolute position of the chunk's first token.
    pub start_pos: usize,
    /// New-token rows this step (prefill chunk size, or 1 when decoding).
    pub rows: usize,
    /// Whether the chunk's last row samples a token (final prefill chunk
    /// or any decode row).
    pub samples: bool,
    /// Whether the sampled token is the request's first (TTFT event).
    pub first_token: bool,
    /// Whether the sampled token completes the request (retire after).
    pub finishes: bool,
}

/// The batcher's decision for one engine step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepPlan {
    /// Step index (0-based).
    pub index: usize,
    /// Virtual clock at the start of the step.
    pub vstart: f64,
    /// Virtual cost charged for the step.
    pub vcost: f64,
    /// Requests whose arrival the clock passed at this step boundary
    /// (first time seen eligible; latency measurement starts here).
    pub newly_eligible: Vec<usize>,
    /// Requests admitted into the running batch this step.
    pub admitted: Vec<usize>,
    /// Per-sequence chunks, in admission order.
    pub seqs: Vec<SeqStep>,
    /// Total new-token rows.
    pub rows: usize,
    /// Total cache positions attended over all rows.
    pub attended: usize,
}

#[derive(Debug, Clone)]
struct Queued {
    req: Request,
    eligible: bool,
}

#[derive(Debug, Clone)]
struct Running {
    req: Request,
    prefilled: usize,
    generated: usize,
}

/// Deterministic continuous-batching scheduler (see module docs).
///
/// Protocol: call [`next_step`](Self::next_step), execute the plan
/// (forward + sample), then [`finish_step`](Self::finish_step) with the
/// same plan; repeat until `next_step` returns `None`.
#[derive(Debug, Clone)]
pub struct ContinuousBatcher {
    policy: BatchPolicy,
    queue: VecDeque<Queued>,
    running: Vec<Running>,
    live_tokens: usize,
    vclock: f64,
    steps: usize,
    peak_running: usize,
    admission_order: Vec<usize>,
}

impl ContinuousBatcher {
    /// Build a batcher over `requests` (sorted internally by
    /// `(arrival, id)`). Panics if any single request can never satisfy
    /// the policy caps — it would otherwise block the FIFO queue forever.
    pub fn new(policy: BatchPolicy, mut requests: Vec<Request>) -> Self {
        assert!(policy.max_seqs >= 1, "max_seqs must be >= 1");
        for r in &requests {
            assert!(r.max_new >= 1, "request {} generates no tokens", r.id);
            assert!(
                r.kv_budget() <= policy.max_live_tokens,
                "request {} needs {} KV rows > max_live_tokens {}",
                r.id,
                r.kv_budget(),
                policy.max_live_tokens
            );
        }
        requests.sort_by(|a, b| {
            a.arrival
                .partial_cmp(&b.arrival)
                .expect("arrival times are finite")
                .then(a.id.cmp(&b.id))
        });
        ContinuousBatcher {
            policy,
            queue: requests
                .into_iter()
                .map(|req| Queued {
                    req,
                    eligible: false,
                })
                .collect(),
            running: Vec::new(),
            live_tokens: 0,
            vclock: 0.0,
            steps: 0,
            peak_running: 0,
            admission_order: Vec::new(),
        }
    }

    /// Current virtual clock.
    pub fn vclock(&self) -> f64 {
        self.vclock
    }

    /// Steps planned so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Most sequences ever running concurrently.
    pub fn peak_running(&self) -> usize {
        self.peak_running
    }

    /// Request ids in the order they were admitted.
    pub fn admission_order(&self) -> &[usize] {
        &self.admission_order
    }

    /// Plan the next step: jump the clock over idle gaps, admit from the
    /// FIFO queue under the policy caps (head-of-line: the first queued
    /// request that doesn't fit blocks those behind it), and lay out one
    /// chunk per running sequence. Returns `None` when all requests have
    /// completed.
    pub fn next_step(&mut self) -> Option<StepPlan> {
        if self.running.is_empty() {
            let front = self.queue.front()?;
            if front.req.arrival > self.vclock {
                self.vclock = front.req.arrival;
            }
        }
        let mut newly_eligible = Vec::new();
        for q in self.queue.iter_mut() {
            if q.req.arrival > self.vclock {
                break;
            }
            if !q.eligible {
                q.eligible = true;
                newly_eligible.push(q.req.id);
            }
        }
        let mut admitted = Vec::new();
        while let Some(front) = self.queue.front() {
            let fits = front.req.arrival <= self.vclock
                && self.running.len() < self.policy.max_seqs
                && self.live_tokens + front.req.kv_budget() <= self.policy.max_live_tokens;
            if !fits {
                break;
            }
            let q = self.queue.pop_front().expect("front exists");
            self.live_tokens += q.req.kv_budget();
            admitted.push(q.req.id);
            self.admission_order.push(q.req.id);
            self.running.push(Running {
                req: q.req,
                prefilled: 0,
                generated: 0,
            });
        }
        self.peak_running = self.peak_running.max(self.running.len());

        let mut seqs = Vec::with_capacity(self.running.len());
        let (mut rows, mut attended) = (0usize, 0usize);
        for r in &self.running {
            let (start_pos, n, samples) = if r.prefilled < r.req.prompt {
                let remaining = r.req.prompt - r.prefilled;
                let n = if self.policy.prefill_chunk == 0 {
                    remaining
                } else {
                    remaining.min(self.policy.prefill_chunk)
                };
                (r.prefilled, n, r.prefilled + n == r.req.prompt)
            } else {
                // Feed the last generated token at its absolute position.
                (r.req.prompt + r.generated - 1, 1, true)
            };
            rows += n;
            // Row i of the chunk attends to cache positions 0..=start_pos+i.
            attended += (0..n).map(|i| start_pos + i + 1).sum::<usize>();
            seqs.push(SeqStep {
                id: r.req.id,
                start_pos,
                rows: n,
                samples,
                first_token: samples && r.generated == 0,
                finishes: samples && r.generated + 1 == r.req.max_new,
            });
        }
        debug_assert!(!seqs.is_empty(), "planned a step with no work");
        let plan = StepPlan {
            index: self.steps,
            vstart: self.vclock,
            vcost: vcost(rows, attended),
            newly_eligible,
            admitted,
            seqs,
            rows,
            attended,
        };
        self.steps += 1;
        Some(plan)
    }

    /// Apply a completed step: account prefill/generation progress,
    /// advance the virtual clock, and retire finished sequences (freeing
    /// their KV budget immediately).
    pub fn finish_step(&mut self, plan: &StepPlan) {
        assert_eq!(plan.seqs.len(), self.running.len(), "plan/batch mismatch");
        for (s, r) in plan.seqs.iter().zip(self.running.iter_mut()) {
            assert_eq!(s.id, r.req.id, "plan/batch order mismatch");
            if r.prefilled < r.req.prompt {
                r.prefilled += s.rows;
            }
            if s.samples {
                r.generated += 1;
            }
        }
        self.vclock += plan.vcost;
        let live = &mut self.live_tokens;
        self.running.retain(|r| {
            let done = r.generated == r.req.max_new;
            if done {
                *live -= r.req.kv_budget();
            }
            !done
        });
    }

    /// Live KV budget currently reserved (token rows).
    pub fn live_tokens(&self) -> usize {
        self.live_tokens
    }
}

/// Per-request timing measured by an executor (seconds: wall-clock for
/// the real engine, modelled for the mirror).
#[derive(Debug, Clone, PartialEq)]
pub struct ReqTiming {
    /// Request id.
    pub id: usize,
    /// Prompt length.
    pub prompt: usize,
    /// Tokens generated.
    pub generated: usize,
    /// When the scheduler first saw the request eligible.
    pub eligible_s: f64,
    /// When its first token was sampled (TTFT = this − eligible).
    pub first_token_s: f64,
    /// When its last token was sampled.
    pub done_s: f64,
}

/// Aggregate result of one serving run, shared by the real engine and
/// the mirror so cross-checks compare like with like.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingSummary {
    /// End-to-end run time in seconds.
    pub total_s: f64,
    /// Engine steps executed.
    pub steps: usize,
    /// Tokens generated across all requests.
    pub generated_tokens: usize,
    /// Prompt tokens prefilled.
    pub prefill_tokens: usize,
    /// Most sequences ever running concurrently.
    pub peak_running: usize,
    /// Request ids in admission order.
    pub admission_order: Vec<usize>,
    /// Per-request timings, ordered by id.
    pub requests: Vec<ReqTiming>,
}

impl ServingSummary {
    /// Generated-token throughput.
    pub fn tokens_per_sec(&self) -> f64 {
        self.generated_tokens as f64 / self.total_s.max(1e-12)
    }

    /// Sorted time-to-first-token samples.
    pub fn ttfts(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .requests
            .iter()
            .map(|r| r.first_token_s - r.eligible_s)
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        v
    }

    /// Sorted end-to-end request latency samples (queue wait included).
    pub fn latencies(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .requests
            .iter()
            .map(|r| r.done_s - r.eligible_s)
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        v
    }
}

/// Exact quantile of pre-sorted samples with linear interpolation between
/// order statistics. `q` in `[0, 1]`; empty input yields `0.0`.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Collects per-request timings as an executor steps through plans; both
/// the real engine and [`simulate`] use this, so "eligible", "first
/// token", and "done" mean exactly the same instant on both sides.
#[derive(Debug)]
pub struct TimingCollector {
    requests: BTreeMap<usize, ReqTiming>,
    prefill_tokens: usize,
    generated_tokens: usize,
}

impl TimingCollector {
    /// Collector over the request set.
    pub fn new(requests: &[Request]) -> Self {
        TimingCollector {
            requests: requests
                .iter()
                .map(|r| {
                    (
                        r.id,
                        ReqTiming {
                            id: r.id,
                            prompt: r.prompt,
                            generated: 0,
                            eligible_s: 0.0,
                            first_token_s: 0.0,
                            done_s: 0.0,
                        },
                    )
                })
                .collect(),
            prefill_tokens: 0,
            generated_tokens: 0,
        }
    }

    /// Record the step's start instant (stamps newly eligible requests).
    pub fn step_start(&mut self, plan: &StepPlan, now_s: f64) {
        for id in &plan.newly_eligible {
            self.requests.get_mut(id).expect("known request").eligible_s = now_s;
        }
    }

    /// Record the step's end instant (stamps first-token and completion
    /// events, accounts token counts).
    pub fn step_end(&mut self, plan: &StepPlan, now_s: f64) {
        for s in &plan.seqs {
            let r = self.requests.get_mut(&s.id).expect("known request");
            if s.start_pos < r.prompt {
                self.prefill_tokens += s.rows;
            }
            if s.samples {
                self.generated_tokens += 1;
                r.generated += 1;
            }
            if s.first_token {
                r.first_token_s = now_s;
            }
            if s.finishes {
                r.done_s = now_s;
            }
        }
    }

    /// Finalize into a [`ServingSummary`].
    pub fn finish(self, total_s: f64, batcher: &ContinuousBatcher) -> ServingSummary {
        ServingSummary {
            total_s,
            steps: batcher.steps(),
            generated_tokens: self.generated_tokens,
            prefill_tokens: self.prefill_tokens,
            peak_running: batcher.peak_running(),
            admission_order: batcher.admission_order().to_vec(),
            requests: self.requests.into_values().collect(),
        }
    }
}

/// Linear step-cost model in seconds, fitted to measured engine steps:
/// `secs ≈ c0 + c_row·rows + c_att·attended`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed per-step cost (collectives, scheduling).
    pub c0: f64,
    /// Cost per new-token row.
    pub c_row: f64,
    /// Cost per attended cache token.
    pub c_att: f64,
}

impl CostModel {
    /// Least-squares fit over `(rows, attended, seconds)` samples via the
    /// 3×3 normal equations. Degenerate sample sets (fewer than three
    /// points, or collinear features) fall back to a mean-per-row model.
    pub fn fit(samples: &[(usize, usize, f64)]) -> CostModel {
        let fallback = || {
            let rows: f64 = samples.iter().map(|s| s.0 as f64).sum::<f64>().max(1.0);
            let secs: f64 = samples.iter().map(|s| s.2).sum();
            CostModel {
                c0: 0.0,
                c_row: secs / rows,
                c_att: 0.0,
            }
        };
        if samples.len() < 3 {
            return fallback();
        }
        // Normal equations A·x = b for features (1, rows, attended).
        let mut a = [[0.0f64; 3]; 3];
        let mut b = [0.0f64; 3];
        for &(rows, att, secs) in samples {
            let f = [1.0, rows as f64, att as f64];
            for i in 0..3 {
                for j in 0..3 {
                    a[i][j] += f[i] * f[j];
                }
                b[i] += f[i] * secs;
            }
        }
        match solve3(a, b) {
            Some([c0, c_row, c_att]) => CostModel { c0, c_row, c_att },
            None => fallback(),
        }
    }

    /// Predicted step duration in seconds (clamped non-negative).
    pub fn predict(&self, rows: usize, attended: usize) -> f64 {
        (self.c0 + self.c_row * rows as f64 + self.c_att * attended as f64).max(0.0)
    }
}

/// Gaussian elimination with partial pivoting for a 3×3 system.
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> Option<[f64; 3]> {
    for col in 0..3 {
        let pivot = (col..3)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite pivots")
            })
            .expect("non-empty range");
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let pivot_row = a[col];
        for row in (col + 1)..3 {
            let f = a[row][col] / pivot_row[col];
            for (ark, &pk) in a[row].iter_mut().zip(&pivot_row).skip(col) {
                *ark -= f * pk;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0f64; 3];
    for row in (0..3).rev() {
        let mut s = b[row];
        for k in (row + 1)..3 {
            s -= a[row][k] * x[k];
        }
        x[row] = s / a[row][row];
    }
    Some(x)
}

/// The discrete-event mirror: replay the batcher's exact plan sequence,
/// advancing a modelled wall clock by [`CostModel::predict`] per step.
/// Because the admission clock is the shared virtual clock, the mirror's
/// batch composition is identical to the real engine's on the same
/// policy and request list; only the seconds are modelled.
pub fn simulate(policy: BatchPolicy, requests: &[Request], cost: &CostModel) -> ServingSummary {
    let mut batcher = ContinuousBatcher::new(policy, requests.to_vec());
    let mut collector = TimingCollector::new(requests);
    let mut wall_s = 0.0f64;
    while let Some(plan) = batcher.next_step() {
        collector.step_start(&plan, wall_s);
        wall_s += cost.predict(plan.rows, plan.attended);
        collector.step_end(&plan, wall_s);
        batcher.finish_step(&plan);
    }
    collector.finish(wall_s, &batcher)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: usize, arrival: f64, prompt: usize, max_new: usize) -> Request {
        Request {
            id,
            arrival,
            prompt,
            max_new,
        }
    }

    fn drain(policy: BatchPolicy, requests: Vec<Request>) -> (Vec<StepPlan>, ContinuousBatcher) {
        let mut b = ContinuousBatcher::new(policy, requests);
        let mut plans = Vec::new();
        while let Some(p) = b.next_step() {
            b.finish_step(&p);
            plans.push(p);
        }
        (plans, b)
    }

    #[test]
    fn single_request_step_layout() {
        let policy = BatchPolicy::default();
        let (plans, b) = drain(policy, vec![req(0, 0.0, 4, 3)]);
        // Prefill (4 rows, samples token 1), then 2 decode steps.
        assert_eq!(plans.len(), 3);
        assert_eq!(plans[0].seqs[0].rows, 4);
        assert!(plans[0].seqs[0].samples && plans[0].seqs[0].first_token);
        assert_eq!(plans[1].seqs[0].start_pos, 4);
        assert_eq!(plans[1].seqs[0].rows, 1);
        assert_eq!(plans[2].seqs[0].start_pos, 5);
        assert!(plans[2].seqs[0].finishes);
        assert_eq!(b.live_tokens(), 0);
        // Attention coverage: prefill attends 1+2+3+4, decodes 5 then 6.
        assert_eq!(plans[0].attended, 10);
        assert_eq!(plans[1].attended, 5);
        assert_eq!(plans[2].attended, 6);
    }

    #[test]
    fn chunked_prefill_layout() {
        let policy = BatchPolicy {
            prefill_chunk: 3,
            ..BatchPolicy::default()
        };
        let (plans, _) = drain(policy, vec![req(0, 0.0, 7, 1)]);
        // Chunks 3+3+1; only the last samples (and finishes: max_new=1).
        assert_eq!(plans.len(), 3);
        assert_eq!(
            plans.iter().map(|p| p.seqs[0].rows).collect::<Vec<_>>(),
            vec![3, 3, 1]
        );
        assert!(!plans[0].seqs[0].samples && !plans[1].seqs[0].samples);
        assert!(plans[2].seqs[0].samples && plans[2].seqs[0].finishes);
        assert_eq!(plans[2].seqs[0].start_pos, 6);
    }

    #[test]
    fn admission_respects_caps_and_fifo() {
        let policy = BatchPolicy {
            max_seqs: 2,
            max_live_tokens: 100,
            prefill_chunk: 0,
        };
        let reqs = vec![
            req(0, 0.0, 4, 2),
            req(1, 0.0, 4, 2),
            req(2, 0.0, 4, 2), // blocked by max_seqs until one retires
        ];
        let (plans, b) = drain(policy, reqs);
        assert_eq!(plans[0].admitted, vec![0, 1]);
        // Request 2 joins only after a slot frees.
        let join = plans.iter().find(|p| p.admitted == vec![2]).unwrap();
        assert!(join.index > 0);
        assert_eq!(b.admission_order(), &[0, 1, 2]);
        // While 0 and 1 run with 2 queued, the batch never exceeds 2 seqs.
        assert!(plans.iter().all(|p| p.seqs.len() <= 2));
    }

    #[test]
    fn token_budget_blocks_head_of_line() {
        let policy = BatchPolicy {
            max_seqs: 8,
            max_live_tokens: 12,
            prefill_chunk: 0,
        };
        // Budget 4+3-1=6 each: two fit, the third waits even though seq
        // slots remain.
        let reqs = vec![req(0, 0.0, 4, 3), req(1, 0.0, 4, 3), req(2, 0.0, 4, 3)];
        let (plans, _) = drain(policy, reqs);
        assert_eq!(plans[0].admitted, vec![0, 1]);
        assert!(plans.iter().any(|p| p.admitted == vec![2]));
    }

    #[test]
    fn idle_gap_jumps_clock() {
        let policy = BatchPolicy::default();
        let (plans, _) = drain(policy, vec![req(0, 0.0, 2, 1), req(1, 500.0, 2, 1)]);
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[1].vstart, 500.0);
    }

    #[test]
    fn determinism_same_seed_same_plans() {
        let reqs: Vec<Request> = (0..20)
            .map(|i| req(i, (i as f64) * 3.5, 3 + i % 5, 1 + i % 4))
            .collect();
        let policy = BatchPolicy {
            max_seqs: 4,
            max_live_tokens: 40,
            prefill_chunk: 2,
        };
        let (a, ba) = drain(policy, reqs.clone());
        let (b, bb) = drain(policy, reqs);
        assert_eq!(a, b);
        assert_eq!(ba.admission_order(), bb.admission_order());
    }

    #[test]
    #[should_panic(expected = "KV rows")]
    fn oversized_request_rejected_up_front() {
        let policy = BatchPolicy {
            max_live_tokens: 4,
            ..BatchPolicy::default()
        };
        ContinuousBatcher::new(policy, vec![req(0, 0.0, 8, 2)]);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert!((percentile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn cost_model_recovers_exact_linear_costs() {
        let truth = CostModel {
            c0: 2e-4,
            c_row: 3e-5,
            c_att: 7e-7,
        };
        let samples: Vec<(usize, usize, f64)> = (1..20)
            .map(|i| {
                let rows = i;
                let att = i * i + 3;
                (rows, att, truth.predict(rows, att))
            })
            .collect();
        let fit = CostModel::fit(&samples);
        assert!((fit.c0 - truth.c0).abs() < 1e-9);
        assert!((fit.c_row - truth.c_row).abs() < 1e-9);
        assert!((fit.c_att - truth.c_att).abs() < 1e-9);
    }

    #[test]
    fn simulate_accounts_every_token() {
        let reqs: Vec<Request> = (0..10)
            .map(|i| req(i, (i as f64) * 10.0, 4 + i % 3, 2 + i % 3))
            .collect();
        let cost = CostModel {
            c0: 1e-4,
            c_row: 1e-5,
            c_att: 1e-7,
        };
        let summary = simulate(BatchPolicy::default(), &reqs, &cost);
        let want_gen: usize = reqs.iter().map(|r| r.max_new).sum();
        let want_prefill: usize = reqs.iter().map(|r| r.prompt).sum();
        assert_eq!(summary.generated_tokens, want_gen);
        assert_eq!(summary.prefill_tokens, want_prefill);
        assert_eq!(summary.requests.len(), reqs.len());
        for r in &summary.requests {
            assert!(r.eligible_s <= r.first_token_s);
            assert!(r.first_token_s <= r.done_s);
        }
        assert!(summary.total_s > 0.0 && summary.tokens_per_sec() > 0.0);
    }
}
