//! The event-driven DAG executor.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

use crate::Time;

/// Handle to a resource registered with a [`DagSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub(crate) u32);

impl ResourceId {
    /// Raw index of the resource (dense, in registration order).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Handle to a task registered with a [`DagSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub(crate) u32);

impl TaskId {
    /// Raw index of the task (dense, in registration order).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

struct Task {
    resource: ResourceId,
    duration: Time,
    /// Number of predecessors not yet completed.
    pending_deps: u32,
    /// User-defined classification code (e.g. compute vs all-reduce vs p2p).
    kind: u32,
}

/// A window during which a resource runs slower than nominal.
#[derive(Debug, Clone, Copy)]
struct Slowdown {
    from: Time,
    to: Time,
    /// Work-time multiplier (≥ 1): nominal work `w` takes `w·factor` inside
    /// the window.
    factor: f64,
}

struct Resource {
    name: String,
    /// Tasks ready to run, FIFO in readiness order (deterministic: events are
    /// processed in (time, sequence) order, so readiness order is total).
    ready: VecDeque<TaskId>,
    /// Currently executing task and its dispatch time.
    busy: Option<(TaskId, Time)>,
    busy_total: Time,
    tasks_run: u64,
    /// Fault-injection slowdown windows, sorted by start, non-overlapping.
    slowdowns: Vec<Slowdown>,
}

impl Resource {
    /// Completion time of `work` nominal time units dispatched at `now`,
    /// integrating over the slowdown profile. Deterministic: pure integer
    /// walk with the same f64 rounding on every run.
    fn finish_time(&self, now: Time, work: Time) -> Time {
        let mut t = now;
        let mut remaining = work;
        for w in &self.slowdowns {
            if w.to <= t {
                continue;
            }
            // Full-speed stretch before this window.
            if t < w.from {
                let span = w.from - t;
                if remaining <= span {
                    return t + remaining;
                }
                remaining -= span;
                t = w.from;
            }
            // Slowed stretch inside the window.
            let span = w.to - t;
            let needed = (remaining as f64 * w.factor).ceil() as Time;
            if needed <= span {
                return t + needed;
            }
            let done = (span as f64 / w.factor).floor() as Time;
            remaining -= done.min(remaining);
            t = w.to;
            if remaining == 0 {
                return t;
            }
        }
        t + remaining
    }
}

/// Start/end record for one executed task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskSpan {
    /// The executed task.
    pub task: TaskId,
    /// Resource the task ran on.
    pub resource: ResourceId,
    /// Simulated start time.
    pub start: Time,
    /// Simulated end time (`start + duration`).
    pub end: Time,
    /// User classification code given at [`DagSim::add_task`] time.
    pub kind: u32,
}

/// Per-resource utilization statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceStats {
    /// Name given at registration.
    pub name: String,
    /// Total simulated time the resource spent executing tasks.
    pub busy: Time,
    /// Number of tasks executed.
    pub tasks_run: u64,
}

/// Outcome of a completed simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Completion time of the last task (0 for an empty DAG).
    pub makespan: Time,
    /// One span per task, in completion order.
    pub spans: Vec<TaskSpan>,
    /// Utilization per resource, indexed by [`ResourceId::index`].
    pub resources: Vec<ResourceStats>,
}

impl SimResult {
    /// Completion time of a specific task.
    ///
    /// Linear scan; prefer [`SimResult::finish_times`] for bulk queries.
    pub fn finish_of(&self, task: TaskId) -> Option<Time> {
        self.spans.iter().find(|s| s.task == task).map(|s| s.end)
    }

    /// Finish time of every task, indexed by [`TaskId::index`].
    pub fn finish_times(&self) -> Vec<Time> {
        let mut out = vec![0; self.spans.len()];
        for s in &self.spans {
            out[s.task.index()] = s.end;
        }
        out
    }

    /// Sum of busy time over a set of resources divided by (makespan × count):
    /// the mean utilization of that resource set.
    pub fn utilization(&self, resources: &[ResourceId]) -> f64 {
        if self.makespan == 0 || resources.is_empty() {
            return 0.0;
        }
        let busy: u128 = resources
            .iter()
            .map(|r| self.resources[r.index()].busy as u128)
            .sum();
        busy as f64 / (self.makespan as f64 * resources.len() as f64)
    }

    /// Total busy time attributed to each task `kind` code over the whole run.
    pub fn busy_by_kind(&self) -> std::collections::BTreeMap<u32, Time> {
        let mut map = std::collections::BTreeMap::new();
        for s in &self.spans {
            *map.entry(s.kind).or_insert(0) += s.end - s.start;
        }
        map
    }
}

/// Errors detected when executing a DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The DAG contains a dependency cycle (or a dependency on a task that
    /// never completes); `completed` tasks finished before the deadlock.
    Deadlock {
        /// Number of tasks that completed before progress stopped.
        completed: usize,
        /// Total number of tasks in the DAG.
        total: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { completed, total } => write!(
                f,
                "simulation deadlocked: {completed}/{total} tasks completed (dependency cycle)"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// A discrete-event simulator executing a task DAG over exclusive resources.
///
/// Build the DAG with [`DagSim::add_resource`] / [`DagSim::add_task`], then
/// call [`DagSim::run`]. Deterministic: identical inputs produce identical
/// spans.
///
/// ```
/// use megatron_sim::DagSim;
/// let mut sim = DagSim::new();
/// let cpu = sim.add_resource("cpu");
/// let a = sim.add_task(cpu, 10, &[], 0);
/// let b = sim.add_task(cpu, 5, &[a], 0);
/// let result = sim.run().unwrap();
/// assert_eq!(result.makespan, 15);
/// assert_eq!(result.finish_of(b), Some(15));
/// ```
#[derive(Default)]
pub struct DagSim {
    tasks: Vec<Task>,
    /// Successor adjacency: succs[t] = tasks depending on t.
    succs: Vec<Vec<TaskId>>,
    resources: Vec<Resource>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// A task's dependencies are all satisfied; enqueue on its resource.
    Ready(TaskId),
    /// The task currently running on this resource finished.
    Finished(ResourceId, TaskId),
}

impl DagSim {
    /// Create an empty simulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new exclusive resource.
    pub fn add_resource(&mut self, name: impl Into<String>) -> ResourceId {
        let id = ResourceId(u32::try_from(self.resources.len()).expect("too many resources"));
        self.resources.push(Resource {
            name: name.into(),
            ready: VecDeque::new(),
            busy: None,
            busy_total: 0,
            tasks_run: 0,
            slowdowns: Vec::new(),
        });
        id
    }

    /// Register a slowdown window on `resource`: any work executing inside
    /// `[from, to)` proceeds at `1/factor` of nominal speed. This is the
    /// fault-injection hook — stragglers and degraded links are windows with
    /// moderate factors, a flapping link is a window with a very large one.
    /// Windows on one resource must not overlap; `factor` must be ≥ 1 and
    /// finite.
    pub fn add_slowdown(&mut self, resource: ResourceId, from: Time, to: Time, factor: f64) {
        assert!(from < to, "empty slowdown window");
        assert!(
            factor >= 1.0 && factor.is_finite(),
            "slowdown factor must be finite and ≥ 1, got {factor}"
        );
        let res = &mut self.resources[resource.index()];
        let pos = res.slowdowns.partition_point(|w| w.from < from);
        let no_overlap = (pos == 0 || res.slowdowns[pos - 1].to <= from)
            && (pos == res.slowdowns.len() || to <= res.slowdowns[pos].from);
        assert!(no_overlap, "overlapping slowdown windows on one resource");
        res.slowdowns.insert(pos, Slowdown { from, to, factor });
    }

    /// Register a task occupying `resource` for `duration`, runnable once all
    /// of `deps` have completed. `kind` is an arbitrary user classification
    /// code carried into the resulting [`TaskSpan`]s.
    pub fn add_task(
        &mut self,
        resource: ResourceId,
        duration: Time,
        deps: &[TaskId],
        kind: u32,
    ) -> TaskId {
        assert!(
            resource.index() < self.resources.len(),
            "unknown resource {resource:?}"
        );
        let id = TaskId(u32::try_from(self.tasks.len()).expect("too many tasks"));
        for &d in deps {
            assert!(
                d.index() < self.tasks.len(),
                "dependency on future task {d:?}"
            );
            self.succs[d.index()].push(id);
        }
        self.tasks.push(Task {
            resource,
            duration,
            pending_deps: u32::try_from(deps.len()).expect("too many deps"),
            kind,
        });
        self.succs.push(Vec::new());
        id
    }

    /// Number of tasks added so far.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of resources added so far.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Execute the DAG to completion.
    pub fn run(mut self) -> Result<SimResult, SimError> {
        // (time, sequence) keyed min-heap; sequence makes ordering total and
        // deterministic.
        let mut heap: BinaryHeap<Reverse<(Time, u64, Event)>> = BinaryHeap::new();
        let mut seq: u64 = 0;
        let push = |heap: &mut BinaryHeap<Reverse<(Time, u64, Event)>>,
                    seq: &mut u64,
                    t: Time,
                    e: Event| {
            heap.push(Reverse((t, *seq, e)));
            *seq += 1;
        };

        for (i, task) in self.tasks.iter().enumerate() {
            if task.pending_deps == 0 {
                push(&mut heap, &mut seq, 0, Event::Ready(TaskId(i as u32)));
            }
        }

        let total = self.tasks.len();
        let mut spans = Vec::with_capacity(total);
        let mut completed = 0usize;
        let mut makespan: Time = 0;

        while let Some(Reverse((now, _, event))) = heap.pop() {
            match event {
                Event::Ready(tid) => {
                    let rid = self.tasks[tid.index()].resource;
                    let res = &mut self.resources[rid.index()];
                    res.ready.push_back(tid);
                    if res.busy.is_none() {
                        Self::dispatch(&mut self.resources, &self.tasks, rid, now, &mut |t, e| {
                            push(&mut heap, &mut seq, t, e)
                        });
                    }
                }
                Event::Finished(rid, tid) => {
                    let task = &self.tasks[tid.index()];
                    let (_, start) = self.resources[rid.index()]
                        .busy
                        .expect("finished task was dispatched");
                    spans.push(TaskSpan {
                        task: tid,
                        resource: rid,
                        start,
                        end: now,
                        kind: task.kind,
                    });
                    self.resources[rid.index()].busy_total += now - start;
                    completed += 1;
                    makespan = makespan.max(now);
                    // Release successors.
                    for si in 0..self.succs[tid.index()].len() {
                        let succ = self.succs[tid.index()][si];
                        let dep = &mut self.tasks[succ.index()].pending_deps;
                        *dep -= 1;
                        if *dep == 0 {
                            push(&mut heap, &mut seq, now, Event::Ready(succ));
                        }
                    }
                    // Free the resource and dispatch the next ready task.
                    self.resources[rid.index()].busy = None;
                    Self::dispatch(&mut self.resources, &self.tasks, rid, now, &mut |t, e| {
                        push(&mut heap, &mut seq, t, e)
                    });
                }
            }
        }

        if completed != total {
            return Err(SimError::Deadlock { completed, total });
        }

        let resources = self
            .resources
            .into_iter()
            .map(|r| ResourceStats {
                name: r.name,
                busy: r.busy_total,
                tasks_run: r.tasks_run,
            })
            .collect();

        Ok(SimResult {
            makespan,
            spans,
            resources,
        })
    }

    fn dispatch(
        resources: &mut [Resource],
        tasks: &[Task],
        rid: ResourceId,
        now: Time,
        push: &mut impl FnMut(Time, Event),
    ) {
        let res = &mut resources[rid.index()];
        debug_assert!(res.busy.is_none());
        if let Some(tid) = res.ready.pop_front() {
            let end = res.finish_time(now, tasks[tid.index()].duration);
            res.busy = Some((tid, now));
            res.tasks_run += 1;
            push(end, Event::Finished(rid, tid));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_dag() {
        let sim = DagSim::new();
        let r = sim.run().unwrap();
        assert_eq!(r.makespan, 0);
        assert!(r.spans.is_empty());
    }

    #[test]
    fn serial_chain_on_one_resource() {
        let mut sim = DagSim::new();
        let r = sim.add_resource("r");
        let mut prev: Option<TaskId> = None;
        for _ in 0..10 {
            let deps: Vec<TaskId> = prev.into_iter().collect();
            prev = Some(sim.add_task(r, 7, &deps, 0));
        }
        let res = sim.run().unwrap();
        assert_eq!(res.makespan, 70);
        assert_eq!(res.resources[0].busy, 70);
        assert_eq!(res.resources[0].tasks_run, 10);
    }

    #[test]
    fn independent_tasks_on_one_resource_serialize() {
        let mut sim = DagSim::new();
        let r = sim.add_resource("r");
        for _ in 0..5 {
            sim.add_task(r, 3, &[], 0);
        }
        let res = sim.run().unwrap();
        assert_eq!(res.makespan, 15);
    }

    #[test]
    fn independent_tasks_on_distinct_resources_parallelize() {
        let mut sim = DagSim::new();
        for i in 0..5 {
            let r = sim.add_resource(format!("r{i}"));
            sim.add_task(r, 3, &[], 0);
        }
        let res = sim.run().unwrap();
        assert_eq!(res.makespan, 3);
    }

    #[test]
    fn diamond_dependency() {
        let mut sim = DagSim::new();
        let r0 = sim.add_resource("a");
        let r1 = sim.add_resource("b");
        let src = sim.add_task(r0, 2, &[], 0);
        let left = sim.add_task(r0, 5, &[src], 0);
        let right = sim.add_task(r1, 3, &[src], 0);
        let sink = sim.add_task(r1, 1, &[left, right], 0);
        let res = sim.run().unwrap();
        // src ends at 2; left ends at 7; right ends at 5; sink runs 7..8.
        assert_eq!(res.finish_of(sink), Some(8));
        assert_eq!(res.makespan, 8);
    }

    #[test]
    fn fifo_order_is_readiness_order() {
        let mut sim = DagSim::new();
        let fast = sim.add_resource("fast");
        let slow = sim.add_resource("slow");
        // Two feeder tasks finishing at t=1 and t=2 feed tasks on `slow`.
        let f1 = sim.add_task(fast, 1, &[], 0);
        let f2 = sim.add_task(fast, 1, &[f1], 0);
        let late = sim.add_task(slow, 10, &[f2], 1); // ready at 2
        let early = sim.add_task(slow, 10, &[f1], 2); // ready at 1
        let res = sim.run().unwrap();
        // `early` became ready first so it runs first.
        assert_eq!(res.finish_of(early), Some(11));
        assert_eq!(res.finish_of(late), Some(21));
    }

    #[test]
    fn deterministic_tie_break_by_insertion() {
        // Both ready at t=0 on the same resource: insertion order wins.
        let mut sim = DagSim::new();
        let r = sim.add_resource("r");
        let a = sim.add_task(r, 4, &[], 0);
        let b = sim.add_task(r, 4, &[], 0);
        let res = sim.run().unwrap();
        assert_eq!(res.finish_of(a), Some(4));
        assert_eq!(res.finish_of(b), Some(8));
    }

    #[test]
    fn deadlock_detected() {
        // A task depending on itself is impossible to express through the
        // API (deps must precede), so model deadlock by a never-satisfied
        // dependency: a cycle needs two phases. Build a -> b and then
        // fabricate the cycle by hand is not possible; instead check that a
        // dependent of an unrunnable chain reports Deadlock via a resource
        // holding a task that depends on its own successor is unbuildable.
        // The reachable failure mode: task depends on a task that never
        // completes because *it* deadlocks. With the builder API all DAGs are
        // acyclic, so run() cannot deadlock; assert that instead.
        let mut sim = DagSim::new();
        let r = sim.add_resource("r");
        let a = sim.add_task(r, 1, &[], 0);
        let _b = sim.add_task(r, 1, &[a], 0);
        assert!(sim.run().is_ok());
    }

    #[test]
    fn busy_by_kind_accumulates() {
        let mut sim = DagSim::new();
        let r = sim.add_resource("r");
        sim.add_task(r, 5, &[], 7);
        sim.add_task(r, 3, &[], 7);
        sim.add_task(r, 2, &[], 9);
        let res = sim.run().unwrap();
        let by = res.busy_by_kind();
        assert_eq!(by[&7], 8);
        assert_eq!(by[&9], 2);
    }

    #[test]
    fn utilization_of_half_busy_resource() {
        let mut sim = DagSim::new();
        let a = sim.add_resource("a");
        let b = sim.add_resource("b");
        let t = sim.add_task(a, 10, &[], 0);
        sim.add_task(b, 5, &[t], 0);
        let res = sim.run().unwrap();
        assert_eq!(res.makespan, 15);
        let u = res.utilization(&[a, b]);
        assert!((u - (10.0 + 5.0) / 30.0).abs() < 1e-12);
    }

    #[test]
    fn slowdown_window_stretches_overlapping_task() {
        // Task of 10 dispatched at 0; window [4, 100) at 2×: 4 units at full
        // speed, remaining 6 units cost 12 → finishes at 16.
        let mut sim = DagSim::new();
        let r = sim.add_resource("r");
        sim.add_slowdown(r, 4, 100, 2.0);
        let t = sim.add_task(r, 10, &[], 0);
        let res = sim.run().unwrap();
        assert_eq!(res.finish_of(t), Some(16));
        assert_eq!(res.resources[0].busy, 16);
    }

    #[test]
    fn slowdown_before_dispatch_is_free() {
        // Window [0, 5) at 10×, but the task only becomes ready at 5 via a
        // dependency on another resource: unaffected.
        let mut sim = DagSim::new();
        let a = sim.add_resource("a");
        let b = sim.add_resource("b");
        sim.add_slowdown(b, 0, 5, 10.0);
        let feeder = sim.add_task(a, 5, &[], 0);
        let t = sim.add_task(b, 7, &[feeder], 0);
        let res = sim.run().unwrap();
        assert_eq!(res.finish_of(t), Some(12));
    }

    #[test]
    fn task_spanning_entire_window_pays_full_factor() {
        // Task of 4 dispatched at 0 inside window [0, 100) at 3× → ends 12.
        let mut sim = DagSim::new();
        let r = sim.add_resource("r");
        sim.add_slowdown(r, 0, 100, 3.0);
        let t = sim.add_task(r, 4, &[], 0);
        let res = sim.run().unwrap();
        assert_eq!(res.finish_of(t), Some(12));
    }

    #[test]
    fn task_outliving_window_resumes_full_speed() {
        // Window [0, 6) at 3×: does 2 units of work by t=6, remaining 8 at
        // full speed → ends at 14.
        let mut sim = DagSim::new();
        let r = sim.add_resource("r");
        sim.add_slowdown(r, 0, 6, 3.0);
        let t = sim.add_task(r, 10, &[], 0);
        let res = sim.run().unwrap();
        assert_eq!(res.finish_of(t), Some(14));
    }

    #[test]
    fn multiple_windows_compose() {
        let mut sim = DagSim::new();
        let r = sim.add_resource("r");
        sim.add_slowdown(r, 2, 4, 2.0);
        sim.add_slowdown(r, 10, 12, 2.0);
        // 10 units: [0,2) 2 done, [2,4) 1 done, [4,10) 6 done, 1 left →
        // [10,12) costs 2 → ends 12.
        let t = sim.add_task(r, 10, &[], 0);
        let res = sim.run().unwrap();
        assert_eq!(res.finish_of(t), Some(12));
    }

    #[test]
    #[should_panic(expected = "overlapping slowdown")]
    fn overlapping_windows_rejected() {
        let mut sim = DagSim::new();
        let r = sim.add_resource("r");
        sim.add_slowdown(r, 0, 10, 2.0);
        sim.add_slowdown(r, 5, 15, 2.0);
    }

    #[test]
    fn finish_times_indexes_by_task() {
        let mut sim = DagSim::new();
        let r = sim.add_resource("r");
        let a = sim.add_task(r, 2, &[], 0);
        let b = sim.add_task(r, 3, &[a], 0);
        let res = sim.run().unwrap();
        let f = res.finish_times();
        assert_eq!(f[a.index()], 2);
        assert_eq!(f[b.index()], 5);
    }
}
