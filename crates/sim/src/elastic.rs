//! Elastic-topology cost model and capacity-schedule pricing.
//!
//! When a cluster loses GPUs mid-job, an elastic control plane must answer
//! two questions the discrete-event kernel alone does not: *which* degraded
//! (p, t, d) should the survivors run, and *is* shrink-and-continue worth
//! it against the classic restart-at-full-topology policy? This module
//! answers both with a deliberately small analytic model:
//!
//! - [`CostModel::iteration_s`] prices one training iteration of a
//!   (p, t, d) configuration — pipeline fill/drain over `m` microbatches,
//!   tensor-parallel all-reduces per layer, and the data-parallel gradient
//!   all-reduce — in arbitrary but consistent units, which is all a
//!   *ranking* needs. `megatron_dist`'s supervisor uses it to pick the
//!   best configuration that fits surviving capacity.
//! - [`price_schedule`] walks a seeded capacity timeline and prices both
//!   policies over schedules the real engine never runs: arbitrary outage
//!   lengths, repeated losses, partial recoveries. The real elastic run
//!   (E35) validates the model at one point of that space; the sweep shows
//!   the rest.
//!
//! The model intentionally shares no code with the paper-scale
//! `megatron-parallel` heuristics: those price real GPT configurations on
//! a modeled cluster; this prices the *relative* merit of divisor
//! topologies for one fixed job, which is what mid-job reconfiguration
//! decisions need.

/// Analytic per-iteration cost of a (p, t, d) configuration for one fixed
/// training job. Units are arbitrary (set `unit_compute_s = 1.0` for pure
/// ranking); only ratios between configurations matter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Transformer layers in the model.
    pub layers: usize,
    /// Global batch size `B` (samples per iteration).
    pub global_batch: usize,
    /// Microbatch size `b`.
    pub microbatch: usize,
    /// Attention heads (constrains valid tensor-parallel sizes).
    pub heads: usize,
    /// Model chunks per device `v` (interleaving; 1 = none).
    pub chunks: usize,
    /// Seconds of forward+backward compute per layer per sample on one
    /// unsharded rank.
    pub unit_compute_s: f64,
    /// Seconds per communication hop unit: one layer's worth of activation
    /// or gradient traffic between two ranks.
    pub hop_s: f64,
}

impl CostModel {
    /// A ranking-only model for a job: unit compute cost, communication at
    /// 10% of compute per hop (enough to make pure-communication
    /// configurations lose ties, not enough to dominate).
    pub fn for_job(layers: usize, heads: usize, global_batch: usize, microbatch: usize) -> Self {
        CostModel {
            layers,
            global_batch,
            microbatch,
            heads,
            chunks: 1,
            unit_compute_s: 1.0,
            hop_s: 0.1,
        }
    }

    /// Is (p, t, d) a valid configuration for this job? Mirrors the
    /// trainer's §3.1 divisibility asserts: `t | heads`,
    /// `(p·v) | layers`, `(d·b) | B`, and enough microbatches to fill the
    /// pipeline (`m ≥ p`, with `p | m` when interleaving).
    pub fn is_valid(&self, p: usize, t: usize, d: usize) -> bool {
        if p == 0 || t == 0 || d == 0 {
            return false;
        }
        if !self.heads.is_multiple_of(t) || !self.layers.is_multiple_of(p * self.chunks) {
            return false;
        }
        if !self.global_batch.is_multiple_of(d * self.microbatch) {
            return false;
        }
        let m = self.global_batch / (d * self.microbatch);
        m >= p && (self.chunks == 1 || m.is_multiple_of(p))
    }

    /// Estimated wall-clock seconds for one iteration at (p, t, d):
    /// `(m + p − 1)` pipeline slots of per-stage work (compute sharded
    /// `t` ways plus the per-layer tensor-parallel all-reduces), then the
    /// data-parallel gradient all-reduce over each rank's `1/(p·t)` shard.
    pub fn iteration_s(&self, p: usize, t: usize, d: usize) -> f64 {
        debug_assert!(self.is_valid(p, t, d), "({p},{t},{d}) invalid for job");
        let m = (self.global_batch / (d * self.microbatch)) as f64;
        let layers_per_stage = self.layers as f64 / p as f64;
        let compute = layers_per_stage * self.microbatch as f64 * self.unit_compute_s / t as f64;
        // Four all-reduces per layer (two fwd, two bwd), ring volume factor
        // 2(t−1)/t, only when the tensor group is real.
        let tp_comm = if t > 1 {
            layers_per_stage * 4.0 * self.hop_s * 2.0 * (t as f64 - 1.0) / t as f64
        } else {
            0.0
        };
        let pipeline = (m + p as f64 - 1.0) * (compute + tp_comm);
        let dp_comm = if d > 1 {
            self.layers as f64 / (p as f64 * t as f64) * self.hop_s * 2.0 * (d as f64 - 1.0)
                / d as f64
        } else {
            0.0
        };
        pipeline + dp_comm
    }

    /// All valid (p, t, d) with `p·t·d ≤ max_world`, in deterministic
    /// (p, t, d) order.
    pub fn enumerate(&self, max_world: usize) -> Vec<(usize, usize, usize)> {
        let mut out = Vec::new();
        for p in 1..=max_world {
            for t in 1..=max_world / p {
                for d in 1..=max_world / (p * t) {
                    if self.is_valid(p, t, d) {
                        out.push((p, t, d));
                    }
                }
            }
        }
        out
    }

    /// The cheapest valid configuration fitting `max_world` ranks, or
    /// `None` when no valid configuration fits. Ties break toward the
    /// lexically smallest (p, t, d), so the choice is deterministic.
    pub fn best_config(&self, max_world: usize) -> Option<(usize, usize, usize)> {
        self.enumerate(max_world).into_iter().min_by(|&a, &b| {
            let (ca, cb) = (
                self.iteration_s(a.0, a.1, a.2),
                self.iteration_s(b.0, b.1, b.2),
            );
            ca.partial_cmp(&cb).unwrap().then(a.cmp(&b))
        })
    }

    /// Throughput of (p, t, d) relative to the full configuration
    /// (iterations per second ratio, ≤ 1 for a degraded topology).
    pub fn relative_throughput(
        &self,
        full: (usize, usize, usize),
        degraded: (usize, usize, usize),
    ) -> f64 {
        self.iteration_s(full.0, full.1, full.2)
            / self.iteration_s(degraded.0, degraded.1, degraded.2)
    }
}

/// One step of a capacity timeline: from `at_s` on, `gpus` ranks are live.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityWindow {
    /// Start of the window, seconds into the schedule.
    pub at_s: f64,
    /// Live GPUs from this instant until the next window (or the horizon).
    pub gpus: usize,
}

/// What [`price_schedule`] computed for the two recovery policies over one
/// capacity timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyComparison {
    /// Schedule horizon priced, seconds.
    pub horizon_s: f64,
    /// Full-topology-equivalent useful seconds the elastic policy
    /// completes (degraded windows contribute at their relative
    /// throughput; reconfigurations cost dead time).
    pub elastic_useful_s: f64,
    /// Same for restart-at-full: windows that cannot hold the full
    /// topology contribute nothing, and the return to full capacity costs
    /// one restore.
    pub restart_useful_s: f64,
    /// Topology changes the elastic policy paid for.
    pub reconfigurations: usize,
}

impl PolicyComparison {
    /// Elastic goodput over the horizon (useful fraction of wall-clock).
    pub fn elastic_goodput(&self) -> f64 {
        (self.elastic_useful_s / self.horizon_s).clamp(0.0, 1.0)
    }

    /// Restart-at-full goodput over the horizon.
    pub fn restart_goodput(&self) -> f64 {
        (self.restart_useful_s / self.horizon_s).clamp(0.0, 1.0)
    }
}

/// Price one capacity timeline under both recovery policies. `windows`
/// must be sorted by `at_s` and start at the job launch; `full` is the
/// job's launch topology; `reconfigure_s` is the cost of one topology
/// change (a cross-topology checkpoint restore); `restore_s` is the
/// restart policy's restore after capacity returns.
///
/// The elastic policy runs the best valid configuration fitting each
/// window's capacity (idling only when none fits); restart-at-full makes
/// progress only in windows that hold the full world. Both charge their
/// restores as dead time. This prices schedules the real engine never
/// runs — arbitrary outage lengths and partial recoveries — with the real
/// engine (E35) validating one point of the space.
pub fn price_schedule(
    model: &CostModel,
    full: (usize, usize, usize),
    windows: &[CapacityWindow],
    horizon_s: f64,
    reconfigure_s: f64,
    restore_s: f64,
) -> PolicyComparison {
    assert!(horizon_s > 0.0, "horizon must be positive");
    assert!(!windows.is_empty(), "need at least one capacity window");
    let full_world = full.0 * full.1 * full.2;
    let mut elastic_useful = 0.0f64;
    let mut restart_useful = 0.0f64;
    let mut reconfigs = 0usize;
    let mut elastic_cfg = Some(full);
    let mut restart_live = true;

    for (i, w) in windows.iter().enumerate() {
        let end = windows.get(i + 1).map_or(horizon_s, |n| n.at_s);
        let mut span = (end.min(horizon_s) - w.at_s).max(0.0);
        if span == 0.0 {
            continue;
        }
        // Elastic: run the launch topology whenever it fits (the grow
        // target is always the operator's chosen configuration), the
        // cost-ranked best degraded one otherwise; reconfigure when the
        // target differs from what is currently running.
        let target = if w.gpus >= full_world {
            Some(full)
        } else {
            model.best_config(w.gpus)
        };
        if target != elastic_cfg {
            if target.is_some() {
                reconfigs += 1;
                let pay = reconfigure_s.min(span);
                span -= pay;
            }
            elastic_cfg = target;
        }
        if let Some(cfg) = elastic_cfg {
            elastic_useful += span * model.relative_throughput(full, cfg);
        }
        // Restart-at-full: progress only with the full world live; pay one
        // restore on each return to capacity.
        let mut rspan = (end.min(horizon_s) - w.at_s).max(0.0);
        let full_fits = w.gpus >= full_world;
        if full_fits && !restart_live {
            rspan = (rspan - restore_s).max(0.0);
        }
        if full_fits {
            restart_useful += rspan;
        }
        restart_live = full_fits;
    }

    PolicyComparison {
        horizon_s,
        elastic_useful_s: elastic_useful,
        restart_useful_s: restart_useful,
        reconfigurations: reconfigs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> CostModel {
        // The E35 job: 2 layers, 4 heads, B=64, b=1.
        CostModel::for_job(2, 4, 64, 1)
    }

    #[test]
    fn enumeration_respects_divisibility() {
        let m = job();
        for (p, t, d) in m.enumerate(8) {
            assert!(m.heads.is_multiple_of(t));
            assert!(m.layers.is_multiple_of(p));
            assert!(m.global_batch.is_multiple_of(d));
            assert!(p * t * d <= 8);
            assert!(m.global_batch / d >= p, "pipeline must fill");
        }
        // t = 3 never divides 4 heads, p = 3 never divides 2 layers.
        assert!(!m.enumerate(12).iter().any(|&(p, t, _)| t == 3 || p == 3));
    }

    #[test]
    fn best_config_uses_all_capacity_and_is_deterministic() {
        let m = job();
        let best = m.best_config(8).expect("world 8 fits");
        assert_eq!(best.0 * best.1 * best.2, 8, "full capacity is fastest");
        assert_eq!(m.best_config(8), m.best_config(8));
        // 7 ranks cannot be tiled by valid divisors beyond world 4.
        let degraded = m.best_config(7).expect("degraded config exists");
        assert_eq!(degraded.0 * degraded.1 * degraded.2, 4);
        // No capacity at all → no configuration.
        assert_eq!(m.best_config(0), None);
    }

    #[test]
    fn bigger_worlds_are_faster() {
        let m = job();
        let t8 = m.iteration_s(2, 2, 2);
        let t4 = m
            .best_config(4)
            .map(|c| m.iteration_s(c.0, c.1, c.2))
            .unwrap();
        let t2 = m
            .best_config(2)
            .map(|c| m.iteration_s(c.0, c.1, c.2))
            .unwrap();
        assert!(t8 < t4 && t4 < t2, "{t8} {t4} {t2}");
        let rho = m.relative_throughput((2, 2, 2), m.best_config(4).unwrap());
        assert!(rho > 0.0 && rho < 1.0, "degraded throughput {rho}");
    }

    #[test]
    fn pricing_no_outage_means_equal_policies() {
        let m = job();
        let windows = [CapacityWindow { at_s: 0.0, gpus: 8 }];
        let c = price_schedule(&m, (2, 2, 2), &windows, 100.0, 1.0, 1.0);
        assert_eq!(c.reconfigurations, 0);
        assert!((c.elastic_goodput() - 1.0).abs() < 1e-12);
        assert!((c.restart_goodput() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pricing_long_outage_favors_elastic() {
        let m = job();
        // Lose a GPU for 60 of 100 seconds.
        let windows = [
            CapacityWindow { at_s: 0.0, gpus: 8 },
            CapacityWindow {
                at_s: 20.0,
                gpus: 7,
            },
            CapacityWindow {
                at_s: 80.0,
                gpus: 8,
            },
        ];
        let c = price_schedule(&m, (2, 2, 2), &windows, 100.0, 1.0, 1.0);
        assert_eq!(c.reconfigurations, 2, "shrink then grow");
        assert!(
            c.elastic_goodput() > c.restart_goodput(),
            "elastic {} vs restart {}",
            c.elastic_goodput(),
            c.restart_goodput()
        );
        // The restart policy idles through the whole outage.
        assert!(c.restart_goodput() < 0.45);
    }

    #[test]
    fn pricing_total_loss_stalls_both_policies() {
        let m = job();
        let windows = [
            CapacityWindow { at_s: 0.0, gpus: 8 },
            CapacityWindow {
                at_s: 50.0,
                gpus: 0,
            },
        ];
        let c = price_schedule(&m, (2, 2, 2), &windows, 100.0, 1.0, 1.0);
        assert!((c.elastic_goodput() - 0.5).abs() < 1e-9);
        assert!((c.restart_goodput() - 0.5).abs() < 1e-9);
    }
}
