//! Point-to-point transfers and collective algorithms over simulated links.
//!
//! The collective *algorithms* live in `megatron-collective` as
//! transport-agnostic step programs; this module only lowers those programs
//! onto simulated NVLink/InfiniBand links. Each program send step becomes a
//! discrete-event task on the sender's egress port, so per-rank volumes and
//! timings emerge from the identical schedule the real runtime executes.

use std::cell::Cell;

use megatron_cluster::{ClusterSpec, LinkClass};
use megatron_collective::{self as coll, Program, ReduceOp};
use megatron_sim::{secs_to_time, DagSim, ResourceId, TaskId};

/// Steady-state transient impairment of one GPU's egress links — the
/// simulator's mirror of the real transport's fault injection
/// (`megatron_collective::TransientFaults`). A lossy wire forces
/// retransmits: at drop probability `p` the expected transmissions per
/// frame are `1/(1−p)`; a degraded link (`FaultKind::LinkDegrade`)
/// multiplies wire time by `degrade_factor`. Both compose into a single
/// work-time inflation on the victim's sends, so simulated goodput under
/// transient faults can be cross-checked against `GoodputModel`: absorbed
/// faults stretch communication time but never add a restart term.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkImpairment {
    /// Probability a frame is dropped and must be retransmitted (< 1).
    pub loss_prob: f64,
    /// Wire-time multiplier while degraded (≥ 1).
    pub degrade_factor: f64,
}

impl LinkImpairment {
    /// A healthy link.
    pub fn none() -> Self {
        LinkImpairment {
            loss_prob: 0.0,
            degrade_factor: 1.0,
        }
    }

    /// Expected wire-time multiplier: `degrade_factor / (1 − loss_prob)`.
    pub fn inflation(&self) -> f64 {
        assert!(
            (0.0..1.0).contains(&self.loss_prob),
            "loss probability must be in [0, 1)"
        );
        assert!(self.degrade_factor >= 1.0, "degrade factor must be ≥ 1");
        self.degrade_factor / (1.0 - self.loss_prob)
    }
}

impl Default for LinkImpairment {
    fn default() -> Self {
        Self::none()
    }
}

/// Per-GPU network ports registered as simulation resources.
///
/// One NVLink egress port and one InfiniBand HCA share per GPU. A transfer
/// occupies the *sender's* port for its full duration; receivers in our
/// traffic patterns (pipelines, rings) receive from one peer at a time, so
/// sender-side serialization captures the contention that matters.
pub struct Network {
    cluster: ClusterSpec,
    nv_egress: Vec<ResourceId>,
    ib_egress: Vec<ResourceId>,
    // Exact egress bytes per GPU across every send lowered through this
    // network — the simulator-side half of the real-vs-sim byte identity.
    egress_bytes: Vec<Cell<u64>>,
    // Per-GPU transient link impairment (loss → retransmit expectation,
    // degrade → wire-time multiplier). Inflates send *time* only: logical
    // egress bytes stay exact, mirroring the real transport where
    // retransmits are below the byte-accounting layer.
    impairments: Vec<Cell<LinkImpairment>>,
}

impl Network {
    /// Register one NVLink and one IB egress resource per GPU of `cluster`.
    pub fn new(sim: &mut DagSim, cluster: ClusterSpec) -> Self {
        let n = cluster.total_gpus();
        let mut nv_egress = Vec::with_capacity(n);
        let mut ib_egress = Vec::with_capacity(n);
        for g in 0..n {
            nv_egress.push(sim.add_resource(format!("gpu{g}.nvlink")));
            ib_egress.push(sim.add_resource(format!("gpu{g}.ib")));
        }
        Network {
            cluster,
            nv_egress,
            ib_egress,
            egress_bytes: (0..n).map(|_| Cell::new(0)).collect(),
            impairments: (0..n).map(|_| Cell::new(LinkImpairment::none())).collect(),
        }
    }

    /// Impair every egress send of `gpu` (steady-state loss/degrade, the
    /// chaos harness's sim mirror). Subsequent sends from `gpu` take
    /// [`LinkImpairment::inflation`] times longer; pass
    /// [`LinkImpairment::none`] to heal.
    pub fn impair(&self, gpu: usize, imp: LinkImpairment) {
        imp.inflation(); // validate eagerly
        self.impairments[gpu].set(imp);
    }

    /// The current impairment of `gpu`'s egress links.
    pub fn impairment(&self, gpu: usize) -> LinkImpairment {
        self.impairments[gpu].get()
    }

    /// The cluster this network was built for.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The NVLink egress resource of one GPU (fault-injection target).
    pub fn nv_port(&self, gpu: usize) -> ResourceId {
        self.nv_egress[gpu]
    }

    /// The InfiniBand egress resource of one GPU (fault-injection target).
    pub fn ib_port(&self, gpu: usize) -> ResourceId {
        self.ib_egress[gpu]
    }

    /// Total bytes GPU `gpu` has sent through this network so far (every
    /// point-to-point transfer plus every collective step it sourced).
    pub fn sent_bytes(&self, gpu: usize) -> u64 {
        self.egress_bytes[gpu].get()
    }

    /// Egress resource a `from → to` transfer occupies.
    fn egress_for(&self, from: usize, to: usize) -> Option<ResourceId> {
        match self.cluster.link_class(from, to) {
            LinkClass::Local => None,
            LinkClass::NvLink => Some(self.nv_egress[from]),
            LinkClass::InfiniBand => Some(self.ib_egress[from]),
        }
    }

    /// Append a point-to-point transfer of `bytes` from GPU `from` to GPU
    /// `to`, gated on `deps`. Returns the completion task (data available at
    /// the receiver). A local transfer (`from == to`) is a zero-duration
    /// task on the sender's NVLink port (kept so callers always get a task
    /// to depend on).
    pub fn send(
        &self,
        sim: &mut DagSim,
        from: usize,
        to: usize,
        bytes: u64,
        deps: &[TaskId],
        kind: u32,
    ) -> TaskId {
        let class = self.cluster.link_class(from, to);
        let secs =
            self.cluster.p2p_time(class, bytes as f64) * self.impairments[from].get().inflation();
        let resource = self.egress_for(from, to).unwrap_or(self.nv_egress[from]);
        self.egress_bytes[from].set(self.egress_bytes[from].get() + bytes);
        sim.add_task(resource, secs_to_time(secs), deps, kind)
    }

    /// Lower a `megatron-collective` step [`Program`] onto the simulated
    /// links. `gpus[j]` is the GPU playing program rank `j` (the program is
    /// expressed in bytes: one program element = one wire byte).
    ///
    /// Dependency structure per send: a rank's send in round `s` waits on
    /// its own previous send (egress port order) and on the send that
    /// delivered its most recent receive (it cannot forward data that has
    /// not arrived). First sends gate on the caller's per-rank `deps` for
    /// both the sender and its round-0 source. Returns one completion task
    /// per rank: the arrival of its final incoming chunk.
    pub fn lower_program(
        &self,
        sim: &mut DagSim,
        prog: &Program,
        gpus: &[usize],
        deps: &[TaskId],
        kind: u32,
    ) -> Vec<TaskId> {
        let r = prog.ranks;
        assert_eq!(gpus.len(), r, "one GPU per program rank");
        assert!(deps.is_empty() || deps.len() == r, "deps must be per-rank");
        let mut last_send: Vec<Option<TaskId>> = vec![None; r];
        let mut last_arrival: Vec<Option<TaskId>> = vec![None; r];
        for round in &prog.rounds {
            let mut new_sends: Vec<Option<TaskId>> = vec![None; r];
            for (j, step) in round.steps.iter().enumerate() {
                let Some(snd) = step.send else { continue };
                let mut step_deps: Vec<TaskId> = Vec::with_capacity(3);
                if let Some(t) = last_arrival[j] {
                    step_deps.push(t);
                }
                if let Some(t) = last_send[j] {
                    step_deps.push(t);
                }
                if last_send[j].is_none() && last_arrival[j].is_none() && !deps.is_empty() {
                    step_deps.push(deps[j]);
                    if let Some(rcv) = step.recv {
                        step_deps.push(deps[rcv.from]);
                    }
                }
                new_sends[j] = Some(self.send(
                    sim,
                    gpus[j],
                    gpus[snd.to],
                    snd.range.len() as u64,
                    &step_deps,
                    kind,
                ));
            }
            for (j, t) in new_sends.iter().enumerate() {
                if t.is_some() {
                    last_send[j] = *t;
                }
            }
            for (j, step) in round.steps.iter().enumerate() {
                if let Some(rcv) = step.recv {
                    if let Some(t) = new_sends[rcv.from] {
                        last_arrival[j] = Some(t);
                    }
                }
            }
        }
        (0..r)
            .map(|j| {
                last_arrival[j].or(last_send[j]).unwrap_or_else(|| {
                    // Degenerate (single-rank / zero-round) program: a
                    // zero-length task so callers can depend on it.
                    let d: Vec<TaskId> = if deps.is_empty() {
                        vec![]
                    } else {
                        vec![deps[j]]
                    };
                    sim.add_task(self.nv_egress[gpus[j]], 0, &d, kind)
                })
            })
            .collect()
    }

    /// Ring all-reduce of `bytes` across `ranks` (reduce-scatter phase then
    /// all-gather phase, `2(r−1)` steps of `bytes/r` chunks).
    ///
    /// `deps[i]` (if provided, one entry per rank) gates rank *i*'s
    /// participation. Returns one completion task per rank.
    pub fn ring_all_reduce(
        &self,
        sim: &mut DagSim,
        ranks: &[usize],
        bytes: u64,
        deps: &[TaskId],
        kind: u32,
    ) -> Vec<TaskId> {
        let prog = coll::ring_all_reduce(ranks.len(), bytes as usize, ReduceOp::Sum);
        self.lower_program(sim, &prog, ranks, deps, kind)
    }

    /// Ring all-gather: each rank contributes `bytes_per_rank`; after
    /// `r−1` forwarding steps every rank holds all `r·bytes_per_rank`.
    /// Returns one completion task per rank.
    pub fn ring_all_gather(
        &self,
        sim: &mut DagSim,
        ranks: &[usize],
        bytes_per_rank: u64,
        deps: &[TaskId],
        kind: u32,
    ) -> Vec<TaskId> {
        let prog = coll::ring_all_gather(ranks.len(), bytes_per_rank as usize);
        self.lower_program(sim, &prog, ranks, deps, kind)
    }

    /// Ring reduce-scatter of `bytes` across `ranks`: `r−1` steps of
    /// `bytes/r` chunks; each rank ends with one fully reduced shard.
    pub fn ring_reduce_scatter(
        &self,
        sim: &mut DagSim,
        ranks: &[usize],
        bytes: u64,
        deps: &[TaskId],
        kind: u32,
    ) -> Vec<TaskId> {
        let prog = coll::ring_reduce_scatter(ranks.len(), bytes as usize, ReduceOp::Sum);
        self.lower_program(sim, &prog, ranks, deps, kind)
    }

    /// Pipelined ring broadcast of `bytes` from `ranks[root]` to the whole
    /// group. Returns one completion task per rank.
    pub fn ring_broadcast(
        &self,
        sim: &mut DagSim,
        ranks: &[usize],
        bytes: u64,
        root: usize,
        deps: &[TaskId],
        kind: u32,
    ) -> Vec<TaskId> {
        let prog = coll::ring_broadcast(ranks.len(), bytes as usize, root);
        self.lower_program(sim, &prog, ranks, deps, kind)
    }

    /// Hierarchical (multi-rail) all-reduce of `bytes` across `ranks`,
    /// which must comprise whole nodes with equal local counts:
    /// intra-node reduce-scatter over NVLink, one inter-node ring
    /// all-reduce per local rank (each riding its own InfiniBand HCA in
    /// parallel), then intra-node all-gather. This is how data-parallel
    /// gradient reductions exploit all 8 HCAs of a DGX A100 (§5.9's
    /// 12.9 TB/s effective bandwidth).
    ///
    /// Returns one completion task per rank.
    pub fn hierarchical_all_reduce(
        &self,
        sim: &mut DagSim,
        ranks: &[usize],
        bytes: u64,
        deps: &[TaskId],
        kind: u32,
    ) -> Vec<TaskId> {
        // Group by node, preserving order; the shared program's rank space
        // is [node 0's ranks..., node 1's ranks, ...] which is exactly the
        // order `ranks` arrives in when nodes are contiguous.
        let mut nodes: Vec<(usize, Vec<usize>)> = Vec::new();
        for (i, &r) in ranks.iter().enumerate() {
            let n = self.cluster.node_of(r);
            match nodes.last_mut() {
                Some((node, members)) if *node == n => members.push(i),
                _ => nodes.push((n, vec![i])),
            }
        }
        let local = nodes[0].1.len();
        assert!(
            nodes.iter().all(|(_, m)| m.len() == local),
            "hierarchical all-reduce needs equal ranks per node"
        );
        let gpus: Vec<usize> = nodes
            .iter()
            .flat_map(|(_, m)| m.iter().map(|&i| ranks[i]))
            .collect();
        let gdeps: Vec<TaskId> = if deps.is_empty() {
            vec![]
        } else {
            nodes
                .iter()
                .flat_map(|(_, m)| m.iter().map(|&i| deps[i]))
                .collect()
        };
        let prog = coll::hierarchical_all_reduce(ranks.len(), bytes as usize, local, ReduceOp::Sum);
        let fin = self.lower_program(sim, &prog, &gpus, &gdeps, kind);
        // Map completions back to the caller's rank order.
        let mut out: Vec<Option<TaskId>> = vec![None; ranks.len()];
        for ((_, m), chunk) in nodes.iter().zip(fin.chunks(local)) {
            for (&i, &t) in m.iter().zip(chunk) {
                out[i] = Some(t);
            }
        }
        out.into_iter().map(|t| t.unwrap()).collect()
    }

    /// Pipeline-boundary transfer between two tensor-parallel groups on
    /// consecutive stages (§4.1). `senders` and `receivers` are the `t`
    /// tensor-parallel ranks of the upstream and downstream stage;
    /// `total_bytes` is the full activation tensor (`b·s·h` elements).
    ///
    /// Without the scatter/gather optimization each sender redundantly sends
    /// the whole tensor to its counterpart. With it, each sender sends a
    /// `1/t` chunk over its own link and the receivers re-materialize the
    /// tensor with an NVLink all-gather.
    ///
    /// `deps[i]` gates sender *i*. Returns one completion task per receiver.
    #[allow(clippy::too_many_arguments)]
    pub fn pipeline_p2p(
        &self,
        sim: &mut DagSim,
        senders: &[usize],
        receivers: &[usize],
        total_bytes: u64,
        scatter_gather: bool,
        deps: &[TaskId],
        kind: u32,
    ) -> Vec<TaskId> {
        let t = senders.len();
        assert_eq!(t, receivers.len(), "stage groups must have equal size");
        assert!(
            deps.is_empty() || deps.len() == t,
            "deps must be per-sender"
        );
        let dep_of = |i: usize| -> Vec<TaskId> {
            if deps.is_empty() {
                vec![]
            } else {
                vec![deps[i]]
            }
        };
        if !scatter_gather || t == 1 {
            return (0..t)
                .map(|i| self.send(sim, senders[i], receivers[i], total_bytes, &dep_of(i), kind))
                .collect();
        }
        let chunk = total_bytes.div_ceil(t as u64);
        let arrivals: Vec<TaskId> = (0..t)
            .map(|i| self.send(sim, senders[i], receivers[i], chunk, &dep_of(i), kind))
            .collect();
        // Re-materialize over NVLink: all-gather of the chunks among the
        // receivers (guaranteed intra-node when t ≤ GPUs per node).
        self.ring_all_gather(sim, receivers, chunk, &arrivals, kind)
    }
}

/// Closed-form collective cost models, validated against the simulated
/// algorithms (see crate tests). Used by higher layers where event-level
/// simulation of every all-reduce chunk would be needlessly fine-grained
/// (e.g. tensor-parallel all-reduces inside an aggregated stage time).
pub mod analytical {
    use megatron_cluster::{ClusterSpec, LinkClass};

    /// Slowest link class on the ring through `ranks` (in given order).
    fn bottleneck(cluster: &ClusterSpec, ranks: &[usize]) -> LinkClass {
        let r = ranks.len();
        let mut worst = LinkClass::Local;
        for j in 0..r {
            let c = cluster.link_class(ranks[j], ranks[(j + 1) % r]);
            worst = match (worst, c) {
                (_, LinkClass::InfiniBand) | (LinkClass::InfiniBand, _) => LinkClass::InfiniBand,
                (_, LinkClass::NvLink) | (LinkClass::NvLink, _) => LinkClass::NvLink,
                _ => LinkClass::Local,
            };
        }
        worst
    }

    /// Time for a ring all-reduce of `bytes` across `ranks`:
    /// `2(r−1) · (λ + bytes / (r · β))` with β the bottleneck-hop bandwidth.
    pub fn ring_all_reduce_time(cluster: &ClusterSpec, ranks: &[usize], bytes: f64) -> f64 {
        let r = ranks.len();
        if r <= 1 {
            return 0.0;
        }
        let class = bottleneck(cluster, ranks);
        let steps = 2.0 * (r as f64 - 1.0);
        steps * (cluster.latency(class) + bytes / (r as f64 * cluster.bandwidth(class)))
    }

    /// Time for a ring all-gather where each rank contributes
    /// `bytes_per_rank`: `(r−1) · (λ + bytes_per_rank / β)`.
    pub fn ring_all_gather_time(
        cluster: &ClusterSpec,
        ranks: &[usize],
        bytes_per_rank: f64,
    ) -> f64 {
        let r = ranks.len();
        if r <= 1 {
            return 0.0;
        }
        let class = bottleneck(cluster, ranks);
        (r as f64 - 1.0) * (cluster.latency(class) + bytes_per_rank / cluster.bandwidth(class))
    }

    /// Time for a ring reduce-scatter of `bytes`:
    /// `(r−1) · (λ + bytes / (r · β))`.
    pub fn ring_reduce_scatter_time(cluster: &ClusterSpec, ranks: &[usize], bytes: f64) -> f64 {
        let r = ranks.len();
        if r <= 1 {
            return 0.0;
        }
        let class = bottleneck(cluster, ranks);
        (r as f64 - 1.0) * (cluster.latency(class) + bytes / (r as f64 * cluster.bandwidth(class)))
    }

    /// Time for a hierarchical all-reduce across `k` full nodes of `g`
    /// GPUs each: reduce-scatter + all-gather over NVLink plus a per-rail
    /// inter-node ring of the `1/g` shard (all rails concurrent).
    pub fn hierarchical_all_reduce_time(
        cluster: &ClusterSpec,
        nodes: usize,
        per_node: usize,
        bytes: f64,
    ) -> f64 {
        if nodes <= 1 || per_node <= 1 {
            let ranks: Vec<usize> = (0..nodes * per_node.max(1)).collect();
            return ring_all_reduce_time(cluster, &ranks, bytes);
        }
        let g = per_node as f64;
        let nv_lat = cluster.node.nvlink_latency;
        let nv_bw = cluster.node.nvlink_bandwidth;
        let shard = bytes / g;
        let rs = (g - 1.0) * (nv_lat + bytes / (g * nv_bw));
        let ag = rs;
        let rail: Vec<usize> = (0..nodes).map(|n| n * cluster.node.gpus_per_node).collect();
        let inter = ring_all_reduce_time(cluster, &rail, shard);
        rs + inter + ag
    }

    /// Bytes each device moves in a ring all-reduce: `2·bytes·(r−1)/r`,
    /// the paper's `(t−1)/t` factor (§3.2).
    pub fn ring_all_reduce_volume(r: usize, bytes: f64) -> f64 {
        if r <= 1 {
            return 0.0;
        }
        2.0 * bytes * (r as f64 - 1.0) / r as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megatron_sim::time_to_secs;

    fn cluster16() -> ClusterSpec {
        ClusterSpec::selene(16)
    }

    fn run_secs(sim: DagSim) -> f64 {
        time_to_secs(sim.run().unwrap().makespan)
    }

    #[test]
    fn p2p_nvlink_faster_than_ib() {
        let c = cluster16();
        let bytes = 32 * 1024 * 1024;

        let mut sim = DagSim::new();
        let net = Network::new(&mut sim, c.clone());
        net.send(&mut sim, 0, 1, bytes, &[], 0);
        let nv = run_secs(sim);

        let mut sim = DagSim::new();
        let net = Network::new(&mut sim, c);
        net.send(&mut sim, 0, 8, bytes, &[], 0);
        let ib = run_secs(sim);

        assert!(nv < ib);
    }

    #[test]
    fn sends_from_same_gpu_serialize() {
        let c = cluster16();
        let bytes = 8 * 1024 * 1024u64;
        let mut sim = DagSim::new();
        let net = Network::new(&mut sim, c.clone());
        net.send(&mut sim, 0, 8, bytes, &[], 0);
        net.send(&mut sim, 0, 9, bytes, &[], 0);
        let two = run_secs(sim);
        let one = c.p2p_time(LinkClass::InfiniBand, bytes as f64);
        assert!((two - 2.0 * one).abs() / one < 1e-6, "two={two} one={one}");
    }

    #[test]
    fn sends_from_different_gpus_parallelize() {
        let c = cluster16();
        let bytes = 8 * 1024 * 1024u64;
        let mut sim = DagSim::new();
        let net = Network::new(&mut sim, c.clone());
        net.send(&mut sim, 0, 8, bytes, &[], 0);
        net.send(&mut sim, 1, 9, bytes, &[], 0);
        let both = run_secs(sim);
        let one = c.p2p_time(LinkClass::InfiniBand, bytes as f64);
        assert!((both - one).abs() / one < 1e-6);
    }

    #[test]
    fn nvlink_and_ib_ports_are_independent() {
        let c = cluster16();
        let bytes = 8 * 1024 * 1024u64;
        let mut sim = DagSim::new();
        let net = Network::new(&mut sim, c.clone());
        net.send(&mut sim, 0, 1, bytes, &[], 0); // NVLink
        net.send(&mut sim, 0, 8, bytes, &[], 0); // IB
        let both = run_secs(sim);
        let ib = c.p2p_time(LinkClass::InfiniBand, bytes as f64);
        assert!(
            (both - ib).abs() / ib < 1e-6,
            "IB leg should dominate, not add"
        );
    }

    #[test]
    fn all_reduce_single_rank_is_free() {
        let mut sim = DagSim::new();
        let net = Network::new(&mut sim, cluster16());
        let done = net.ring_all_reduce(&mut sim, &[3], 1 << 20, &[], 0);
        assert_eq!(done.len(), 1);
        assert_eq!(run_secs(sim), 0.0);
    }

    #[test]
    fn all_reduce_task_count_is_2_r_minus_1_times_r() {
        let mut sim = DagSim::new();
        let net = Network::new(&mut sim, cluster16());
        net.ring_all_reduce(&mut sim, &[0, 1, 2, 3], 1 << 20, &[], 0);
        // 2(r−1) steps × r sends per step.
        assert_eq!(sim.task_count(), 2 * 3 * 4);
    }

    #[test]
    fn all_reduce_volume_emerges_from_algorithm() {
        // Each rank sends 2(r−1) chunks of bytes/r: (t−1)/t factor of §3.2.
        let bytes = 4 * 1024 * 1024u64;
        let ranks = [0usize, 1, 2, 3];
        let mut sim = DagSim::new();
        let net = Network::new(&mut sim, cluster16());
        net.ring_all_reduce(&mut sim, &ranks, bytes, &[], 0);
        let result = sim.run().unwrap();
        // Every send task moved bytes/4; count per sender resource = 6.
        for rank in ranks {
            let stats = &result.resources[net.nv_egress[rank].index()];
            assert_eq!(stats.tasks_run, 6);
        }
        let per_device = 6.0 * (bytes as f64 / 4.0);
        let expected = analytical::ring_all_reduce_volume(4, bytes as f64);
        assert!((per_device - expected).abs() < 1.0);
        // The message-level byte tally agrees with both.
        for rank in ranks {
            assert_eq!(net.sent_bytes(rank) as f64, expected);
        }
    }

    #[test]
    fn byte_tally_is_exact_for_non_divisible_buffers() {
        // Chunks are exact ceil-partitions (no padding on the wire), so at
        // r = 2 every rank's all-reduce egress is exactly `bytes` even for
        // odd sizes — the identity the (2,2,2) real-vs-sim test leans on.
        let bytes = 1_000_003u64;
        let mut sim = DagSim::new();
        let net = Network::new(&mut sim, cluster16());
        net.ring_all_reduce(&mut sim, &[0, 1], bytes, &[], 0);
        assert_eq!(net.sent_bytes(0), bytes);
        assert_eq!(net.sent_bytes(1), bytes);
    }

    #[test]
    fn broadcast_last_ring_position_sends_nothing() {
        let bytes = 8 * 1024 * 1024u64;
        let ranks = [0usize, 1, 2, 3];
        let mut sim = DagSim::new();
        let net = Network::new(&mut sim, cluster16());
        let done = net.ring_broadcast(&mut sim, &ranks, bytes, 0, &[], 0);
        assert_eq!(done.len(), 4);
        sim.run().unwrap();
        assert_eq!(net.sent_bytes(0), bytes); // root streams the full buffer
        assert_eq!(net.sent_bytes(3), 0); // ring tail only receives
    }

    #[test]
    fn all_gather_time_scales_with_contribution() {
        let c = cluster16();
        let per_rank = 16 * 1024 * 1024u64;
        let mut sim = DagSim::new();
        let net = Network::new(&mut sim, c.clone());
        net.ring_all_gather(&mut sim, &[0, 1, 2, 3], per_rank, &[], 0);
        let got = run_secs(sim);
        let want = analytical::ring_all_gather_time(&c, &[0, 1, 2, 3], per_rank as f64);
        assert!((got - want).abs() / want < 0.05, "got {got} want {want}");
    }

    #[test]
    fn reduce_scatter_half_of_all_reduce() {
        let c = cluster16();
        let bytes = 64 * 1024 * 1024u64;
        let ranks = [0usize, 1, 2, 3];
        let rs = analytical::ring_reduce_scatter_time(&c, &ranks, bytes as f64);
        let ar = analytical::ring_all_reduce_time(&c, &ranks, bytes as f64);
        assert!((ar / rs - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cross_node_all_reduce_slower_than_intra_node() {
        let c = cluster16();
        let bytes = 64.0 * 1024.0 * 1024.0;
        let intra = analytical::ring_all_reduce_time(&c, &[0, 1, 2, 3], bytes);
        let inter = analytical::ring_all_reduce_time(&c, &[0, 4, 8, 12], bytes);
        assert!(
            inter > 5.0 * intra,
            "IB ring should be much slower: intra {intra} inter {inter}"
        );
    }

    #[test]
    fn scatter_gather_reduces_ib_time() {
        // §4.1 / Figure 18: with t = 8 tensor-parallel ranks, scatter/gather
        // sends bytes/8 over each IB link instead of the full tensor.
        let c = ClusterSpec::selene(16);
        let senders: Vec<usize> = (0..8).collect();
        let receivers: Vec<usize> = (8..16).collect();
        let bytes = 64 * 1024 * 1024u64;

        let mut sim = DagSim::new();
        let net = Network::new(&mut sim, c.clone());
        net.pipeline_p2p(&mut sim, &senders, &receivers, bytes, false, &[], 0);
        let plain = run_secs(sim);

        let mut sim = DagSim::new();
        let net = Network::new(&mut sim, c.clone());
        net.pipeline_p2p(&mut sim, &senders, &receivers, bytes, true, &[], 0);
        let opt = run_secs(sim);

        assert!(
            opt < plain * 0.5,
            "scatter/gather should cut boundary time sharply: {opt} vs {plain}"
        );
        // But the NVLink all-gather is not free: the optimized transfer must
        // still cost more than a bare 1/8 IB send.
        let bare = c.p2p_time(LinkClass::InfiniBand, bytes as f64 / 8.0);
        assert!(opt > bare);
    }

    #[test]
    fn pipeline_p2p_without_sg_each_link_carries_full_tensor() {
        let c = ClusterSpec::selene(16);
        let bytes = 16 * 1024 * 1024u64;
        let mut sim = DagSim::new();
        let net = Network::new(&mut sim, c.clone());
        let senders: Vec<usize> = (0..8).collect();
        let receivers: Vec<usize> = (8..16).collect();
        net.pipeline_p2p(&mut sim, &senders, &receivers, bytes, false, &[], 0);
        let t = run_secs(sim);
        // All 8 redundant sends ride distinct HCAs → time of ONE full send.
        let one = c.p2p_time(LinkClass::InfiniBand, bytes as f64);
        assert!((t - one).abs() / one < 1e-6);
    }

    #[test]
    fn hierarchical_all_reduce_matches_analytical() {
        let c = ClusterSpec::selene(32); // 4 nodes
        let ranks: Vec<usize> = (0..32).collect();
        let bytes = 256 * 1024 * 1024u64;
        let mut sim = DagSim::new();
        let net = Network::new(&mut sim, c.clone());
        net.hierarchical_all_reduce(&mut sim, &ranks, bytes, &[], 0);
        let got = run_secs(sim);
        let want = analytical::hierarchical_all_reduce_time(&c, 4, 8, bytes as f64);
        assert!(
            (got - want).abs() / want < 0.10,
            "sim {got:.6} vs analytical {want:.6}"
        );
    }

    #[test]
    fn hierarchical_beats_flat_ring_across_nodes() {
        // All 8 rails carry 1/8 of the volume → ~8× the inter-node
        // bandwidth of a flat ring bottlenecked on one HCA chain.
        let c = ClusterSpec::selene(32);
        let ranks: Vec<usize> = (0..32).collect();
        let bytes = 256.0 * 1024.0 * 1024.0;
        let flat = analytical::ring_all_reduce_time(&c, &ranks, bytes);
        let hier = analytical::hierarchical_all_reduce_time(&c, 4, 8, bytes);
        assert!(hier < flat / 3.0, "hier {hier} vs flat {flat}");
    }

    #[test]
    fn hierarchical_degenerates_to_ring_on_one_node() {
        let c = ClusterSpec::selene(16);
        let ranks: Vec<usize> = (0..8).collect();
        let bytes = 32 * 1024 * 1024u64;
        let mut sim = DagSim::new();
        let net = Network::new(&mut sim, c.clone());
        net.hierarchical_all_reduce(&mut sim, &ranks, bytes, &[], 0);
        let got = run_secs(sim);
        let want = analytical::ring_all_reduce_time(&c, &ranks, bytes as f64);
        assert!((got - want).abs() / want < 0.05);
    }

    #[test]
    #[should_panic(expected = "equal ranks per node")]
    fn hierarchical_rejects_lopsided_groups() {
        let c = ClusterSpec::selene(16);
        let mut sim = DagSim::new();
        let net = Network::new(&mut sim, c);
        // 3 GPUs on node 0, 1 on node 1.
        net.hierarchical_all_reduce(&mut sim, &[0, 1, 2, 8], 1 << 20, &[], 0);
    }

    #[test]
    fn impaired_link_inflates_send_time_by_expected_retransmits() {
        let c = cluster16();
        let bytes = 8 * 1024 * 1024u64;
        let imp = LinkImpairment {
            loss_prob: 0.2,
            degrade_factor: 3.0,
        };

        let mut sim = DagSim::new();
        let net = Network::new(&mut sim, c.clone());
        net.send(&mut sim, 0, 8, bytes, &[], 0);
        let clean = run_secs(sim);

        let mut sim = DagSim::new();
        let net = Network::new(&mut sim, c);
        net.impair(0, imp);
        assert_eq!(net.impairment(0), imp);
        net.send(&mut sim, 0, 8, bytes, &[], 0);
        let lossy = run_secs(sim);

        // factor / (1 − p) = 3 / 0.8 = 3.75 (up to clock quantization).
        assert!(
            (lossy / clean - imp.inflation()).abs() < 1e-4,
            "inflation {} expected {}",
            lossy / clean,
            imp.inflation()
        );
    }

    #[test]
    fn impairment_slows_time_but_never_logical_bytes() {
        // Retransmits live below the byte-accounting layer, exactly like
        // the real transport: CommVolume stays the clean-wire volume.
        let bytes = 4 * 1024 * 1024u64;
        let ranks = [0usize, 1, 2, 3];

        let mut sim = DagSim::new();
        let net = Network::new(&mut sim, cluster16());
        net.ring_all_reduce(&mut sim, &ranks, bytes, &[], 0);
        let clean_t = run_secs(sim);

        let mut sim = DagSim::new();
        let net = Network::new(&mut sim, cluster16());
        net.impair(
            2,
            LinkImpairment {
                loss_prob: 0.5,
                degrade_factor: 1.0,
            },
        );
        net.ring_all_reduce(&mut sim, &ranks, bytes, &[], 0);
        let lossy_t = run_secs(sim);

        for rank in ranks {
            assert_eq!(
                net.sent_bytes(rank) as f64,
                analytical::ring_all_reduce_volume(4, bytes as f64)
            );
        }
        // One rank retransmitting 2× stretches the synchronous ring.
        assert!(lossy_t > clean_t * 1.5, "clean {clean_t} lossy {lossy_t}");
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn impairment_rejects_certain_loss() {
        let mut sim = DagSim::new();
        let net = Network::new(&mut sim, cluster16());
        net.impair(
            0,
            LinkImpairment {
                loss_prob: 1.0,
                degrade_factor: 1.0,
            },
        );
    }

    #[test]
    fn deps_gate_collective_start() {
        let c = cluster16();
        let mut sim = DagSim::new();
        let net = Network::new(&mut sim, c);
        // A 1 ms "compute" task gating every rank.
        let compute = sim.add_resource("compute");
        let gate = sim.add_task(compute, secs_to_time(1e-3), &[], 0);
        let deps = vec![gate; 4];
        net.ring_all_reduce(&mut sim, &[0, 1, 2, 3], 1 << 20, &deps, 0);
        let total = run_secs(sim);
        assert!(total > 1e-3, "collective must start after the gate");
    }
}
