//! Network topology and collective communication over simulated links.
//!
//! Selene's fat tree is full-bisection, so inter-node contention arises at
//! the endpoints: each GPU owns one NVLink egress port (intra-node traffic)
//! and one InfiniBand HCA share (inter-node traffic; a DGX A100 has 8 GPUs
//! and 8 HCAs, so GPU *i* of a node injects through HCA *i*). [`Network`]
//! registers those ports as simulation resources and provides:
//!
//! - point-to-point sends ([`Network::send`]) routed over the right link
//!   class, including the paper's §4.1 scatter/gather-optimized pipeline
//!   boundary transfer ([`Network::pipeline_p2p`]);
//! - collective algorithms lowered *step by step* from the shared
//!   `megatron-collective` programs onto the simulated links
//!   ([`Network::lower_program`]: ring all-reduce, all-gather,
//!   reduce-scatter, broadcast, hierarchical all-reduce), so communication
//!   volumes such as the `(t−1)/t` ring factor emerge from the same step
//!   sequence the real runtime executes rather than being asserted;
//! - closed-form cost models ([`analytical`]) for the same collectives, used
//!   where full event-level simulation would be wastefully fine-grained and
//!   validated against the simulated versions in tests.

mod collectives;

pub use collectives::{analytical, LinkImpairment, Network};

#[cfg(test)]
mod tests {
    use megatron_cluster::ClusterSpec;
    use megatron_sim::{time_to_secs, DagSim};

    use crate::analytical;
    use crate::Network;

    /// The DES ring all-reduce and the closed-form model must agree.
    #[test]
    fn simulated_all_reduce_matches_analytical() {
        let cluster = ClusterSpec::selene(16);
        for ranks in [vec![0usize, 1, 2, 3], vec![0, 8], vec![0, 4, 8, 12]] {
            let bytes = 64 * 1024 * 1024u64;
            let mut sim = DagSim::new();
            let net = Network::new(&mut sim, cluster.clone());
            net.ring_all_reduce(&mut sim, &ranks, bytes, &[], 0);
            let got = time_to_secs(sim.run().unwrap().makespan);
            let want = analytical::ring_all_reduce_time(&cluster, &ranks, bytes as f64);
            let rel = (got - want).abs() / want;
            assert!(
                rel < 0.05,
                "ranks {ranks:?}: sim {got:.6}s vs analytical {want:.6}s"
            );
        }
    }
}
