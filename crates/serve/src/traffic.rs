//! Seeded synthetic traffic: Poisson arrivals with uniform prompt and
//! output lengths, fully reproducible from one seed.
//!
//! Arrival times are in the scheduler's virtual cost units (see
//! [`megatron_sim::serving::vcost`]), so the same request list produces
//! the same admission schedule on every machine — the load generator is
//! part of the deterministic control plane, not of the measurement.

use megatron_sim::serving::Request;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of one synthetic traffic trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Number of requests.
    pub requests: usize,
    /// RNG seed for arrivals, lengths, and prompt tokens.
    pub seed: u64,
    /// Mean inter-arrival gap in virtual cost units (Poisson process).
    pub mean_interarrival: f64,
    /// Inclusive prompt-length range in tokens.
    pub prompt_len: (usize, usize),
    /// Inclusive generated-token range.
    pub max_new: (usize, usize),
    /// Vocabulary to draw prompt tokens from.
    pub vocab: usize,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            requests: 64,
            seed: 0x5e21,
            mean_interarrival: 24.0,
            prompt_len: (8, 24),
            max_new: (4, 16),
            vocab: 64,
        }
    }
}

/// A request plus its concrete prompt tokens (the scheduler only sees
/// lengths; the engine needs the tokens).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    /// Scheduler-visible arrival/length record.
    pub request: Request,
    /// Prompt token ids, `request.prompt` long.
    pub prompt_tokens: Vec<usize>,
}

/// Generate a seeded trace. Inter-arrival gaps are exponential with the
/// configured mean (inverse-CDF sampling), lengths uniform in their
/// inclusive ranges.
pub fn generate(cfg: &TrafficConfig) -> Vec<ServeRequest> {
    assert!(cfg.prompt_len.0 >= 1 && cfg.prompt_len.0 <= cfg.prompt_len.1);
    assert!(cfg.max_new.0 >= 1 && cfg.max_new.0 <= cfg.max_new.1);
    assert!(cfg.vocab >= 1 && cfg.mean_interarrival >= 0.0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut at = 0.0f64;
    (0..cfg.requests)
        .map(|id| {
            let u: f64 = rng.gen();
            at += -(1.0 - u).ln() * cfg.mean_interarrival;
            let prompt = rng.gen_range(cfg.prompt_len.0..=cfg.prompt_len.1);
            let max_new = rng.gen_range(cfg.max_new.0..=cfg.max_new.1);
            let prompt_tokens = (0..prompt).map(|_| rng.gen_range(0..cfg.vocab)).collect();
            ServeRequest {
                request: Request {
                    id,
                    arrival: at,
                    prompt,
                    max_new,
                },
                prompt_tokens,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_within_bounds() {
        let cfg = TrafficConfig::default();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), cfg.requests);
        let mut last = 0.0;
        for r in &a {
            assert!(r.request.arrival >= last);
            last = r.request.arrival;
            assert!((cfg.prompt_len.0..=cfg.prompt_len.1).contains(&r.request.prompt));
            assert!((cfg.max_new.0..=cfg.max_new.1).contains(&r.request.max_new));
            assert_eq!(r.prompt_tokens.len(), r.request.prompt);
            assert!(r.prompt_tokens.iter().all(|&t| t < cfg.vocab));
        }
    }

    #[test]
    fn mean_gap_close_to_configured() {
        let cfg = TrafficConfig {
            requests: 4000,
            mean_interarrival: 10.0,
            ..TrafficConfig::default()
        };
        let trace = generate(&cfg);
        let mean = trace.last().unwrap().request.arrival / cfg.requests as f64;
        assert!((mean - 10.0).abs() < 1.0, "mean gap {mean}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&TrafficConfig::default());
        let b = generate(&TrafficConfig {
            seed: 999,
            ..TrafficConfig::default()
        });
        assert_ne!(a, b);
    }
}
