//! Tensor-parallel autoregressive inference over the training runtime —
//! the repo's first non-training workload class.
//!
//! The training stack already holds everything an inference path needs:
//! sharded transformer blocks (`megatron_dist::block`), real collectives
//! over thread-per-GPU groups (`megatron_dist::comm`), and a serial
//! reference model (`megatron_tensor::gpt`). This crate adds the three
//! serving-specific pieces:
//!
//! - **KV-cached decoding** ([`engine`]): each decode step runs attention
//!   against per-sequence cached keys/values via
//!   `ParallelBlock::forward_decode`, bit-identical to re-running the
//!   full prefix (proven by differential tests for t ∈ {1, 2}).
//! - **Continuous batching**: the deterministic scheduler lives in
//!   [`megatron_sim::serving`] — one definition executed both here (real
//!   GEMMs + all-reduces) and by the discrete-event mirror. Requests
//!   join and leave the running batch between steps under admission caps;
//!   finished sequences free their cache immediately.
//! - **Seeded traffic** ([`traffic`]): Poisson arrivals with uniform
//!   prompt/output lengths, reproducible from a single seed.
//!
//! Every tensor rank runs the identical batcher and samples greedily
//! from bit-identical post-all-reduce logits, so the engine is pure SPMD:
//! no control channel, no token broadcast — the same lockstep argument
//! the training runtime makes for optimizer state.

pub mod engine;
pub mod traffic;

pub use engine::{serve, RankEngine, SeqBatchEntry, ServeConfig, ServeOutcome};
pub use traffic::{generate, ServeRequest, TrafficConfig};
