//! The real tensor-parallel decode engine.
//!
//! [`RankEngine`] is one rank's shard of an inference model: replicated
//! embedding / final LayerNorm / LM head plus head-sharded
//! [`ParallelBlock`]s — the same shards training uses, assembled for
//! decoding. [`serve`] spawns one thread per tensor rank over a real
//! [`Group`], and every rank runs the identical
//! [`ContinuousBatcher`](megatron_sim::serving::ContinuousBatcher) in
//! lockstep: admission is driven by the shared virtual clock, logits are
//! bit-identical after the block all-reduces (t ∈ {1, 2}), and greedy
//! sampling therefore picks the same token on every rank with no
//! coordination. Wall-clock timing decorates the run without steering it.

use std::collections::BTreeMap;
use std::thread;
use std::time::Instant;

use megatron_dist::{BlockKv, Group, GroupMember, ParallelBlock};
use megatron_sim::serving::{
    BatchPolicy, ContinuousBatcher, Request, ServingSummary, TimingCollector,
};
use megatron_telemetry::MetricsRegistry;
use megatron_tensor::gpt::GptModel;
use megatron_tensor::layers::{Embedding, LayerNorm, Linear};
use megatron_tensor::Matrix;

use crate::traffic::ServeRequest;

/// One tensor rank's inference-side model shard.
pub struct RankEngine {
    /// Replicated token + position embedding.
    pub embed: Embedding,
    /// Head-sharded transformer blocks.
    pub blocks: Vec<ParallelBlock>,
    /// Replicated final LayerNorm.
    pub final_ln: LayerNorm,
    /// Replicated LM head.
    pub lm_head: Linear,
}

/// One sequence's share of an engine step: the new tokens to feed, their
/// starting absolute position, and the sequence's per-block KV caches.
pub struct SeqBatchEntry<'a> {
    /// New token ids for this chunk.
    pub tokens: &'a [usize],
    /// Absolute position of `tokens[0]`.
    pub start_pos: usize,
    /// Per-block caches (one per layer), already holding earlier tokens.
    pub caches: &'a mut Vec<BlockKv>,
}

impl RankEngine {
    /// Shard rank `rank` of `t` from a serial model. Only the blocks are
    /// sharded; embedding, final LN, and LM head are replicated (their
    /// row-local math is identical on every rank).
    pub fn from_serial(model: &GptModel, t: usize, rank: usize) -> Self {
        assert!(
            model.cfg.heads.is_multiple_of(t),
            "tensor parallel degree {t} must divide heads {}",
            model.cfg.heads
        );
        RankEngine {
            embed: model.embed.clone(),
            blocks: model
                .blocks
                .iter()
                .map(|b| ParallelBlock::from_serial(b, model.cfg.heads, t, rank))
                .collect(),
            final_ln: model.final_ln.clone(),
            lm_head: model.lm_head.clone(),
        }
    }

    /// Fresh per-block KV caches for one sequence.
    pub fn new_cache(&self) -> Vec<BlockKv> {
        self.blocks
            .iter()
            .map(|b| BlockKv::new(b.kv_cols()))
            .collect()
    }

    /// One engine step over concatenated per-sequence chunks: embed the
    /// new tokens at their absolute positions, run every block's cached
    /// decode forward (two all-reduces each), and return logits for
    /// every row. Callers sample from each chunk's last row.
    pub fn forward_step(&self, batch: &mut [SeqBatchEntry], comm: &GroupMember) -> Matrix {
        let h = self.embed.tokens.cols();
        let total: usize = batch.iter().map(|e| e.tokens.len()).sum();
        let mut x = Matrix::zeros(total, h);
        let mut r = 0usize;
        for e in batch.iter() {
            for (i, &tok) in e.tokens.iter().enumerate() {
                let pos = e.start_pos + i;
                let dst = x.row_mut(r);
                for (c, d) in dst.iter_mut().enumerate() {
                    *d = self.embed.tokens.get(tok, c) + self.embed.positions.get(pos, c);
                }
                r += 1;
            }
        }
        for (bi, block) in self.blocks.iter().enumerate() {
            let mut chunks: Vec<(usize, &mut BlockKv)> = batch
                .iter_mut()
                .map(|e| (e.tokens.len(), &mut e.caches[bi]))
                .collect();
            x = block.forward_decode(&x, &mut chunks, comm);
        }
        let (hf, _) = self.final_ln.forward(&x);
        self.lm_head.forward(&hf)
    }
}

/// Greedy sampling: index of the first maximal logit.
pub fn argmax(row: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_v = row[0];
    for (i, &v) in row.iter().enumerate().skip(1) {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// Engine configuration: tensor-parallel degree and batching policy.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Tensor-parallel degree (bit-identical decode holds for 1 and 2).
    pub tensor_parallel: usize,
    /// Continuous-batching admission policy.
    pub policy: BatchPolicy,
}

/// Result of one serving run.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Throughput / latency summary (same shape the sim mirror emits).
    pub summary: ServingSummary,
    /// Generated tokens per request id.
    pub outputs: BTreeMap<usize, Vec<usize>>,
    /// Per-step `(rows, attended, wall_seconds)` samples — calibration
    /// input for the mirror's cost model.
    pub step_samples: Vec<(usize, usize, f64)>,
    /// Peak `f32` count held in KV caches across all layers.
    pub kv_peak_floats: usize,
}

struct SeqState {
    tokens: Vec<usize>,
    caches: Vec<BlockKv>,
}

/// Run continuous-batched greedy decoding over a real tensor group.
///
/// Spawns `cfg.tensor_parallel` rank threads; each executes the same
/// deterministic schedule. Rank 0's measurements are returned; the
/// outputs of every rank are asserted identical (the SPMD lockstep
/// invariant). If `metrics` is given, rank 0 records step/TTFT/latency
/// histograms and token counters into it.
pub fn serve(
    model: &GptModel,
    cfg: &ServeConfig,
    requests: &[ServeRequest],
    metrics: Option<&MetricsRegistry>,
) -> ServeOutcome {
    let t = cfg.tensor_parallel;
    assert!(t >= 1, "need at least one rank");
    for r in requests {
        assert_eq!(r.prompt_tokens.len(), r.request.prompt, "prompt mismatch");
        assert!(
            r.request.kv_budget() <= model.cfg.seq,
            "request {} needs {} positions > model seq {}",
            r.request.id,
            r.request.kv_budget(),
            model.cfg.seq
        );
        assert!(r.prompt_tokens.iter().all(|&tok| tok < model.cfg.vocab));
    }
    let reqs: Vec<Request> = requests.iter().map(|r| r.request.clone()).collect();
    let prompts: BTreeMap<usize, &[usize]> = requests
        .iter()
        .map(|r| (r.request.id, r.prompt_tokens.as_slice()))
        .collect();

    let group = Group::new(t);
    let mut outcomes: Vec<ServeOutcome> = thread::scope(|s| {
        let handles: Vec<_> = (0..t)
            .map(|rank| {
                let member = group.member(rank);
                let reqs = &reqs;
                let prompts = &prompts;
                s.spawn(move || {
                    run_rank(
                        model,
                        t,
                        rank,
                        member,
                        cfg.policy,
                        reqs,
                        prompts,
                        if rank == 0 { metrics } else { None },
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    });
    for (rank, o) in outcomes.iter().enumerate().skip(1) {
        assert_eq!(
            o.outputs, outcomes[0].outputs,
            "rank {rank} sampled different tokens than rank 0 — lockstep broken"
        );
    }
    outcomes.swap_remove(0)
}

#[allow(clippy::too_many_arguments)]
fn run_rank(
    model: &GptModel,
    t: usize,
    rank: usize,
    member: GroupMember,
    policy: BatchPolicy,
    reqs: &[Request],
    prompts: &BTreeMap<usize, &[usize]>,
    metrics: Option<&MetricsRegistry>,
) -> ServeOutcome {
    let engine = RankEngine::from_serial(model, t, rank);
    let mut batcher = ContinuousBatcher::new(policy, reqs.to_vec());
    let mut collector = TimingCollector::new(reqs);
    let mut states: BTreeMap<usize, SeqState> = BTreeMap::new();
    let mut outputs: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let mut step_samples = Vec::new();
    let kv_cols_total: usize = engine.blocks.iter().map(ParallelBlock::kv_cols).sum();
    let (mut kv_floats, mut kv_peak) = (0usize, 0usize);
    let t0 = Instant::now();

    while let Some(plan) = batcher.next_step() {
        let step_start = Instant::now();
        collector.step_start(&plan, t0.elapsed().as_secs_f64());
        for id in &plan.admitted {
            states.insert(
                *id,
                SeqState {
                    tokens: prompts[id].to_vec(),
                    caches: engine.new_cache(),
                },
            );
            outputs.insert(*id, Vec::new());
        }
        // Pull the step's states out of the map so each entry can borrow
        // its token slice and caches disjointly.
        let mut active: Vec<SeqState> = plan
            .seqs
            .iter()
            .map(|s| states.remove(&s.id).expect("running sequence has state"))
            .collect();
        let mut entries: Vec<SeqBatchEntry> = plan
            .seqs
            .iter()
            .zip(active.iter_mut())
            .map(|(s, st)| {
                let SeqState { tokens, caches } = st;
                SeqBatchEntry {
                    tokens: &tokens[s.start_pos..s.start_pos + s.rows],
                    start_pos: s.start_pos,
                    caches,
                }
            })
            .collect();
        let logits = engine.forward_step(&mut entries, &member);
        drop(entries);

        let mut row = 0usize;
        for (s, st) in plan.seqs.iter().zip(active.iter_mut()) {
            row += s.rows;
            if s.samples {
                let tok = argmax(logits.row(row - 1));
                st.tokens.push(tok);
                outputs.get_mut(&s.id).expect("admitted").push(tok);
            }
        }
        // Each new row added one K and one V row in every block's cache.
        kv_floats += 2 * plan.rows * kv_cols_total;
        kv_peak = kv_peak.max(kv_floats);
        for (s, st) in plan.seqs.iter().zip(active) {
            if s.finishes {
                // Retire: the cache frees right here, before the next
                // step's admissions look at the budget.
                kv_floats -= st.caches.iter().map(BlockKv::float_count).sum::<usize>();
            } else {
                states.insert(s.id, st);
            }
        }
        let step_secs = step_start.elapsed().as_secs_f64();
        collector.step_end(&plan, t0.elapsed().as_secs_f64());
        batcher.finish_step(&plan);
        step_samples.push((plan.rows, plan.attended, step_secs));
        if let Some(m) = metrics {
            m.histogram("serve.step_seconds").record(step_secs);
            m.counter("serve.decode_tokens")
                .add(plan.seqs.iter().filter(|s| s.samples).count() as u64);
            m.gauge("serve.running_seqs").set(plan.seqs.len() as f64);
        }
    }

    let summary = collector.finish(t0.elapsed().as_secs_f64(), &batcher);
    if let Some(m) = metrics {
        m.counter("serve.requests")
            .add(summary.requests.len() as u64);
        m.counter("serve.prefill_tokens")
            .add(summary.prefill_tokens as u64);
        m.counter("serve.generated_tokens")
            .add(summary.generated_tokens as u64);
        m.gauge("serve.kv_peak_floats").set(kv_peak as f64);
        let ttft = m.histogram("serve.ttft_seconds");
        let lat = m.histogram("serve.latency_seconds");
        for r in &summary.requests {
            ttft.record(r.first_token_s - r.eligible_s);
            lat.record(r.done_s - r.eligible_s);
        }
    }
    ServeOutcome {
        summary,
        outputs,
        step_samples,
        kv_peak_floats: kv_peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{generate, TrafficConfig};
    use megatron_tensor::gpt::TinyGptConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> GptModel {
        let cfg = TinyGptConfig {
            vocab: 19,
            seq: 48,
            hidden: 24,
            heads: 6,
            layers: 2,
        };
        GptModel::new(cfg, &mut StdRng::seed_from_u64(0xdec0de))
    }

    fn traffic(n: usize) -> Vec<ServeRequest> {
        generate(&TrafficConfig {
            requests: n,
            seed: 7,
            mean_interarrival: 12.0,
            prompt_len: (3, 9),
            max_new: (2, 6),
            vocab: 19,
        })
    }

    #[test]
    fn serve_accounts_every_request() {
        let model = model();
        let cfg = ServeConfig {
            tensor_parallel: 1,
            policy: BatchPolicy {
                max_seqs: 3,
                max_live_tokens: 64,
                prefill_chunk: 0,
            },
        };
        let reqs = traffic(12);
        let out = serve(&model, &cfg, &reqs, None);
        assert_eq!(out.outputs.len(), 12);
        for r in &reqs {
            assert_eq!(out.outputs[&r.request.id].len(), r.request.max_new);
        }
        assert_eq!(
            out.summary.generated_tokens,
            reqs.iter().map(|r| r.request.max_new).sum::<usize>()
        );
        assert!(out.kv_peak_floats > 0);
        assert!(out.summary.peak_running <= 3);
    }

    #[test]
    fn same_seed_same_outputs_and_admissions() {
        let model = model();
        let cfg = ServeConfig {
            tensor_parallel: 2,
            policy: BatchPolicy {
                max_seqs: 4,
                max_live_tokens: 80,
                prefill_chunk: 4,
            },
        };
        let reqs = traffic(10);
        let a = serve(&model, &cfg, &reqs, None);
        let b = serve(&model, &cfg, &reqs, None);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.summary.admission_order, b.summary.admission_order);
    }

    #[test]
    fn admission_schedule_independent_of_tensor_degree() {
        // The virtual clock drives admission, so t=1 and t=2 batch
        // identically even though their wall clocks differ.
        let model = model();
        let reqs = traffic(10);
        let policy = BatchPolicy {
            max_seqs: 3,
            max_live_tokens: 60,
            prefill_chunk: 0,
        };
        let mk = |t| ServeConfig {
            tensor_parallel: t,
            policy,
        };
        let one = serve(&model, &mk(1), &reqs, None);
        let two = serve(&model, &mk(2), &reqs, None);
        assert_eq!(one.summary.admission_order, two.summary.admission_order);
        assert_eq!(one.summary.steps, two.summary.steps);
    }
}
