//! Pipeline-parallel schedules (§2.2 of the paper).
//!
//! A schedule is the per-device *program order* of forward and backward
//! passes over microbatches (and, with interleaving, model chunks). Three
//! schedules are implemented:
//!
//! - **GPipe** (§2.2.1, Figure 3): all forwards, then all backwards. Bubble
//!   fraction `(p−1)/m`, but stashes activations for all `m` microbatches.
//! - **1F1B / PipeDream-Flush** (§2.2.1, Figure 4 top): a warm-up phase of
//!   depth-dependent forwards, then strict one-forward-one-backward. Same
//!   bubble, but at most `p` microbatches in flight.
//! - **Interleaved 1F1B** (§2.2.2, Figure 4 bottom): each device owns `v`
//!   model chunks (stage `chunk·p + device`), shrinking the bubble to
//!   `(p−1)/(v·m)` at the cost of `v×` more pipeline communication.
//!
//! [`PipelineSchedule::replay`] executes a schedule against per-op forward /
//! backward durations (zero-cost communication) and reports makespan, bubble
//! fraction, and peak in-flight microbatch counts — the quantities §2.2's
//! analytical models predict, which the tests check exactly.

mod generate;
mod replay;

pub use generate::ScheduleKind;
pub use replay::{render_replay, Replay, ReplayError, ReplaySpan};

/// Forward or backward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pass {
    /// Forward pass of a microbatch through one stage.
    Forward,
    /// Backward pass of a microbatch through one stage.
    Backward,
}

/// One entry in a device's program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PipeOp {
    /// Microbatch index, `0..m`.
    pub microbatch: usize,
    /// Model-chunk index on this device, `0..v` (0 when not interleaved).
    pub chunk: usize,
    /// Direction.
    pub pass: Pass,
}

/// A complete pipeline schedule: per-device program order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineSchedule {
    /// Pipeline-parallel size `p` (number of devices).
    pub devices: usize,
    /// Microbatches per batch per pipeline, `m`.
    pub microbatches: usize,
    /// Model chunks per device, `v` (1 = non-interleaved).
    pub chunks: usize,
    /// `ops[d]` is device `d`'s program, in execution order.
    pub ops: Vec<Vec<PipeOp>>,
}

impl PipelineSchedule {
    /// Total number of (global) pipeline stages, `p·v`.
    pub fn total_stages(&self) -> usize {
        self.devices * self.chunks
    }

    /// Global stage index computed by (`device`, `chunk`): `chunk·p + device`
    /// — the §2.2.2 round-robin chunk assignment (device 1 gets layers
    /// 1,2,9,10 in the paper's example).
    pub fn stage_of(&self, device: usize, chunk: usize) -> usize {
        debug_assert!(device < self.devices && chunk < self.chunks);
        chunk * self.devices + device
    }

    /// Inverse of [`PipelineSchedule::stage_of`]: (device, chunk) of a stage.
    pub fn device_chunk_of(&self, stage: usize) -> (usize, usize) {
        debug_assert!(stage < self.total_stages());
        (stage % self.devices, stage / self.devices)
    }

    /// Analytical bubble-time fraction (§2.2.1–§2.2.2):
    /// `(p−1)/m` non-interleaved, `(1/v)·(p−1)/m` interleaved.
    pub fn analytical_bubble_fraction(&self) -> f64 {
        (self.devices as f64 - 1.0) / (self.chunks as f64 * self.microbatches as f64)
    }

    /// Check structural invariants: every device program contains exactly
    /// one forward and one backward per (microbatch, chunk), and the
    /// cross-stage dependency graph is executable (no deadlock). Returns the
    /// replay (with unit durations) on success.
    pub fn validate(&self) -> Result<Replay, ReplayError> {
        for (d, prog) in self.ops.iter().enumerate() {
            let expect = 2 * self.microbatches * self.chunks;
            if prog.len() != expect {
                return Err(ReplayError::WrongOpCount {
                    device: d,
                    got: prog.len(),
                    want: expect,
                });
            }
            let mut seen = std::collections::HashSet::with_capacity(expect);
            for op in prog {
                if op.microbatch >= self.microbatches || op.chunk >= self.chunks {
                    return Err(ReplayError::OpOutOfRange { device: d, op: *op });
                }
                if !seen.insert(*op) {
                    return Err(ReplayError::DuplicateOp { device: d, op: *op });
                }
            }
        }
        self.replay(1.0, 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_mapping_roundtrip() {
        let s = ScheduleKind::Interleaved { chunks: 3 }.build(4, 8);
        for stage in 0..s.total_stages() {
            let (d, c) = s.device_chunk_of(stage);
            assert_eq!(s.stage_of(d, c), stage);
        }
    }

    #[test]
    fn paper_example_chunk_assignment() {
        // §2.2.2: with 4 devices and v=2, device 1 (0-indexed: 0) has layers
        // 1,2 and 9,10 → stages 0 and 4.
        let s = ScheduleKind::Interleaved { chunks: 2 }.build(4, 8);
        assert_eq!(s.stage_of(0, 0), 0);
        assert_eq!(s.stage_of(0, 1), 4);
        assert_eq!(s.stage_of(3, 1), 7);
    }
}
