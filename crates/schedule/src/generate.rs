//! Schedule generators.

use crate::{Pass, PipeOp, PipelineSchedule};

/// Which pipeline schedule to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleKind {
    /// All forwards then all backwards (Figure 3).
    GPipe,
    /// PipeDream-Flush one-forward-one-backward (Figure 4, top).
    OneFOneB,
    /// Interleaved 1F1B with `chunks` model chunks per device (Figure 4,
    /// bottom). Requires `m` to be a multiple of `p` when `chunks > 1`.
    Interleaved {
        /// Model chunks per device, `v ≥ 1`.
        chunks: usize,
    },
}

impl ScheduleKind {
    /// Model chunks per device for this schedule.
    pub fn chunks(self) -> usize {
        match self {
            ScheduleKind::Interleaved { chunks } => chunks,
            _ => 1,
        }
    }

    /// Build the schedule for `p` devices and `m` microbatches.
    ///
    /// # Panics
    /// If `p == 0`, `m == 0`, `chunks == 0`, or (interleaved with v > 1)
    /// `m % p != 0` — the §2.2.2 divisibility requirement.
    pub fn build(self, p: usize, m: usize) -> PipelineSchedule {
        assert!(p > 0 && m > 0, "need p > 0 and m > 0");
        let ops = match self {
            ScheduleKind::GPipe => gpipe(p, m),
            ScheduleKind::OneFOneB => one_f_one_b(p, m),
            ScheduleKind::Interleaved { chunks } => {
                assert!(chunks > 0, "need at least one chunk");
                if chunks == 1 {
                    one_f_one_b(p, m)
                } else {
                    assert!(
                        m.is_multiple_of(p),
                        "interleaved schedule requires m ({m}) to be a multiple of p ({p})"
                    );
                    interleaved(p, m, chunks)
                }
            }
        };
        PipelineSchedule {
            devices: p,
            microbatches: m,
            chunks: self.chunks(),
            ops,
        }
    }
}

fn fwd(microbatch: usize, chunk: usize) -> PipeOp {
    PipeOp {
        microbatch,
        chunk,
        pass: Pass::Forward,
    }
}

fn bwd(microbatch: usize, chunk: usize) -> PipeOp {
    PipeOp {
        microbatch,
        chunk,
        pass: Pass::Backward,
    }
}

/// GPipe: every device runs all m forwards, then all m backwards (backwards
/// in reverse microbatch order — LIFO activation stash).
fn gpipe(p: usize, m: usize) -> Vec<Vec<PipeOp>> {
    (0..p)
        .map(|_| {
            let mut prog = Vec::with_capacity(2 * m);
            prog.extend((0..m).map(|i| fwd(i, 0)));
            prog.extend((0..m).rev().map(|i| bwd(i, 0)));
            prog
        })
        .collect()
}

/// PipeDream-Flush: device `r` warms up with `min(m, p−1−r)` forwards, then
/// alternates forward/backward, then drains remaining backwards.
fn one_f_one_b(p: usize, m: usize) -> Vec<Vec<PipeOp>> {
    (0..p)
        .map(|r| {
            let warmup = (p - 1 - r).min(m);
            let mut prog = Vec::with_capacity(2 * m);
            let mut next_f = 0;
            let mut next_b = 0;
            for _ in 0..warmup {
                prog.push(fwd(next_f, 0));
                next_f += 1;
            }
            while next_b < m {
                if next_f < m {
                    prog.push(fwd(next_f, 0));
                    next_f += 1;
                }
                prog.push(bwd(next_b, 0));
                next_b += 1;
            }
            prog
        })
        .collect()
}

/// Interleaved 1F1B (Megatron's schedule): the *virtual* microbatch sequence
/// walks chunks in groups of `p` microbatches; warm-up length per device is
/// `2(p−1−r) + (v−1)·p`, after which the device alternates one virtual
/// forward with one virtual backward.
fn interleaved(p: usize, m: usize, v: usize) -> Vec<Vec<PipeOp>> {
    let total = m * v;
    // Virtual forward sequence index -> (microbatch, chunk).
    let fwd_slot = |k: usize| -> (usize, usize) {
        let in_group = k % (p * v);
        let chunk = in_group / p;
        let mb = (k / (p * v)) * p + (k % p);
        (mb, chunk)
    };
    // Virtual backward sequence walks chunks in reverse.
    let bwd_slot = |k: usize| -> (usize, usize) {
        let in_group = k % (p * v);
        let chunk = v - 1 - in_group / p;
        let mb = (k / (p * v)) * p + (k % p);
        (mb, chunk)
    };
    (0..p)
        .map(|r| {
            let warmup = if m == p {
                total
            } else {
                (2 * (p - 1 - r) + (v - 1) * p).min(total)
            };
            let mut prog = Vec::with_capacity(2 * total);
            let mut kf = 0;
            let mut kb = 0;
            for _ in 0..warmup {
                let (mb, c) = fwd_slot(kf);
                prog.push(fwd(mb, c));
                kf += 1;
            }
            while kb < total {
                if kf < total {
                    let (mb, c) = fwd_slot(kf);
                    prog.push(fwd(mb, c));
                    kf += 1;
                }
                let (mb, c) = bwd_slot(kb);
                prog.push(bwd(mb, c));
                kb += 1;
            }
            prog
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpipe_program_shape() {
        let s = ScheduleKind::GPipe.build(4, 8);
        for prog in &s.ops {
            assert_eq!(prog.len(), 16);
            assert!(prog[..8].iter().all(|o| o.pass == Pass::Forward));
            assert!(prog[8..].iter().all(|o| o.pass == Pass::Backward));
        }
    }

    #[test]
    fn one_f_one_b_warmup_depths() {
        let p = 4;
        let s = ScheduleKind::OneFOneB.build(p, 8);
        for (r, prog) in s.ops.iter().enumerate() {
            let warmup = prog.iter().take_while(|o| o.pass == Pass::Forward).count();
            // Device r starts its first backward after p−r forwards... the
            // program interleaves one more forward before the first backward
            // (the steady-state F), so leading forwards = warmup + 1 when
            // warmup < m.
            assert_eq!(warmup, (p - 1 - r) + 1, "device {r}");
        }
    }

    #[test]
    fn last_stage_alternates_strictly() {
        let s = ScheduleKind::OneFOneB.build(4, 6);
        let prog = &s.ops[3];
        for (i, op) in prog.iter().enumerate() {
            let want = if i % 2 == 0 {
                Pass::Forward
            } else {
                Pass::Backward
            };
            assert_eq!(op.pass, want, "op {i}");
        }
    }

    #[test]
    fn one_f_one_b_with_m_less_than_p() {
        // m < p: warm-up capped at m, schedule must still be complete.
        let s = ScheduleKind::OneFOneB.build(8, 2);
        s.validate().unwrap();
    }

    #[test]
    fn interleaved_covers_all_chunks() {
        let s = ScheduleKind::Interleaved { chunks: 2 }.build(4, 8);
        for prog in &s.ops {
            assert_eq!(prog.len(), 2 * 8 * 2);
            for c in 0..2 {
                for mb in 0..8 {
                    assert!(prog
                        .iter()
                        .any(|o| o.microbatch == mb && o.chunk == c && o.pass == Pass::Forward));
                    assert!(prog
                        .iter()
                        .any(|o| o.microbatch == mb && o.chunk == c && o.pass == Pass::Backward));
                }
            }
        }
    }

    #[test]
    fn interleaved_warmup_walks_chunks_in_groups_of_p() {
        let (p, v) = (4, 2);
        let s = ScheduleKind::Interleaved { chunks: v }.build(p, 8);
        // Device 0's first p forwards are chunk 0, microbatches 0..p; the
        // next p are chunk 1, microbatches 0..p.
        let prog = &s.ops[0];
        for (i, op) in prog.iter().take(p).enumerate() {
            assert_eq!(*op, fwd(i, 0));
        }
        for (i, op) in prog.iter().skip(p).take(p).enumerate() {
            assert_eq!(*op, fwd(i, 1));
        }
    }

    #[test]
    #[should_panic(expected = "multiple of p")]
    fn interleaved_rejects_indivisible_m() {
        ScheduleKind::Interleaved { chunks: 2 }.build(4, 6);
    }

    #[test]
    fn interleaved_with_one_chunk_is_1f1b() {
        let a = ScheduleKind::Interleaved { chunks: 1 }.build(4, 8);
        let b = ScheduleKind::OneFOneB.build(4, 8);
        assert_eq!(a.ops, b.ops);
    }

    #[test]
    fn single_device_degenerate() {
        for kind in [
            ScheduleKind::GPipe,
            ScheduleKind::OneFOneB,
            ScheduleKind::Interleaved { chunks: 2 },
        ] {
            let s = kind.build(1, 4);
            s.validate().unwrap();
        }
    }
}
