//! Event-driven replay of a schedule with idealized (zero-communication)
//! timing — the setting of the paper's §2.2 bubble analysis.

use std::collections::HashMap;

use crate::{Pass, PipeOp, PipelineSchedule};

/// Errors found while validating or replaying a schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// A device program has the wrong number of ops.
    WrongOpCount {
        /// Offending device.
        device: usize,
        /// Ops found.
        got: usize,
        /// Ops expected (`2·m·v`).
        want: usize,
    },
    /// An op references a microbatch or chunk out of range.
    OpOutOfRange {
        /// Offending device.
        device: usize,
        /// The op.
        op: PipeOp,
    },
    /// The same (microbatch, chunk, pass) appears twice on one device.
    DuplicateOp {
        /// Offending device.
        device: usize,
        /// The op.
        op: PipeOp,
    },
    /// Cross-stage dependencies can never be satisfied (deadlock).
    Deadlock {
        /// Ops executed before progress stopped.
        executed: usize,
        /// Total ops.
        total: usize,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::WrongOpCount { device, got, want } => {
                write!(f, "device {device}: {got} ops, expected {want}")
            }
            ReplayError::OpOutOfRange { device, op } => {
                write!(f, "device {device}: op out of range {op:?}")
            }
            ReplayError::DuplicateOp { device, op } => {
                write!(f, "device {device}: duplicate op {op:?}")
            }
            ReplayError::Deadlock { executed, total } => {
                write!(f, "schedule deadlocked after {executed}/{total} ops")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// One executed op with its time span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplaySpan {
    /// Device that executed the op.
    pub device: usize,
    /// The op.
    pub op: PipeOp,
    /// Start time (in `t_f` units of the caller).
    pub start: f64,
    /// End time.
    pub end: f64,
}

/// Result of replaying a schedule.
#[derive(Debug, Clone)]
pub struct Replay {
    /// Executed spans in completion order.
    pub spans: Vec<ReplaySpan>,
    /// Completion time of the last op.
    pub makespan: f64,
    /// Ideal per-device busy time `m·(t_f + t_b)` (§2.2.1's `t_id`).
    pub ideal_time: f64,
    /// Measured bubble fraction `(makespan − t_id) / t_id`.
    pub bubble_fraction: f64,
    /// Per-device peak number of microbatch-chunks whose forward has run
    /// but whose backward has not (the activation-stash bound).
    pub peak_in_flight: Vec<usize>,
}

impl PipelineSchedule {
    /// Execute the schedule with per-(full-)microbatch forward time `t_f`
    /// and backward time `t_b`, zero communication cost. With interleaving,
    /// each chunk op costs `t_f/v` (resp. `t_b/v`) — §2.2.2.
    ///
    /// Dependencies enforced:
    /// - program order within a device;
    /// - `F(mb, stage)` after `F(mb, stage−1)`;
    /// - `B(mb, stage)` after `B(mb, stage+1)` and `F(mb, stage)`.
    pub fn replay(&self, t_f: f64, t_b: f64) -> Result<Replay, ReplayError> {
        let p = self.devices;
        let v = self.chunks;
        let last_stage = self.total_stages() - 1;
        let dur_f = t_f / v as f64;
        let dur_b = t_b / v as f64;

        // Completion times of executed (pass, mb, stage).
        let mut done: HashMap<(Pass, usize, usize), f64> = HashMap::new();
        // Devices whose head op waits for a specific key.
        let mut waiting: HashMap<(Pass, usize, usize), Vec<usize>> = HashMap::new();
        let mut pc = vec![0usize; p];
        let mut dev_time = vec![0f64; p];
        let mut in_flight = vec![0isize; p];
        let mut peak = vec![0usize; p];
        let mut spans = Vec::with_capacity(self.ops.iter().map(Vec::len).sum());
        let mut stack: Vec<usize> = (0..p).rev().collect();
        let mut executed = 0usize;
        let total: usize = self.ops.iter().map(Vec::len).sum();

        while let Some(d) = stack.pop() {
            // Run device d's program as far as dependencies allow.
            while pc[d] < self.ops[d].len() {
                let op = self.ops[d][pc[d]];
                let stage = self.stage_of(d, op.chunk);
                // Cross-stage dependency key (if any).
                let dep = match op.pass {
                    Pass::Forward if stage > 0 => Some((Pass::Forward, op.microbatch, stage - 1)),
                    Pass::Backward if stage < last_stage => {
                        Some((Pass::Backward, op.microbatch, stage + 1))
                    }
                    _ => None,
                };
                let mut ready_at = dev_time[d];
                if let Some(key) = dep {
                    match done.get(&key) {
                        Some(&t) => ready_at = ready_at.max(t),
                        None => {
                            waiting.entry(key).or_default().push(d);
                            break;
                        }
                    }
                }
                if op.pass == Pass::Backward {
                    // Same-device forward must be in the past; guaranteed by
                    // program-order validation, but check defensively.
                    let fkey = (Pass::Forward, op.microbatch, stage);
                    match done.get(&fkey) {
                        Some(&t) => ready_at = ready_at.max(t),
                        None => {
                            waiting.entry(fkey).or_default().push(d);
                            break;
                        }
                    }
                }
                let dur = if op.pass == Pass::Forward {
                    dur_f
                } else {
                    dur_b
                };
                let start = ready_at;
                let end = start + dur;
                dev_time[d] = end;
                pc[d] += 1;
                executed += 1;
                match op.pass {
                    Pass::Forward => {
                        in_flight[d] += 1;
                        peak[d] = peak[d].max(in_flight[d] as usize);
                    }
                    Pass::Backward => in_flight[d] -= 1,
                }
                spans.push(ReplaySpan {
                    device: d,
                    op,
                    start,
                    end,
                });
                let key = (op.pass, op.microbatch, stage);
                done.insert(key, end);
                if let Some(mut ws) = waiting.remove(&key) {
                    stack.append(&mut ws);
                }
            }
        }

        if executed != total {
            return Err(ReplayError::Deadlock { executed, total });
        }

        let makespan = spans.iter().fold(0f64, |acc, s| acc.max(s.end));
        let ideal_time = self.microbatches as f64 * (t_f + t_b);
        let bubble_fraction = (makespan - ideal_time) / ideal_time;
        Ok(Replay {
            spans,
            makespan,
            ideal_time,
            bubble_fraction,
            peak_in_flight: peak,
        })
    }
}

/// Render a replay as an ASCII Gantt chart (one row per device, digits =
/// microbatch id mod 10, uppercase row = forward, lowercase = backward
/// is not distinguishable in one char, so forwards use digits and backwards
/// use letters `a`–`j` for microbatch mod 10).
pub fn render_replay(replay: &Replay, devices: usize, width: usize) -> String {
    if replay.makespan <= 0.0 || width == 0 {
        return String::new();
    }
    let mut rows = vec![vec!['.'; width]; devices];
    let scale = width as f64 / replay.makespan;
    for s in &replay.spans {
        let c0 = ((s.start * scale) as usize).min(width - 1);
        let c1 = ((s.end * scale).ceil() as usize).clamp(c0 + 1, width);
        let digit = (s.op.microbatch % 10) as u8;
        let ch = match s.op.pass {
            Pass::Forward => (b'0' + digit) as char,
            Pass::Backward => (b'a' + digit) as char,
        };
        for cell in rows[s.device].iter_mut().take(c1).skip(c0) {
            *cell = ch;
        }
    }
    let mut out = String::new();
    for (d, row) in rows.iter().enumerate() {
        out.push_str(&format!("dev {d:>2} |"));
        out.extend(row.iter());
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScheduleKind;

    #[test]
    fn gpipe_bubble_matches_analytical() {
        // §2.2.1: bubble fraction = (p−1)/m exactly, for any t_f, t_b.
        for (p, m) in [(2usize, 4usize), (4, 8), (4, 16), (8, 8)] {
            let s = ScheduleKind::GPipe.build(p, m);
            let r = s.replay(1.0, 2.0).unwrap();
            let want = s.analytical_bubble_fraction();
            assert!(
                (r.bubble_fraction - want).abs() < 1e-9,
                "(p,m)=({p},{m}): got {} want {want}",
                r.bubble_fraction
            );
        }
    }

    #[test]
    fn one_f_one_b_bubble_matches_analytical() {
        // "The time spent in the bubble is the same for this new schedule."
        for (p, m) in [(2usize, 4usize), (4, 8), (4, 16), (8, 64)] {
            let s = ScheduleKind::OneFOneB.build(p, m);
            let r = s.replay(1.0, 2.0).unwrap();
            let want = s.analytical_bubble_fraction();
            assert!(
                (r.bubble_fraction - want).abs() < 1e-9,
                "(p,m)=({p},{m}): got {} want {want}",
                r.bubble_fraction
            );
        }
    }

    #[test]
    fn interleaving_divides_bubble_by_v() {
        // §2.2.2: bubble = (1/v)·(p−1)/m.
        let (p, m) = (4usize, 8usize);
        for v in [2usize, 4] {
            let s = ScheduleKind::Interleaved { chunks: v }.build(p, m);
            let r = s.replay(1.0, 2.0).unwrap();
            let want = (p as f64 - 1.0) / (v as f64 * m as f64);
            assert!(
                (r.bubble_fraction - want).abs() < 1e-9,
                "v={v}: got {} want {want}",
                r.bubble_fraction
            );
        }
    }

    #[test]
    fn gpipe_stashes_all_m_but_1f1b_at_most_p() {
        // §2.2.1: "activations ... for p or fewer microbatches (compared to
        // m microbatches for the GPipe schedule)".
        let (p, m) = (4usize, 16usize);
        let g = ScheduleKind::GPipe.build(p, m).replay(1.0, 2.0).unwrap();
        assert_eq!(g.peak_in_flight.iter().max(), Some(&m));
        let f = ScheduleKind::OneFOneB.build(p, m).replay(1.0, 2.0).unwrap();
        assert!(f.peak_in_flight.iter().all(|&x| x <= p));
        // First device stashes exactly p.
        assert_eq!(f.peak_in_flight[0], p);
    }

    #[test]
    fn interleaved_in_flight_comparable_to_1f1b() {
        // §2.2.2: interleaved keeps memory footprint "comparable";
        // virtual-microbatch stash is ≤ p·v chunk activations = p full ones
        // plus the (v−1)·p/... warm-up extension, bounded by 2p chunks here.
        let (p, m, v) = (4usize, 16usize, 2usize);
        let s = ScheduleKind::Interleaved { chunks: v }.build(p, m);
        let r = s.replay(1.0, 2.0).unwrap();
        // peak counts chunk-sized activations; p·v chunk stashes == p full
        // microbatches. Allow the warm-up extension of (v−1)·p.
        let bound = p * v + (v - 1) * p;
        assert!(
            r.peak_in_flight.iter().all(|&x| x <= bound),
            "peaks {:?} exceed bound {bound}",
            r.peak_in_flight
        );
    }

    #[test]
    fn makespan_formula_1f1b() {
        // makespan = (p−1)·t_f + m·(t_f+t_b) + (p−1)·t_b.
        let (p, m) = (4usize, 8usize);
        let (tf, tb) = (1.0, 2.0);
        let r = ScheduleKind::OneFOneB.build(p, m).replay(tf, tb).unwrap();
        let want = (p as f64 - 1.0) * (tf + tb) + m as f64 * (tf + tb);
        assert!((r.makespan - want).abs() < 1e-9, "got {}", r.makespan);
    }

    #[test]
    fn single_stage_has_no_bubble() {
        for kind in [ScheduleKind::GPipe, ScheduleKind::OneFOneB] {
            let r = kind.build(1, 8).replay(1.0, 2.0).unwrap();
            assert!(r.bubble_fraction.abs() < 1e-9);
        }
    }

    #[test]
    fn bubble_independent_of_fwd_bwd_ratio() {
        // Figure 3 caption: "The efficiency of the pipeline schedule does
        // not depend on this factor" (t_b/t_f).
        let s = ScheduleKind::OneFOneB.build(4, 8);
        let r1 = s.replay(1.0, 1.0).unwrap();
        let r2 = s.replay(1.0, 3.0).unwrap();
        assert!((r1.bubble_fraction - r2.bubble_fraction).abs() < 1e-9);
    }

    #[test]
    fn interleaved_flush_happens_sooner() {
        // Figure 4: same batch, the interleaved flush completes earlier.
        let (p, m) = (4usize, 8usize);
        let base = ScheduleKind::OneFOneB.build(p, m).replay(1.0, 2.0).unwrap();
        let int = ScheduleKind::Interleaved { chunks: 2 }
            .build(p, m)
            .replay(1.0, 2.0)
            .unwrap();
        assert!(int.makespan < base.makespan);
    }

    #[test]
    fn render_replay_shows_all_devices() {
        let s = ScheduleKind::OneFOneB.build(4, 8);
        let r = s.replay(1.0, 2.0).unwrap();
        let text = render_replay(&r, 4, 60);
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains('0') && text.contains('a'));
    }

    #[test]
    fn validate_catches_duplicate() {
        let mut s = ScheduleKind::OneFOneB.build(2, 2);
        s.ops[0][1] = s.ops[0][0];
        assert!(matches!(s.validate(), Err(ReplayError::DuplicateOp { .. })));
    }

    #[test]
    fn validate_catches_missing_op() {
        let mut s = ScheduleKind::OneFOneB.build(2, 2);
        s.ops[0].pop();
        assert!(matches!(
            s.validate(),
            Err(ReplayError::WrongOpCount { .. })
        ));
    }

    #[test]
    fn validate_catches_deadlock() {
        // Swap F and B of the same microbatch on the last device: B before
        // its own F is a same-device deadlock.
        let mut s = ScheduleKind::GPipe.build(2, 2);
        let prog = &mut s.ops[1];
        prog.reverse(); // backwards (rev order) first, then forwards
        assert!(matches!(s.validate(), Err(ReplayError::Deadlock { .. })));
    }

    #[test]
    fn all_generated_schedules_validate() {
        for p in [1usize, 2, 4, 8] {
            for m in [1usize, 2, 4, 8, 16] {
                ScheduleKind::GPipe.build(p, m).validate().unwrap();
                ScheduleKind::OneFOneB.build(p, m).validate().unwrap();
                if m % p == 0 {
                    for v in [2usize, 4] {
                        ScheduleKind::Interleaved { chunks: v }
                            .build(p, m)
                            .validate()
                            .unwrap();
                    }
                }
            }
        }
    }
}
