//! Lowering a (model, cluster, parallel config, schedule) quadruple to a
//! task DAG and distilling the simulated run into an iteration report.

use std::collections::HashMap;

use megatron_cluster::ClusterSpec;
use megatron_model::{memory, GptConfig, BYTES_FP16};
use megatron_net::analytical;
use megatron_parallel::{analysis, ConfigError, ParallelConfig, RankMapper};
use megatron_schedule::{Pass, PipelineSchedule, ScheduleKind};
use megatron_sim::json::Json;
use megatron_sim::{secs_to_time, DagSim, TaskId};

use crate::costs::{self, StageCost};
use crate::report::{CommVolumes, IterationReport, TimeBreakdown};

/// Task-kind codes used in simulation spans.
pub mod kind {
    /// Forward compute.
    pub const FORWARD: u32 = 1;
    /// Backward compute.
    pub const BACKWARD: u32 = 2;
    /// Pipeline point-to-point transfer.
    pub const P2P: u32 = 3;
    /// Optimizer step.
    pub const OPTIMIZER: u32 = 4;
    /// Data-parallel gradient all-reduce.
    pub const DATA_PARALLEL: u32 = 5;
}

/// Execution options (§4's optimizations and §2.2's schedule choice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainingOptions {
    /// Pipeline schedule. Its chunk count must equal the parallel config's
    /// `chunks` ([`TrainingRun::ptdp`] derives it automatically).
    pub schedule: ScheduleKind,
    /// §4.1 scatter/gather communication optimization.
    pub scatter_gather: bool,
    /// §4.2 operator fusion + strided-batched-GEMM data layout.
    pub fused: bool,
    /// §3.5 activation recomputation.
    pub recompute: bool,
    /// Reject configurations whose footprint exceeds device memory.
    pub enforce_memory: bool,
    /// Pipeline sends synchronize with the sender's compute stream (as in
    /// Megatron, where `batch_isend_irecv` completes before the next op).
    /// Disable for an idealized fully-overlapped-communication ablation.
    pub blocking_p2p: bool,
}

impl Default for TrainingOptions {
    fn default() -> Self {
        TrainingOptions {
            schedule: ScheduleKind::OneFOneB,
            scatter_gather: true,
            fused: true,
            recompute: true,
            enforce_memory: true,
            blocking_p2p: true,
        }
    }
}

/// Why a simulation could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The parallel configuration is invalid for the model/cluster.
    Config(ConfigError),
    /// Schedule construction or replay failed.
    Schedule(String),
    /// The options and parallel config disagree on interleaving.
    ChunkMismatch {
        /// Chunks in the schedule option.
        schedule: usize,
        /// Chunks in the parallel config.
        config: u64,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Config(e) => write!(f, "invalid configuration: {e}"),
            RunError::Schedule(e) => write!(f, "schedule error: {e}"),
            RunError::ChunkMismatch { schedule, config } => write!(
                f,
                "schedule has {schedule} chunks but parallel config has {config}"
            ),
        }
    }
}

impl std::error::Error for RunError {}

impl From<ConfigError> for RunError {
    fn from(e: ConfigError) -> Self {
        RunError::Config(e)
    }
}

/// A fully specified training run ready to simulate.
#[derive(Debug, Clone)]
pub struct TrainingRun {
    /// Model architecture.
    pub model: GptConfig,
    /// Hardware.
    pub cluster: ClusterSpec,
    /// PTD-P dimensions.
    pub parallel: ParallelConfig,
    /// Execution options.
    pub options: TrainingOptions,
}

impl TrainingRun {
    /// Construct a run with explicit options.
    pub fn new(
        model: GptConfig,
        cluster: ClusterSpec,
        parallel: ParallelConfig,
        options: TrainingOptions,
    ) -> Self {
        TrainingRun {
            model,
            cluster,
            parallel,
            options,
        }
    }

    /// Construct the paper's default PTD-P setup: 1F1B (interleaved when the
    /// config has `chunks > 1`), scatter/gather on, fusion on, recomputation
    /// on.
    pub fn ptdp(model: GptConfig, cluster: ClusterSpec, parallel: ParallelConfig) -> Self {
        let schedule = if parallel.chunks > 1 {
            ScheduleKind::Interleaved {
                chunks: parallel.chunks as usize,
            }
        } else {
            ScheduleKind::OneFOneB
        };
        TrainingRun::new(
            model,
            cluster,
            parallel,
            TrainingOptions {
                schedule,
                ..TrainingOptions::default()
            },
        )
    }

    fn check(&self) -> Result<(), RunError> {
        let pc = &self.parallel;
        if self.options.schedule.chunks() != pc.chunks as usize {
            return Err(RunError::ChunkMismatch {
                schedule: self.options.schedule.chunks(),
                config: pc.chunks,
            });
        }
        let n = self.cluster.total_gpus() as u64;
        if self.options.enforce_memory {
            pc.validate_for_model(
                &self.model,
                n,
                self.cluster.gpu.mem_capacity,
                self.options.recompute,
            )?;
        } else {
            pc.validate(n)?;
            let stages = pc.pipeline * pc.chunks;
            if !self.model.num_layers.is_multiple_of(stages) {
                return Err(RunError::Config(ConfigError::IndivisibleLayers {
                    layers: self.model.num_layers,
                    stages,
                }));
            }
        }
        Ok(())
    }

    /// Build the schedule for this run.
    pub fn schedule(&self) -> Result<PipelineSchedule, RunError> {
        let pc = &self.parallel;
        let sched = self
            .options
            .schedule
            .build(pc.pipeline as usize, pc.microbatches() as usize);
        Ok(sched)
    }

    /// Time for one inter-stage boundary transfer from `from_stage` to an
    /// adjacent stage, given per-rank wire behaviour (§4.1).
    fn boundary_time(&self, mapper: &RankMapper, from_dev: u64, to_dev: u64) -> f64 {
        let pc = &self.parallel;
        let bytes = analysis::pipeline_p2p_bytes(&self.model, pc.microbatch);
        let send_group = mapper.tensor_group(from_dev, 0);
        let recv_group = mapper.tensor_group(to_dev, 0);
        let class = self.cluster.link_class(send_group[0], recv_group[0]);
        if self.options.scatter_gather && pc.tensor > 1 {
            // Each rank sends 1/t over its own link, then the receivers
            // re-materialize with an NVLink all-gather.
            let chunk = bytes.div_ceil(pc.tensor);
            self.cluster.p2p_time(class, chunk as f64)
                + analytical::ring_all_gather_time(&self.cluster, &recv_group, chunk as f64)
        } else {
            // All t ranks redundantly send the full tensor in parallel over
            // their own links: time of one full send.
            self.cluster.p2p_time(class, bytes as f64)
        }
    }

    /// Simulate one training iteration.
    pub fn simulate(&self) -> Result<IterationReport, RunError> {
        self.simulate_traced().map(|(report, _)| report)
    }

    /// Simulate and also return the full task-span trace in Chrome
    /// `about:tracing` JSON format (rows = pipeline devices' compute and
    /// network ports).
    pub fn chrome_trace(&self) -> Result<String, RunError> {
        self.simulate_traced().map(|(_, trace)| trace)
    }

    /// Simulate one training iteration, returning the report and the
    /// Chrome-trace JSON of every simulated task.
    pub fn simulate_traced(&self) -> Result<(IterationReport, String), RunError> {
        self.check()?;
        let pc = &self.parallel;
        let p = pc.pipeline as usize;
        let v = pc.chunks as usize;
        let m = pc.microbatches() as usize;
        let stages = p * v;
        let mapper = RankMapper::new(pc.pipeline, pc.tensor, pc.data);

        let stage_costs: Vec<StageCost> = costs::price_stages(
            &self.model,
            &self.cluster,
            pc,
            self.options.fused,
            self.options.recompute,
        );

        let sched = self.schedule()?;
        // Replay (any positive durations) yields a topological creation
        // order for the DAG tasks.
        let replay = sched
            .replay(1.0, 2.0)
            .map_err(|e| RunError::Schedule(e.to_string()))?;

        let mut sim = DagSim::new();
        let compute: Vec<_> = (0..p)
            .map(|d| sim.add_resource(format!("dev{d}.compute")))
            .collect();
        let netport: Vec<_> = (0..p)
            .map(|d| sim.add_resource(format!("dev{d}.net")))
            .collect();

        // Precompute boundary transfer durations stage -> stage+1 (forward)
        // and stage -> stage−1 (backward, same cost by symmetry).
        let boundary: Vec<f64> = (0..stages.saturating_sub(1))
            .map(|s| {
                let from = (s % p) as u64;
                let to = ((s + 1) % p) as u64;
                self.boundary_time(&mapper, from, to)
            })
            .collect();

        let mut prev_on_device: Vec<Option<TaskId>> = vec![None; p];
        let mut arrival: HashMap<(Pass, usize, usize), TaskId> = HashMap::new();
        // (pass, microbatch) per task, so the exported trace carries the
        // same matching keys the real-trainer spans do and the telemetry
        // DAG analyzer can join a transfer to the compute it gates.
        let mut task_meta: HashMap<TaskId, (Pass, usize)> = HashMap::new();

        for span in &replay.spans {
            let d = span.device;
            let op = span.op;
            let stage = sched.stage_of(d, op.chunk);
            let cost = &stage_costs[stage];
            let (dur, k) = match op.pass {
                Pass::Forward => (cost.forward, kind::FORWARD),
                Pass::Backward => (cost.backward, kind::BACKWARD),
            };
            let mut deps = Vec::with_capacity(2);
            if let Some(t) = prev_on_device[d] {
                deps.push(t);
            }
            if let Some(&t) = arrival.get(&(op.pass, op.microbatch, stage)) {
                deps.push(t);
            }
            let task = sim.add_task(compute[d], secs_to_time(dur), &deps, k);
            task_meta.insert(task, (op.pass, op.microbatch));
            prev_on_device[d] = Some(task);

            // Emit the outbound transfer feeding the adjacent stage.
            match op.pass {
                Pass::Forward if stage + 1 < stages => {
                    let to_dev = (stage + 1) % p;
                    let tx = sim.add_task(
                        netport[d],
                        secs_to_time(boundary[stage]),
                        &[task],
                        kind::P2P,
                    );
                    task_meta.insert(tx, (Pass::Forward, op.microbatch));
                    arrival.insert((Pass::Forward, op.microbatch, stage + 1), tx);
                    if self.options.blocking_p2p {
                        prev_on_device[d] = Some(tx);
                    }
                    debug_assert_ne!(to_dev, d);
                }
                Pass::Backward if stage > 0 => {
                    let tx = sim.add_task(
                        netport[d],
                        secs_to_time(boundary[stage - 1]),
                        &[task],
                        kind::P2P,
                    );
                    task_meta.insert(tx, (Pass::Backward, op.microbatch));
                    arrival.insert((Pass::Backward, op.microbatch, stage - 1), tx);
                    if self.options.blocking_p2p {
                        prev_on_device[d] = Some(tx);
                    }
                }
                _ => {}
            }
        }

        // Gradient all-reduce then optimizer step per device after its
        // flush — two tasks, so the trace (and the analyzer's attribution)
        // can tell exposed data-parallel communication from optimizer math.
        let dp_time = costs::data_parallel_all_reduce_time(&self.model, &self.cluster, pc);
        let opt_time = costs::optimizer_step_time(&self.model, &self.cluster, pc);
        for d in 0..p {
            let deps: Vec<TaskId> = prev_on_device[d].into_iter().collect();
            let ar = sim.add_task(
                compute[d],
                secs_to_time(dp_time),
                &deps,
                kind::DATA_PARALLEL,
            );
            sim.add_task(compute[d], secs_to_time(opt_time), &[ar], kind::OPTIMIZER);
        }

        let result = sim
            .run()
            .map_err(|e| RunError::Schedule(format!("simulation deadlock: {e}")))?;
        let iteration_time = megatron_sim::time_to_secs(result.makespan);

        // --- Distill the report ---
        let n = self.cluster.total_gpus() as u64;
        let flops = self
            .model
            .flops_per_iteration(pc.batch, self.options.recompute);
        let tflops_per_gpu = flops / iteration_time / n as f64 / 1e12;
        let pct_of_peak = 100.0 * tflops_per_gpu * 1e12 / self.cluster.gpu.peak_matmul_flops;

        let compute_busy: f64 = compute
            .iter()
            .map(|r| megatron_sim::time_to_secs(result.resources[r.index()].busy))
            .sum::<f64>()
            / p as f64;
        let net_busy: f64 = netport
            .iter()
            .map(|r| megatron_sim::time_to_secs(result.resources[r.index()].busy))
            .sum::<f64>()
            / p as f64;

        // Communication accounting.
        let bytes_full = analysis::pipeline_p2p_bytes(&self.model, pc.microbatch) as f64;
        let per_link = if self.options.scatter_gather && pc.tensor > 1 {
            bytes_full / pc.tensor as f64
        } else {
            bytes_full
        };
        // Wire bytes per boundary per direction per microbatch, aggregated
        // over the t parallel links.
        let wire_per_boundary = per_link * pc.tensor as f64;
        let crossings = boundary.len() as f64; // stage boundaries
        let pipeline_total_per_replica = 2.0 * m as f64 * crossings * wire_per_boundary;
        let pipeline_p2p_bytes_per_gpu =
            pipeline_total_per_replica / (pc.pipeline * pc.tensor) as f64;

        let tensor_ar_bytes_per_gpu: f64 = if pc.tensor > 1 {
            let factor = (pc.tensor as f64 - 1.0) / pc.tensor as f64;
            stage_costs
                .iter()
                .map(|c| c.tensor_ar_bytes as f64 * factor)
                .sum::<f64>()
                / p as f64
                * m as f64
        } else {
            0.0
        };

        let grad_params = (0..pc.pipeline)
            .map(|s| memory::params_per_gpu(&self.model, pc.pipeline, pc.tensor, s))
            .max()
            .unwrap_or(0);
        // Gradients are all-reduced in fp16 (the 2021 Megatron recipe).
        let data_parallel_bytes_per_gpu =
            analysis::data_parallel_bytes(grad_params * BYTES_FP16, pc.data);

        // Bisection accounting: total inter-node traffic (in a leaf/spine/
        // core fat tree nearly all of it transits the upper switch tiers).
        let inter_node_boundaries = (0..boundary.len())
            .filter(|&s| {
                let a = mapper.tensor_group((s % p) as u64, 0)[0];
                let b = mapper.tensor_group(((s + 1) % p) as u64, 0)[0];
                self.cluster.node_of(a) != self.cluster.node_of(b)
            })
            .count() as f64;
        let pipeline_bisection_bytes =
            pc.data as f64 * 2.0 * m as f64 * inter_node_boundaries * wire_per_boundary;
        let dp_inter_node = pc.tensor * pc.data >= self.cluster.node.gpus_per_node as u64;
        let data_parallel_bisection_bytes = if dp_inter_node {
            n as f64 * data_parallel_bytes_per_gpu
        } else {
            0.0
        };

        // Memory high-water mark from the schedule's measured stash peaks.
        let peak_chunks = replay.peak_in_flight.iter().copied().max().unwrap_or(0) as u64;
        let layers_per_chunk = self.model.num_layers / (pc.pipeline * pc.chunks);
        let per_chunk_stash = layers_per_chunk
            * if self.options.recompute {
                memory::activation_bytes_recompute(&self.model, pc.microbatch)
            } else {
                memory::activation_bytes_full(&self.model, pc.microbatch, pc.tensor)
            };
        let memory_bytes_per_gpu =
            memory::model_state_bytes_per_gpu(&self.model, pc.pipeline, pc.tensor)
                + peak_chunks * per_chunk_stash
                + memory::activation_bytes_full(&self.model, pc.microbatch, pc.tensor);

        let trace = megatron_sim::chrome_trace_json_with_args(
            &result,
            &|k| {
                match k {
                    kind::FORWARD => "forward",
                    kind::BACKWARD => "backward",
                    kind::P2P => "pipeline-p2p",
                    kind::OPTIMIZER => "optimizer",
                    kind::DATA_PARALLEL => "grad-allreduce",
                    _ => "other",
                }
                .to_string()
            },
            &|s| {
                // Attach modeled byte volumes and the (pass, microbatch)
                // matching keys so the sim trace carries the same `args`
                // payload as the real-trainer exporter and the telemetry
                // DAG analyzer can join transfers to the compute they gate.
                let mut out = match s.kind {
                    kind::P2P => vec![("bytes".to_string(), Json::Num(wire_per_boundary))],
                    kind::DATA_PARALLEL => {
                        vec![("bytes".to_string(), Json::Num(data_parallel_bytes_per_gpu))]
                    }
                    _ => Vec::new(),
                };
                if let Some(&(pass, mb)) = task_meta.get(&s.task) {
                    let pass = match pass {
                        Pass::Forward => "fwd",
                        Pass::Backward => "bwd",
                    };
                    out.push(("pass".to_string(), Json::Str(pass.to_string())));
                    out.push(("microbatch".to_string(), Json::Num(mb as f64)));
                }
                out
            },
            &[],
        );

        let report = IterationReport {
            iteration_time,
            tflops_per_gpu,
            pct_of_peak,
            aggregate_pflops: flops / iteration_time / 1e15,
            sequences_per_second: pc.batch as f64 / iteration_time,
            analytical_bubble_fraction: pc.bubble_fraction(),
            measured_idle_fraction: 1.0 - compute_busy / iteration_time,
            comm: CommVolumes {
                pipeline_p2p_bytes_per_gpu,
                tensor_ar_bytes_per_gpu,
                data_parallel_bytes_per_gpu,
                pipeline_bisection_bytes,
                data_parallel_bisection_bytes,
            },
            breakdown: TimeBreakdown {
                compute: compute_busy,
                pipeline_comm: net_busy,
                data_parallel: dp_time,
                optimizer: opt_time,
            },
            memory_bytes_per_gpu,
            n_gpus: n,
        };
        Ok((report, trace))
    }

    /// Render the idealized (zero-communication) pipeline timeline of this
    /// run's schedule — the paper's Figures 3–4 view.
    pub fn ideal_gantt(&self, width: usize) -> Result<String, RunError> {
        self.check()?;
        let stage_costs = costs::price_stages(
            &self.model,
            &self.cluster,
            &self.parallel,
            self.options.fused,
            self.options.recompute,
        );
        // Use a middle stage's times as the homogeneous per-chunk cost.
        let mid = stage_costs.len() / 2;
        let v = self.parallel.chunks as f64;
        let sched = self.schedule()?;
        let replay = sched
            .replay(stage_costs[mid].forward * v, stage_costs[mid].backward * v)
            .map_err(|e| RunError::Schedule(e.to_string()))?;
        Ok(megatron_schedule::render_replay(
            &replay,
            self.parallel.pipeline as usize,
            width,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megatron_model::zoo;

    fn small_run() -> TrainingRun {
        let model = zoo::gpt_5p9b();
        let cluster = ClusterSpec::selene(16);
        let pc = ParallelConfig::new(2, 2, 4, 1, 64);
        TrainingRun::ptdp(model, cluster, pc)
    }

    #[test]
    fn simulation_completes_and_is_sane() {
        let report = small_run().simulate().unwrap();
        assert!(report.iteration_time > 0.0);
        assert!(report.tflops_per_gpu > 20.0 && report.tflops_per_gpu < 312.0);
        assert!(report.pct_of_peak > 5.0 && report.pct_of_peak < 100.0);
        assert!(report.memory_bytes_per_gpu < 80 * (1 << 30));
    }

    #[test]
    fn deterministic() {
        let a = small_run().simulate().unwrap();
        let b = small_run().simulate().unwrap();
        assert_eq!(a.iteration_time, b.iteration_time);
    }

    #[test]
    fn more_microbatches_less_idle() {
        // Larger batch → more microbatches → smaller bubble (§2.2.1).
        let mut run = small_run();
        run.parallel.batch = 32;
        let small = run.simulate().unwrap();
        run.parallel.batch = 256;
        let big = run.simulate().unwrap();
        assert!(big.measured_idle_fraction < small.measured_idle_fraction);
        assert!(big.tflops_per_gpu > small.tflops_per_gpu);
    }

    #[test]
    fn idle_fraction_at_least_analytical_bubble() {
        let report = small_run().simulate().unwrap();
        assert!(
            report.measured_idle_fraction >= report.analytical_bubble_fraction - 1e-9,
            "measured {} < analytical {}",
            report.measured_idle_fraction,
            report.analytical_bubble_fraction
        );
    }

    #[test]
    fn single_gpu_run_works() {
        let model = zoo::gpt_1b_microbench();
        let cluster = ClusterSpec::selene(8);
        let pc = ParallelConfig::new(1, 1, 8, 4, 64);
        let report = TrainingRun::ptdp(model, cluster, pc).simulate().unwrap();
        assert!(report.analytical_bubble_fraction == 0.0);
        assert!(report.comm.pipeline_p2p_bytes_per_gpu == 0.0);
    }

    #[test]
    fn interleaving_reduces_iteration_time_at_small_batch() {
        // Figure 12's left side: interleaving wins at small batch sizes.
        let model = zoo::gpt_5p9b(); // 32 layers
        let cluster = ClusterSpec::selene(32);
        let base = TrainingRun::ptdp(
            model.clone(),
            cluster.clone(),
            ParallelConfig::new(8, 2, 2, 1, 16),
        );
        let inter = TrainingRun::ptdp(
            model,
            cluster,
            ParallelConfig::new(8, 2, 2, 1, 16).with_chunks(2),
        );
        let tb = base.simulate().unwrap();
        let ti = inter.simulate().unwrap();
        assert!(
            ti.iteration_time < tb.iteration_time,
            "interleaved {} vs default {}",
            ti.iteration_time,
            tb.iteration_time
        );
    }

    #[test]
    fn chunk_mismatch_detected() {
        let mut run = small_run();
        run.options.schedule = ScheduleKind::Interleaved { chunks: 2 };
        assert!(matches!(
            run.simulate(),
            Err(RunError::ChunkMismatch { .. })
        ));
    }

    #[test]
    fn memory_enforcement() {
        let model = zoo::gpt3_175b();
        let cluster = ClusterSpec::selene(8);
        let pc = ParallelConfig::new(1, 8, 1, 1, 8);
        let run = TrainingRun::ptdp(model, cluster, pc);
        assert!(matches!(
            run.simulate(),
            Err(RunError::Config(ConfigError::OutOfMemory { .. }))
        ));
    }

    #[test]
    fn gantt_renders() {
        let g = small_run().ideal_gantt(64).unwrap();
        assert_eq!(g.lines().count(), 2);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_all_kinds() {
        let trace = small_run().chrome_trace().unwrap();
        let v = megatron_sim::json::Json::parse(&trace).unwrap();
        let events = v.as_array().unwrap();
        assert!(!events.is_empty());
        let names: std::collections::HashSet<&str> =
            events.iter().map(|e| e["name"].as_str().unwrap()).collect();
        for want in [
            "forward",
            "backward",
            "pipeline-p2p",
            "grad-allreduce",
            "optimizer",
        ] {
            assert!(names.contains(want), "missing {want} in {names:?}");
        }
        // Compute and transfer spans carry the (pass, microbatch) keys the
        // telemetry DAG analyzer joins on.
        let fwd = events
            .iter()
            .find(|e| e["name"].as_str() == Some("pipeline-p2p"))
            .unwrap();
        assert_eq!(fwd["args"]["pass"].as_str(), Some("fwd"));
        assert!(fwd["args"]["microbatch"].as_f64().is_some());
    }

    #[test]
    fn scatter_gather_helps_interleaved_large_tensor() {
        // Figure 18's mechanism: with t=8 and interleaving, SG cuts IB bytes.
        let model = zoo::gpt_162b(); // 32 layers, fits (8, 8)
        let cluster = ClusterSpec::selene(64);
        let pc = ParallelConfig::new(8, 8, 1, 1, 32).with_chunks(2);
        let mut with = TrainingRun::ptdp(model.clone(), cluster.clone(), pc);
        with.options.enforce_memory = false;
        let mut without = with.clone();
        without.options.scatter_gather = false;
        let rw = with.simulate().unwrap();
        let rwo = without.simulate().unwrap();
        assert!(
            rw.iteration_time <= rwo.iteration_time,
            "SG {} vs plain {}",
            rw.iteration_time,
            rwo.iteration_time
        );
        assert!(rw.comm.pipeline_p2p_bytes_per_gpu < rwo.comm.pipeline_p2p_bytes_per_gpu);
    }
}
