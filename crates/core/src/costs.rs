//! Per-stage compute-cost pricing.

use megatron_cluster::ClusterSpec;
use megatron_model::ops::{self, OpListParams};
use megatron_model::GptConfig;
use megatron_net::analytical;
use megatron_parallel::{ParallelConfig, RankMapper};

/// Priced cost of one pipeline stage (one model chunk on one device) for a
/// single microbatch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageCost {
    /// Forward-pass seconds (local kernels + tensor-parallel all-reduces).
    pub forward: f64,
    /// Backward-pass seconds (incl. recomputation forward if enabled).
    pub backward: f64,
    /// GEMM FLOPs in the forward pass (per tensor-parallel rank).
    pub forward_flops: f64,
    /// Tensor-parallel all-reduce bytes per rank in forward + backward.
    pub tensor_ar_bytes: u64,
}

/// Price every global stage `0..p·v`.
///
/// Stage 0 additionally carries the embedding; the last stage carries the
/// final LayerNorm + vocab-parallel logit layer and loss. All-reduce times
/// use the tensor group's real GPU placement, so `t` larger than a node
/// pays inter-node prices (the Figure 13 cross-node-tensor-parallel
/// effect).
pub fn price_stages(
    model: &GptConfig,
    cluster: &ClusterSpec,
    pc: &ParallelConfig,
    fused: bool,
    recompute: bool,
) -> Vec<StageCost> {
    let p = pc.pipeline;
    let v = pc.chunks;
    let total_stages = p * v;
    assert!(model.num_layers.is_multiple_of(total_stages));
    let layers_per_stage = model.num_layers / total_stages;
    let params = OpListParams {
        microbatch: pc.microbatch,
        tensor_parallel: pc.tensor,
        fused,
    };
    let mapper = RankMapper::new(p, pc.tensor, pc.data);
    let gpu = &cluster.gpu;

    let layer_f = ops::layer_forward(model, params);
    let layer_b = ops::layer_backward(model, params);
    let (lf_cost, lf_ar) = ops::price_local(&layer_f, gpu);
    let (lb_cost, lb_ar) = ops::price_local(&layer_b, gpu);

    (0..total_stages)
        .map(|stage| {
            let device = stage % p; // chunk·p + device layout
            let group = mapper.tensor_group(device, 0);
            let ar_time =
                |bytes: u64| analytical::ring_all_reduce_time(cluster, &group, bytes as f64);

            let mut fwd = layers_per_stage as f64 * (lf_cost.seconds + ar_time(lf_ar));
            let mut bwd = layers_per_stage as f64 * (lb_cost.seconds + ar_time(lb_ar));
            let mut fwd_flops = layers_per_stage as f64 * lf_cost.flops;
            let mut ar_bytes = layers_per_stage * (lf_ar + lb_ar);

            if stage == 0 {
                let (c, ar) = ops::price_local(&ops::embedding_forward(model, params), gpu);
                fwd += c.seconds + ar_time(ar);
                let (c, ar) = ops::price_local(&ops::embedding_backward(model, params), gpu);
                bwd += c.seconds + ar_time(ar);
            }
            if stage == total_stages - 1 {
                let (c, ar) = ops::price_local(&ops::logit_forward(model, params), gpu);
                fwd += c.seconds + ar_time(ar);
                fwd_flops += c.flops;
                ar_bytes += ar;
                let (c, ar) = ops::price_local(&ops::logit_backward(model, params), gpu);
                bwd += c.seconds + ar_time(ar);
                ar_bytes += ar;
            }
            if recompute {
                // §3.5: run the forward pass again just before the backward
                // pass (transformer layers only; the logit layer keeps its
                // activations).
                bwd += layers_per_stage as f64 * (lf_cost.seconds + ar_time(lf_ar));
                ar_bytes += layers_per_stage * lf_ar;
            }
            StageCost {
                forward: fwd,
                backward: bwd,
                forward_flops: fwd_flops,
                tensor_ar_bytes: ar_bytes,
            }
        })
        .collect()
}

/// Optimizer-step time per device: Adam over the largest per-GPU parameter
/// shard — reads fp16 grad + fp32 master/momentum/variance, writes fp32
/// master/momentum/variance + fp16 weight (≈ 30 bytes per parameter of HBM
/// traffic), purely memory-bound.
pub fn optimizer_step_time(model: &GptConfig, cluster: &ClusterSpec, pc: &ParallelConfig) -> f64 {
    let params = (0..pc.pipeline)
        .map(|s| megatron_model::memory::params_per_gpu(model, pc.pipeline, pc.tensor, s))
        .max()
        .unwrap_or(0);
    let bytes = params * 30;
    cluster.gpu.elementwise(bytes, 4).seconds
}

/// Data-parallel gradient all-reduce time (fp16 gradients of the largest
/// per-GPU shard — the 2021 Megatron mixed-precision recipe all-reduces
/// fp16 gradients and keeps fp32 master state in the optimizer — ring over
/// the data group's real placement). Zero when d = 1.
pub fn data_parallel_all_reduce_time(
    model: &GptConfig,
    cluster: &ClusterSpec,
    pc: &ParallelConfig,
) -> f64 {
    if pc.data <= 1 {
        return 0.0;
    }
    let mapper = RankMapper::new(pc.pipeline, pc.tensor, pc.data);
    let params = (0..pc.pipeline)
        .map(|s| megatron_model::memory::params_per_gpu(model, pc.pipeline, pc.tensor, s))
        .max()
        .unwrap_or(0);
    let bytes = (params * megatron_model::BYTES_FP16) as f64;
    let group = mapper.data_group(0, 0);
    analytical::ring_all_reduce_time(cluster, &group, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use megatron_model::zoo;

    fn pc(p: u64, t: u64, d: u64, b: u64, batch: u64) -> ParallelConfig {
        ParallelConfig::new(p, t, d, b, batch)
    }

    #[test]
    fn backward_costs_more_than_forward() {
        let model = zoo::gpt_5p9b();
        let cluster = ClusterSpec::selene(16);
        let costs = price_stages(&model, &cluster, &pc(2, 2, 4, 1, 64), true, false);
        for c in &costs {
            assert!(c.backward > 1.5 * c.forward);
        }
    }

    #[test]
    fn recompute_adds_forward_to_backward() {
        let model = zoo::gpt_5p9b();
        let cluster = ClusterSpec::selene(16);
        let plain = price_stages(&model, &cluster, &pc(2, 2, 4, 1, 64), true, false);
        let rc = price_stages(&model, &cluster, &pc(2, 2, 4, 1, 64), true, true);
        for (a, b) in plain.iter().zip(&rc) {
            assert!(b.backward > a.backward);
            assert_eq!(a.forward, b.forward);
        }
    }

    #[test]
    fn first_and_last_stages_heavier() {
        let model = zoo::gpt_5p9b();
        let cluster = ClusterSpec::selene(16);
        let costs = price_stages(&model, &cluster, &pc(4, 2, 2, 1, 64), true, true);
        assert!(costs[0].forward > costs[1].forward, "embedding on stage 0");
        assert!(
            costs[3].forward > costs[1].forward,
            "logit layer on last stage"
        );
        assert_eq!(costs[1].forward, costs[2].forward);
    }

    #[test]
    fn cross_node_tensor_parallelism_is_expensive() {
        // t = 16 spans two nodes: all-reduces ride InfiniBand.
        let model = zoo::gpt_162b();
        let cluster = ClusterSpec::selene(64);
        let intra = price_stages(&model, &cluster, &pc(8, 8, 1, 1, 32), true, true);
        let inter = price_stages(&model, &cluster, &pc(4, 16, 1, 1, 32), true, true);
        // Per-stage the t=16 config has 2× the layers; compare per-layer
        // forward time.
        let intra_per_layer = intra[1].forward / (model.num_layers / 8) as f64;
        let inter_per_layer = inter[1].forward / (model.num_layers / 4) as f64;
        assert!(
            inter_per_layer > 1.3 * intra_per_layer,
            "intra {intra_per_layer} vs inter {inter_per_layer}"
        );
    }

    #[test]
    fn interleaving_splits_stage_cost() {
        let model = zoo::gpt_5p9b(); // 32 layers
        let cluster = ClusterSpec::selene(16);
        let whole = price_stages(&model, &cluster, &pc(4, 2, 2, 1, 64), true, false);
        let split = price_stages(
            &model,
            &cluster,
            &pc(4, 2, 2, 1, 64).with_chunks(2),
            true,
            false,
        );
        assert_eq!(split.len(), 8);
        // A middle chunk has half the layers of a middle whole stage.
        let rel = split[1].forward / whole[1].forward;
        assert!((rel - 0.5).abs() < 0.05, "got {rel}");
    }

    #[test]
    fn optimizer_and_dp_times_positive() {
        let model = zoo::gpt_5p9b();
        let cluster = ClusterSpec::selene(64);
        let c = pc(2, 2, 16, 1, 64);
        assert!(optimizer_step_time(&model, &cluster, &c) > 0.0);
        assert!(data_parallel_all_reduce_time(&model, &cluster, &c) > 0.0);
        let serial = pc(2, 2, 1, 1, 64);
        assert_eq!(
            data_parallel_all_reduce_time(&model, &cluster, &serial),
            0.0
        );
    }

    #[test]
    fn fusion_speeds_up_stages() {
        let model = zoo::gpt_5p9b();
        let cluster = ClusterSpec::selene(16);
        let fused = price_stages(&model, &cluster, &pc(2, 2, 4, 4, 64), true, true);
        let unfused = price_stages(&model, &cluster, &pc(2, 2, 4, 4, 64), false, true);
        assert!(unfused[0].forward > fused[0].forward);
        assert!(unfused[0].backward > fused[0].backward);
    }
}
