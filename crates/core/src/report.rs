//! Iteration reports: the metrics the paper's tables and figures present.

/// Communication volumes per iteration (per-GPU and aggregate).
#[derive(Debug, Clone, Copy, Default)]
pub struct CommVolumes {
    /// Pipeline point-to-point bytes crossing each stage boundary per GPU
    /// per iteration (both directions).
    pub pipeline_p2p_bytes_per_gpu: f64,
    /// Tensor-parallel all-reduce bytes per GPU per iteration.
    pub tensor_ar_bytes_per_gpu: f64,
    /// Data-parallel gradient all-reduce bytes per GPU per iteration.
    pub data_parallel_bytes_per_gpu: f64,
    /// Aggregate pipeline bytes crossing the cluster bisection per
    /// iteration (all data-parallel replicas).
    pub pipeline_bisection_bytes: f64,
    /// Aggregate data-parallel bytes crossing the bisection per iteration.
    pub data_parallel_bisection_bytes: f64,
}

/// Where the iteration time went (per-device averages).
#[derive(Debug, Clone, Copy, Default)]
pub struct TimeBreakdown {
    /// Mean compute busy time per pipeline device (includes tensor-parallel
    /// all-reduces, which are folded into stage costs).
    pub compute: f64,
    /// Mean pipeline network-port busy time per device.
    pub pipeline_comm: f64,
    /// Data-parallel all-reduce time.
    pub data_parallel: f64,
    /// Optimizer step time.
    pub optimizer: f64,
}

/// Everything the harness needs to regenerate the paper's reported numbers.
#[derive(Debug, Clone)]
pub struct IterationReport {
    /// End-to-end time of one training iteration, seconds.
    pub iteration_time: f64,
    /// Achieved teraFLOP/s per GPU (paper's headline metric; FLOPs counted
    /// per Eq. 3's convention — recomputation included when enabled).
    pub tflops_per_gpu: f64,
    /// Percentage of the device's theoretical peak.
    pub pct_of_peak: f64,
    /// Aggregate petaFLOP/s over all GPUs.
    pub aggregate_pflops: f64,
    /// Sequences processed per second (Figure 17's metric).
    pub sequences_per_second: f64,
    /// Analytical bubble fraction `(p−1)/(v·m)`.
    pub analytical_bubble_fraction: f64,
    /// Measured compute idleness: `1 − busy/makespan` averaged over pipeline
    /// devices (includes communication exposure, so ≥ the analytical value).
    pub measured_idle_fraction: f64,
    /// Communication volumes.
    pub comm: CommVolumes,
    /// Time breakdown.
    pub breakdown: TimeBreakdown,
    /// Peak per-GPU memory, bytes.
    pub memory_bytes_per_gpu: u64,
    /// GPUs in the run.
    pub n_gpus: u64,
}

impl IterationReport {
    /// Effective bisection bandwidth of pipeline point-to-point traffic
    /// (§5.9's 892 GB/s metric): bisection-crossing bytes / iteration time.
    pub fn pipeline_bisection_bandwidth(&self) -> f64 {
        self.comm.pipeline_bisection_bytes / self.iteration_time
    }

    /// Effective bisection bandwidth of data-parallel all-reduce traffic
    /// (§5.9's 13 TB/s metric): the rate *while* the gradient all-reduce is
    /// in flight, which is how the paper's counters report it.
    pub fn data_parallel_bisection_bandwidth(&self) -> f64 {
        if self.breakdown.data_parallel <= 0.0 {
            return 0.0;
        }
        self.comm.data_parallel_bisection_bytes / self.breakdown.data_parallel
    }
}
