//! Checkpoint load/save model (§5.10).
//!
//! The paper trains on an all-NVMe shared parallel filesystem. Checkpoint
//! I/O is bulk-bandwidth-bound: loads saturate the filesystem's peak read
//! bandwidth (1 TB/s on Selene); saves reach a fraction of peak write
//! bandwidth (the paper observed 40 %, 273 GB/s) because write traffic
//! funnels through fewer concurrent streams.

use megatron_model::{memory, GptConfig};

/// Shared parallel filesystem characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilesystemSpec {
    /// Peak aggregate read bandwidth, B/s.
    pub peak_read_bandwidth: f64,
    /// Peak aggregate write bandwidth, B/s.
    pub peak_write_bandwidth: f64,
    /// Fraction of peak write bandwidth checkpoint saves achieve.
    pub write_efficiency: f64,
    /// Per-node read bandwidth limit (NIC + local path), B/s.
    pub per_node_read_bandwidth: f64,
}

impl FilesystemSpec {
    /// Selene's all-NVMe Lustre-like filesystem.
    pub fn selene() -> Self {
        FilesystemSpec {
            peak_read_bandwidth: 1e12,
            peak_write_bandwidth: 683e9, // 273 GB/s observed at 40 % of peak
            write_efficiency: 0.40,
            per_node_read_bandwidth: 2.0 * 21.5e9, // two dedicated storage HCAs
        }
    }
}

/// Checkpoint I/O estimates for one model on one cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointIo {
    /// Checkpoint size, bytes.
    pub bytes: u64,
    /// Time for all nodes to load it, seconds.
    pub load_seconds: f64,
    /// Achieved aggregate read bandwidth, B/s.
    pub read_bandwidth: f64,
    /// Time to save it, seconds.
    pub save_seconds: f64,
    /// Achieved aggregate write bandwidth, B/s.
    pub write_bandwidth: f64,
}

impl CheckpointIo {
    /// Estimate checkpoint I/O for `model` loaded by `n_nodes` nodes.
    pub fn estimate(model: &GptConfig, fs: &FilesystemSpec, n_nodes: usize) -> Self {
        let bytes = memory::checkpoint_bytes(model);
        let read_bw = fs
            .peak_read_bandwidth
            .min(n_nodes as f64 * fs.per_node_read_bandwidth);
        let write_bw = fs.peak_write_bandwidth * fs.write_efficiency;
        CheckpointIo {
            bytes,
            load_seconds: bytes as f64 / read_bw,
            read_bandwidth: read_bw,
            save_seconds: bytes as f64 / write_bw,
            write_bandwidth: write_bw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megatron_model::zoo;

    #[test]
    fn trillion_model_matches_section_5_10() {
        let io = CheckpointIo::estimate(&zoo::gpt_1t(), &FilesystemSpec::selene(), 384);
        // 13.8 TB checkpoint.
        assert!((io.bytes as f64 / 1e12 - 13.8).abs() < 0.6);
        // Load saturates the 1 TB/s filesystem peak.
        assert!((io.read_bandwidth - 1e12).abs() < 1e9);
        // Save achieves 273 GB/s.
        assert!((io.write_bandwidth - 273e9).abs() / 273e9 < 0.01);
        // ⇒ ~14 s load, ~50 s save.
        assert!(io.load_seconds > 10.0 && io.load_seconds < 20.0);
        assert!(io.save_seconds > 40.0 && io.save_seconds < 60.0);
    }

    #[test]
    fn few_nodes_cannot_saturate_reads() {
        let io = CheckpointIo::estimate(&zoo::gpt_1t(), &FilesystemSpec::selene(), 4);
        assert!(io.read_bandwidth < 0.5e12);
    }
}
