//! End-to-end PTD-P training-iteration simulation — the paper's primary
//! contribution, composed from the substrate crates.
//!
//! A [`TrainingRun`] pairs a GPT model with a cluster, a
//! [`ParallelConfig`](megatron_parallel::ParallelConfig), and
//! [`TrainingOptions`] (schedule, scatter/gather, fusion, recomputation).
//! [`TrainingRun::simulate`] then:
//!
//! 1. prices every pipeline stage's forward/backward work from the op lists
//!    (`megatron-model`) on the roofline GPU model (`megatron-cluster`),
//!    including tensor-parallel all-reduces over the *actual* rank placement
//!    (`megatron-parallel` + `megatron-net` cost models) — so a tensor group
//!    spilling out of a node automatically pays InfiniBand prices;
//! 2. builds the pipeline schedule (`megatron-schedule`) and lowers it to a
//!    task DAG: compute tasks per (device, microbatch, chunk) and
//!    inter-stage transfers on per-device network ports (forward and
//!    backward traffic contend on the same port, as on real HCAs), with the
//!    §4.1 scatter/gather optimization selectable;
//! 3. appends the data-parallel gradient all-reduce and optimizer step;
//! 4. runs the discrete-event simulator and distills an
//!    [`IterationReport`]: iteration time, achieved FLOP/s per GPU, percent
//!    of peak, aggregate FLOP/s, bubble fraction, communication volumes,
//!    and per-GPU memory.

mod checkpoint;
mod costs;
mod report;
mod simulate;

pub use checkpoint::{CheckpointIo, FilesystemSpec};
pub use costs::StageCost;
pub use report::{CommVolumes, IterationReport, TimeBreakdown};
pub use simulate::{RunError, TrainingOptions, TrainingRun};
