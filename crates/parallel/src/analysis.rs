//! Analytical performance models from §3 of the paper.

use megatron_model::{GptConfig, BYTES_FP16};

/// Pipeline-bubble fraction `(p−1)/(v·m)` (§2.2.1–§2.2.2).
pub fn bubble_fraction(p: u64, m: u64, v: u64) -> f64 {
    assert!(p > 0 && m > 0 && v > 0);
    (p as f64 - 1.0) / (v as f64 * m as f64)
}

/// §3.3.1: bubble fraction as a function of data-parallel size `d` at fixed
/// `n` GPUs and `b′ = B/b` (t = 1): `(n − d)/b′`.
pub fn bubble_fraction_vs_data_parallel(n: u64, d: u64, b_prime: u64) -> f64 {
    assert!(d > 0 && d <= n && n.is_multiple_of(d), "d must divide n");
    (n - d) as f64 / b_prime as f64
}

/// Eq. 1: batch processing time `(b′/b + p − 1)·(t_f(b) + t_b(b))`, where
/// `b′ = B/d` and `t_f`, `t_b` map microbatch size to single-microbatch
/// forward / backward compute time.
pub fn eq1_batch_time(
    b_prime: u64,
    b: u64,
    p: u64,
    t_f: impl Fn(u64) -> f64,
    t_b: impl Fn(u64) -> f64,
) -> f64 {
    ((b_prime / b + p - 1) as f64) * (t_f(b) + t_b(b))
}

/// §3.2: bytes exchanged point-to-point between consecutive pipeline stages
/// per microbatch (per direction): `b·s·h` fp16 elements.
pub fn pipeline_p2p_bytes(cfg: &GptConfig, b: u64) -> u64 {
    b * cfg.seq_len * cfg.hidden_size * BYTES_FP16
}

/// §4.1: the same boundary transfer with the scatter/gather optimization —
/// `b·s·h/t` per InfiniBand link.
pub fn pipeline_p2p_bytes_scatter_gather(cfg: &GptConfig, b: u64, t: u64) -> u64 {
    pipeline_p2p_bytes(cfg, b).div_ceil(t)
}

/// §3.2: tensor-parallel communication per layer per device per microbatch:
/// `8·b·s·h·(t−1)/t` fp16 elements (four ring all-reduces of `b·s·h`, two in
/// the forward and two in the backward pass), in bytes.
pub fn tensor_parallel_bytes_per_layer(cfg: &GptConfig, b: u64, t: u64) -> f64 {
    if t <= 1 {
        return 0.0;
    }
    let elems = 8.0 * (b * cfg.seq_len * cfg.hidden_size) as f64 * (t as f64 - 1.0) / t as f64;
    elems * BYTES_FP16 as f64
}

/// §3.3.1: data-parallel gradient all-reduce traffic per device per
/// iteration: `2 · grad_bytes · (d−1)/d` (ring).
pub fn data_parallel_bytes(grad_bytes: u64, d: u64) -> f64 {
    if d <= 1 {
        return 0.0;
    }
    2.0 * grad_bytes as f64 * (d as f64 - 1.0) / d as f64
}

/// The §1/§5.4.1 "sub-optimal combinations can be 2× worse" probe: ratio of
/// total model-parallel communication bytes (per device, per microbatch,
/// per layer-stage traversal) between a configuration and the best one, for
/// qualitative comparisons in reports.
pub fn model_parallel_bytes_per_microbatch(
    cfg: &GptConfig,
    b: u64,
    t: u64,
    p: u64,
    scatter_gather: bool,
) -> f64 {
    let l_stage = cfg.num_layers.div_ceil(p);
    let tp = l_stage as f64 * tensor_parallel_bytes_per_layer(cfg, b, t);
    let p2p = if p > 1 {
        if scatter_gather {
            2.0 * pipeline_p2p_bytes_scatter_gather(cfg, b, t) as f64
        } else {
            2.0 * pipeline_p2p_bytes(cfg, b) as f64
        }
    } else {
        0.0
    };
    tp + p2p
}

#[cfg(test)]
mod tests {
    use super::*;
    use megatron_model::zoo;

    #[test]
    fn bubble_shrinks_with_more_microbatches() {
        assert!(bubble_fraction(8, 64, 1) < bubble_fraction(8, 16, 1));
        assert_eq!(bubble_fraction(8, 16, 1), 7.0 / 16.0);
    }

    #[test]
    fn interleaving_divides_bubble() {
        let base = bubble_fraction(8, 16, 1);
        assert!((bubble_fraction(8, 16, 4) - base / 4.0).abs() < 1e-12);
    }

    #[test]
    fn figure6_shape_bubble_vs_d() {
        // Figure 6: bubble decreases as d grows, for all (n, b′) pairs shown.
        for (n, b_prime) in [(32u64, 32u64), (32, 128), (128, 128), (128, 512)] {
            let mut last = f64::INFINITY;
            for d in [1u64, 2, 4, 8, 16, 32] {
                if n % d != 0 {
                    continue;
                }
                let frac = bubble_fraction_vs_data_parallel(n, d, b_prime);
                assert!(frac <= last, "n={n} b'={b_prime} d={d}");
                last = frac;
            }
        }
        // Spot values: n=32, d=1, b'=32 → 31/32; d=32 → 0.
        assert!((bubble_fraction_vs_data_parallel(32, 1, 32) - 31.0 / 32.0).abs() < 1e-12);
        assert_eq!(bubble_fraction_vs_data_parallel(32, 32, 32), 0.0);
    }

    #[test]
    fn eq1_penalizes_deep_pipelines_and_coarse_microbatches() {
        // Constant per-sample compute: time minimized at b balancing bubble
        // against kernel efficiency; with flat t_f/t_b it's monotone in b.
        let t_f = |b: u64| 1.0 * b as f64;
        let t_b = |b: u64| 2.0 * b as f64;
        let t1 = eq1_batch_time(128, 1, 8, t_f, t_b);
        let t2 = eq1_batch_time(128, 4, 8, t_f, t_b);
        // With perfectly linear kernels, larger b only adds bubble cost.
        assert!(t2 > t1);
        // Deeper pipeline with same b′: more bubble.
        assert!(eq1_batch_time(128, 1, 32, t_f, t_b) > t1);
    }

    #[test]
    fn p2p_bytes_match_bsh() {
        let cfg = zoo::gpt3_175b();
        let b = 2;
        assert_eq!(pipeline_p2p_bytes(&cfg, b), b * 2048 * 12288 * 2);
        assert_eq!(
            pipeline_p2p_bytes_scatter_gather(&cfg, b, 8),
            b * 2048 * 12288 * 2 / 8
        );
    }

    #[test]
    fn tensor_parallel_volume_has_t_minus_1_over_t_factor() {
        let cfg = zoo::gpt3_175b();
        let v2 = tensor_parallel_bytes_per_layer(&cfg, 1, 2);
        let v8 = tensor_parallel_bytes_per_layer(&cfg, 1, 8);
        assert!((v8 / v2 - (7.0 / 8.0) / (1.0 / 2.0)).abs() < 1e-12);
        assert_eq!(tensor_parallel_bytes_per_layer(&cfg, 1, 1), 0.0);
    }

    #[test]
    fn data_parallel_volume_saturates() {
        // §3.3.1: ring scales with (d−1)/d = 1 − 1/d.
        let g = 1 << 30;
        let v2 = data_parallel_bytes(g, 2);
        let v1024 = data_parallel_bytes(g, 1024);
        assert!(v1024 < 2.0 * v2);
        assert!(v1024 / (2.0 * g as f64) > 0.99);
        assert_eq!(data_parallel_bytes(g, 1), 0.0);
    }

    #[test]
    fn takeaway1_tensor_parallel_dominates_communication() {
        // Per §3.2: tensor parallelism moves far more bytes than pipeline
        // parallelism for realistic layer counts per stage.
        let cfg = zoo::gpt_162b();
        let tp = model_parallel_bytes_per_microbatch(&cfg, 1, 8, 1, false);
        let pp = model_parallel_bytes_per_microbatch(&cfg, 1, 1, 8, false);
        assert!(tp > 10.0 * pp, "tp {tp} vs pp {pp}");
    }
}
