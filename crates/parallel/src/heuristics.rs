//! The paper's configuration heuristics (§3 Takeaways #1–#3).
//!
//! The paper deliberately does not search the full strategy space (unlike
//! FlexFlow/PipeDream/DAPPLE); it offers heuristics "that we found work well
//! in practice". This module encodes them:
//!
//! - **Takeaway #1**: tensor parallelism up to the node size `g`, pipeline
//!   parallelism beyond that.
//! - **Takeaway #2**: total model-parallel size `M = t·p` just large enough
//!   for the model state + activations to fit; data parallelism scales out
//!   the rest.
//! - **Takeaway #3**: microbatch size chosen per problem by balancing
//!   arithmetic intensity against pipeline-bubble growth (Eq. 1).

use megatron_cluster::ClusterSpec;
use megatron_model::ops::{self, OpListParams};
use megatron_model::GptConfig;

use crate::analysis;
use crate::ParallelConfig;

/// Fraction of device memory the heuristic treats as usable for model state
/// and stashed activations. The rest is the practical overhead a real run
/// pays: CUDA context, NCCL communication buffers, cuBLAS workspaces,
/// allocator fragmentation, and the transient peak of the recomputation
/// forward pass. 0.62 × 80 GB ≈ 50 GB reproduces every (t, p) choice in the
/// paper's Table 1.
pub const USABLE_MEMORY_FRACTION: f64 = 0.62;

/// Per-device, per-microbatch forward and backward times (all layers a
/// device owns), including tensor-parallel all-reduces and the
/// recomputation forward pass if enabled. This is the `t_f(b)` / `t_b(b)`
/// pair Eq. 1 consumes.
pub fn stage_times(
    model: &GptConfig,
    cluster: &ClusterSpec,
    p: u64,
    t: u64,
    b: u64,
    fused: bool,
    recompute: bool,
) -> (f64, f64) {
    let params = OpListParams {
        microbatch: b,
        tensor_parallel: t,
        fused,
    };
    let layers_per_device = (model.num_layers as f64) / (p as f64);
    let gpu = &cluster.gpu;

    let (fwd_cost, fwd_ar) = ops::price_local(&ops::layer_forward(model, params), gpu);
    let (bwd_cost, bwd_ar) = ops::price_local(&ops::layer_backward(model, params), gpu);
    let ar = |bytes: u64| intra_node_all_reduce_time(cluster, t, bytes as f64);

    let mut t_f = fwd_cost.seconds + ar(fwd_ar);
    let mut t_b = bwd_cost.seconds + ar(bwd_ar);
    if recompute {
        t_b += t_f;
    }
    t_f *= layers_per_device;
    t_b *= layers_per_device;
    (t_f, t_b)
}

/// Ring all-reduce time over `t` ranks inside one node (NVLink):
/// `2(t−1)·(λ + bytes/(t·β))`. Matches `megatron_net::analytical` for
/// intra-node groups; duplicated here so the configuration layer stays free
/// of the event-simulation stack.
fn intra_node_all_reduce_time(cluster: &ClusterSpec, t: u64, bytes: f64) -> f64 {
    if t <= 1 {
        return 0.0;
    }
    let steps = 2.0 * (t as f64 - 1.0);
    steps * (cluster.node.nvlink_latency + bytes / (t as f64 * cluster.node.nvlink_bandwidth))
}

/// Why no configuration could be suggested.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NoValidConfig {
    /// Human-readable explanation.
    pub reason: String,
}

impl std::fmt::Display for NoValidConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no valid PTD-P configuration: {}", self.reason)
    }
}

impl std::error::Error for NoValidConfig {}

/// Suggest `(p, t, d, b)` for `model` on `cluster` at global batch `batch`,
/// following the takeaways. Interleaving (`chunks`) is left at 1; callers
/// wanting the §2.2.2 schedule can raise it afterwards (subject to
/// divisibility).
pub fn suggest_config(
    model: &GptConfig,
    cluster: &ClusterSpec,
    batch: u64,
) -> Result<ParallelConfig, NoValidConfig> {
    let n = cluster.total_gpus() as u64;
    let g = cluster.node.gpus_per_node as u64;
    let capacity = (cluster.gpu.mem_capacity as f64 * USABLE_MEMORY_FRACTION) as u64;

    // Candidate tensor sizes: powers of two up to the node size that divide
    // the attention heads (Takeaway #1 keeps t inside a node).
    let t_candidates: Vec<u64> = (0..)
        .map(|i| 1u64 << i)
        .take_while(|&t| t <= g)
        .filter(|&t| model.num_heads.is_multiple_of(t) && (4 * model.hidden_size).is_multiple_of(t))
        .collect();

    // Enumerate (t, p) by increasing model-parallel size, larger t first
    // (Takeaway #1), and take the first that fits in memory with b = 1
    // (Takeaway #2).
    let mut candidates: Vec<(u64, u64)> = Vec::new();
    for &t in &t_candidates {
        for p in 1..=(n / t) {
            if !model.num_layers.is_multiple_of(p) || (t * p > n) || !n.is_multiple_of(t * p) {
                continue;
            }
            let d = n / (t * p);
            if !batch.is_multiple_of(d) {
                continue;
            }
            candidates.push((t, p));
        }
    }
    candidates.sort_by_key(|&(t, p)| (t * p, std::cmp::Reverse(t)));

    let chosen = candidates
        .iter()
        .find(|&&(t, p)| {
            let d = n / (t * p);
            let c = ParallelConfig::new(p, t, d, 1, batch);
            c.validate_for_model(model, n, capacity, true).is_ok()
        })
        .copied()
        .ok_or_else(|| NoValidConfig {
            reason: format!(
                "model {} does not fit on {n} GPUs at any (t ≤ {g}, p ≤ {n}) combination",
                model.name
            ),
        })?;

    let (t, p) = chosen;
    let d = n / (t * p);

    // Takeaway #3: pick b minimizing Eq. 1 among microbatch sizes that keep
    // the batch divisible and the memory within capacity.
    let b_prime = batch / d;
    let mut best: Option<(u64, f64)> = None;
    for b in [1u64, 2, 4, 8, 16] {
        if !b_prime.is_multiple_of(b) {
            continue;
        }
        let c = ParallelConfig::new(p, t, d, b, batch);
        if c.validate_for_model(model, n, capacity, true).is_err() {
            continue;
        }
        let (tf, tb) = stage_times(model, cluster, p, t, b, true, true);
        let time = analysis::eq1_batch_time(b_prime, b, p, |_| tf, |_| tb);
        if best.is_none_or(|(_, t0)| time < t0) {
            best = Some((b, time));
        }
    }
    let (b, _) = best.ok_or_else(|| NoValidConfig {
        reason: "no microbatch size fits".to_string(),
    })?;

    Ok(ParallelConfig::new(p, t, d, b, batch))
}

/// Exhaustively enumerate all valid configurations (for the ablation that
/// checks the heuristic against brute force). Returns configs with b = 1;
/// microbatch refinement is orthogonal.
pub fn enumerate_configs(
    model: &GptConfig,
    cluster: &ClusterSpec,
    batch: u64,
) -> Vec<ParallelConfig> {
    let n = cluster.total_gpus() as u64;
    let capacity = cluster.gpu.mem_capacity;
    let mut out = Vec::new();
    for t in 1..=n {
        if !n.is_multiple_of(t) {
            continue;
        }
        for p in 1..=(n / t) {
            if !(n / t).is_multiple_of(p) {
                continue;
            }
            let d = n / (t * p);
            let c = ParallelConfig::new(p, t, d, 1, batch);
            if c.validate_for_model(model, n, capacity, true).is_ok() {
                out.push(c);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use megatron_model::zoo;

    #[test]
    fn small_model_gets_pure_data_parallelism() {
        // Table 1 row 1: 1.7B on 32 GPUs → (t, p) = (1, 1).
        let cluster = ClusterSpec::selene(32);
        let row = &zoo::table1()[0];
        let c = suggest_config(&row.config, &cluster, row.batch_size).unwrap();
        assert_eq!((c.tensor, c.pipeline), (1, 1));
        assert_eq!(c.data, 32);
    }

    #[test]
    fn medium_models_grow_tensor_parallelism_first() {
        // Table 1 rows 2–4 use t ∈ {2, 4, 8} with p = 1.
        for (i, want_t) in [(1usize, 2u64), (2, 4), (3, 8)] {
            let row = &zoo::table1()[i];
            let cluster = ClusterSpec::selene(row.n_gpus as usize);
            let c = suggest_config(&row.config, &cluster, row.batch_size).unwrap();
            assert_eq!(c.pipeline, 1, "{}", row.config.name);
            assert_eq!(c.tensor, want_t, "{}", row.config.name);
        }
    }

    #[test]
    fn large_models_add_pipeline_parallelism() {
        // Table 1 row 7 (145.6B, 1536 GPUs): paper used (t, p) = (8, 8).
        let row = &zoo::table1()[6];
        let cluster = ClusterSpec::selene(row.n_gpus as usize);
        let c = suggest_config(&row.config, &cluster, row.batch_size).unwrap();
        assert_eq!(c.tensor, 8);
        assert!(
            c.pipeline >= 4,
            "expect deep pipeline, got p={}",
            c.pipeline
        );
        c.validate_for_model(&row.config, row.n_gpus, cluster.gpu.mem_capacity, true)
            .unwrap();
    }

    #[test]
    fn trillion_parameter_model_on_3072_gpus() {
        let row = &zoo::table1()[9];
        let cluster = ClusterSpec::selene(3072);
        let c = suggest_config(&row.config, &cluster, row.batch_size).unwrap();
        assert_eq!(c.tensor, 8, "Takeaway #1: t = node size");
        assert!(c.pipeline >= 32, "needs deep pipeline, got {}", c.pipeline);
        assert_eq!(c.n_gpus(), 3072);
    }

    #[test]
    fn impossible_model_is_rejected() {
        // A trillion-parameter model on 8 GPUs cannot fit.
        let cluster = ClusterSpec::selene(8);
        assert!(suggest_config(&zoo::gpt_1t(), &cluster, 8).is_err());
    }

    #[test]
    fn stage_times_scale_with_microbatch() {
        let cluster = ClusterSpec::selene(64);
        let model = zoo::gpt_5p9b();
        let (f1, b1) = stage_times(&model, &cluster, 2, 2, 1, true, true);
        let (f4, b4) = stage_times(&model, &cluster, 2, 2, 4, true, true);
        // 4× the samples in less than 4× the time (better utilization).
        assert!(f4 < 4.0 * f1 && f4 > f1);
        assert!(b4 < 4.0 * b1 && b4 > b1);
    }

    #[test]
    fn backward_slower_than_forward() {
        let cluster = ClusterSpec::selene(64);
        let model = zoo::gpt_5p9b();
        let (f, b) = stage_times(&model, &cluster, 2, 2, 2, true, false);
        assert!(b > 1.5 * f && b < 3.0 * f, "t_b/t_f = {}", b / f);
    }

    #[test]
    fn recompute_adds_a_forward_to_backward() {
        let cluster = ClusterSpec::selene(64);
        let model = zoo::gpt_5p9b();
        let (f, b_no) = stage_times(&model, &cluster, 2, 2, 2, true, false);
        let (_, b_yes) = stage_times(&model, &cluster, 2, 2, 2, true, true);
        assert!((b_yes - b_no - f).abs() / f < 1e-9);
    }

    #[test]
    fn enumerate_includes_heuristic_choice() {
        let cluster = ClusterSpec::selene(64);
        let model = zoo::gpt_5p9b();
        let all = enumerate_configs(&model, &cluster, 128);
        let pick = suggest_config(&model, &cluster, 128).unwrap();
        assert!(all
            .iter()
            .any(|c| (c.pipeline, c.tensor, c.data) == (pick.pipeline, pick.tensor, pick.data)));
        assert!(all.len() > 5, "5.9B model should admit many configs");
    }
}
