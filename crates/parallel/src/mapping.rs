//! Rank ↔ coordinate mapping and process-group enumeration.
//!
//! Megatron's placement order puts tensor-parallel ranks innermost
//! (contiguous global ranks → same node when `t ≤` GPUs per node), then
//! data-parallel, then pipeline-parallel outermost:
//!
//! `rank = pipeline · (t·d) + data · t + tensor`
//!
//! With this layout on 8-GPU nodes and `t = 8`:
//! - a tensor group is exactly one node (all-reduce over NVLink — Takeaway #1);
//! - a data group strides by `t`, so each hop lands on the same local GPU
//!   index of another node and rides that GPU's own InfiniBand HCA;
//! - consecutive pipeline stages occupy different nodes (point-to-point over
//!   InfiniBand, the cheap kind of cross-node traffic).

/// Logical coordinate of a GPU in the PTD-P grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Pipeline stage index, `0..p`.
    pub pipeline: u64,
    /// Data-parallel replica index, `0..d`.
    pub data: u64,
    /// Tensor-parallel rank, `0..t`.
    pub tensor: u64,
}

/// Bijective map between global ranks and [`Coord`]s for a `(p, t, d)` grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankMapper {
    /// Pipeline-parallel size.
    pub p: u64,
    /// Tensor-parallel size.
    pub t: u64,
    /// Data-parallel size.
    pub d: u64,
}

impl RankMapper {
    /// Build a mapper; panics on zero sizes.
    pub fn new(p: u64, t: u64, d: u64) -> Self {
        assert!(p > 0 && t > 0 && d > 0, "sizes must be positive");
        RankMapper { p, t, d }
    }

    /// Total ranks `n = p·t·d`.
    pub fn n(&self) -> u64 {
        self.p * self.t * self.d
    }

    /// Global rank of a coordinate.
    pub fn rank(&self, c: Coord) -> u64 {
        debug_assert!(c.pipeline < self.p && c.data < self.d && c.tensor < self.t);
        c.pipeline * (self.t * self.d) + c.data * self.t + c.tensor
    }

    /// Coordinate of a global rank.
    pub fn coord(&self, rank: u64) -> Coord {
        debug_assert!(rank < self.n());
        let per_stage = self.t * self.d;
        Coord {
            pipeline: rank / per_stage,
            data: (rank % per_stage) / self.t,
            tensor: rank % self.t,
        }
    }

    /// The `t` ranks of one tensor-parallel group (fixed pipeline stage and
    /// data replica), in tensor-rank order.
    pub fn tensor_group(&self, pipeline: u64, data: u64) -> Vec<usize> {
        (0..self.t)
            .map(|tensor| {
                self.rank(Coord {
                    pipeline,
                    data,
                    tensor,
                }) as usize
            })
            .collect()
    }

    /// The `p` ranks of one pipeline group (fixed data replica and tensor
    /// rank), in stage order.
    pub fn pipeline_group(&self, data: u64, tensor: u64) -> Vec<usize> {
        (0..self.p)
            .map(|pipeline| {
                self.rank(Coord {
                    pipeline,
                    data,
                    tensor,
                }) as usize
            })
            .collect()
    }

    /// The `d` ranks of one data-parallel group (fixed pipeline stage and
    /// tensor rank), in replica order.
    pub fn data_group(&self, pipeline: u64, tensor: u64) -> Vec<usize> {
        (0..self.d)
            .map(|data| {
                self.rank(Coord {
                    pipeline,
                    data,
                    tensor,
                }) as usize
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bijective() {
        let m = RankMapper::new(4, 8, 3);
        let mut seen = std::collections::HashSet::new();
        for r in 0..m.n() {
            let c = m.coord(r);
            assert_eq!(m.rank(c), r);
            assert!(seen.insert((c.pipeline, c.data, c.tensor)));
        }
        assert_eq!(seen.len() as u64, m.n());
    }

    #[test]
    fn tensor_groups_are_contiguous() {
        let m = RankMapper::new(2, 8, 2);
        assert_eq!(m.tensor_group(0, 0), (0..8).collect::<Vec<_>>());
        assert_eq!(m.tensor_group(0, 1), (8..16).collect::<Vec<_>>());
        assert_eq!(m.tensor_group(1, 0), (16..24).collect::<Vec<_>>());
    }

    #[test]
    fn tensor_group_fits_one_node_when_t_is_8() {
        // Takeaway #1 placement: every tensor group within one 8-GPU node.
        let m = RankMapper::new(4, 8, 4);
        for p in 0..4 {
            for d in 0..4 {
                let g = m.tensor_group(p, d);
                let node = g[0] / 8;
                assert!(g.iter().all(|&r| r / 8 == node), "group {g:?}");
            }
        }
    }

    #[test]
    fn data_group_strides_by_t() {
        let m = RankMapper::new(2, 8, 4);
        assert_eq!(m.data_group(0, 3), vec![3, 11, 19, 27]);
    }

    #[test]
    fn data_group_same_local_gpu_index() {
        // Each data-parallel ring hop uses the same local GPU slot (its own
        // HCA) on a different node.
        let m = RankMapper::new(2, 8, 4);
        for t in 0..8 {
            let g = m.data_group(1, t);
            let local = g[0] % 8;
            assert!(g.iter().all(|&r| r % 8 == local));
            let mut nodes: Vec<usize> = g.iter().map(|&r| r / 8).collect();
            nodes.dedup();
            assert_eq!(nodes.len(), g.len(), "all replicas on distinct nodes");
        }
    }

    #[test]
    fn pipeline_group_strides_by_td() {
        let m = RankMapper::new(4, 8, 2);
        assert_eq!(m.pipeline_group(1, 2), vec![10, 26, 42, 58]);
    }

    #[test]
    fn groups_partition_all_ranks() {
        let m = RankMapper::new(3, 4, 5);
        let mut count = vec![0u32; m.n() as usize];
        for p in 0..m.p {
            for d in 0..m.d {
                for r in m.tensor_group(p, d) {
                    count[r] += 1;
                }
            }
        }
        assert!(count.iter().all(|&c| c == 1), "tensor groups partition");
        let mut count = vec![0u32; m.n() as usize];
        for d in 0..m.d {
            for t in 0..m.t {
                for r in m.pipeline_group(d, t) {
                    count[r] += 1;
                }
            }
        }
        assert!(count.iter().all(|&c| c == 1), "pipeline groups partition");
        let mut count = vec![0u32; m.n() as usize];
        for p in 0..m.p {
            for t in 0..m.t {
                for r in m.data_group(p, t) {
                    count[r] += 1;
                }
            }
        }
        assert!(count.iter().all(|&c| c == 1), "data groups partition");
    }
}
