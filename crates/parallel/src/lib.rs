//! PTD-P parallel configurations (§3 of the paper).
//!
//! A [`ParallelConfig`] fixes the parallelization dimensions `(p, t, d)`,
//! the microbatch size `b`, the global batch size `B`, and the interleaving
//! degree `v`. This crate provides:
//!
//! - validation of the §3.1 constraints (`p·t·d = n`, `m = B/(b·d)`
//!   integral, interleaving divisibility);
//! - the Megatron rank ↔ (pipeline, data, tensor) mapping and process-group
//!   enumeration ([`RankMapper`]) — tensor-parallel innermost so tensor
//!   groups land inside a node, pipeline outermost so consecutive stages
//!   land on different nodes;
//! - the §3 analytical models ([`analysis`]): bubble fraction, Eq. 1
//!   processing time, and per-dimension communication volumes;
//! - the paper's configuration heuristics, Takeaways #1–#3
//!   ([`heuristics`]).

pub mod analysis;
pub mod heuristics;
mod mapping;

pub use mapping::{Coord, RankMapper};

/// A full PTD-P parallelization choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Pipeline-model-parallel size `p`.
    pub pipeline: u64,
    /// Tensor-model-parallel size `t`.
    pub tensor: u64,
    /// Data-parallel size `d`.
    pub data: u64,
    /// Microbatch size `b`.
    pub microbatch: u64,
    /// Global batch size `B`.
    pub batch: u64,
    /// Interleaving degree `v` (model chunks per device; 1 = none).
    pub chunks: u64,
}

/// Reasons a [`ParallelConfig`] is invalid for a given cluster/model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `p·t·d` differs from the GPU count.
    WrongGpuCount {
        /// `p·t·d` of the config.
        implied: u64,
        /// GPUs available.
        actual: u64,
    },
    /// `B` is not divisible by `d·b` (m must be integral).
    IndivisibleBatch {
        /// Global batch size.
        batch: u64,
        /// `d·b`.
        divisor: u64,
    },
    /// Interleaving requires `m` to be a multiple of `p`.
    IndivisibleInterleaving {
        /// Microbatches per pipeline.
        m: u64,
        /// Pipeline size.
        p: u64,
    },
    /// Model layers don't divide evenly into `p·v` stages.
    IndivisibleLayers {
        /// Number of layers.
        layers: u64,
        /// `p·v` stages.
        stages: u64,
    },
    /// Tensor-parallel size doesn't divide the attention heads.
    IndivisibleHeads {
        /// Attention heads.
        heads: u64,
        /// Tensor-parallel size.
        t: u64,
    },
    /// The per-GPU memory footprint exceeds device capacity.
    OutOfMemory {
        /// Required bytes.
        required: u64,
        /// Capacity bytes.
        capacity: u64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::WrongGpuCount { implied, actual } => {
                write!(f, "p·t·d = {implied} but cluster has {actual} GPUs")
            }
            ConfigError::IndivisibleBatch { batch, divisor } => {
                write!(f, "batch {batch} not divisible by d·b = {divisor}")
            }
            ConfigError::IndivisibleInterleaving { m, p } => {
                write!(f, "interleaving needs m ({m}) divisible by p ({p})")
            }
            ConfigError::IndivisibleLayers { layers, stages } => {
                write!(f, "{layers} layers don't divide into {stages} stages")
            }
            ConfigError::IndivisibleHeads { heads, t } => {
                write!(f, "t = {t} doesn't divide {heads} attention heads")
            }
            ConfigError::OutOfMemory { required, capacity } => {
                write!(
                    f,
                    "needs {} GiB > {} GiB capacity",
                    required >> 30,
                    capacity >> 30
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl ParallelConfig {
    /// A config with no interleaving.
    pub fn new(pipeline: u64, tensor: u64, data: u64, microbatch: u64, batch: u64) -> Self {
        ParallelConfig {
            pipeline,
            tensor,
            data,
            microbatch,
            batch,
            chunks: 1,
        }
    }

    /// Builder-style interleaving degree.
    #[must_use]
    pub fn with_chunks(mut self, v: u64) -> Self {
        self.chunks = v;
        self
    }

    /// Total GPUs implied, `n = p·t·d`.
    pub fn n_gpus(&self) -> u64 {
        self.pipeline * self.tensor * self.data
    }

    /// Microbatches per pipeline per iteration, `m = B / (b·d)` (§3.1).
    pub fn microbatches(&self) -> u64 {
        self.batch / (self.microbatch * self.data)
    }

    /// Analytical pipeline-bubble fraction `(p−1)/(v·m)` (§2.2).
    pub fn bubble_fraction(&self) -> f64 {
        analysis::bubble_fraction(self.pipeline, self.microbatches(), self.chunks)
    }

    /// Check the arithmetic constraints of §3.1 (GPU count, batch
    /// divisibility, interleaving divisibility). Model- and memory-dependent
    /// checks live in [`ParallelConfig::validate_for_model`].
    pub fn validate(&self, n_gpus: u64) -> Result<(), ConfigError> {
        assert!(
            self.pipeline > 0
                && self.tensor > 0
                && self.data > 0
                && self.microbatch > 0
                && self.batch > 0
                && self.chunks > 0,
            "all dimensions must be positive"
        );
        if self.n_gpus() != n_gpus {
            return Err(ConfigError::WrongGpuCount {
                implied: self.n_gpus(),
                actual: n_gpus,
            });
        }
        let divisor = self.data * self.microbatch;
        if !self.batch.is_multiple_of(divisor) {
            return Err(ConfigError::IndivisibleBatch {
                batch: self.batch,
                divisor,
            });
        }
        let m = self.microbatches();
        if self.chunks > 1 && !m.is_multiple_of(self.pipeline) {
            return Err(ConfigError::IndivisibleInterleaving {
                m,
                p: self.pipeline,
            });
        }
        Ok(())
    }

    /// Full validation against a model and GPU memory capacity: §3.1
    /// constraints plus layer/head divisibility plus the Takeaway-#2 memory
    /// fit (1F1B in-flight bound of `p` microbatches, with recomputation
    /// selectable).
    pub fn validate_for_model(
        &self,
        model: &megatron_model::GptConfig,
        n_gpus: u64,
        mem_capacity: u64,
        recompute: bool,
    ) -> Result<(), ConfigError> {
        self.validate(n_gpus)?;
        let stages = self.pipeline * self.chunks;
        if !model.num_layers.is_multiple_of(stages) {
            return Err(ConfigError::IndivisibleLayers {
                layers: model.num_layers,
                stages,
            });
        }
        if !model.num_heads.is_multiple_of(self.tensor) {
            return Err(ConfigError::IndivisibleHeads {
                heads: model.num_heads,
                t: self.tensor,
            });
        }
        let in_flight = self.pipeline.min(self.microbatches()) * self.chunks;
        let required = megatron_model::memory::total_bytes_per_gpu(
            model,
            self.pipeline,
            self.tensor,
            self.microbatch,
            in_flight,
            recompute,
        );
        if required > mem_capacity {
            return Err(ConfigError::OutOfMemory {
                required,
                capacity: mem_capacity,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megatron_model::zoo;

    #[test]
    fn microbatch_count() {
        let c = ParallelConfig::new(8, 8, 6, 1, 3072);
        assert_eq!(c.microbatches(), 512);
        assert_eq!(c.n_gpus(), 384);
    }

    #[test]
    fn validate_accepts_table1_trillion_row() {
        let c = ParallelConfig::new(64, 8, 6, 1, 3072);
        c.validate(3072).unwrap();
    }

    #[test]
    fn validate_rejects_wrong_gpu_count() {
        let c = ParallelConfig::new(8, 8, 8, 1, 512);
        assert!(matches!(
            c.validate(256),
            Err(ConfigError::WrongGpuCount { implied: 512, .. })
        ));
    }

    #[test]
    fn validate_rejects_indivisible_batch() {
        let c = ParallelConfig::new(2, 2, 3, 2, 100);
        assert!(matches!(
            c.validate(12),
            Err(ConfigError::IndivisibleBatch { .. })
        ));
    }

    #[test]
    fn validate_rejects_bad_interleaving() {
        // m = 6, p = 4 → not divisible.
        let c = ParallelConfig::new(4, 1, 1, 1, 6).with_chunks(2);
        assert!(matches!(
            c.validate(4),
            Err(ConfigError::IndivisibleInterleaving { m: 6, p: 4 })
        ));
    }

    #[test]
    fn validate_for_model_checks_layers_and_heads() {
        let model = zoo::gpt_5p9b(); // 32 layers, 32 heads
        let cap = 80 * (1u64 << 30);
        let bad_layers = ParallelConfig::new(5, 1, 1, 1, 10);
        assert!(matches!(
            bad_layers.validate_for_model(&model, 5, cap, true),
            Err(ConfigError::IndivisibleLayers { .. })
        ));
        let bad_heads = ParallelConfig::new(1, 64, 1, 1, 8);
        assert!(matches!(
            bad_heads.validate_for_model(&model, 64, cap, true),
            Err(ConfigError::IndivisibleHeads { .. })
        ));
    }

    #[test]
    fn validate_for_model_catches_oom() {
        // GPT-3 on a single GPU: hopeless.
        let model = zoo::gpt3_175b();
        let c = ParallelConfig::new(1, 1, 1, 1, 8);
        assert!(matches!(
            c.validate_for_model(&model, 1, 80 * (1 << 30), true),
            Err(ConfigError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn bubble_fraction_matches_formula() {
        let c = ParallelConfig::new(8, 8, 6, 1, 3072).with_chunks(2);
        // m = 512, p = 8, v = 2 → 7/1024.
        assert!((c.bubble_fraction() - 7.0 / 1024.0).abs() < 1e-12);
    }
}
