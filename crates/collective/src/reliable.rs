//! Self-healing delivery over unreliable transports.
//!
//! The paper's cost models assume a healthy cluster, but at PTD-P scale the
//! dominant failures are *transient*: a dropped message, a duplicated
//! delivery, a briefly degraded link. Reacting to those with the full
//! timeout → poison → checkpoint-restore machinery (see `dist::supervisor`)
//! costs seconds of goodput for a fault whose natural cost is microseconds.
//! This module absorbs transient faults inside the collective instead:
//!
//! - [`FaultyTransport`] wraps any [`Transport`] and injects seeded,
//!   deterministic transient faults (drop / duplicate / delay /
//!   link-degrade slowdown) on the send side — the adversary.
//! - [`ReliableTransport`] wraps a [`PollTransport`] and recovers from
//!   those faults: every chunk is framed with a per-edge sequence number,
//!   the sender logs each frame in a shared [`RetransmitStore`] *before*
//!   it reaches the faulty wire, and a receiver that times out on a short
//!   poll recovers the missing frame directly from the store (the way a
//!   reliable NIC retransmits below the application). Duplicates are
//!   discarded by sequence number; recovery is bounded by a
//!   [`RetryPolicy`] budget so a genuinely dead peer still surfaces the
//!   transport's own hard error.
//!
//! Recovery is *receiver-driven* on purpose: a rank may legally finish its
//! last round and exit while a peer is still waiting on a chunk the wire
//! dropped, so asking the sender to retransmit could deadlock. Pulling from
//! the shared store never blocks on a peer thread, which is what makes the
//! chaos harness's "every collective terminates" invariant provable.
//!
//! Because recovery is lossless and does not alter the per-rank combine
//! order, results under transient faults are bit-identical to a fault-free
//! run — only timing changes.
//!
//! **Cross-process scope.** The [`RetransmitStore`] is in-memory and
//! therefore only heals faults *within* one address space. When ranks are
//! separate OS processes, a mid-frame sever leaves the loss on the kernel
//! socket, where this layer cannot see it; recovery there is the socket
//! channel's own sender-side replay log (`SocketChannel::enable_replay`,
//! armed by `dist`'s socket transport whenever retry is on), which resends
//! its recent frame window after a reconnect. The two layers compose
//! because this module's sequence numbers make the replayed duplicates
//! harmless: `next_expected` discards them exactly like wire-duplicated
//! frames.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;
use std::time::Duration;

use crate::Transport;

/// A [`Transport`] that can also wait a *bounded* time for the next chunk.
///
/// `recv_within` returning `Ok(None)` means "nothing arrived within
/// `wait`" and must leave the transport healthy — the caller may poll
/// again or recover the chunk elsewhere. A hard error (overall deadline
/// exceeded, poisoned peer) is still reported through `Err`, exactly as
/// [`Transport::recv`] would.
pub trait PollTransport: Transport {
    /// Wait up to `wait` for the next chunk from `from`.
    fn recv_within(&mut self, from: usize, wait: Duration)
        -> Result<Option<Vec<f32>>, Self::Error>;
}

/// Elements prepended to every payload by the reliable layer: a per-edge
/// sequence number split into two exactly-representable f32 words.
pub const FRAME_HEADER_ELEMS: usize = 2;

/// Sequence numbers are carried in two 24-bit halves (f32 represents
/// integers up to 2^24 exactly), bounding a single edge to 2^48 frames.
const SEQ_HALF_BITS: u32 = 24;

/// Prepend `seq` to `payload` as two exactly-representable f32 words.
fn encode_frame(seq: u64, payload: &[f32]) -> Vec<f32> {
    assert!(seq < 1 << (2 * SEQ_HALF_BITS), "per-edge sequence overflow");
    let mut frame = Vec::with_capacity(FRAME_HEADER_ELEMS + payload.len());
    frame.push((seq >> SEQ_HALF_BITS) as f32);
    frame.push((seq & ((1 << SEQ_HALF_BITS) - 1)) as f32);
    frame.extend_from_slice(payload);
    frame
}

/// Split a framed chunk back into (sequence number, payload).
fn decode_frame(frame: &[f32]) -> (u64, &[f32]) {
    assert!(
        frame.len() >= FRAME_HEADER_ELEMS,
        "frame shorter than header"
    );
    let hi = frame[0] as u64;
    let lo = frame[1] as u64;
    ((hi << SEQ_HALF_BITS) | lo, &frame[FRAME_HEADER_ELEMS..])
}

/// SplitMix64: tiny, seedable, and good enough for fault injection. Kept
/// inline because this crate is deliberately dependency-free.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Mix two seed words into one (for deriving per-rank / per-operation
/// fault streams from a base chaos seed, deterministically).
pub fn mix_seed(a: u64, b: u64) -> u64 {
    let mut rng = SplitMix64(a ^ b.rotate_left(32));
    rng.next_u64()
}

/// Transient-fault profile injected by [`FaultyTransport`].
///
/// Probabilities are per send. `degrade_factor` models a degraded link
/// (`FaultKind::LinkDegrade`): every send is slowed to `factor ×` its
/// nominal wire time of `wire_ns_per_elem · elems` nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientFaults {
    /// Probability a send never reaches the wire.
    pub drop_prob: f64,
    /// Probability a send is delivered twice.
    pub duplicate_prob: f64,
    /// Probability a send is held back by `delay` before posting.
    pub delay_prob: f64,
    /// Hold-back applied to delayed sends.
    pub delay: Duration,
    /// Link slowdown factor (≥ 1.0; 1.0 = healthy link).
    pub degrade_factor: f64,
    /// Nominal per-element wire time the degrade factor multiplies.
    pub wire_ns_per_elem: f64,
}

impl Default for TransientFaults {
    fn default() -> Self {
        TransientFaults {
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            delay_prob: 0.0,
            delay: Duration::from_micros(500),
            degrade_factor: 1.0,
            wire_ns_per_elem: 2.0,
        }
    }
}

impl TransientFaults {
    /// Does this profile inject anything at all?
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0
            || self.duplicate_prob > 0.0
            || self.delay_prob > 0.0
            || self.degrade_factor > 1.0
    }
}

/// What a [`FaultyTransport`] actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultTally {
    /// Sends silently dropped.
    pub dropped: u64,
    /// Sends delivered twice.
    pub duplicated: u64,
    /// Sends held back by the delay fault.
    pub delayed: u64,
    /// Sends slowed by the link-degrade factor.
    pub degraded: u64,
}

impl FaultTally {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.dropped + self.duplicated + self.delayed + self.degraded
    }

    /// Element-wise sum (for aggregating across transports).
    pub fn plus(&self, other: &FaultTally) -> FaultTally {
        FaultTally {
            dropped: self.dropped + other.dropped,
            duplicated: self.duplicated + other.duplicated,
            delayed: self.delayed + other.delayed,
            degraded: self.degraded + other.degraded,
        }
    }
}

/// Seeded transient-fault injector over any [`Transport`].
///
/// Faults act on the send side only (the wire is where messages are lost),
/// so FIFO delivery order per edge is preserved: a delayed or degraded
/// send sleeps *before* posting, and later sends from the same rank post
/// after it. Three uniform draws are consumed per send regardless of
/// outcome, so the random stream position — and therefore every subsequent
/// fault decision — depends only on the seed and the send count.
#[derive(Debug)]
pub struct FaultyTransport<T> {
    inner: T,
    rng: SplitMix64,
    faults: TransientFaults,
    tally: FaultTally,
}

impl<T> FaultyTransport<T> {
    /// Wrap `inner`, injecting `faults` from the deterministic `seed`.
    pub fn new(inner: T, faults: TransientFaults, seed: u64) -> Self {
        FaultyTransport {
            inner,
            rng: SplitMix64(mix_seed(seed, 0x6661_756c_7479)), // "faulty"
            faults,
            tally: FaultTally::default(),
        }
    }

    /// Faults injected so far.
    pub fn tally(&self) -> FaultTally {
        self.tally
    }

    /// Unwrap, returning the inner transport and the final tally.
    pub fn into_parts(self) -> (T, FaultTally) {
        (self.inner, self.tally)
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    type Error = T::Error;

    fn send(&mut self, to: usize, payload: &[f32]) -> Result<(), Self::Error> {
        let (r_drop, r_dup, r_delay) = (
            self.rng.next_f64(),
            self.rng.next_f64(),
            self.rng.next_f64(),
        );
        if self.faults.degrade_factor > 1.0 {
            let extra_ns = self.faults.wire_ns_per_elem
                * payload.len() as f64
                * (self.faults.degrade_factor - 1.0);
            std::thread::sleep(Duration::from_nanos(extra_ns as u64));
            self.tally.degraded += 1;
        }
        if r_drop < self.faults.drop_prob {
            self.tally.dropped += 1;
            return Ok(()); // lost on the wire
        }
        if r_delay < self.faults.delay_prob {
            self.tally.delayed += 1;
            std::thread::sleep(self.faults.delay);
        }
        self.inner.send(to, payload)?;
        if r_dup < self.faults.duplicate_prob {
            self.tally.duplicated += 1;
            self.inner.send(to, payload)?;
        }
        Ok(())
    }

    fn recv(&mut self, from: usize) -> Result<Vec<f32>, Self::Error> {
        self.inner.recv(from)
    }
}

impl<T: PollTransport> PollTransport for FaultyTransport<T> {
    fn recv_within(
        &mut self,
        from: usize,
        wait: Duration,
    ) -> Result<Option<Vec<f32>>, Self::Error> {
        self.inner.recv_within(from, wait)
    }
}

/// Retry/retransmit parameters of the reliable layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First poll interval; doubles per miss (exponential backoff).
    pub base_backoff: Duration,
    /// Upper bound on the per-attempt poll interval.
    pub max_backoff: Duration,
    /// Maximum store recoveries per transport before the layer gives up
    /// and lets the underlying hard timeout surface.
    pub retransmit_budget: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(100),
            retransmit_budget: 64,
        }
    }
}

/// What a [`ReliableTransport`] did to keep a collective alive.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Poll attempts that timed out and triggered a recovery check.
    pub retries: u64,
    /// Frames recovered from the [`RetransmitStore`].
    pub retransmits: u64,
    /// Frames discarded as already-delivered duplicates.
    pub duplicates_dropped: u64,
}

impl RetryStats {
    /// Element-wise sum (for aggregating across transports).
    pub fn plus(&self, other: &RetryStats) -> RetryStats {
        RetryStats {
            retries: self.retries + other.retries,
            retransmits: self.retransmits + other.retransmits,
            duplicates_dropped: self.duplicates_dropped + other.duplicates_dropped,
        }
    }
}

/// Per-directed-edge reliable-delivery state.
#[derive(Debug, Default)]
struct EdgeState {
    /// Next sequence number the sender will stamp.
    next_seq: u64,
    /// Next sequence number the receiver expects.
    next_expected: u64,
    /// Recently sent frames, logged before the (possibly faulty) wire.
    log: VecDeque<(u64, Vec<f32>)>,
}

/// Frames an edge keeps for recovery. Round-synchronous collectives have
/// at most one frame in flight per edge, so a small window is generous.
const RETRANSMIT_WINDOW: usize = 64;

/// Shared sender-side frame log, one slot per directed edge.
///
/// Senders append every frame *before* it touches the wire; receivers that
/// give up polling pull the missing frame straight out of the store. This
/// models NIC/RDMA-level reliable delivery: recovery never requires the
/// peer thread to still be scheduled (it may have finished its program).
#[derive(Debug)]
pub struct RetransmitStore {
    ranks: usize,
    /// Indexed `dst * ranks + src`, matching the mailbox convention.
    edges: Vec<Mutex<EdgeState>>,
}

impl RetransmitStore {
    /// A store for a group of `ranks` members.
    pub fn new(ranks: usize) -> Self {
        RetransmitStore {
            ranks,
            edges: (0..ranks * ranks).map(|_| Mutex::default()).collect(),
        }
    }

    /// Group size this store serves.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    fn edge(&self, src: usize, dst: usize) -> &Mutex<EdgeState> {
        &self.edges[dst * self.ranks + src]
    }
}

/// Reliable delivery over a lossy [`PollTransport`].
///
/// Wrap the *faulty* side (e.g. `ReliableTransport` over
/// [`FaultyTransport`] over a mailbox): sends are framed and logged, recvs
/// are deduplicated, reordered, and recovered. See the module docs for the
/// protocol.
#[derive(Debug)]
pub struct ReliableTransport<'s, T> {
    inner: T,
    store: &'s RetransmitStore,
    rank: usize,
    policy: RetryPolicy,
    /// Out-of-order frames already popped from the wire, per source rank.
    pending: Vec<BTreeMap<u64, Vec<f32>>>,
    stats: RetryStats,
}

impl<'s, T: PollTransport> ReliableTransport<'s, T> {
    /// Wrap `inner` as group member `rank`, sharing `store` with peers.
    pub fn new(inner: T, store: &'s RetransmitStore, rank: usize, policy: RetryPolicy) -> Self {
        assert!(rank < store.ranks(), "rank outside the store's group");
        ReliableTransport {
            inner,
            store,
            rank,
            policy,
            pending: (0..store.ranks()).map(|_| BTreeMap::new()).collect(),
            stats: RetryStats::default(),
        }
    }

    /// Recovery and dedup counters so far.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// Unwrap, returning the inner transport and the final stats.
    pub fn into_parts(self) -> (T, RetryStats) {
        (self.inner, self.stats)
    }

    /// Mark `expected` consumed on the `from → self.rank` edge.
    fn advance(&self, from: usize) {
        self.store
            .edge(from, self.rank)
            .lock()
            .unwrap()
            .next_expected += 1;
    }

    /// Try to pull frame `expected` out of the shared store (budget
    /// permitting). On success the edge cursor is advanced atomically.
    fn recover(&mut self, from: usize, expected: u64) -> Option<Vec<f32>> {
        if self.stats.retransmits >= u64::from(self.policy.retransmit_budget) {
            return None;
        }
        let mut edge = self.store.edge(from, self.rank).lock().unwrap();
        let data = edge
            .log
            .iter()
            .find(|(seq, _)| *seq == expected)
            .map(|(_, data)| data.clone())?;
        edge.next_expected += 1;
        drop(edge);
        self.stats.retransmits += 1;
        Some(data)
    }
}

impl<T: PollTransport> Transport for ReliableTransport<'_, T> {
    type Error = T::Error;

    fn send(&mut self, to: usize, payload: &[f32]) -> Result<(), Self::Error> {
        let frame = {
            let mut edge = self.store.edge(self.rank, to).lock().unwrap();
            let seq = edge.next_seq;
            edge.next_seq += 1;
            edge.log.push_back((seq, payload.to_vec()));
            // Prune consumed frames and bound the window.
            let consumed = edge.next_expected;
            while edge
                .log
                .front()
                .is_some_and(|(s, _)| *s < consumed || edge.log.len() > RETRANSMIT_WINDOW)
            {
                edge.log.pop_front();
            }
            encode_frame(seq, payload)
        };
        self.inner.send(to, &frame)
    }

    fn recv(&mut self, from: usize) -> Result<Vec<f32>, Self::Error> {
        let expected = self
            .store
            .edge(from, self.rank)
            .lock()
            .unwrap()
            .next_expected;
        if let Some(data) = self.pending[from].remove(&expected) {
            self.advance(from);
            return Ok(data);
        }
        let mut wait = self.policy.base_backoff;
        loop {
            match self.inner.recv_within(from, wait)? {
                Some(frame) => {
                    let (seq, data) = decode_frame(&frame);
                    if seq < expected {
                        // Duplicate of something already consumed (or
                        // already recovered from the store).
                        self.stats.duplicates_dropped += 1;
                        continue;
                    }
                    if seq == expected {
                        self.advance(from);
                        return Ok(data.to_vec());
                    }
                    // Gap: `expected` was lost in flight. Stash this frame
                    // and recover the missing one from the store (FIFO
                    // guarantees the sender logged it before this frame).
                    self.pending[from].insert(seq, data.to_vec());
                    if let Some(data) = self.recover(from, expected) {
                        return Ok(data);
                    }
                }
                None => {
                    // Poll miss: check the store, then back off.
                    self.stats.retries += 1;
                    if let Some(data) = self.recover(from, expected) {
                        return Ok(data);
                    }
                    wait = (wait * 2).min(self.policy.max_backoff);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{execute, reference_run, ring_all_reduce, ReduceOp};
    use std::sync::mpsc;
    use std::time::Instant;

    /// Minimal pollable transport: one mpsc channel per directed edge,
    /// with an overall hard deadline standing in for `dist::comm`'s group
    /// timeout.
    struct ChanTransport {
        txs: Vec<Option<mpsc::Sender<Vec<f32>>>>,
        rxs: Vec<Option<mpsc::Receiver<Vec<f32>>>>,
        deadline: Instant,
    }

    #[derive(Debug, PartialEq, Eq)]
    enum ChanError {
        Deadline,
    }

    impl Transport for ChanTransport {
        type Error = ChanError;

        fn send(&mut self, to: usize, payload: &[f32]) -> Result<(), ChanError> {
            // A send to a peer that already finished its program lands in
            // the void — like the real mailbox (owned by the group, not
            // the peer thread), the sender must never block or fail on it.
            let _ = self.txs[to].as_ref().unwrap().send(payload.to_vec());
            Ok(())
        }

        fn recv(&mut self, from: usize) -> Result<Vec<f32>, ChanError> {
            loop {
                if let Some(data) = self.recv_within(from, Duration::from_millis(5))? {
                    return Ok(data);
                }
            }
        }
    }

    impl PollTransport for ChanTransport {
        fn recv_within(
            &mut self,
            from: usize,
            wait: Duration,
        ) -> Result<Option<Vec<f32>>, ChanError> {
            let now = Instant::now();
            if now >= self.deadline {
                return Err(ChanError::Deadline);
            }
            let wait = wait.min(self.deadline - now);
            match self.rxs[from].as_ref().unwrap().recv_timeout(wait) {
                Ok(data) => Ok(Some(data)),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if Instant::now() >= self.deadline {
                        Err(ChanError::Deadline)
                    } else {
                        Ok(None)
                    }
                }
                // A finished peer drops its senders; frames it dropped on
                // the wire are still recoverable from the store, so treat
                // disconnection as a poll miss (the real mailbox transport
                // never disconnects). The hard deadline bounds the loop.
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    std::thread::sleep(wait);
                    Ok(None)
                }
            }
        }
    }

    /// Build one ChanTransport per rank (full mesh) with a shared deadline.
    fn mesh(r: usize, deadline: Duration) -> Vec<ChanTransport> {
        let deadline = Instant::now() + deadline;
        let mut cells: Vec<
            Vec<(
                Option<mpsc::Sender<Vec<f32>>>,
                Option<mpsc::Receiver<Vec<f32>>>,
            )>,
        > = (0..r)
            .map(|_| {
                (0..r)
                    .map(|_| {
                        let (tx, rx) = mpsc::channel();
                        (Some(tx), Some(rx))
                    })
                    .collect()
            })
            .collect();
        (0..r)
            .map(|j| ChanTransport {
                txs: (0..r).map(|dst| cells[dst][j].0.take()).collect(),
                rxs: (0..r).map(|src| cells[j][src].1.take()).collect(),
                deadline,
            })
            .collect()
    }

    /// Run `prog` across threads with faults injected under the reliable
    /// layer; return final buffers plus per-rank stats and tallies.
    #[allow(clippy::type_complexity)]
    fn run_with_faults(
        prog: &crate::Program,
        bufs: &mut [Vec<f32>],
        faults: TransientFaults,
        policy: RetryPolicy,
        deadline: Duration,
        seed: u64,
    ) -> Vec<Result<(RetryStats, FaultTally), String>> {
        let store = RetransmitStore::new(prog.ranks);
        let transports = mesh(prog.ranks, deadline);
        std::thread::scope(|scope| {
            let store = &store;
            let handles: Vec<_> = transports
                .into_iter()
                .zip(bufs.iter_mut())
                .enumerate()
                .map(|(j, (chan, buf))| {
                    scope.spawn(move || {
                        let faulty = FaultyTransport::new(chan, faults, mix_seed(seed, j as u64));
                        let mut rel = ReliableTransport::new(faulty, store, j, policy);
                        let run = execute(prog, j, buf, &mut rel);
                        let (faulty, stats) = rel.into_parts();
                        let (_, tally) = faulty.into_parts();
                        run.map(|_| (stats, tally)).map_err(|e| format!("{e:?}"))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    fn seeded_bufs(r: usize, n: usize) -> Vec<Vec<f32>> {
        (0..r)
            .map(|j| {
                (0..n)
                    .map(|i| ((j * n + i) % 13) as f32 * 0.5 - 3.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn frame_round_trip_preserves_seq_and_payload() {
        for seq in [0u64, 1, 12345, (1 << 24) - 1, 1 << 24, (1 << 40) + 17] {
            let payload = [1.5f32, -2.25, 0.0];
            let frame = encode_frame(seq, &payload);
            assert_eq!(frame.len(), FRAME_HEADER_ELEMS + payload.len());
            let (got_seq, got) = decode_frame(&frame);
            assert_eq!(got_seq, seq);
            assert_eq!(got, payload);
        }
    }

    #[test]
    fn mix_seed_is_deterministic_and_sensitive() {
        assert_eq!(mix_seed(1, 2), mix_seed(1, 2));
        assert_ne!(mix_seed(1, 2), mix_seed(1, 3));
        assert_ne!(mix_seed(1, 2), mix_seed(2, 2));
    }

    #[test]
    fn reliable_layer_is_transparent_without_faults() {
        let prog = ring_all_reduce(4, 37, ReduceOp::Sum);
        let mut want = seeded_bufs(4, 37);
        reference_run(&prog, &mut want);
        let mut got = seeded_bufs(4, 37);
        let results = run_with_faults(
            &prog,
            &mut got,
            TransientFaults::default(),
            RetryPolicy::default(),
            Duration::from_secs(5),
            7,
        );
        for r in &results {
            let (stats, tally) = r.as_ref().unwrap();
            assert_eq!(stats.retransmits, 0);
            assert_eq!(tally.total(), 0);
        }
        assert_eq!(got, want);
    }

    #[test]
    fn dropped_messages_are_recovered_bit_identically() {
        let prog = ring_all_reduce(4, 101, ReduceOp::Sum);
        let mut want = seeded_bufs(4, 101);
        reference_run(&prog, &mut want);
        let faults = TransientFaults {
            drop_prob: 0.3,
            ..TransientFaults::default()
        };
        let policy = RetryPolicy {
            base_backoff: Duration::from_micros(200),
            ..RetryPolicy::default()
        };
        let mut got = seeded_bufs(4, 101);
        let results = run_with_faults(&prog, &mut got, faults, policy, Duration::from_secs(10), 42);
        let mut recovered = 0;
        let mut dropped = 0;
        for r in &results {
            let (stats, tally) = r.as_ref().unwrap();
            recovered += stats.retransmits;
            dropped += tally.dropped;
        }
        assert!(dropped > 0, "a 30% drop rate must hit at least one send");
        assert_eq!(
            recovered, dropped,
            "every dropped frame must be recovered exactly once"
        );
        assert_eq!(got, want, "recovery must be bit-identical");
    }

    #[test]
    fn duplicates_are_discarded() {
        let prog = ring_all_reduce(4, 64, ReduceOp::Sum);
        let mut want = seeded_bufs(4, 64);
        reference_run(&prog, &mut want);
        let faults = TransientFaults {
            duplicate_prob: 1.0,
            ..TransientFaults::default()
        };
        let mut got = seeded_bufs(4, 64);
        let results = run_with_faults(
            &prog,
            &mut got,
            faults,
            RetryPolicy::default(),
            Duration::from_secs(10),
            3,
        );
        let mut dup_injected = 0;
        let mut dup_dropped = 0;
        for r in &results {
            let (stats, tally) = r.as_ref().unwrap();
            dup_injected += tally.duplicated;
            dup_dropped += stats.duplicates_dropped;
        }
        assert!(dup_injected > 0);
        // A duplicate of a rank's final-round frame may never be polled
        // again, so a small trailing remainder can stay unread.
        assert!(
            dup_dropped > 0 && dup_dropped <= dup_injected,
            "duplicates must be discarded, not combined: {dup_dropped}/{dup_injected}"
        );
        assert_eq!(got, want);
    }

    #[test]
    fn mixed_drop_dup_delay_still_bit_identical() {
        let prog = ring_all_reduce(4, 53, ReduceOp::Sum);
        let mut want = seeded_bufs(4, 53);
        reference_run(&prog, &mut want);
        let faults = TransientFaults {
            drop_prob: 0.2,
            duplicate_prob: 0.2,
            delay_prob: 0.2,
            delay: Duration::from_micros(300),
            degrade_factor: 3.0,
            ..TransientFaults::default()
        };
        let policy = RetryPolicy {
            base_backoff: Duration::from_micros(200),
            ..RetryPolicy::default()
        };
        for seed in 0..5u64 {
            let mut got = seeded_bufs(4, 53);
            let results = run_with_faults(
                &prog,
                &mut got,
                faults,
                policy,
                Duration::from_secs(10),
                0xc0ffee + seed,
            );
            for r in &results {
                r.as_ref().unwrap();
            }
            assert_eq!(got, want, "seed {seed} diverged");
        }
    }

    #[test]
    fn exhausted_budget_surfaces_the_hard_timeout() {
        let prog = ring_all_reduce(2, 16, ReduceOp::Sum);
        let faults = TransientFaults {
            drop_prob: 1.0, // nothing ever arrives: every recv needs recovery
            ..TransientFaults::default()
        };
        let policy = RetryPolicy {
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(2),
            retransmit_budget: 1, // the second loss exceeds the budget
        };
        let mut bufs = seeded_bufs(2, 16);
        let results = run_with_faults(
            &prog,
            &mut bufs,
            faults,
            policy,
            Duration::from_millis(300),
            9,
        );
        assert!(
            results
                .iter()
                .any(|r| matches!(r, Err(e) if e.contains("Deadline"))),
            "budget exhaustion must surface the transport's hard timeout: {results:?}"
        );
    }

    #[test]
    fn faulty_transport_same_seed_same_faults() {
        // Scripted sends through a sink transport: the injected fault
        // sequence must be a pure function of the seed.
        struct Sink;
        impl Transport for Sink {
            type Error = ();
            fn send(&mut self, _to: usize, _p: &[f32]) -> Result<(), ()> {
                Ok(())
            }
            fn recv(&mut self, _from: usize) -> Result<Vec<f32>, ()> {
                unreachable!()
            }
        }
        let faults = TransientFaults {
            drop_prob: 0.4,
            duplicate_prob: 0.3,
            ..TransientFaults::default()
        };
        let tally_of = |seed: u64| {
            let mut t = FaultyTransport::new(Sink, faults, seed);
            for i in 0..200 {
                t.send(i % 4, &[0.0; 8]).unwrap();
            }
            t.tally()
        };
        assert_eq!(tally_of(11), tally_of(11));
        assert_ne!(tally_of(11), tally_of(12));
    }
}
