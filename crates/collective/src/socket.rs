//! Real-socket [`Transport`]: length-prefixed f32 frames over Unix-domain
//! or TCP-loopback sockets.
//!
//! This is the third wire under the step [`Program`]s, after the in-process
//! mailbox and the seeded lossy channel: the same collectives now cross a
//! genuine kernel socket, with everything that implies — partial reads,
//! `EAGAIN`, torn frames on a severed connection, and peers that are whole
//! other OS processes. The frame format is deliberately tiny:
//!
//! ```text
//! data frame  :=  elem_count : u32 LE  |  elem_count × f32 LE
//! hello frame :=  MAGIC : u64 LE | channel : u64 LE | src : u64 LE | pid : u64 LE
//! ```
//!
//! One [`SocketNode`] per process owns the listener; every inbound
//! connection announces `(channel, src rank, pid)` in a hello frame and is
//! filed into a registry keyed by `(channel, src)`. A [`SocketChannel`] is
//! one group's view: it lazily dials its peers (connect-retry until the
//! deadline, so rendezvous order doesn't matter), buffers per-source bytes
//! until complete frames drain out, and — crucially — treats a peer's EOF
//! as "discard the torn tail, wait for a re-accepted connection", not as
//! instant death. A *dead process* therefore surfaces as a deadline
//! timeout, while a transient disconnect heals invisibly.
//!
//! Failure-injection hooks ([`SocketChannel::sever_outbound_after`],
//! [`SocketChannel::sever_outbound_after_lossy`]) cut a connection
//! mid-frame so the retransmission machinery of
//! [`ReliableTransport`](crate::ReliableTransport) can finally be tested
//! against a real short write instead of a simulated one.

use crate::reliable::PollTransport;
use crate::Transport;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// First u64 of every hello frame; connections that don't present it are
/// dropped by the acceptor.
const HELLO_MAGIC: u64 = 0x4d45_4741_534f_434b; // "MEGASOCK"

/// How long the acceptor waits for a hello before dropping a connection.
const HELLO_TIMEOUT: Duration = Duration::from_secs(5);

/// Backoff between connect attempts while a peer's listener isn't up yet.
const DIAL_BACKOFF: Duration = Duration::from_millis(2);

/// Where a peer's listener lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireAddr {
    /// Unix-domain socket path (the default: lowest latency, no ports).
    Uds(PathBuf),
    /// TCP socket address (loopback in tests; any address in principle).
    Tcp(SocketAddr),
}

impl fmt::Display for WireAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireAddr::Uds(p) => write!(f, "uds:{}", p.display()),
            WireAddr::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

impl WireAddr {
    /// Parse the `Display` form back (`uds:/path` or `tcp:host:port`).
    pub fn parse(s: &str) -> Option<WireAddr> {
        if let Some(p) = s.strip_prefix("uds:") {
            Some(WireAddr::Uds(PathBuf::from(p)))
        } else if let Some(a) = s.strip_prefix("tcp:") {
            a.parse().ok().map(WireAddr::Tcp)
        } else {
            None
        }
    }
}

/// Hard socket-transport failure. Kept `Copy + Eq` so
/// [`StepFailure`](crate::StepFailure) keeps its derives over this error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketError {
    /// The channel's overall deadline expired (peer dead or wedged).
    Deadline,
    /// An I/O failure that isn't survivable by reconnecting.
    Io(io::ErrorKind),
}

impl fmt::Display for SocketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocketError::Deadline => write!(f, "socket deadline exceeded"),
            SocketError::Io(k) => write!(f, "socket i/o error: {k:?}"),
        }
    }
}

/// A connected stream of either family, unified behind the few calls the
/// channel needs.
#[derive(Debug)]
enum Stream {
    Uds(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn connect(addr: &WireAddr) -> io::Result<Stream> {
        match addr {
            WireAddr::Uds(p) => UnixStream::connect(p).map(Stream::Uds),
            WireAddr::Tcp(a) => {
                let s = TcpStream::connect(a)?;
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
        }
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Uds(s) => s.set_read_timeout(t),
            Stream::Tcp(s) => s.set_read_timeout(t),
        }
    }

    fn set_write_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Uds(s) => s.set_write_timeout(t),
            Stream::Tcp(s) => s.set_write_timeout(t),
        }
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self {
            Stream::Uds(s) => s.write_all(buf),
            Stream::Tcp(s) => s.write_all(buf),
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Uds(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }

    fn shutdown(&self) {
        let _ = match self {
            Stream::Uds(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

#[derive(Debug)]
enum Listener {
    Uds(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Uds(l) => l.accept().map(|(s, _)| Stream::Uds(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }),
        }
    }
}

/// Accepted-and-identified inbound connections for one `(channel, src)`.
///
/// Connections are queued in accept order and must be drained in that
/// order: a sender writes sequentially and closes its old connection
/// before (or while) dialing a new one, so every frame on connection `k`
/// precedes every frame on connection `k+1`. Taking the newest eagerly
/// would silently skip frames still buffered in an older socket.
#[derive(Debug, Default)]
struct InboundSlot {
    /// Un-taken connections with their per-key accept epochs, oldest first.
    streams: VecDeque<(Stream, u64)>,
    /// Accept counter for this key (epoch of the most recent connection).
    next_epoch: u64,
    /// Peer's OS process id, from the hello frame.
    pid: u32,
}

#[derive(Debug, Default)]
struct Inbound {
    slots: Mutex<HashMap<(u64, usize), InboundSlot>>,
    cv: Condvar,
}

/// Per-process socket endpoint: one listener plus the registry of
/// identified inbound connections, shared by every [`SocketChannel`] in
/// the process.
#[derive(Debug)]
pub struct SocketNode {
    addr: WireAddr,
    inbound: Arc<Inbound>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl SocketNode {
    /// Bind a listener at `addr` and start the acceptor thread. For
    /// `Tcp` with port 0 the returned node's [`SocketNode::addr`] carries
    /// the actual bound port.
    pub fn bind(addr: &WireAddr) -> io::Result<SocketNode> {
        let (listener, actual) = match addr {
            WireAddr::Uds(p) => {
                // A stale socket file from a crashed run blocks bind.
                let _ = std::fs::remove_file(p);
                (Listener::Uds(UnixListener::bind(p)?), addr.clone())
            }
            WireAddr::Tcp(a) => {
                let l = TcpListener::bind(a)?;
                let actual = WireAddr::Tcp(l.local_addr()?);
                (Listener::Tcp(l), actual)
            }
        };
        let inbound = Arc::new(Inbound::default());
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let inbound = Arc::clone(&inbound);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(listener, &inbound, &stop))
        };
        Ok(SocketNode {
            addr: actual,
            inbound,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The address peers should dial (actual port for `Tcp(…:0)` binds).
    pub fn addr(&self) -> &WireAddr {
        &self.addr
    }

    /// Take the oldest un-taken inbound stream for `(chan, src)` with an
    /// epoch strictly newer than `than_epoch`, waiting until `deadline`.
    fn take_newer(
        &self,
        chan: u64,
        src: usize,
        than_epoch: u64,
        deadline: Instant,
    ) -> Option<(Stream, u64, u32)> {
        let mut slots = self.inbound.slots.lock().unwrap();
        loop {
            if let Some(slot) = slots.get_mut(&(chan, src)) {
                while let Some(&(_, epoch)) = slot.streams.front() {
                    if epoch > than_epoch {
                        let (s, epoch) = slot.streams.pop_front().unwrap();
                        return Some((s, epoch, slot.pid));
                    }
                    slot.streams.pop_front(); // stale (already superseded)
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self.inbound.cv.wait_timeout(slots, deadline - now).unwrap();
            slots = guard;
        }
    }
}

impl Drop for SocketNode {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection; it sees the
        // stop flag and exits. If the dial fails (say the UDS socket file
        // was already unlinked), `accept` may never return — detach the
        // acceptor instead of joining a thread that can't wake.
        match Stream::connect(&self.addr) {
            Ok(_) => {
                if let Some(h) = self.acceptor.take() {
                    let _ = h.join();
                }
            }
            Err(_) => drop(self.acceptor.take()),
        }
        if let WireAddr::Uds(p) = &self.addr {
            let _ = std::fs::remove_file(p);
        }
    }
}

fn accept_loop(listener: Listener, inbound: &Inbound, stop: &AtomicBool) {
    loop {
        let mut stream = match listener.accept() {
            Ok(s) => s,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Identify the connection: 32-byte hello, bounded wait.
        let _ = stream.set_read_timeout(Some(HELLO_TIMEOUT));
        let mut hello = [0u8; 32];
        if read_exact(&mut stream, &mut hello).is_err() {
            continue; // garbage / probe connection
        }
        let word = |i: usize| u64::from_le_bytes(hello[i * 8..(i + 1) * 8].try_into().unwrap());
        if word(0) != HELLO_MAGIC {
            continue;
        }
        let (chan, src, pid) = (word(1), word(2) as usize, word(3) as u32);
        let mut slots = inbound.slots.lock().unwrap();
        let slot = slots.entry((chan, src)).or_default();
        slot.next_epoch += 1;
        let epoch = slot.next_epoch;
        slot.streams.push_back((stream, epoch));
        slot.pid = pid;
        drop(slots);
        inbound.cv.notify_all();
    }
}

fn read_exact(stream: &mut Stream, buf: &mut [u8]) -> io::Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Outbound connection state toward one peer.
#[derive(Debug)]
struct OutState {
    stream: Stream,
    /// Cumulative payload bytes written toward this peer (drives the
    /// byte-indexed sever plan).
    sent_bytes: u64,
}

/// Inbound state from one peer.
#[derive(Debug, Default)]
struct InState {
    /// The stream currently being read, with the registry epoch it came
    /// from (`None` between a disconnect and the re-accept).
    held: Option<Stream>,
    /// Registry epoch of the newest stream we've consumed; we only accept
    /// strictly newer ones after a disconnect.
    epoch_seen: u64,
    /// Complete frames parsed but not yet returned.
    ready: VecDeque<Vec<f32>>,
    /// Raw byte tail of a partially received frame.
    rx_buf: Vec<u8>,
    /// Peer pid from the hello (0 until first connection).
    pid: u32,
}

/// One-shot injected failure: cut the connection to `to` once cumulative
/// payload bytes cross `after_bytes`, mid-frame.
#[derive(Debug)]
struct SeverPlan {
    to: usize,
    after_bytes: u64,
    /// Resend the severed frame on the new connection? `false` models a
    /// genuinely lost frame and is only sound under `ReliableTransport`.
    resend: bool,
    done: bool,
}

/// Frames the sender-side replay log keeps per peer (matches the reliable
/// layer's retransmit window: round-synchronous collectives keep at most a
/// handful of frames in flight per edge).
const REPLAY_WINDOW: usize = 64;

/// A group's socket endpoint: [`Transport`] + [`PollTransport`] over one
/// logical channel of a [`SocketNode`].
///
/// `peers[r]` is where group rank `r` listens (`None` for self). Outbound
/// connections are dialed lazily with retry until the deadline, so no
/// global connect ordering is needed. Exactly one channel id must map to
/// one (group, member) pair per process.
#[derive(Debug)]
pub struct SocketChannel {
    node: Arc<SocketNode>,
    chan: u64,
    rank: usize,
    peers: Vec<Option<WireAddr>>,
    out: Vec<Option<OutState>>,
    inbox: Vec<InState>,
    deadline: Instant,
    io_timeout: Duration,
    sever: Option<SeverPlan>,
    /// Per-peer log of recently sent frames, armed by
    /// [`SocketChannel::enable_replay`]. When a connection tears, the next
    /// reconnect resends the whole log — covering frames that were only
    /// partially written (or never written at all) when the wire broke.
    /// Replaying necessarily re-delivers frames the peer already consumed,
    /// so this is only sound under `ReliableTransport`, whose sequence
    /// numbers absorb the duplicates.
    replay: Option<Vec<VecDeque<Vec<u8>>>>,
    /// Peers whose outbound connection was lost after bytes were sent
    /// (next reconnect must replay the log when one is armed).
    torn: Vec<bool>,
    /// Injected per-frame send delay (models a slow link from a fault
    /// plan; applied before every write).
    send_delay: Option<Duration>,
}

impl SocketChannel {
    /// A channel for group member `rank` over `node`, identified to peers
    /// as channel `chan`. `peers` maps group ranks to listener addresses.
    pub fn new(
        node: Arc<SocketNode>,
        chan: u64,
        rank: usize,
        peers: Vec<Option<WireAddr>>,
    ) -> SocketChannel {
        let n = peers.len();
        SocketChannel {
            node,
            chan,
            rank,
            peers,
            out: (0..n).map(|_| None).collect(),
            inbox: (0..n).map(|_| InState::default()).collect(),
            deadline: Instant::now() + Duration::from_secs(30),
            io_timeout: Duration::from_millis(10),
            sever: None,
            replay: None,
            torn: vec![false; n],
            send_delay: None,
        }
    }

    /// Group rank this channel speaks as.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Set the hard overall deadline (typically `now + group timeout`,
    /// refreshed before each program).
    pub fn set_deadline(&mut self, deadline: Instant) {
        self.deadline = deadline;
    }

    /// Per-syscall poll granularity (read timeout slices).
    pub fn set_io_timeout(&mut self, t: Duration) {
        self.io_timeout = t;
    }

    /// Peer pid learned from the hello frame, if `from` ever connected.
    pub fn peer_pid(&self, from: usize) -> Option<u32> {
        let pid = self.inbox[from].pid;
        (pid != 0).then_some(pid)
    }

    /// Listener address of `peer`, if it has one.
    pub fn peer_addr(&self, peer: usize) -> Option<&WireAddr> {
        self.peers.get(peer).and_then(|a| a.as_ref())
    }

    /// Test hook: once cumulative payload bytes to `to` cross
    /// `after_bytes`, write only the partial frame, shut the connection
    /// down, reconnect, and resend the whole frame. The receiver sees a
    /// genuine torn frame + EOF; no data is lost.
    pub fn sever_outbound_after(&mut self, to: usize, after_bytes: u64) {
        self.sever = Some(SeverPlan {
            to,
            after_bytes,
            resend: true,
            done: false,
        });
    }

    /// Test hook: like [`SocketChannel::sever_outbound_after`] but the
    /// severed frame is *not* resent — it is genuinely lost mid-wire.
    /// Only sound when a `ReliableTransport` sits on top to recover it.
    pub fn sever_outbound_after_lossy(&mut self, to: usize, after_bytes: u64) {
        self.sever = Some(SeverPlan {
            to,
            after_bytes,
            resend: false,
            done: false,
        });
    }

    /// Arm the sender-side replay log: every outbound frame is logged (last
    /// [`REPLAY_WINDOW`] per peer) *before* the write attempt, and the
    /// first write after a torn connection resends the whole log on the
    /// fresh stream. This makes recovery from a mid-frame sever correct
    /// even when sender and receiver are in different OS processes, where
    /// the shared [`RetransmitStore`](crate::RetransmitStore) is inert —
    /// the cost is duplicate delivery of already-consumed frames, so only
    /// arm this under a `ReliableTransport` whose sequence numbers discard
    /// them. Replay fires on the *next* send to the torn peer; a frame
    /// severed after the final send on an edge stays lost, which
    /// round-synchronous training traffic (every edge carries frames every
    /// iteration) never hits mid-stream.
    pub fn enable_replay(&mut self) {
        if self.replay.is_none() {
            self.replay = Some((0..self.peers.len()).map(|_| VecDeque::new()).collect());
        }
    }

    /// Inject a per-frame send delay (a fault plan's slow-link model);
    /// `None` restores full speed.
    pub fn set_send_delay(&mut self, delay: Option<Duration>) {
        self.send_delay = delay;
    }

    fn dial(&self, to: usize) -> Result<Stream, SocketError> {
        let addr = self.peers[to]
            .as_ref()
            .expect("dialing a peer with no address");
        loop {
            // Connect may fail (listener not up yet — rendezvous in
            // progress) and the hello write may fail (raced a dying
            // listener); both just retry until the deadline.
            if let Ok(mut s) = Stream::connect(addr) {
                let mut hello = [0u8; 32];
                hello[0..8].copy_from_slice(&HELLO_MAGIC.to_le_bytes());
                hello[8..16].copy_from_slice(&self.chan.to_le_bytes());
                hello[16..24].copy_from_slice(&(self.rank as u64).to_le_bytes());
                hello[24..32].copy_from_slice(&u64::from(std::process::id()).to_le_bytes());
                let _ = s.set_write_timeout(Some(HELLO_TIMEOUT));
                if s.write_all(&hello).is_ok() {
                    return Ok(s);
                }
            }
            if Instant::now() >= self.deadline {
                return Err(SocketError::Deadline);
            }
            std::thread::sleep(DIAL_BACKOFF);
        }
    }

    fn ensure_out(&mut self, to: usize) -> Result<(), SocketError> {
        if self.out[to].is_none() {
            let stream = self.dial(to)?;
            self.out[to] = Some(OutState {
                stream,
                sent_bytes: 0,
            });
        }
        Ok(())
    }

    /// Write `frame` to `to`, honoring the sever plan and reconnecting
    /// once on a write failure (the whole frame is resent — at-least-once;
    /// in plain mode a delivered-then-resent frame would duplicate, which
    /// the reliable layer's sequence numbers absorb). With the replay log
    /// armed, the first write after a torn connection resends the entire
    /// log, so frames lost or half-written when the wire broke reach the
    /// peer bit-exactly even across process boundaries.
    fn write_frame(&mut self, to: usize, frame: &[u8]) -> Result<(), SocketError> {
        if let Some(d) = self.send_delay {
            std::thread::sleep(d);
        }
        // Log before any write attempt so a torn, lost, or half-written
        // frame is covered by the replay on the next reconnect.
        if let Some(log) = self.replay.as_mut() {
            let q = &mut log[to];
            q.push_back(frame.to_vec());
            while q.len() > REPLAY_WINDOW {
                q.pop_front();
            }
        }
        self.ensure_out(to)?;

        // Injected failure: cut the connection mid-frame.
        let sever_now = match &self.sever {
            Some(p) if !p.done && p.to == to => {
                let sent = self.out[to].as_ref().unwrap().sent_bytes;
                sent + frame.len() as u64 > p.after_bytes
            }
            _ => false,
        };
        if sever_now {
            let plan = self.sever.as_mut().unwrap();
            plan.done = true;
            let resend = plan.resend;
            let out = self.out[to].as_mut().unwrap();
            let partial = (plan.after_bytes.saturating_sub(out.sent_bytes)) as usize;
            let partial = partial.min(frame.len().saturating_sub(1));
            let _ = out.stream.write_all(&frame[..partial]);
            out.stream.shutdown();
            self.out[to] = None;
            self.torn[to] = true;
            if !resend && self.replay.is_none() {
                return Ok(()); // frame genuinely lost mid-wire
            }
            // With replay armed even a "lossy" sever heals: the frame is
            // in the log, so fall through and let the reconnect resend it.
            self.ensure_out(to)?;
        }

        let remaining = self.deadline.saturating_duration_since(Instant::now());
        let wt = remaining.max(Duration::from_millis(1));
        for attempt in 0..2 {
            // After a torn connection with the log armed, resend the whole
            // window (duplicates are the reliable layer's problem);
            // otherwise just this frame.
            let burst: Vec<&[u8]> = match (&self.replay, self.torn[to]) {
                (Some(log), true) => log[to].iter().map(|f| f.as_slice()).collect(),
                _ => vec![frame],
            };
            let out = self.out[to].as_mut().unwrap();
            let _ = out.stream.set_write_timeout(Some(wt));
            let mut failed = None;
            for f in &burst {
                match out.stream.write_all(f) {
                    Ok(()) => out.sent_bytes += f.len() as u64,
                    Err(e) => {
                        failed = Some(e);
                        break;
                    }
                }
            }
            match failed {
                None => {
                    self.torn[to] = false;
                    return Ok(());
                }
                Some(e) => {
                    out.stream.shutdown();
                    self.out[to] = None;
                    self.torn[to] = true;
                    if attempt == 1 {
                        return Err(SocketError::Io(e.kind()));
                    }
                    self.ensure_out(to)?; // reconnect, resend whole frame
                }
            }
        }
        unreachable!("write loop returns within two attempts");
    }

    /// Pull bytes from `from` until at least one complete frame is ready
    /// or `attempt_deadline` passes. EOF ⇒ discard the torn tail and wait
    /// for a re-accepted connection.
    fn pump(&mut self, from: usize, attempt_deadline: Instant) -> Result<bool, SocketError> {
        let mut scratch = [0u8; 64 * 1024];
        loop {
            if !self.inbox[from].ready.is_empty() {
                return Ok(true);
            }
            let now = Instant::now();
            if now >= attempt_deadline {
                return Ok(false);
            }
            if self.inbox[from].held.is_none() {
                let epoch_seen = self.inbox[from].epoch_seen;
                match self
                    .node
                    .take_newer(self.chan, from, epoch_seen, attempt_deadline)
                {
                    Some((s, epoch, pid)) => {
                        let st = &mut self.inbox[from];
                        st.held = Some(s);
                        st.epoch_seen = epoch;
                        st.pid = pid;
                    }
                    None => return Ok(false),
                }
            }
            let slice = self
                .io_timeout
                .min(attempt_deadline - now)
                .max(Duration::from_millis(1));
            let st = &mut self.inbox[from];
            let held = st.held.as_mut().unwrap();
            let _ = held.set_read_timeout(Some(slice));
            match held.read(&mut scratch) {
                Ok(0) => {
                    // Peer closed: complete frames already drained; the
                    // byte tail is a torn frame the peer will resend whole
                    // on its next connection.
                    st.rx_buf.clear();
                    if let Some(s) = st.held.take() {
                        s.shutdown();
                    }
                }
                Ok(n) => {
                    st.rx_buf.extend_from_slice(&scratch[..n]);
                    drain_frames(&mut st.rx_buf, &mut st.ready);
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut
                        || e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == io::ErrorKind::ConnectionReset
                        || e.kind() == io::ErrorKind::BrokenPipe =>
                {
                    st.rx_buf.clear();
                    if let Some(s) = st.held.take() {
                        s.shutdown();
                    }
                }
                Err(e) => return Err(SocketError::Io(e.kind())),
            }
        }
    }
}

/// Split complete `len | payload` frames off the front of `rx_buf`.
fn drain_frames(rx_buf: &mut Vec<u8>, ready: &mut VecDeque<Vec<f32>>) {
    loop {
        if rx_buf.len() < 4 {
            return;
        }
        let n = u32::from_le_bytes(rx_buf[0..4].try_into().unwrap()) as usize;
        let total = 4 + 4 * n;
        if rx_buf.len() < total {
            return;
        }
        let mut frame = Vec::with_capacity(n);
        for i in 0..n {
            let o = 4 + 4 * i;
            frame.push(f32::from_le_bytes(rx_buf[o..o + 4].try_into().unwrap()));
        }
        rx_buf.drain(..total);
        ready.push_back(frame);
    }
}

impl Transport for SocketChannel {
    type Error = SocketError;

    fn send(&mut self, to: usize, payload: &[f32]) -> Result<(), Self::Error> {
        assert!(payload.len() <= u32::MAX as usize, "frame too large");
        let mut frame = Vec::with_capacity(4 + 4 * payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        for v in payload {
            frame.extend_from_slice(&v.to_le_bytes());
        }
        self.write_frame(to, &frame)
    }

    fn recv(&mut self, from: usize) -> Result<Vec<f32>, Self::Error> {
        loop {
            if let Some(f) = self.inbox[from].ready.pop_front() {
                return Ok(f);
            }
            if self.pump(from, self.deadline)? {
                continue;
            }
            return Err(SocketError::Deadline);
        }
    }
}

impl PollTransport for SocketChannel {
    fn recv_within(
        &mut self,
        from: usize,
        wait: Duration,
    ) -> Result<Option<Vec<f32>>, Self::Error> {
        if let Some(f) = self.inbox[from].ready.pop_front() {
            return Ok(Some(f));
        }
        let attempt_deadline = (Instant::now() + wait).min(self.deadline);
        if self.pump(from, attempt_deadline)? {
            return Ok(Some(self.inbox[from].ready.pop_front().unwrap()));
        }
        if Instant::now() >= self.deadline {
            return Err(SocketError::Deadline);
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        execute, reference_run, ring_all_gather, ring_all_reduce, ReduceOp, ReliableTransport,
        RetransmitStore, RetryPolicy,
    };

    fn seeded(rank: usize, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((rank * 31 + i * 7) % 97) as f32 * 0.125 - 3.0)
            .collect()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("megatron-sock-{tag}-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&d);
        d
    }

    /// Bind one node per "process" (thread here) and return the nodes plus
    /// the full address map.
    fn uds_world(tag: &str, g: usize) -> (Vec<Arc<SocketNode>>, Vec<WireAddr>) {
        let dir = tmp_dir(tag);
        let nodes: Vec<Arc<SocketNode>> = (0..g)
            .map(|r| {
                let addr = WireAddr::Uds(dir.join(format!("r{r}.sock")));
                Arc::new(SocketNode::bind(&addr).unwrap())
            })
            .collect();
        let addrs = nodes.iter().map(|n| n.addr().clone()).collect();
        (nodes, addrs)
    }

    fn peers_for(rank: usize, addrs: &[WireAddr]) -> Vec<Option<WireAddr>> {
        addrs
            .iter()
            .enumerate()
            .map(|(i, a)| (i != rank).then(|| a.clone()))
            .collect()
    }

    fn run_over_sockets(
        prog: &crate::Program,
        nodes: &[Arc<SocketNode>],
        addrs: &[WireAddr],
        chan: u64,
        mut rig: impl FnMut(usize, &mut SocketChannel) + Copy + Send,
    ) -> Vec<Vec<f32>> {
        let g = prog.ranks;
        let mut bufs: Vec<Vec<f32>> = (0..g).map(|r| seeded(r, prog.len)).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = bufs
                .iter_mut()
                .enumerate()
                .map(|(rank, buf)| {
                    let node = Arc::clone(&nodes[rank]);
                    let peers = peers_for(rank, addrs);
                    s.spawn(move || {
                        let mut ch = SocketChannel::new(node, chan, rank, peers);
                        ch.set_deadline(Instant::now() + Duration::from_secs(20));
                        rig(rank, &mut ch);
                        execute(prog, rank, buf, &mut ch).unwrap()
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        bufs
    }

    #[test]
    fn ring_all_reduce_over_uds_matches_reference() {
        for g in [2, 3, 5] {
            let n = 4 * g + 3; // non-divisible length
            let prog = ring_all_reduce(g, n, ReduceOp::Sum);
            let (nodes, addrs) = uds_world(&format!("ar{g}"), g);
            let got = run_over_sockets(&prog, &nodes, &addrs, 7, |_, _| {});
            let mut want: Vec<Vec<f32>> = (0..g).map(|r| seeded(r, n)).collect();
            reference_run(&prog, &mut want);
            assert_eq!(got, want, "g={g}");
        }
    }

    #[test]
    fn ring_all_gather_over_tcp_loopback_matches_reference() {
        let g = 3;
        let n = 10;
        let prog = ring_all_gather(g, n);
        let nodes: Vec<Arc<SocketNode>> = (0..g)
            .map(|_| {
                let addr = WireAddr::Tcp("127.0.0.1:0".parse().unwrap());
                Arc::new(SocketNode::bind(&addr).unwrap())
            })
            .collect();
        let addrs: Vec<WireAddr> = nodes.iter().map(|n| n.addr().clone()).collect();
        let got = run_over_sockets(&prog, &nodes, &addrs, 9, |_, _| {});
        let mut want: Vec<Vec<f32>> = (0..g).map(|r| seeded(r, prog.len)).collect();
        reference_run(&prog, &mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn torn_frame_on_severed_connection_is_resent_whole() {
        // Rank 0 sends three frames to rank 1; the connection is cut in
        // the middle of the second frame's bytes. The receiver must see
        // exactly the three intact frames, in order.
        let (nodes, addrs) = uds_world("sever", 2);
        let payloads: Vec<Vec<f32>> = (0..3).map(|k| seeded(k, 64)).collect();
        std::thread::scope(|s| {
            let sender = {
                let node = Arc::clone(&nodes[0]);
                let peers = peers_for(0, &addrs);
                let payloads = payloads.clone();
                s.spawn(move || {
                    let mut ch = SocketChannel::new(node, 3, 0, peers);
                    ch.set_deadline(Instant::now() + Duration::from_secs(10));
                    // Frame = 4 + 64·4 = 260 bytes; sever mid-second-frame.
                    ch.sever_outbound_after(1, 260 + 100);
                    for p in &payloads {
                        ch.send(1, p).unwrap();
                    }
                })
            };
            let receiver = {
                let node = Arc::clone(&nodes[1]);
                let peers = peers_for(1, &addrs);
                s.spawn(move || {
                    let mut ch = SocketChannel::new(node, 3, 1, peers);
                    ch.set_deadline(Instant::now() + Duration::from_secs(10));
                    (0..3).map(|_| ch.recv(0).unwrap()).collect::<Vec<_>>()
                })
            };
            sender.join().unwrap();
            let got = receiver.join().unwrap();
            assert_eq!(got, payloads);
        });
    }

    #[test]
    fn reliable_over_socket_survives_lossy_mid_stream_disconnect() {
        // A ring all-reduce where rank 1's connection to rank 2 is severed
        // mid-frame and the frame is NOT resent by the socket layer: the
        // ReliableTransport on top must recover it from the shared store.
        // This is the acceptance-criteria sever test: real torn frame,
        // real EOF, real re-accept, no timeout surfacing.
        let g = 3;
        let n = 32;
        let prog = ring_all_reduce(g, n, ReduceOp::Sum);
        let (nodes, addrs) = uds_world("lossy", g);
        let store = RetransmitStore::new(g);
        let mut bufs: Vec<Vec<f32>> = (0..g).map(|r| seeded(r, n)).collect();
        let mut stats = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = bufs
                .iter_mut()
                .enumerate()
                .map(|(rank, buf)| {
                    let node = Arc::clone(&nodes[rank]);
                    let peers = peers_for(rank, &addrs);
                    let store = &store;
                    let prog = &prog;
                    s.spawn(move || {
                        let mut ch = SocketChannel::new(node, 11, rank, peers);
                        ch.set_deadline(Instant::now() + Duration::from_secs(20));
                        if rank == 1 {
                            // Chunk frames are ≈ 4 + ⌈32/3⌉·4 + 8 bytes
                            // (seq header adds 2 elems); cut inside the
                            // second frame to rank 2 and drop it cold.
                            ch.sever_outbound_after_lossy(2, 60 + 20);
                        }
                        let mut rel =
                            ReliableTransport::new(ch, store, rank, RetryPolicy::default());
                        let report = execute(&prog, rank, buf, &mut rel).unwrap();
                        (report, rel.stats())
                    })
                })
                .collect();
            for h in handles {
                stats.push(h.join().unwrap());
            }
        });
        let mut want: Vec<Vec<f32>> = (0..g).map(|r| seeded(r, n)).collect();
        reference_run(&prog, &mut want);
        assert_eq!(bufs, want, "lossy sever must not corrupt the reduction");
        let recovered: u64 = stats.iter().map(|(_, st)| st.retransmits).sum();
        assert!(
            recovered >= 1,
            "the severed frame must be recovered from the store (got {recovered})"
        );
    }

    #[test]
    fn replay_log_heals_lossy_sever_without_a_shared_store() {
        // Same lossy mid-frame sever as above, but every rank owns a
        // PRIVATE RetransmitStore — the true multi-process topology, where
        // the receiver's store never saw the sender's frames and
        // store-based recovery is inert. The sender-side replay log must
        // resend the lost frame on reconnect, bit-exactly.
        let g = 3;
        let n = 32;
        let prog = ring_all_reduce(g, n, ReduceOp::Sum);
        let (nodes, addrs) = uds_world("replay", g);
        let mut bufs: Vec<Vec<f32>> = (0..g).map(|r| seeded(r, n)).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = bufs
                .iter_mut()
                .enumerate()
                .map(|(rank, buf)| {
                    let node = Arc::clone(&nodes[rank]);
                    let peers = peers_for(rank, &addrs);
                    let prog = &prog;
                    s.spawn(move || {
                        let store = RetransmitStore::new(g); // private per "process"
                        let mut ch = SocketChannel::new(node, 13, rank, peers);
                        ch.set_deadline(Instant::now() + Duration::from_secs(20));
                        ch.enable_replay();
                        if rank == 1 {
                            ch.sever_outbound_after_lossy(2, 60 + 20);
                        }
                        let mut rel =
                            ReliableTransport::new(ch, &store, rank, RetryPolicy::default());
                        execute(prog, rank, buf, &mut rel).unwrap();
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        let mut want: Vec<Vec<f32>> = (0..g).map(|r| seeded(r, n)).collect();
        reference_run(&prog, &mut want);
        assert_eq!(bufs, want, "replayed sever must not corrupt the reduction");
    }

    #[test]
    fn recv_on_dead_peer_times_out_with_deadline() {
        let (nodes, addrs) = uds_world("dead", 2);
        let mut ch = SocketChannel::new(Arc::clone(&nodes[0]), 5, 0, peers_for(0, &addrs));
        ch.set_deadline(Instant::now() + Duration::from_millis(80));
        assert_eq!(ch.recv(1), Err(SocketError::Deadline));
    }

    #[test]
    fn recv_within_soft_misses_then_delivers() {
        let (nodes, addrs) = uds_world("poll", 2);
        std::thread::scope(|s| {
            let receiver = {
                let node = Arc::clone(&nodes[1]);
                let peers = peers_for(1, &addrs);
                s.spawn(move || {
                    let mut ch = SocketChannel::new(node, 6, 1, peers);
                    ch.set_deadline(Instant::now() + Duration::from_secs(10));
                    let mut misses = 0u32;
                    loop {
                        match ch.recv_within(0, Duration::from_millis(5)).unwrap() {
                            Some(f) => return (misses, f),
                            None => misses += 1,
                        }
                    }
                })
            };
            let sender = {
                let node = Arc::clone(&nodes[0]);
                let peers = peers_for(0, &addrs);
                s.spawn(move || {
                    std::thread::sleep(Duration::from_millis(40));
                    let mut ch = SocketChannel::new(node, 6, 0, peers);
                    ch.set_deadline(Instant::now() + Duration::from_secs(10));
                    ch.send(1, &[1.0, 2.0, 3.0]).unwrap();
                })
            };
            sender.join().unwrap();
            let (misses, frame) = receiver.join().unwrap();
            assert_eq!(frame, vec![1.0, 2.0, 3.0]);
            assert!(misses >= 1, "expected at least one soft miss");
        });
    }

    #[test]
    fn wire_addr_round_trips_through_display() {
        let u = WireAddr::Uds(PathBuf::from("/tmp/x.sock"));
        let t = WireAddr::Tcp("127.0.0.1:4821".parse().unwrap());
        assert_eq!(WireAddr::parse(&u.to_string()), Some(u));
        assert_eq!(WireAddr::parse(&t.to_string()), Some(t));
        assert_eq!(WireAddr::parse("bogus"), None);
    }
}
