//! Transport-agnostic collective algorithms.
//!
//! The paper's §3 cost models hinge on the *algorithmic* structure of
//! collectives — a ring all-reduce moves `2(g−1)/g·n` bytes per rank
//! because of how its chunks travel, not because a formula says so. This
//! crate defines that structure exactly once, as data: a [`Program`] is a
//! round-synchronous schedule of (send-to-peer, recv-from-peer,
//! local-combine) steps over an abstract rank space. Two consumers lower
//! the same programs onto very different substrates:
//!
//! - `megatron-dist` executes them over an in-process mailbox
//!   [`Transport`] moving real `f32` chunks between rank threads
//!   ([`execute`]);
//! - `megatron-net` lowers each send step onto simulated NVLink/IB links
//!   as discrete-event tasks.
//!
//! Because both worlds consume the identical step sequence, "real
//! communication volume == simulated communication volume" is a structural
//! identity, not a pair of formulas that happen to agree.
//!
//! # Chunking convention
//!
//! A buffer of `n` elements over `g` ranks is cut into `g` contiguous
//! chunks by an exact ceil-partition: chunk `i` spans
//! `[min(i·c, n), min((i+1)·c, n))` with `c = ⌈n/g⌉`. Trailing chunks may
//! be short or empty, so *any* buffer length is legal and measured volumes
//! are exact (no padding is ever sent). Per-rank volume is counted as
//! bytes **sent** (egress), matching the simulator's sender-port model.

use std::fmt;

pub mod reliable;
pub use reliable::{
    mix_seed, FaultTally, FaultyTransport, PollTransport, ReliableTransport, RetransmitStore,
    RetryPolicy, RetryStats, TransientFaults, FRAME_HEADER_ELEMS,
};

pub mod socket;
pub use socket::{SocketChannel, SocketError, SocketNode, WireAddr};

/// A contiguous element range `[lo, hi)` of the collective's buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkRange {
    /// First element index.
    pub lo: usize,
    /// One past the last element index.
    pub hi: usize,
}

impl ChunkRange {
    /// Number of elements in the range.
    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    /// Whether the range is empty (legal: the tail chunks of a
    /// non-divisible buffer).
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }
}

/// Element-wise reduction applied when a received chunk meets local data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// `local + incoming`.
    Sum,
    /// `max(local, incoming)`.
    Max,
}

/// How a received chunk combines into the local buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Combine {
    /// Reduce element-wise with the local values (reduce-scatter phases).
    Reduce(ReduceOp),
    /// Overwrite the local values (all-gather / broadcast phases).
    Replace,
}

impl Combine {
    /// Apply the combine rule: `local[i] ← combine(local[i], incoming[i])`.
    ///
    /// Both the real executor and the serial reference interpreter call
    /// this single definition, so their arithmetic is bit-identical by
    /// construction.
    pub fn apply(&self, local: &mut [f32], incoming: &[f32]) {
        debug_assert_eq!(local.len(), incoming.len());
        match self {
            Combine::Reduce(ReduceOp::Sum) => {
                for (l, x) in local.iter_mut().zip(incoming) {
                    *l += x;
                }
            }
            Combine::Reduce(ReduceOp::Max) => {
                for (l, x) in local.iter_mut().zip(incoming) {
                    *l = l.max(*x);
                }
            }
            Combine::Replace => local.copy_from_slice(incoming),
        }
    }
}

/// One rank's outgoing transfer in a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendStep {
    /// Destination rank.
    pub to: usize,
    /// Elements sent (a chunk of the sender's current buffer).
    pub range: ChunkRange,
}

/// One rank's incoming transfer in a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvStep {
    /// Source rank.
    pub from: usize,
    /// Elements the incoming chunk lands on.
    pub range: ChunkRange,
    /// How the chunk merges into the local buffer.
    pub combine: Combine,
}

/// What one rank does in one round: at most one send and one recv. The
/// send always reads state as of the *end of the previous round* (the
/// executor sends before it receives), so a rank never forwards data that
/// arrives in the same round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankStep {
    /// Outgoing transfer, if any.
    pub send: Option<SendStep>,
    /// Incoming transfer, if any.
    pub recv: Option<RecvStep>,
}

/// One synchronous round: `steps[j]` is rank `j`'s step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Round {
    /// Per-rank steps, indexed by rank.
    pub steps: Vec<RankStep>,
}

/// A complete collective as a round-synchronous step program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Human-readable collective name (also used in stall diagnostics).
    pub kind: &'static str,
    /// Number of participating ranks.
    pub ranks: usize,
    /// Buffer length in elements every rank operates on.
    pub len: usize,
    /// The schedule.
    pub rounds: Vec<Round>,
}

impl Program {
    /// Elements rank `rank` sends over the whole program — the exact
    /// per-rank egress volume the algorithm moves (multiply by the element
    /// width for bytes). This is the quantity both transports account.
    pub fn sent_elems(&self, rank: usize) -> usize {
        self.rounds
            .iter()
            .filter_map(|r| r.steps[rank].send)
            .map(|s| s.range.len())
            .sum()
    }

    /// Total rounds (the step count a stalled rank is reported against).
    pub fn round_count(&self) -> usize {
        self.rounds.len()
    }

    /// Structural soundness: every send pairs with exactly the recv of its
    /// destination rank in the same round (same range), every recv names a
    /// rank that sends to it, nobody sends to itself, and no rank's send
    /// range overlaps its recv range within a round (the executor sends
    /// before receiving, so an overlap would forward half-updated data).
    pub fn validate(&self) -> Result<(), String> {
        for (s, round) in self.rounds.iter().enumerate() {
            if round.steps.len() != self.ranks {
                return Err(format!("round {s}: {} steps", round.steps.len()));
            }
            for (j, step) in round.steps.iter().enumerate() {
                if let Some(snd) = step.send {
                    if snd.to == j || snd.to >= self.ranks {
                        return Err(format!("round {s}: rank {j} sends to {}", snd.to));
                    }
                    match round.steps[snd.to].recv {
                        Some(rcv) if rcv.from == j && rcv.range == snd.range => {}
                        other => {
                            return Err(format!(
                                "round {s}: rank {j} send to {} unmatched ({other:?})",
                                snd.to
                            ))
                        }
                    }
                }
                if let Some(rcv) = step.recv {
                    if rcv.from == j || rcv.from >= self.ranks {
                        return Err(format!("round {s}: rank {j} recvs from {}", rcv.from));
                    }
                    match round.steps[rcv.from].send {
                        Some(snd) if snd.to == j && snd.range == rcv.range => {}
                        other => {
                            return Err(format!(
                                "round {s}: rank {j} recv from {} unmatched ({other:?})",
                                rcv.from
                            ))
                        }
                    }
                }
                if let (Some(snd), Some(rcv)) = (step.send, step.recv) {
                    let overlap = snd.range.lo < rcv.range.hi && rcv.range.lo < snd.range.hi;
                    if overlap && !snd.range.is_empty() && !rcv.range.is_empty() {
                        return Err(format!("round {s}: rank {j} send/recv ranges overlap"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// The exact ceil-partition: chunk `i` of `n` elements over `parts`.
pub fn chunk_of(n: usize, parts: usize, i: usize) -> ChunkRange {
    let c = n.div_ceil(parts);
    ChunkRange {
        lo: (i * c).min(n),
        hi: ((i + 1) * c).min(n),
    }
}

/// Sub-chunk `i` over `parts` of an existing range (hierarchical phases).
fn sub_chunk(range: ChunkRange, parts: usize, i: usize) -> ChunkRange {
    let inner = chunk_of(range.len(), parts, i);
    ChunkRange {
        lo: range.lo + inner.lo,
        hi: range.lo + inner.hi,
    }
}

fn empty_rounds(r: usize, count: usize) -> Vec<Round> {
    (0..count)
        .map(|_| Round {
            steps: vec![RankStep::default(); r],
        })
        .collect()
}

/// Ring reduce-scatter of `n` elements over `r` ranks: `r−1` rounds, each
/// rank forwarding a partially reduced chunk to its ring successor. Rank
/// `j` ends owning the fully reduced chunk `j` (the ceil-partition chunk).
pub fn ring_reduce_scatter(r: usize, n: usize, op: ReduceOp) -> Program {
    let mut rounds = empty_rounds(r, r.saturating_sub(1));
    for (s, round) in rounds.iter_mut().enumerate() {
        for j in 0..r {
            let send_chunk = (j + r - 1 - s) % r;
            let recv_chunk = (j + 2 * r - 2 - s) % r;
            round.steps[j] = RankStep {
                send: Some(SendStep {
                    to: (j + 1) % r,
                    range: chunk_of(n, r, send_chunk),
                }),
                recv: Some(RecvStep {
                    from: (j + r - 1) % r,
                    range: chunk_of(n, r, recv_chunk),
                    combine: Combine::Reduce(op),
                }),
            };
        }
    }
    Program {
        kind: "ring-reduce-scatter",
        ranks: r,
        len: n,
        rounds,
    }
}

/// Ring all-gather where each rank contributes `part` elements: the
/// buffer is `r·part` long, rank `j` starts owning `[j·part, (j+1)·part)`,
/// and after `r−1` forwarding rounds every rank holds all contributions in
/// rank order.
pub fn ring_all_gather(r: usize, part: usize) -> Program {
    let n = r * part;
    let chunk = |i: usize| ChunkRange {
        lo: i * part,
        hi: (i + 1) * part,
    };
    let mut rounds = empty_rounds(r, r.saturating_sub(1));
    for (s, round) in rounds.iter_mut().enumerate() {
        for j in 0..r {
            round.steps[j] = RankStep {
                send: Some(SendStep {
                    to: (j + 1) % r,
                    range: chunk((j + r - s) % r),
                }),
                recv: Some(RecvStep {
                    from: (j + r - 1) % r,
                    range: chunk((j + 2 * r - 1 - s) % r),
                    combine: Combine::Replace,
                }),
            };
        }
    }
    Program {
        kind: "ring-all-gather",
        ranks: r,
        len: n,
        rounds,
    }
}

/// Ring all-reduce of `n` elements over `r` ranks: a reduce-scatter phase
/// followed by an all-gather phase, `2(r−1)` rounds total. Per-rank
/// egress is exactly the paper's `2(r−1)/r · n` for divisible `n` (§3.2's
/// `(t−1)/t` factor) and emerges exactly from the chunk ranges otherwise.
pub fn ring_all_reduce(r: usize, n: usize, op: ReduceOp) -> Program {
    let mut rounds = empty_rounds(r, 2 * r.saturating_sub(1));
    let rs_rounds = r.saturating_sub(1);
    for (s, round) in rounds.iter_mut().enumerate() {
        for j in 0..r {
            let (send_chunk, recv_chunk, combine) = if s < rs_rounds {
                // Reduce-scatter phase (see `ring_reduce_scatter`).
                (
                    (j + r - 1 - s) % r,
                    (j + 2 * r - 2 - s) % r,
                    Combine::Reduce(op),
                )
            } else {
                // All-gather phase: rank j just finished reducing chunk j.
                let ag = s - rs_rounds;
                ((j + r - ag) % r, (j + 2 * r - 1 - ag) % r, Combine::Replace)
            };
            round.steps[j] = RankStep {
                send: Some(SendStep {
                    to: (j + 1) % r,
                    range: chunk_of(n, r, send_chunk),
                }),
                recv: Some(RecvStep {
                    from: (j + r - 1) % r,
                    range: chunk_of(n, r, recv_chunk),
                    combine,
                }),
            };
        }
    }
    Program {
        kind: "ring-all-reduce",
        ranks: r,
        len: n,
        rounds,
    }
}

/// Pipelined ring broadcast of `n` elements from `root`: the buffer is cut
/// into `r` chunks that stream down the ring (`root → root+1 → …`), so
/// the wire time approaches one buffer transfer instead of `r−1` of them.
/// `r + r − 2` rounds; the last ring position forwards nothing, so its
/// egress is zero — per-rank volume is *not* uniform for a broadcast.
pub fn ring_broadcast(r: usize, n: usize, root: usize) -> Program {
    assert!(root < r, "broadcast root out of range");
    let nchunks = r;
    let total = if r > 1 { nchunks + r - 2 } else { 0 };
    let mut rounds = empty_rounds(r, total);
    for (t, round) in rounds.iter_mut().enumerate() {
        for j in 0..r {
            let q = (j + r - root) % r; // position along the ring from root
            let mut step = RankStep::default();
            if q + 1 < r {
                // Forward chunk t−q this round, if it's in flight.
                if t >= q && t - q < nchunks {
                    step.send = Some(SendStep {
                        to: (j + 1) % r,
                        range: chunk_of(n, nchunks, t - q),
                    });
                }
            }
            if q >= 1 && t + 1 >= q && t + 1 - q < nchunks {
                step.recv = Some(RecvStep {
                    from: (j + r - 1) % r,
                    range: chunk_of(n, nchunks, t + 1 - q),
                    combine: Combine::Replace,
                });
            }
            round.steps[j] = step;
        }
    }
    Program {
        kind: "ring-broadcast",
        ranks: r,
        len: n,
        rounds,
    }
}

/// Two-level hierarchical all-reduce (§5.9's multi-rail pattern): ranks
/// form `r/local` "nodes" of `local` consecutive ranks. Phase 1
/// reduce-scatters within each node; phase 2 runs one inter-node ring
/// all-reduce per local position (each rail moving only its `1/local`
/// shard — on real hardware each rail rides its own NIC); phase 3
/// all-gathers within each node. Degenerates to a flat ring when there is
/// one node or one rank per node.
pub fn hierarchical_all_reduce(r: usize, n: usize, local: usize, op: ReduceOp) -> Program {
    assert!(
        local > 0 && r.is_multiple_of(local),
        "r must split into nodes"
    );
    let nodes = r / local;
    if nodes == 1 || local == 1 {
        return ring_all_reduce(r, n, op);
    }
    let mut rounds = Vec::with_capacity(2 * (local - 1) + 2 * (nodes - 1));

    // Phase 1: intra-node reduce-scatter of the `local` node chunks, all
    // nodes in parallel within each round.
    for s in 0..local - 1 {
        let mut round = Round {
            steps: vec![RankStep::default(); r],
        };
        for k in 0..nodes {
            for u in 0..local {
                let j = k * local + u;
                round.steps[j] = RankStep {
                    send: Some(SendStep {
                        to: k * local + (u + 1) % local,
                        range: chunk_of(n, local, (u + local - 1 - s) % local),
                    }),
                    recv: Some(RecvStep {
                        from: k * local + (u + local - 1) % local,
                        range: chunk_of(n, local, (u + 2 * local - 2 - s) % local),
                        combine: Combine::Reduce(op),
                    }),
                };
            }
        }
        rounds.push(round);
    }

    // Phase 2: per-rail inter-node ring all-reduce of each local chunk,
    // all rails in parallel within each round.
    for s in 0..2 * (nodes - 1) {
        let mut round = Round {
            steps: vec![RankStep::default(); r],
        };
        let rs_rounds = nodes - 1;
        for u in 0..local {
            let rail_range = chunk_of(n, local, u);
            for k in 0..nodes {
                let j = k * local + u;
                let (send_chunk, recv_chunk, combine) = if s < rs_rounds {
                    (
                        (k + nodes - 1 - s) % nodes,
                        (k + 2 * nodes - 2 - s) % nodes,
                        Combine::Reduce(op),
                    )
                } else {
                    let ag = s - rs_rounds;
                    (
                        (k + nodes - ag) % nodes,
                        (k + 2 * nodes - 1 - ag) % nodes,
                        Combine::Replace,
                    )
                };
                round.steps[j] = RankStep {
                    send: Some(SendStep {
                        to: ((k + 1) % nodes) * local + u,
                        range: sub_chunk(rail_range, nodes, send_chunk),
                    }),
                    recv: Some(RecvStep {
                        from: ((k + nodes - 1) % nodes) * local + u,
                        range: sub_chunk(rail_range, nodes, recv_chunk),
                        combine,
                    }),
                };
            }
        }
        rounds.push(round);
    }

    // Phase 3: intra-node all-gather of the fully reduced node chunks.
    for s in 0..local - 1 {
        let mut round = Round {
            steps: vec![RankStep::default(); r],
        };
        for k in 0..nodes {
            for u in 0..local {
                let j = k * local + u;
                round.steps[j] = RankStep {
                    send: Some(SendStep {
                        to: k * local + (u + 1) % local,
                        range: chunk_of(n, local, (u + local - s) % local),
                    }),
                    recv: Some(RecvStep {
                        from: k * local + (u + local - 1) % local,
                        range: chunk_of(n, local, (u + 2 * local - 1 - s) % local),
                        combine: Combine::Replace,
                    }),
                };
            }
        }
        rounds.push(round);
    }

    Program {
        kind: "hierarchical-all-reduce",
        ranks: r,
        len: n,
        rounds,
    }
}

/// How a rank moves chunks: the pluggable wire under [`execute`]. `send`
/// must not block on the receiver (the executor sends before it receives
/// within a round, and round pacing comes from `recv` alone); `recv`
/// blocks until the matching chunk arrives or the transport gives up.
pub trait Transport {
    /// Transport failure (timeout, poisoned peer, closed channel, ...).
    type Error;
    /// Enqueue `payload` for `to`.
    fn send(&mut self, to: usize, payload: &[f32]) -> Result<(), Self::Error>;
    /// Dequeue the next chunk from `from`.
    fn recv(&mut self, from: usize) -> Result<Vec<f32>, Self::Error>;
}

/// A transport failure with the step context the ISSUE-grade diagnostics
/// need: *which* collective, *which* round of how many, and *which* peer
/// was involved when the failure hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepFailure<E> {
    /// The collective's [`Program::kind`].
    pub collective: &'static str,
    /// Zero-based round that failed.
    pub round: usize,
    /// Total rounds in the program.
    pub rounds: usize,
    /// The peer of the failing send/recv.
    pub peer: usize,
    /// The transport's underlying error.
    pub error: E,
}

impl<E: fmt::Display> fmt::Display for StepFailure<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} step {}/{} involving rank {}: {}",
            self.collective,
            self.round + 1,
            self.rounds,
            self.peer,
            self.error
        )
    }
}

/// What [`execute`] measured.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecReport {
    /// Elements this rank sent (exact egress volume of the algorithm).
    pub sent_elems: usize,
}

/// Run `prog` as rank `rank` over `transport`, mutating `buf` in place.
///
/// Within each round the rank first posts its send (non-blocking), then
/// blocks on its recv and applies the combine rule. On a transport error
/// the failing round and peer are reported via [`StepFailure`].
pub fn execute<T: Transport>(
    prog: &Program,
    rank: usize,
    buf: &mut [f32],
    transport: &mut T,
) -> Result<ExecReport, StepFailure<T::Error>> {
    assert!(rank < prog.ranks, "rank out of range");
    assert_eq!(buf.len(), prog.len, "buffer/program length mismatch");
    let rounds = prog.rounds.len();
    let mut report = ExecReport::default();
    for (s, round) in prog.rounds.iter().enumerate() {
        let step = &round.steps[rank];
        if let Some(snd) = step.send {
            transport
                .send(snd.to, &buf[snd.range.lo..snd.range.hi])
                .map_err(|error| StepFailure {
                    collective: prog.kind,
                    round: s,
                    rounds,
                    peer: snd.to,
                    error,
                })?;
            report.sent_elems += snd.range.len();
        }
        if let Some(rcv) = step.recv {
            let data = transport.recv(rcv.from).map_err(|error| StepFailure {
                collective: prog.kind,
                round: s,
                rounds,
                peer: rcv.from,
                error,
            })?;
            assert_eq!(
                data.len(),
                rcv.range.len(),
                "transport delivered a wrong-sized chunk"
            );
            rcv.combine
                .apply(&mut buf[rcv.range.lo..rcv.range.hi], &data);
        }
    }
    Ok(report)
}

/// Serial reference interpreter: run `prog` over all ranks' buffers at
/// once, with the same per-round send-then-combine semantics as
/// [`execute`]. This is the executable specification the real transport
/// is differentially tested against, bit for bit.
pub fn reference_run(prog: &Program, bufs: &mut [Vec<f32>]) {
    assert_eq!(bufs.len(), prog.ranks, "one buffer per rank");
    for b in bufs.iter() {
        assert_eq!(b.len(), prog.len, "buffer/program length mismatch");
    }
    for round in &prog.rounds {
        // Capture every outgoing chunk from end-of-previous-round state...
        let outgoing: Vec<Option<Vec<f32>>> = round
            .steps
            .iter()
            .enumerate()
            .map(|(j, st)| {
                st.send
                    .map(|snd| bufs[j][snd.range.lo..snd.range.hi].to_vec())
            })
            .collect();
        // ...then apply every delivery.
        for (j, st) in round.steps.iter().enumerate() {
            if let Some(rcv) = st.recv {
                let data = outgoing[rcv.from]
                    .as_ref()
                    .expect("validate(): recv without matching send");
                rcv.combine
                    .apply(&mut bufs[j][rcv.range.lo..rcv.range.hi], data);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded(rank: usize, n: usize) -> Vec<f32> {
        // Deterministic non-trivial values; no RNG dependency needed.
        (0..n)
            .map(|i| ((rank * 31 + i * 7) % 97) as f32 * 0.125 - 3.0)
            .collect()
    }

    #[test]
    fn programs_validate_across_sizes_and_lengths() {
        for r in [1usize, 2, 3, 4, 5, 7, 8] {
            for n in [0usize, 1, 5, 8, 16, 33] {
                ring_all_reduce(r, n, ReduceOp::Sum).validate().unwrap();
                ring_reduce_scatter(r, n, ReduceOp::Sum).validate().unwrap();
                ring_all_gather(r, n).validate().unwrap();
                for root in 0..r {
                    ring_broadcast(r, n, root).validate().unwrap();
                }
            }
        }
        for (r, local) in [(4, 2), (6, 3), (8, 4), (8, 2), (9, 3)] {
            for n in [7usize, 24, 40] {
                hierarchical_all_reduce(r, n, local, ReduceOp::Sum)
                    .validate()
                    .unwrap();
            }
        }
    }

    #[test]
    fn all_reduce_reference_sums_every_rank() {
        for r in [2usize, 3, 5] {
            for n in [1usize, 6, 7] {
                let prog = ring_all_reduce(r, n, ReduceOp::Sum);
                let mut bufs: Vec<Vec<f32>> = (0..r).map(|j| seeded(j, n)).collect();
                reference_run(&prog, &mut bufs);
                for i in 0..n {
                    let want: f32 = (0..r).map(|j| seeded(j, n)[i]).sum();
                    for (j, b) in bufs.iter().enumerate() {
                        assert!(
                            (b[i] - want).abs() < 1e-4,
                            "r={r} n={n} rank {j} elem {i}: {} vs {want}",
                            b[i]
                        );
                    }
                }
                // All ranks bit-identical (the all-gather phase replicates
                // the same reduced chunk to everyone).
                for b in &bufs[1..] {
                    assert_eq!(b, &bufs[0]);
                }
            }
        }
    }

    #[test]
    fn reduce_scatter_owns_chunk_j() {
        let (r, n) = (4, 10);
        let prog = ring_reduce_scatter(r, n, ReduceOp::Sum);
        let mut bufs: Vec<Vec<f32>> = (0..r).map(|j| seeded(j, n)).collect();
        reference_run(&prog, &mut bufs);
        for j in 0..r {
            let c = chunk_of(n, r, j);
            for i in c.lo..c.hi {
                let want: f32 = (0..r).map(|k| seeded(k, n)[i]).sum();
                assert!((bufs[j][i] - want).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn all_gather_replicates_in_rank_order() {
        let (r, part) = (5, 3);
        let prog = ring_all_gather(r, part);
        let mut bufs: Vec<Vec<f32>> = (0..r)
            .map(|j| {
                let mut b = vec![0.0; r * part];
                b[j * part..(j + 1) * part].copy_from_slice(&seeded(j, part));
                b
            })
            .collect();
        reference_run(&prog, &mut bufs);
        let want: Vec<f32> = (0..r).flat_map(|j| seeded(j, part)).collect();
        for b in &bufs {
            assert_eq!(b, &want);
        }
    }

    #[test]
    fn broadcast_delivers_root_buffer() {
        for r in [2usize, 3, 6] {
            for root in [0, r - 1] {
                let n = 11;
                let prog = ring_broadcast(r, n, root);
                let mut bufs: Vec<Vec<f32>> = (0..r)
                    .map(|j| {
                        if j == root {
                            seeded(root, n)
                        } else {
                            vec![0.0; n]
                        }
                    })
                    .collect();
                reference_run(&prog, &mut bufs);
                for b in &bufs {
                    assert_eq!(b, &seeded(root, n));
                }
                // The last ring position never forwards: zero egress.
                let last = (root + r - 1) % r;
                assert_eq!(prog.sent_elems(last), 0);
                assert_eq!(prog.sent_elems(root), n);
            }
        }
    }

    #[test]
    fn hierarchical_matches_flat_sum() {
        let (r, local, n) = (8, 4, 21);
        let prog = hierarchical_all_reduce(r, n, local, ReduceOp::Sum);
        let mut bufs: Vec<Vec<f32>> = (0..r).map(|j| seeded(j, n)).collect();
        reference_run(&prog, &mut bufs);
        for i in 0..n {
            let want: f32 = (0..r).map(|j| seeded(j, n)[i]).sum();
            for b in &bufs {
                assert!((b[i] - want).abs() < 1e-4);
            }
        }
        for b in &bufs[1..] {
            assert_eq!(b, &bufs[0]);
        }
    }

    #[test]
    fn divisible_volumes_match_closed_forms() {
        // For divisible buffers the classic formulas fall out exactly.
        let (r, n) = (4usize, 16usize);
        let ar = ring_all_reduce(r, n, ReduceOp::Sum);
        let rs = ring_reduce_scatter(r, n, ReduceOp::Sum);
        let ag = ring_all_gather(r, n / r);
        for j in 0..r {
            assert_eq!(ar.sent_elems(j), 2 * (r - 1) * n / r);
            assert_eq!(rs.sent_elems(j), (r - 1) * n / r);
            assert_eq!(ag.sent_elems(j), (r - 1) * (n / r));
        }
    }

    #[test]
    fn size_two_all_reduce_volume_is_exact_for_any_length() {
        // The (2,2,2) trainer's §3 cross-checks lean on this: at g = 2 the
        // per-rank egress equals 2·(g−1)/g·n = n elements exactly, even
        // for odd buffer lengths where the tail chunk is short.
        for n in [1usize, 3, 7, 96, 97] {
            let prog = ring_all_reduce(2, n, ReduceOp::Sum);
            assert_eq!(prog.sent_elems(0), n);
            assert_eq!(prog.sent_elems(1), n);
        }
    }

    #[test]
    fn executor_matches_reference_via_threaded_mailboxes() {
        // A minimal blocking mailbox transport: one queue per directed
        // edge, one thread per rank, exactly the shape the real
        // `dist::comm` transport takes.
        use std::collections::VecDeque;
        use std::sync::{Condvar, Mutex};
        struct Edge {
            q: Mutex<VecDeque<Vec<f32>>>,
            cv: Condvar,
        }
        struct Mailboxes<'a> {
            rank: usize,
            edges: &'a [Edge], // dst*r + src
            r: usize,
        }
        impl Transport for Mailboxes<'_> {
            type Error = ();
            fn send(&mut self, to: usize, payload: &[f32]) -> Result<(), ()> {
                let edge = &self.edges[to * self.r + self.rank];
                edge.q.lock().unwrap().push_back(payload.to_vec());
                edge.cv.notify_all();
                Ok(())
            }
            fn recv(&mut self, from: usize) -> Result<Vec<f32>, ()> {
                let edge = &self.edges[self.rank * self.r + from];
                let mut q = edge.q.lock().unwrap();
                loop {
                    if let Some(data) = q.pop_front() {
                        return Ok(data);
                    }
                    q = edge.cv.wait(q).unwrap();
                }
            }
        }

        let (r, n) = (3usize, 8usize);
        let prog = ring_all_reduce(r, n, ReduceOp::Sum);
        let mut reference: Vec<Vec<f32>> = (0..r).map(|j| seeded(j, n)).collect();
        reference_run(&prog, &mut reference);

        let edges: Vec<Edge> = (0..r * r)
            .map(|_| Edge {
                q: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
            })
            .collect();
        let bufs: Vec<Vec<f32>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..r)
                .map(|j| {
                    let prog = &prog;
                    let edges = &edges;
                    scope.spawn(move || {
                        let mut buf = seeded(j, n);
                        let mut tp = Mailboxes { rank: j, edges, r };
                        let report = execute(prog, j, &mut buf, &mut tp).unwrap();
                        assert_eq!(report.sent_elems, prog.sent_elems(j));
                        buf
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(bufs, reference, "executor and reference must agree bitwise");
    }
}
