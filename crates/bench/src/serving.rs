//! E34: tensor-parallel autoregressive serving — KV-cached continuous
//! batching under synthetic Poisson traffic.
//!
//! The benchmark drives seeded traffic through the real `megatron-serve`
//! engine on a `t`-way tensor group and reports tokens/sec, TTFT, and
//! p50/p95/p99 request latency — the exact order statistics from the
//! run's summary side by side with the log-bucket estimates from the
//! `megatron-telemetry` histograms.
//!
//! Three cross-checks ride along:
//!
//! 1. **bit identity** — one request decoded incrementally through the KV
//!    cache is compared token-by-token and bit-by-bit against a
//!    full-prefix recompute (fresh caches every step);
//! 2. **sim mirror** — a linear per-step cost model is fitted on a
//!    *separate calibration run* (different seed), then the discrete-event
//!    mirror replays the benchmark traffic on it; its throughput must land
//!    within 10% of the real engine (fitting on the same run would make
//!    the check circular — least squares zeroes its own residuals). Both
//!    sides are measured best-of-k over identical deterministic step
//!    sequences, so OS scheduling spikes cannot bend the comparison;
//! 3. **FLOP accounting** — the run's aggregate FLOP/s from the model
//!    crate's decode/prefill formulas, tying serving throughput back to
//!    the paper's compute arithmetic.
//!
//! A simulated policy sweep (admission caps × chunked prefill) closes the
//! report: the mirror explores schedules the real run didn't execute.

use megatron_dist::Group;
use megatron_model::GptConfig;
use megatron_serve::{generate, TrafficConfig};
use megatron_serve::{serve, RankEngine, SeqBatchEntry, ServeConfig, ServeRequest};
use megatron_sim::json::Json;
use megatron_sim::serving::{percentile, simulate, BatchPolicy, CostModel, Request};
use megatron_telemetry::MetricsRegistry;
use megatron_tensor::gpt::{GptModel, TinyGptConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::perf;
use crate::table::Table;

/// CLI-tunable serving knobs (`repro serving [flags]`).
#[derive(Debug, Clone, PartialEq)]
pub struct ServingKnobs {
    /// Benchmark traffic size.
    pub requests: usize,
    /// Benchmark traffic seed (calibration uses `seed + 1`).
    pub seed: u64,
    /// Tensor-parallel degree (bit-identical decode holds for 1 and 2).
    pub tensor_parallel: usize,
    /// Admission cap: concurrent sequences.
    pub max_seqs: usize,
    /// Admission cap: live KV rows across running sequences.
    pub max_live_tokens: usize,
    /// Prefill chunk rows (0 = whole prompt in one step).
    pub prefill_chunk: usize,
    /// Mean inter-arrival gap in virtual cost units.
    pub mean_interarrival: f64,
    /// Requests in the simulated policy sweep.
    pub sweep_requests: usize,
    /// Measurement repetitions (best-of-k; see [`report`] for why).
    pub reps: usize,
    /// Output path for the machine-readable record.
    pub bench_json: String,
}

impl Default for ServingKnobs {
    fn default() -> Self {
        ServingKnobs {
            requests: 80,
            seed: 0x5e34,
            tensor_parallel: 2,
            max_seqs: 6,
            max_live_tokens: 160,
            prefill_chunk: 0,
            mean_interarrival: 24.0,
            sweep_requests: 1500,
            reps: 4,
            bench_json: "BENCH_serving.json".to_string(),
        }
    }
}

/// `repro serving` usage string.
pub const USAGE: &str = "repro serving [--requests N] [--seed N] [--tensor N] [--max-seqs N]
             [--max-live-tokens N] [--prefill-chunk N] [--mean-gap X]
             [--sweep-requests N] [--reps N] [--bench-json PATH]
  E34: continuous-batched KV-cached decoding over a real tensor group:
  tokens/sec + TTFT/latency percentiles, bit-identity spot check, and the
  calibrated sim-mirror cross-check; writes BENCH_serving.json";

/// Parse CLI flags into [`ServingKnobs`].
pub fn parse_knobs(args: &[String]) -> Result<ServingKnobs, String> {
    let mut knobs = ServingKnobs::default();
    fn val<'a>(flag: &str, v: Option<&'a String>) -> Result<&'a String, String> {
        v.ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
    }
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let val = |v| val(flag, v);
        match flag.as_str() {
            "--requests" => knobs.requests = parse(val(it.next())?)?,
            "--seed" => knobs.seed = parse(val(it.next())?)?,
            "--tensor" => knobs.tensor_parallel = parse(val(it.next())?)?,
            "--max-seqs" => knobs.max_seqs = parse(val(it.next())?)?,
            "--max-live-tokens" => knobs.max_live_tokens = parse(val(it.next())?)?,
            "--prefill-chunk" => knobs.prefill_chunk = parse(val(it.next())?)?,
            "--mean-gap" => knobs.mean_interarrival = parse(val(it.next())?)?,
            "--sweep-requests" => knobs.sweep_requests = parse(val(it.next())?)?,
            "--reps" => knobs.reps = parse(val(it.next())?)?,
            "--bench-json" => knobs.bench_json = val(it.next())?.clone(),
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    if knobs.requests == 0 {
        return Err("--requests must be at least 1".into());
    }
    if ![1usize, 2].contains(&knobs.tensor_parallel) {
        return Err("--tensor must be 1 or 2 (bit-identical all-reduce range)".into());
    }
    if knobs.max_seqs == 0 || knobs.max_live_tokens == 0 {
        return Err("--max-seqs and --max-live-tokens must be at least 1".into());
    }
    if knobs.mean_interarrival < 0.0 {
        return Err("--mean-gap must be non-negative".into());
    }
    if knobs.reps == 0 {
        return Err("--reps must be at least 1".into());
    }
    Ok(knobs)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("could not parse '{s}'\n{USAGE}"))
}

/// CLI entry: parse flags, run the benchmark.
pub fn run(args: &[String]) -> Result<String, String> {
    parse_knobs(args).map(|knobs| report(&knobs))
}

/// E34 registry entry: the default benchmark.
pub fn serving() -> String {
    report(&ServingKnobs::default())
}

/// The benchmark model: big enough that a decode step does real tensor
/// work, small enough for CI.
fn bench_model() -> (TinyGptConfig, GptModel) {
    let cfg = TinyGptConfig {
        vocab: 64,
        seq: 96,
        hidden: 48,
        heads: 6,
        layers: 4,
    };
    let model = GptModel::new(cfg, &mut StdRng::seed_from_u64(0x5e34_0de1));
    (cfg, model)
}

fn traffic(knobs: &ServingKnobs, seed: u64, requests: usize, vocab: usize) -> Vec<ServeRequest> {
    generate(&TrafficConfig {
        requests,
        seed,
        mean_interarrival: knobs.mean_interarrival,
        prompt_len: (8, 24),
        max_new: (4, 16),
        vocab,
    })
}

/// Decode `max_new` tokens from `prompt` on a single rank, either reusing
/// the KV cache between steps (incremental) or rebuilding it from the full
/// prefix at every step (recompute). Returns the sampled tokens and the
/// final step's logits row.
fn greedy_decode(
    model: &GptModel,
    prompt: &[usize],
    max_new: usize,
    incremental: bool,
) -> (Vec<usize>, Vec<f32>) {
    let group = Group::new(1);
    let member = group.member(0);
    let engine = RankEngine::from_serial(model, 1, 0);
    let mut tokens = prompt.to_vec();
    let mut caches = engine.new_cache();
    let mut out = Vec::new();
    let mut last_row = Vec::new();
    for step in 0..max_new {
        let start = if incremental && step > 0 {
            tokens.len() - 1
        } else {
            0
        };
        if !incremental {
            caches = engine.new_cache();
        }
        let mut entries = [SeqBatchEntry {
            tokens: &tokens[start..],
            start_pos: start,
            caches: &mut caches,
        }];
        let logits = engine.forward_step(&mut entries, &member);
        let row = logits.row(logits.rows() - 1).to_vec();
        let tok = megatron_serve::engine::argmax(&row);
        last_row = row;
        tokens.push(tok);
        out.push(tok);
    }
    (out, last_row)
}

/// Fold `next` into `acc` taking the per-step minimum of the measured
/// seconds. The deterministic scheduler guarantees every rep runs the
/// identical (rows, attended) sequence, so samples align index-by-index
/// and the minimum strips additive OS-scheduling noise.
fn elementwise_min(acc: &mut Vec<(usize, usize, f64)>, next: &[(usize, usize, f64)]) {
    if acc.is_empty() {
        acc.extend_from_slice(next);
        return;
    }
    assert_eq!(acc.len(), next.len(), "step plan drifted between reps");
    for (a, n) in acc.iter_mut().zip(next) {
        assert_eq!((a.0, a.1), (n.0, n.1), "step plan drifted between reps");
        a.2 = a.2.min(n.2);
    }
}

fn fmt_pcts(sorted: &[f64]) -> String {
    format!(
        "{:7.2} / {:7.2} / {:7.2} ms",
        1e3 * percentile(sorted, 0.50),
        1e3 * percentile(sorted, 0.95),
        1e3 * percentile(sorted, 0.99),
    )
}

/// Aggregate inference FLOPs of a finished request set under the model
/// crate's decode/prefill formulas.
fn total_flops(cfg: &GptConfig, reqs: &[Request]) -> f64 {
    reqs.iter()
        .map(|r| {
            let decode: f64 = (1..r.max_new)
                .map(|i| cfg.flops_per_decode_token((r.prompt + i - 1) as u64))
                .sum();
            cfg.flops_prefill(r.prompt as u64) + decode
        })
        .sum()
}

fn report(knobs: &ServingKnobs) -> String {
    let (tiny, model) = bench_model();
    let policy = BatchPolicy {
        max_seqs: knobs.max_seqs,
        max_live_tokens: knobs.max_live_tokens,
        prefill_chunk: knobs.prefill_chunk,
    };
    let gcfg = GptConfig {
        name: "serving-bench".to_string(),
        num_layers: tiny.layers as u64,
        hidden_size: tiny.hidden as u64,
        num_heads: tiny.heads as u64,
        seq_len: tiny.seq as u64,
        vocab_size: tiny.vocab as u64,
    };
    gcfg.validate();

    let mut out = String::new();
    out.push_str(&format!(
        "E34: continuous-batched serving over a real t={} tensor group\n\
         model: {} layers, hidden {}, {} heads, seq {}, vocab {}\n\
         traffic: {} requests, seed {:#x}, mean gap {:.1} vunits, prompt 8..=24, new 4..=16\n\
         policy: max_seqs {}, max_live_tokens {}, prefill_chunk {}\n\n",
        knobs.tensor_parallel,
        tiny.layers,
        tiny.hidden,
        tiny.heads,
        tiny.seq,
        tiny.vocab,
        knobs.requests,
        knobs.seed,
        knobs.mean_interarrival,
        knobs.max_seqs,
        knobs.max_live_tokens,
        knobs.prefill_chunk,
    ));

    // 1. KV-cache spot check: incremental vs full-prefix recompute on the
    //    first benchmark request must agree to the bit. The full suite
    //    (t ∈ {1,2}, odd splits) lives in tests/serving.rs and the dist
    //    crate's block tests; this inline check keeps the benchmark
    //    honest about the engine it is timing.
    let reqs = traffic(knobs, knobs.seed, knobs.requests, tiny.vocab);
    let probe = &reqs[0];
    let (inc_toks, inc_row) =
        greedy_decode(&model, &probe.prompt_tokens, probe.request.max_new, true);
    let (full_toks, full_row) =
        greedy_decode(&model, &probe.prompt_tokens, probe.request.max_new, false);
    let identical = inc_toks == full_toks
        && inc_row.len() == full_row.len()
        && inc_row
            .iter()
            .zip(&full_row)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    out.push_str(&format!(
        "KV-cache spot check (request 0, {} prompt + {} decode): incremental vs\n\
         full-prefix recompute bit-identical: {}\n\n",
        probe.request.prompt,
        probe.request.max_new,
        if identical { "yes" } else { "NO" },
    ));
    assert!(
        identical,
        "incremental KV-cache decode drifted from recompute"
    );

    // 2. The real benchmark run, instrumented. The scheduler is
    //    deterministic, so every rep executes the identical step
    //    sequence; one warm-up run pays the thread-pool/allocator/page
    //    costs, then the fastest of `reps` measured runs is reported —
    //    OS noise only ever adds time, so best-of-k is the least noisy
    //    estimate of what the steps actually cost.
    let cfg = ServeConfig {
        tensor_parallel: knobs.tensor_parallel,
        policy,
    };
    let _warmup = serve(&model, &cfg, &reqs, None);
    // Benchmark and calibration reps are *interleaved* so a load shift on
    // the host machine inflates both sides of the cross-check alike
    // instead of biasing whichever phase it happened to overlap.
    let calib_reqs = traffic(knobs, knobs.seed + 1, knobs.requests.max(24), tiny.vocab);
    let mut min_steps: Vec<(usize, usize, f64)> = Vec::new();
    let mut calib_samples: Vec<(usize, usize, f64)> = Vec::new();
    let mut best: Option<(megatron_serve::ServeOutcome, MetricsRegistry)> = None;
    for _ in 0..knobs.reps {
        let m = MetricsRegistry::new();
        let r = serve(&model, &cfg, &reqs, Some(&m));
        elementwise_min(&mut min_steps, &r.step_samples);
        if best
            .as_ref()
            .is_none_or(|(b, _)| r.summary.total_s < b.summary.total_s)
        {
            best = Some((r, m));
        }
        let calib = serve(&model, &cfg, &calib_reqs, None);
        elementwise_min(&mut calib_samples, &calib.step_samples);
    }
    let (real, metrics) = best.expect("reps >= 1");
    let s = &real.summary;
    // The throughput the mirror is checked against sums the per-step
    // minima — the same noise-free quantity the calibration fit below
    // estimates. (Latency percentiles stay per-run: they are wall-clock
    // decorations of the best rep, not cross-checked against the model.)
    let total_min_s: f64 = min_steps.iter().map(|&(_, _, secs)| secs).sum();
    let tokens_per_sec = s.generated_tokens as f64 / total_min_s;
    let ttfts = s.ttfts();
    let lats = s.latencies();
    let ttft_h = metrics.histogram("serve.ttft_seconds");
    let lat_h = metrics.histogram("serve.latency_seconds");
    let (hp50, hp95, hp99) = lat_h.percentiles().unwrap_or((0.0, 0.0, 0.0));
    let (tp50, tp95, tp99) = ttft_h.percentiles().unwrap_or((0.0, 0.0, 0.0));
    let flops = total_flops(
        &gcfg,
        &s.requests
            .iter()
            .map(|r| Request {
                id: r.id,
                arrival: 0.0,
                prompt: r.prompt,
                max_new: r.generated,
            })
            .collect::<Vec<_>>(),
    );
    out.push_str(&format!(
        "real engine ({} reps, Σ per-step minima): {} steps, {} generated + {} prefill tokens in {:.3} s\n\
         tokens/sec (generated):        {tokens_per_sec:8.1}\n\
         TTFT    p50/p95/p99 exact:     {}\n\
         latency p50/p95/p99 exact:     {}\n\
         TTFT    p50/p95/p99 histogram: {:7.2} / {:7.2} / {:7.2} ms\n\
         latency p50/p95/p99 histogram: {:7.2} / {:7.2} / {:7.2} ms\n\
         peak running seqs: {}, peak KV floats: {} ({:.2} MiB at f32)\n\
         aggregate inference rate: {:.2} GFLOP/s (model-crate decode/prefill formulas)\n\n",
        knobs.reps,
        s.steps,
        s.generated_tokens,
        s.prefill_tokens,
        total_min_s,
        fmt_pcts(&ttfts),
        fmt_pcts(&lats),
        1e3 * tp50,
        1e3 * tp95,
        1e3 * tp99,
        1e3 * hp50,
        1e3 * hp95,
        1e3 * hp99,
        s.peak_running,
        real.kv_peak_floats,
        real.kv_peak_floats as f64 * 4.0 / (1 << 20) as f64,
        flops / total_min_s / 1e9,
    ));

    // 3. Sim-mirror cross-check, calibrated on a *different* run: fit the
    //    per-step cost model on seed+1 traffic, then let the mirror replay
    //    the benchmark traffic it has never timed. The fit runs on the
    //    elementwise minimum of the reps' step samples (same deterministic
    //    plan → samples align index-by-index), which strips the scheduling
    //    spikes that would otherwise bend the least-squares coefficients.
    let cost = CostModel::fit(&calib_samples);
    let mirrored = simulate(
        policy,
        &reqs.iter().map(|r| r.request.clone()).collect::<Vec<_>>(),
        &cost,
    );
    assert_eq!(
        mirrored.admission_order, s.admission_order,
        "mirror must replay the real engine's admission schedule"
    );
    let sim_tps = mirrored.tokens_per_sec();
    let ratio = sim_tps / tokens_per_sec;
    let pass = (ratio - 1.0).abs() <= 0.10;
    out.push_str(&format!(
        "sim mirror (cost model fitted on separate calibration run, seed {:#x}, {} requests, min over {} reps):\n\
         cost model: c0 {:.3e} s, {:.3e} s/row, {:.3e} s/attended\n\
         real {tokens_per_sec:.1} tok/s vs mirrored {sim_tps:.1} tok/s — ratio {ratio:.3}\n\
         cross-check: {} (|ratio - 1| <= 0.10)\n\n",
        knobs.seed + 1,
        calib_reqs.len(),
        knobs.reps,
        cost.c0,
        cost.c_row,
        cost.c_att,
        if pass { "PASS" } else { "FAIL" },
    ));

    // 4. Policy sweep on the mirror: schedules the real run never
    //    executed, priced with the calibrated cost model.
    let sweep_reqs: Vec<Request> = traffic(knobs, knobs.seed + 2, knobs.sweep_requests, tiny.vocab)
        .into_iter()
        .map(|r| r.request)
        .collect();
    let mut t = Table::new([
        "max_seqs",
        "prefill_chunk",
        "tok/s",
        "p50 lat ms",
        "p95 lat ms",
        "peak seqs",
    ]);
    for max_seqs in [1usize, 2, 4, 8, 16] {
        for chunk in [0usize, 8] {
            let p = BatchPolicy {
                max_seqs,
                max_live_tokens: knobs.max_live_tokens,
                prefill_chunk: chunk,
            };
            let r = simulate(p, &sweep_reqs, &cost);
            let lat = r.latencies();
            t.row([
                max_seqs.to_string(),
                chunk.to_string(),
                format!("{:.1}", r.tokens_per_sec()),
                format!("{:.2}", 1e3 * percentile(&lat, 0.50)),
                format!("{:.2}", 1e3 * percentile(&lat, 0.95)),
                r.peak_running.to_string(),
            ]);
        }
    }
    out.push_str(&format!(
        "simulated policy sweep ({} requests, calibrated cost model):\n{}\
         batching wins throughput until the admission cap stops binding;\n\
         chunked prefill trades a little throughput for shorter head-of-line\n\
         stalls (lower p95) once prompts no longer monopolize whole steps\n\n",
        sweep_reqs.len(),
        t.render(),
    ));

    // 5. Machine-readable record in the shared BENCH schema.
    let record = perf::bench_json(
        "serving",
        vec![
            ("requests".into(), Json::Num(knobs.requests as f64)),
            ("seed".into(), Json::Num(knobs.seed as f64)),
            (
                "tensor_parallel".into(),
                Json::Num(knobs.tensor_parallel as f64),
            ),
            ("max_seqs".into(), Json::Num(knobs.max_seqs as f64)),
            (
                "max_live_tokens".into(),
                Json::Num(knobs.max_live_tokens as f64),
            ),
            (
                "prefill_chunk".into(),
                Json::Num(knobs.prefill_chunk as f64),
            ),
            (
                "mean_interarrival".into(),
                Json::Num(knobs.mean_interarrival),
            ),
        ],
        vec![
            ("tokens_per_sec".into(), tokens_per_sec),
            ("total_s".into(), total_min_s),
            ("steps".into(), s.steps as f64),
            ("generated_tokens".into(), s.generated_tokens as f64),
            ("prefill_tokens".into(), s.prefill_tokens as f64),
            ("ttft_p50_s".into(), percentile(&ttfts, 0.50)),
            ("ttft_p95_s".into(), percentile(&ttfts, 0.95)),
            ("ttft_p99_s".into(), percentile(&ttfts, 0.99)),
            ("latency_p50_s".into(), percentile(&lats, 0.50)),
            ("latency_p95_s".into(), percentile(&lats, 0.95)),
            ("latency_p99_s".into(), percentile(&lats, 0.99)),
            ("peak_running_seqs".into(), s.peak_running as f64),
            ("kv_peak_floats".into(), real.kv_peak_floats as f64),
            ("mirror_ratio".into(), ratio),
            ("gflops_per_sec".into(), flops / total_min_s / 1e9),
        ],
    );
    out.push_str(&perf::write_bench_json(&knobs.bench_json, &record));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_flags_parse_and_validate() {
        let to_args =
            |flags: &[&str]| -> Vec<String> { flags.iter().map(|s| s.to_string()).collect() };
        let knobs = parse_knobs(&to_args(&[
            "--requests",
            "40",
            "--tensor",
            "1",
            "--max-seqs",
            "4",
            "--bench-json",
            "/tmp/out.json",
        ]))
        .unwrap();
        assert_eq!(knobs.requests, 40);
        assert_eq!(knobs.tensor_parallel, 1);
        assert_eq!(knobs.max_seqs, 4);
        assert_eq!(knobs.bench_json, "/tmp/out.json");
        assert_eq!(parse_knobs(&[]).unwrap(), ServingKnobs::default());
        assert!(parse_knobs(&to_args(&["--tensor", "3"])).is_err());
        assert!(parse_knobs(&to_args(&["--requests", "0"])).is_err());
        assert!(parse_knobs(&to_args(&["--requests"])).is_err());
        assert!(parse_knobs(&to_args(&["--turbo"])).is_err());
    }

    #[test]
    fn small_benchmark_passes_its_own_checks() {
        // A miniature E34: the inline asserts (bit identity, admission
        // replay) and the PASS line are the contract CI greps for.
        let out = report(&ServingKnobs {
            requests: 16,
            sweep_requests: 64,
            bench_json: std::env::temp_dir()
                .join(format!("BENCH_serving_test_{}.json", std::process::id()))
                .to_string_lossy()
                .into_owned(),
            ..ServingKnobs::default()
        });
        assert!(out.contains("bit-identical: yes"));
        assert!(out.contains("cross-check:"));
    }
}
