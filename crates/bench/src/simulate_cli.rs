//! The `repro simulate` subcommand: simulate an arbitrary user-specified
//! PTD-P configuration and print the full iteration report.

use megatron_cluster::ClusterSpec;
use megatron_core::TrainingRun;
use megatron_model::{zoo, GptConfig};
use megatron_parallel::ParallelConfig;

/// Usage text for `repro simulate`.
pub const USAGE: &str = "\
usage: repro simulate --model <name> --gpus <n> --tensor <t> --pipeline <p> \\
                      --batch <B> [--microbatch <b>] [--chunks <v>] \\
                      [--schedule 1f1b|gpipe] [--no-scatter-gather] \\
                      [--no-fusion] [--no-recompute] [--ignore-memory]

models: 1.7b 3.6b 7.5b 18.4b 39.1b 76.1b 145.6b 310.1b 530b 1t 175b 5.9b 91b 162b
        or custom: --layers L --hidden H --heads A

example: repro simulate --model 175b --gpus 768 --tensor 8 --pipeline 12 --batch 1536";

fn lookup_model(name: &str) -> Option<GptConfig> {
    let table1 = zoo::table1();
    match name {
        "175b" | "gpt3" => Some(zoo::gpt3_175b()),
        "530b" => Some(zoo::gpt_530b()),
        "1t" => Some(zoo::gpt_1t()),
        "5.9b" => Some(zoo::gpt_5p9b()),
        "91b" => Some(zoo::gpt_91b()),
        "145b" => Some(zoo::gpt_145b()),
        "162b" => Some(zoo::gpt_162b()),
        "1b" => Some(zoo::gpt_1b_microbench()),
        _ => table1
            .into_iter()
            .find(|r| {
                r.config
                    .name
                    .trim_start_matches("GPT ")
                    .eq_ignore_ascii_case(name.trim_start_matches("gpt"))
            })
            .map(|r| r.config),
    }
}

/// Parse and run; returns the printable report or a usage error.
pub fn run(args: &[String]) -> Result<String, String> {
    let mut model: Option<GptConfig> = None;
    let mut layers = None;
    let mut hidden = None;
    let mut heads = None;
    let (mut gpus, mut t, mut p, mut batch) = (None, None, None, None);
    let mut microbatch = 1u64;
    let mut chunks = 1u64;
    let mut schedule = "1f1b".to_string();
    let (mut sg, mut fused, mut recompute, mut enforce) = (true, true, true, true);

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--model" => {
                let name = value("--model")?;
                model = Some(
                    lookup_model(&name)
                        .ok_or_else(|| format!("unknown model '{name}'\n{USAGE}"))?,
                );
            }
            "--layers" => layers = Some(parse(&value("--layers")?)?),
            "--hidden" => hidden = Some(parse(&value("--hidden")?)?),
            "--heads" => heads = Some(parse(&value("--heads")?)?),
            "--gpus" => gpus = Some(parse(&value("--gpus")?)?),
            "--tensor" | "-t" => t = Some(parse(&value("--tensor")?)?),
            "--pipeline" | "-p" => p = Some(parse(&value("--pipeline")?)?),
            "--batch" | "-B" => batch = Some(parse(&value("--batch")?)?),
            "--microbatch" | "-b" => microbatch = parse(&value("--microbatch")?)?,
            "--chunks" | "-v" => chunks = parse(&value("--chunks")?)?,
            "--schedule" => schedule = value("--schedule")?,
            "--no-scatter-gather" => sg = false,
            "--no-fusion" => fused = false,
            "--no-recompute" => recompute = false,
            "--ignore-memory" => enforce = false,
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }

    let model = match (model, layers, hidden, heads) {
        (Some(m), None, None, None) => m,
        (None, Some(l), Some(h), Some(a)) => GptConfig::paper("custom", l, h, a),
        _ => {
            return Err(format!(
                "specify --model OR --layers/--hidden/--heads\n{USAGE}"
            ))
        }
    };
    let gpus: u64 = gpus.ok_or_else(|| format!("--gpus required\n{USAGE}"))?;
    let t: u64 = t.ok_or_else(|| format!("--tensor required\n{USAGE}"))?;
    let p: u64 = p.ok_or_else(|| format!("--pipeline required\n{USAGE}"))?;
    let batch: u64 = batch.ok_or_else(|| format!("--batch required\n{USAGE}"))?;
    if !gpus.is_multiple_of(t * p) {
        return Err(format!(
            "gpus ({gpus}) must be divisible by t·p ({})",
            t * p
        ));
    }
    let d = gpus / (t * p);

    let pc = ParallelConfig::new(p, t, d, microbatch, batch).with_chunks(chunks);
    let cluster = ClusterSpec::selene(gpus as usize);
    let mut run = TrainingRun::ptdp(model.clone(), cluster, pc);
    run.options.scatter_gather = sg;
    run.options.fused = fused;
    run.options.recompute = recompute;
    run.options.enforce_memory = enforce;
    if schedule == "gpipe" {
        if chunks != 1 {
            return Err("GPipe does not interleave; drop --chunks".into());
        }
        run.options.schedule = megatron_schedule::ScheduleKind::GPipe;
    } else if schedule != "1f1b" {
        return Err(format!("unknown schedule '{schedule}' (1f1b|gpipe)"));
    }

    let r = run
        .simulate()
        .map_err(|e| format!("simulation failed: {e}"))?;
    Ok(format!(
        "model: {} ({:.1}B params) on {gpus} GPUs, (t,p,d)=({t},{p},{d}), b={microbatch}, B={batch}, v={chunks}\n\
         \n\
         iteration time          {:.3} s\n\
         throughput              {:.0} teraFLOP/s per GPU ({:.0}% of peak)\n\
         aggregate               {:.2} petaFLOP/s\n\
         sequences/second        {:.1}\n\
         pipeline bubble         {:.2}% analytical, {:.2}% measured idle\n\
         memory per GPU          {:.1} GiB\n\
         pipeline p2p per GPU    {:.2} GB/iteration\n\
         tensor all-reduce/GPU   {:.2} GB/iteration\n\
         data all-reduce/GPU     {:.2} GB/iteration\n\
         est. days for 300B tok  {:.0}\n",
        model.name,
        model.params_eq2() / 1e9,
        r.iteration_time,
        r.tflops_per_gpu,
        r.pct_of_peak,
        r.aggregate_pflops,
        r.sequences_per_second,
        100.0 * r.analytical_bubble_fraction,
        100.0 * r.measured_idle_fraction,
        r.memory_bytes_per_gpu as f64 / (1u64 << 30) as f64,
        r.comm.pipeline_p2p_bytes_per_gpu / 1e9,
        r.comm.tensor_ar_bytes_per_gpu / 1e9,
        r.comm.data_parallel_bytes_per_gpu / 1e9,
        model.training_time_eq4(300e9, gpus as f64, r.tflops_per_gpu * 1e12) / 86400.0,
    ))
}

fn parse(s: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("'{s}' is not a number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn table2_row_via_cli() {
        let out = run(&argv(
            "--model 175b --gpus 768 --tensor 8 --pipeline 12 --batch 1536",
        ))
        .unwrap();
        assert!(out.contains("teraFLOP/s per GPU"));
        assert!(out.contains("(t,p,d)=(8,12,8)"));
    }

    #[test]
    fn custom_architecture() {
        let out = run(&argv(
            "--layers 24 --hidden 2304 --heads 24 --gpus 32 --tensor 1 --pipeline 1 --batch 512 --microbatch 8",
        ))
        .unwrap();
        assert!(out.contains("custom (1.7B params)"));
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(run(&argv("--bogus 3")).is_err());
        assert!(run(&argv(
            "--model nope --gpus 8 --tensor 1 --pipeline 1 --batch 8"
        ))
        .is_err());
        assert!(run(&argv(
            "--model 175b --gpus 10 --tensor 8 --pipeline 12 --batch 8"
        ))
        .is_err());
    }

    #[test]
    fn oom_is_reported() {
        let err = run(&argv(
            "--model 175b --gpus 8 --tensor 8 --pipeline 1 --batch 8",
        ))
        .unwrap_err();
        assert!(err.contains("GiB"), "{err}");
    }

    #[test]
    fn gpipe_and_ablation_flags() {
        let out = run(&argv(
            "--model 5.9b --gpus 16 --tensor 2 --pipeline 2 --batch 64 --schedule gpipe --no-fusion --no-recompute",
        ))
        .unwrap();
        assert!(out.contains("iteration time"));
    }
}
