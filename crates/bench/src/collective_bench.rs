//! E32: blackboard vs ring all-reduce wall time on the real thread
//! transport.
//!
//! Before the collective-core refactor, `dist::comm` implemented
//! all-reduce on a *blackboard*: every rank posted its full buffer to a
//! shared slot, synchronized on a barrier, and each rank then reduced all
//! `g` buffers locally in rank order — `g·n` FLOPs and `g·n` floats read
//! per rank, with two full-group barriers. The refactor replaced it with
//! the `megatron-collective` ring program over per-edge mailboxes:
//! `2(g−1)` rounds moving `n/g`-sized chunks, `~2n` FLOPs per rank, no
//! global barrier.
//!
//! This experiment times both on identical buffers (the blackboard
//! reimplemented here exactly as the old transport worked) and records
//! where the ring's lower arithmetic/traffic beats its higher
//! synchronization count. Expectation from the structure: the blackboard
//! wins on tiny buffers (2 barriers < 2(g−1) mailbox round-trips) and the
//! ring wins on large ones, with the crossover dropping as g grows.

use std::sync::{Barrier, Mutex};
use std::time::Instant;

use megatron_dist::Group;

/// The pre-refactor transport, reduced to its all-reduce: post to a shared
/// slot, barrier, reduce all slots in rank order, barrier.
struct Blackboard {
    slots: Vec<Mutex<Vec<f32>>>,
    barrier: Barrier,
}

impl Blackboard {
    fn new(g: usize, n: usize) -> Self {
        Blackboard {
            slots: (0..g).map(|_| Mutex::new(vec![0.0; n])).collect(),
            barrier: Barrier::new(g),
        }
    }

    /// Rank-ordered sum all-reduce, bit-identical across ranks (every rank
    /// reduces the slots in the same order — the old determinism argument).
    fn all_reduce_sum(&self, rank: usize, buf: &mut [f32]) {
        self.slots[rank].lock().unwrap().copy_from_slice(buf);
        self.barrier.wait();
        buf.fill(0.0);
        for slot in &self.slots {
            let s = slot.lock().unwrap();
            for (b, x) in buf.iter_mut().zip(s.iter()) {
                *b += *x;
            }
        }
        self.barrier.wait();
    }
}

fn seeded(rank: usize, n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| ((rank * 31 + i * 7) % 97) as f32 * 0.125 - 3.0)
        .collect()
}

/// Wall time of `reps` back-to-back blackboard all-reduces on `g` threads.
fn time_blackboard(g: usize, n: usize, reps: usize) -> f64 {
    let bb = Blackboard::new(g, n);
    let start = Instant::now();
    std::thread::scope(|s| {
        for rank in 0..g {
            let bb = &bb;
            s.spawn(move || {
                let mut buf = seeded(rank, n);
                for _ in 0..reps {
                    bb.all_reduce_sum(rank, &mut buf);
                }
                buf
            });
        }
    });
    start.elapsed().as_secs_f64() / reps as f64
}

/// Wall time of `reps` back-to-back ring all-reduces (the mailbox
/// transport running the shared step program) on `g` threads.
fn time_ring(g: usize, n: usize, reps: usize) -> f64 {
    let group = Group::new(g);
    let start = Instant::now();
    std::thread::scope(|s| {
        for rank in 0..g {
            let m = group.member(rank);
            s.spawn(move || {
                let mut buf = seeded(rank, n);
                for _ in 0..reps {
                    m.all_reduce_sum(&mut buf);
                }
                buf
            });
        }
    });
    start.elapsed().as_secs_f64() / reps as f64
}

/// One (g, n) timing pair of the sweep.
struct Measurement {
    g: usize,
    n: usize,
    blackboard_s: f64,
    ring_s: f64,
}

fn measure(reps: usize) -> Vec<Measurement> {
    let mut rows = Vec::new();
    for g in [2usize, 4, 8] {
        for n in [1usize << 10, 1 << 14, 1 << 18, 1 << 21] {
            // Warm-up round keeps allocator effects out of the timings.
            let _ = time_blackboard(g, n, 2);
            let _ = time_ring(g, n, 2);
            rows.push(Measurement {
                g,
                n,
                blackboard_s: time_blackboard(g, n, reps),
                ring_s: time_ring(g, n, reps),
            });
        }
    }
    rows
}

/// `repro collective` usage string.
pub const USAGE: &str = "repro collective [--reps N] [--bench-json PATH]
  E32: blackboard vs ring all-reduce sweep; --bench-json writes the
  timings as BENCH_collective.json in the shared perf-history schema";

/// CLI entry: `repro collective [--reps N] [--bench-json PATH]`.
pub fn run(args: &[String]) -> Result<String, String> {
    let mut reps = 20usize;
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--reps" => {
                reps = it
                    .next()
                    .ok_or_else(|| format!("--reps needs a value\n{USAGE}"))?
                    .parse()
                    .map_err(|e| format!("--reps: {e}\n{USAGE}"))?;
                if reps == 0 {
                    return Err("--reps must be at least 1".into());
                }
            }
            "--bench-json" => {
                json_path = Some(
                    it.next()
                        .ok_or_else(|| format!("--bench-json needs a path\n{USAGE}"))?
                        .clone(),
                )
            }
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    Ok(report(&measure(reps), reps, json_path.as_deref()))
}

/// E32 registry entry: the crossover table at default settings.
pub fn collective() -> String {
    let reps = 20;
    report(&measure(reps), reps, None)
}

fn report(rows: &[Measurement], reps: usize, json_path: Option<&str>) -> String {
    use megatron_sim::json::Json;

    let mut out = String::new();
    out.push_str(
        "E32: blackboard vs ring all-reduce wall time (real thread transport)\n\
         blackboard: post full buffer + 2 barriers, every rank reduces g\n\
         buffers; ring: 2(g-1) chunk rounds over per-edge mailboxes.\n\n",
    );
    out.push_str("  g        n   blackboard      ring   ring/blackboard\n");
    let mut last_g = rows.first().map_or(0, |m| m.g);
    for m in rows {
        if m.g != last_g {
            out.push('\n');
            last_g = m.g;
        }
        out.push_str(&format!(
            "  {}  {:>7}   {:>8.1} us  {:>8.1} us   {:>5.2}x\n",
            m.g,
            m.n,
            m.blackboard_s * 1e6,
            m.ring_s * 1e6,
            m.ring_s / m.blackboard_s,
        ));
    }
    out.push_str(
        "\nratio < 1: ring faster. The ring pays per-round synchronization,\n\
         so the blackboard is closest at tiny buffers; the ring's O(n) (vs\n\
         O(g*n)) reduce work and 2(g-1)/g*n egress win everywhere measured,\n\
         by more as g and n grow. EXPERIMENTS.md E32 records one run.\n",
    );
    if let Some(path) = json_path {
        let mut metrics = Vec::new();
        for m in rows {
            metrics.push((
                format!("g{}_n{}_blackboard_us", m.g, m.n),
                m.blackboard_s * 1e6,
            ));
            metrics.push((format!("g{}_n{}_ring_us", m.g, m.n), m.ring_s * 1e6));
        }
        let record = crate::perf::bench_json(
            "collective",
            vec![("reps".to_string(), Json::Num(reps as f64))],
            metrics,
        );
        out.push_str(&crate::perf::write_bench_json(path, &record));
        out.push('\n');
    }
    out
}
