//! E32: blackboard vs ring all-reduce wall time on the real thread
//! transport.
//!
//! Before the collective-core refactor, `dist::comm` implemented
//! all-reduce on a *blackboard*: every rank posted its full buffer to a
//! shared slot, synchronized on a barrier, and each rank then reduced all
//! `g` buffers locally in rank order — `g·n` FLOPs and `g·n` floats read
//! per rank, with two full-group barriers. The refactor replaced it with
//! the `megatron-collective` ring program over per-edge mailboxes:
//! `2(g−1)` rounds moving `n/g`-sized chunks, `~2n` FLOPs per rank, no
//! global barrier.
//!
//! This experiment times both on identical buffers (the blackboard
//! reimplemented here exactly as the old transport worked) and records
//! where the ring's lower arithmetic/traffic beats its higher
//! synchronization count. Expectation from the structure: the blackboard
//! wins on tiny buffers (2 barriers < 2(g−1) mailbox round-trips) and the
//! ring wins on large ones, with the crossover dropping as g grows.

use std::sync::{Barrier, Mutex};
use std::time::Instant;

use megatron_dist::Group;

/// The pre-refactor transport, reduced to its all-reduce: post to a shared
/// slot, barrier, reduce all slots in rank order, barrier.
struct Blackboard {
    slots: Vec<Mutex<Vec<f32>>>,
    barrier: Barrier,
}

impl Blackboard {
    fn new(g: usize, n: usize) -> Self {
        Blackboard {
            slots: (0..g).map(|_| Mutex::new(vec![0.0; n])).collect(),
            barrier: Barrier::new(g),
        }
    }

    /// Rank-ordered sum all-reduce, bit-identical across ranks (every rank
    /// reduces the slots in the same order — the old determinism argument).
    fn all_reduce_sum(&self, rank: usize, buf: &mut [f32]) {
        self.slots[rank].lock().unwrap().copy_from_slice(buf);
        self.barrier.wait();
        buf.fill(0.0);
        for slot in &self.slots {
            let s = slot.lock().unwrap();
            for (b, x) in buf.iter_mut().zip(s.iter()) {
                *b += *x;
            }
        }
        self.barrier.wait();
    }
}

fn seeded(rank: usize, n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| ((rank * 31 + i * 7) % 97) as f32 * 0.125 - 3.0)
        .collect()
}

/// Wall time of `reps` back-to-back blackboard all-reduces on `g` threads.
fn time_blackboard(g: usize, n: usize, reps: usize) -> f64 {
    let bb = Blackboard::new(g, n);
    let start = Instant::now();
    std::thread::scope(|s| {
        for rank in 0..g {
            let bb = &bb;
            s.spawn(move || {
                let mut buf = seeded(rank, n);
                for _ in 0..reps {
                    bb.all_reduce_sum(rank, &mut buf);
                }
                buf
            });
        }
    });
    start.elapsed().as_secs_f64() / reps as f64
}

/// Wall time of `reps` back-to-back ring all-reduces (the mailbox
/// transport running the shared step program) on `g` threads.
fn time_ring(g: usize, n: usize, reps: usize) -> f64 {
    let group = Group::new(g);
    let start = Instant::now();
    std::thread::scope(|s| {
        for rank in 0..g {
            let m = group.member(rank);
            s.spawn(move || {
                let mut buf = seeded(rank, n);
                for _ in 0..reps {
                    m.all_reduce_sum(&mut buf);
                }
                buf
            });
        }
    });
    start.elapsed().as_secs_f64() / reps as f64
}

/// E32 entry point: the crossover table.
pub fn collective() -> String {
    let mut out = String::new();
    out.push_str(
        "E32: blackboard vs ring all-reduce wall time (real thread transport)\n\
         blackboard: post full buffer + 2 barriers, every rank reduces g\n\
         buffers; ring: 2(g-1) chunk rounds over per-edge mailboxes.\n\n",
    );
    out.push_str("  g        n   blackboard      ring   ring/blackboard\n");
    let reps = 20;
    for g in [2usize, 4, 8] {
        for n in [1usize << 10, 1 << 14, 1 << 18, 1 << 21] {
            // Warm-up round keeps allocator effects out of the timings.
            let _ = time_blackboard(g, n, 2);
            let _ = time_ring(g, n, 2);
            let bb = time_blackboard(g, n, reps);
            let ring = time_ring(g, n, reps);
            out.push_str(&format!(
                "  {g}  {n:>7}   {:>8.1} us  {:>8.1} us   {:>5.2}x\n",
                bb * 1e6,
                ring * 1e6,
                ring / bb,
            ));
        }
        out.push('\n');
    }
    out.push_str(
        "ratio < 1: ring faster. The ring pays per-round synchronization,\n\
         so the blackboard is closest at tiny buffers; the ring's O(n) (vs\n\
         O(g*n)) reduce work and 2(g-1)/g*n egress win everywhere measured,\n\
         by more as g and n grow. EXPERIMENTS.md E32 records one run.\n",
    );
    out
}
