//! E32: blackboard vs ring all-reduce wall time on the real thread
//! transport.
//!
//! Before the collective-core refactor, `dist::comm` implemented
//! all-reduce on a *blackboard*: every rank posted its full buffer to a
//! shared slot, synchronized on a barrier, and each rank then reduced all
//! `g` buffers locally in rank order — `g·n` FLOPs and `g·n` floats read
//! per rank, with two full-group barriers. The refactor replaced it with
//! the `megatron-collective` ring program over per-edge mailboxes:
//! `2(g−1)` rounds moving `n/g`-sized chunks, `~2n` FLOPs per rank, no
//! global barrier.
//!
//! This experiment times both on identical buffers (the blackboard
//! reimplemented here exactly as the old transport worked) and records
//! where the ring's lower arithmetic/traffic beats its higher
//! synchronization count. Expectation from the structure: the blackboard
//! wins on tiny buffers (2 barriers < 2(g−1) mailbox round-trips) and the
//! ring wins on large ones, with the crossover dropping as g grows.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

use megatron_collective::{SocketChannel, SocketNode, WireAddr};
use megatron_dist::{Group, TransportConfig, WireKind, DEFAULT_COMM_TIMEOUT};

/// The pre-refactor transport, reduced to its all-reduce: post to a shared
/// slot, barrier, reduce all slots in rank order, barrier.
struct Blackboard {
    slots: Vec<Mutex<Vec<f32>>>,
    barrier: Barrier,
}

impl Blackboard {
    fn new(g: usize, n: usize) -> Self {
        Blackboard {
            slots: (0..g).map(|_| Mutex::new(vec![0.0; n])).collect(),
            barrier: Barrier::new(g),
        }
    }

    /// Rank-ordered sum all-reduce, bit-identical across ranks (every rank
    /// reduces the slots in the same order — the old determinism argument).
    fn all_reduce_sum(&self, rank: usize, buf: &mut [f32]) {
        self.slots[rank].lock().unwrap().copy_from_slice(buf);
        self.barrier.wait();
        buf.fill(0.0);
        for slot in &self.slots {
            let s = slot.lock().unwrap();
            for (b, x) in buf.iter_mut().zip(s.iter()) {
                *b += *x;
            }
        }
        self.barrier.wait();
    }
}

fn seeded(rank: usize, n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| ((rank * 31 + i * 7) % 97) as f32 * 0.125 - 3.0)
        .collect()
}

/// Wall time of `reps` back-to-back blackboard all-reduces on `g` threads.
fn time_blackboard(g: usize, n: usize, reps: usize) -> f64 {
    let bb = Blackboard::new(g, n);
    let start = Instant::now();
    std::thread::scope(|s| {
        for rank in 0..g {
            let bb = &bb;
            s.spawn(move || {
                let mut buf = seeded(rank, n);
                for _ in 0..reps {
                    bb.all_reduce_sum(rank, &mut buf);
                }
                buf
            });
        }
    });
    start.elapsed().as_secs_f64() / reps as f64
}

/// Wall time of `reps` back-to-back ring all-reduces (the mailbox
/// transport running the shared step program) on `g` threads.
fn time_ring(g: usize, n: usize, reps: usize) -> f64 {
    let group = Group::new(g);
    let start = Instant::now();
    std::thread::scope(|s| {
        for rank in 0..g {
            let m = group.member(rank);
            s.spawn(move || {
                let mut buf = seeded(rank, n);
                for _ in 0..reps {
                    m.all_reduce_sum(&mut buf);
                }
                buf
            });
        }
    });
    start.elapsed().as_secs_f64() / reps as f64
}

/// Wall time of `reps` back-to-back ring all-reduces over **real
/// sockets** (`wire` picks UDS or loopback TCP): one listener and one
/// single-member socket group per rank, the same wiring a `repro launch`
/// rank process uses, minus the fork/exec. Timing starts at a barrier
/// after two in-thread warm-up reps (which also force every pairwise
/// connection open), and the slowest rank's loop is the group's time.
fn time_socket(g: usize, n: usize, reps: usize, wire: WireKind) -> f64 {
    static RIG: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "megatron-collective-bench-{}-{}",
        std::process::id(),
        RIG.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("bench scratch dir");
    let nodes: Vec<Arc<SocketNode>> = (0..g)
        .map(|r| {
            let addr = match wire {
                WireKind::Tcp => WireAddr::Tcp("127.0.0.1:0".parse().unwrap()),
                _ => WireAddr::Uds(dir.join(format!("r{r}.sock"))),
            };
            Arc::new(SocketNode::bind(&addr).expect("bind bench listener"))
        })
        .collect();
    let addrs: Vec<Option<WireAddr>> = nodes.iter().map(|n| Some(n.addr().clone())).collect();
    let cfg = TransportConfig {
        wire,
        ..TransportConfig::default()
    };
    let start = Barrier::new(g);
    let per_rank: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..g)
            .map(|rank| {
                let chan = SocketChannel::new(Arc::clone(&nodes[rank]), 7000, rank, addrs.clone());
                let (start, cfg) = (&start, cfg);
                s.spawn(move || {
                    let m = Group::with_socket(g, DEFAULT_COMM_TIMEOUT, cfg, chan).member(rank);
                    let mut buf = seeded(rank, n);
                    for _ in 0..2 {
                        m.all_reduce_sum(&mut buf);
                    }
                    start.wait();
                    let t0 = Instant::now();
                    for _ in 0..reps {
                        m.all_reduce_sum(&mut buf);
                    }
                    t0.elapsed().as_secs_f64()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench rank thread panicked"))
            .collect()
    });
    // Drop the listeners before unlinking their socket files: Drop wakes
    // each acceptor by dialing its own address, which must still exist.
    drop(nodes);
    let _ = std::fs::remove_dir_all(&dir);
    per_rank.into_iter().fold(0.0, f64::max) / reps as f64
}

/// Socket rows are limited to ring chunks of at most this many bytes
/// (frame = `4·n/g` payload). Every rank of a ring round writes to its
/// neighbor *concurrently*; a frame larger than the kernel socket buffer
/// (~208 KiB default for UDS) can only drain if the neighbor reads while
/// writing, which the frame-at-a-time transport doesn't do — neighbors
/// would deadlock until the group deadline. The cap (with headroom) is
/// stated in the report; capped cells print `-`.
const SOCKET_MAX_FRAME_BYTES: usize = 64 * 1024;

/// One (g, n) timing row of the sweep. Socket columns are `None` unless
/// `--transport socket` was asked for and the ring chunk fits
/// [`SOCKET_MAX_FRAME_BYTES`].
struct Measurement {
    g: usize,
    n: usize,
    blackboard_s: f64,
    ring_s: f64,
    uds_s: Option<f64>,
    tcp_s: Option<f64>,
}

fn measure(reps: usize, socket: bool) -> Vec<Measurement> {
    let mut rows = Vec::new();
    for g in [2usize, 4, 8] {
        for n in [1usize << 10, 1 << 14, 1 << 18, 1 << 21] {
            // Warm-up round keeps allocator effects out of the timings.
            let _ = time_blackboard(g, n, 2);
            let _ = time_ring(g, n, 2);
            let sock = socket && 4 * n.div_ceil(g) <= SOCKET_MAX_FRAME_BYTES;
            rows.push(Measurement {
                g,
                n,
                blackboard_s: time_blackboard(g, n, reps),
                ring_s: time_ring(g, n, reps),
                uds_s: sock.then(|| time_socket(g, n, reps, WireKind::Uds)),
                tcp_s: sock.then(|| time_socket(g, n, reps, WireKind::Tcp)),
            });
        }
    }
    rows
}

/// `repro collective` usage string.
pub const USAGE: &str = "repro collective [--reps N] [--transport socket] [--bench-json PATH]
  E32: blackboard vs ring all-reduce sweep; --transport socket adds
  UDS and loopback-TCP columns (n <= 2^18); --bench-json writes the
  timings as BENCH_collective.json in the shared perf-history schema";

/// CLI entry: `repro collective [--reps N] [--transport socket]
/// [--bench-json PATH]`.
pub fn run(args: &[String]) -> Result<String, String> {
    let mut reps = 20usize;
    let mut socket = false;
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--reps" => {
                reps = it
                    .next()
                    .ok_or_else(|| format!("--reps needs a value\n{USAGE}"))?
                    .parse()
                    .map_err(|e| format!("--reps: {e}\n{USAGE}"))?;
                if reps == 0 {
                    return Err("--reps must be at least 1".into());
                }
            }
            "--transport" => {
                let t = it
                    .next()
                    .ok_or_else(|| format!("--transport needs a value\n{USAGE}"))?;
                match t.as_str() {
                    "socket" => socket = true,
                    "mailbox" => socket = false,
                    other => {
                        return Err(format!("unknown transport '{other}'\n{USAGE}"));
                    }
                }
            }
            "--bench-json" => {
                json_path = Some(
                    it.next()
                        .ok_or_else(|| format!("--bench-json needs a path\n{USAGE}"))?
                        .clone(),
                )
            }
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    Ok(report(&measure(reps, socket), reps, json_path.as_deref()))
}

/// E32 registry entry: the crossover table at default settings. Writes
/// `BENCH_collective.json` so `repro collective` (bare) and CI both leave
/// the perf-history record behind.
pub fn collective() -> String {
    let reps = 20;
    report(&measure(reps, false), reps, Some("BENCH_collective.json"))
}

fn report(rows: &[Measurement], reps: usize, json_path: Option<&str>) -> String {
    use megatron_sim::json::Json;

    let mut out = String::new();
    out.push_str(
        "E32: blackboard vs ring all-reduce wall time (real thread transport)\n\
         blackboard: post full buffer + 2 barriers, every rank reduces g\n\
         buffers; ring: 2(g-1) chunk rounds over per-edge mailboxes.\n\n",
    );
    let socket = rows.iter().any(|m| m.uds_s.is_some());
    if socket {
        out.push_str(
            "  g        n   blackboard      ring        uds        tcp   ring/blackboard\n",
        );
    } else {
        out.push_str("  g        n   blackboard      ring   ring/blackboard\n");
    }
    let fmt_opt = |s: Option<f64>| match s {
        Some(v) => format!("{:>8.1} us", v * 1e6),
        None => format!("{:>11}", "-"),
    };
    let mut last_g = rows.first().map_or(0, |m| m.g);
    for m in rows {
        if m.g != last_g {
            out.push('\n');
            last_g = m.g;
        }
        if socket {
            out.push_str(&format!(
                "  {}  {:>7}   {:>8.1} us  {:>8.1} us  {}  {}   {:>5.2}x\n",
                m.g,
                m.n,
                m.blackboard_s * 1e6,
                m.ring_s * 1e6,
                fmt_opt(m.uds_s),
                fmt_opt(m.tcp_s),
                m.ring_s / m.blackboard_s,
            ));
        } else {
            out.push_str(&format!(
                "  {}  {:>7}   {:>8.1} us  {:>8.1} us   {:>5.2}x\n",
                m.g,
                m.n,
                m.blackboard_s * 1e6,
                m.ring_s * 1e6,
                m.ring_s / m.blackboard_s,
            ));
        }
    }
    out.push_str(
        "\nratio < 1: ring faster. The ring pays per-round synchronization,\n\
         so the blackboard is closest at tiny buffers; the ring's O(n) (vs\n\
         O(g*n)) reduce work and 2(g-1)/g*n egress win everywhere measured,\n\
         by more as g and n grow. EXPERIMENTS.md E32 records one run.\n",
    );
    if socket {
        out.push_str(
            "\nuds/tcp: the same ring program over real sockets (one listener\n\
             per rank, length-prefixed f32 frames, barriers on the wire) —\n\
             the process-mode transport `repro launch` runs on. '-' rows\n\
             are skipped: their ring chunk (4n/g bytes) exceeds 64 KiB,\n\
             and ring neighbors that write frames that big concurrently\n\
             can fill both kernel socket buffers and stall each other\n\
             (the frame-at-a-time transport reads only between writes).\n",
        );
    }
    if let Some(path) = json_path {
        let mut metrics = Vec::new();
        for m in rows {
            metrics.push((
                format!("g{}_n{}_blackboard_us", m.g, m.n),
                m.blackboard_s * 1e6,
            ));
            metrics.push((format!("g{}_n{}_ring_us", m.g, m.n), m.ring_s * 1e6));
            if let Some(s) = m.uds_s {
                metrics.push((format!("g{}_n{}_uds_us", m.g, m.n), s * 1e6));
            }
            if let Some(s) = m.tcp_s {
                metrics.push((format!("g{}_n{}_tcp_us", m.g, m.n), s * 1e6));
            }
        }
        let record = crate::perf::bench_json(
            "collective",
            vec![("reps".to_string(), Json::Num(reps as f64))],
            metrics,
        );
        out.push_str(&crate::perf::write_bench_json(path, &record));
        out.push('\n');
    }
    out
}
