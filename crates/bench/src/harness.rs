//! Minimal wall-clock benchmark harness.
//!
//! The workspace's benches are `harness = false` binaries; offline builds
//! have no Criterion, so this provides the small subset needed: named
//! benchmarks, configurable sample counts, and a median-of-samples report.

use std::hint::black_box;
use std::time::Instant;

/// A group of timed benchmarks sharing a sample count.
pub struct Bench {
    group: String,
    samples: usize,
}

impl Bench {
    /// Start a benchmark group.
    pub fn group(name: &str) -> Bench {
        println!("group {name}");
        Bench {
            group: name.to_string(),
            samples: 10,
        }
    }

    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Bench {
        self.samples = n.max(1);
        self
    }

    /// Time `f`: one warm-up call, then `samples` timed calls; prints the
    /// median, minimum, and maximum per-call wall time.
    pub fn run<T>(&self, name: &str, mut f: impl FnMut() -> T) {
        black_box(f());
        let mut times: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                black_box(f());
                t0.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(f64::total_cmp);
        let median = times[times.len() / 2];
        println!(
            "  {}/{name:<40} median {} (min {}, max {}, n={})",
            self.group,
            fmt_secs(median),
            fmt_secs(times[0]),
            fmt_secs(times[times.len() - 1]),
            self.samples,
        );
    }
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.0} ns", s * 1e9)
    }
}
