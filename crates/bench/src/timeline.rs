//! E31: sim-vs-real timeline comparison.
//!
//! Runs the same `(p=2, t=2, d=2)` job twice — once through the analytic
//! simulator (`megatron-core`) and once on the real thread-per-GPU trainer
//! (`megatron-dist`) with a `megatron-telemetry` sink attached — exports
//! both Chrome traces side by side (sim is `pid 0`, real ranks are
//! `pid 1+rank`), and prints a per-phase drift table comparing where the
//! simulator thinks the time goes against where the real run measured it.
//!
//! The real run's comm-volume counters are also cross-checked against the
//! paper's §3 formulas: the trainer moves f32 over ring collectives, so
//! counted bytes must equal exactly 2× the fp16 analytical volumes (ring
//! `(g−1)/g` factors included), and pipeline p2p must be `b·s·h` words per
//! microbatch per boundary.
//!
//! Schema violations, formula mismatches, or gross phase drift panic, which
//! is what the CI `timeline-smoke` job keys off.

use megatron_cluster::ClusterSpec;
use megatron_core::TrainingRun;
use megatron_dist::{PtdpSpec, PtdpTrainer, RunControl};
use megatron_model::{GptConfig, BYTES_FP16};
use megatron_parallel::{analysis, ParallelConfig};
use megatron_sim::json::Json;
use megatron_telemetry::{
    chrome_trace_json, phase_shares, rank_pid, GpuSpec, SinkConfig, SpanKind, TelemetrySink,
};
use megatron_tensor::gpt::{GptModel, TinyGptConfig};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::table::Table;

/// Real-trainer model: small enough to train in milliseconds, big enough
/// that every phase (fwd, bwd, p2p, grad sync, optimizer) is exercised.
pub(crate) const REAL_CFG: TinyGptConfig = TinyGptConfig {
    vocab: 13,
    seq: 8,
    hidden: 32,
    heads: 4,
    layers: 2,
};

/// The simulator twin of [`REAL_CFG`] — same `l`, `h`, `a`, `s`, `V`.
pub(crate) fn mirror_cfg() -> GptConfig {
    GptConfig {
        name: "timeline-twin".to_string(),
        num_layers: REAL_CFG.layers as u64,
        hidden_size: REAL_CFG.hidden as u64,
        num_heads: REAL_CFG.heads as u64,
        seq_len: REAL_CFG.seq as u64,
        vocab_size: REAL_CFG.vocab as u64,
    }
}

pub(crate) fn make_data(batch: usize, iters: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..iters)
        .map(|_| {
            let toks = (0..batch * REAL_CFG.seq)
                .map(|_| rng.gen_range(0..REAL_CFG.vocab))
                .collect();
            let tgts = (0..batch * REAL_CFG.seq)
                .map(|_| rng.gen_range(0..REAL_CFG.vocab))
                .collect();
            (toks, tgts)
        })
        .collect()
}

/// Validate the real trace: parses as Chrome trace JSON and every rank's
/// pid carries spans of every expected category. Panics on violation.
fn check_real_trace_schema(trace: &str, world: usize) -> usize {
    let v = Json::parse(trace).expect("real trace must parse as JSON");
    let events = v.as_array().expect("Chrome trace is a JSON array");
    let mut seen: Vec<Vec<&str>> = vec![Vec::new(); world];
    for ev in events {
        if ev["ph"].as_str() != Some("X") {
            continue;
        }
        let pid = ev["pid"].as_f64().expect("span has pid") as usize;
        let rank = pid - rank_pid(0);
        assert!(rank < world, "pid {pid} outside the rank range");
        let cat = ev["cat"].as_str().expect("span has cat");
        assert!(
            ev["args"]["iteration"].as_f64().is_some(),
            "span missing iteration arg"
        );
        if !seen[rank].contains(&cat) {
            // Leak is fine: category names are 'static in practice.
            seen[rank].push(Box::leak(cat.to_string().into_boxed_str()));
        }
    }
    for (rank, cats) in seen.iter().enumerate() {
        for want in ["fwd", "bwd", "comm", "opt", "bubble"] {
            assert!(
                cats.contains(&want),
                "rank {rank} has no '{want}' spans (got {cats:?})"
            );
        }
    }
    events.len()
}

/// E31: run sim and real side by side, export both traces, and compare.
pub fn timeline() -> String {
    let (p, t, d) = (2usize, 2usize, 2usize);
    let iters = 4usize;
    let batch = 8usize; // per replica 4 → m = 4 microbatches of b = 1
    let spec = PtdpSpec::new(p, t, d);
    let m = batch / d / spec.microbatch;
    let mirror = mirror_cfg();

    // --- Real run, telemetry attached ---
    let sink = TelemetrySink::new(SinkConfig {
        world: spec.world(),
        flops_per_iteration: mirror.flops_per_iteration_eq3(batch as u64),
        gpu: Some(GpuSpec::a100_80gb()),
    });
    let mut rng = StdRng::seed_from_u64(0x7137);
    let master = GptModel::new(REAL_CFG, &mut rng);
    let data = make_data(batch, iters, 0x7151);
    let ctl = RunControl {
        checkpoint_every: Some(2),
        telemetry: Some(std::sync::Arc::clone(&sink)),
        ..Default::default()
    };
    let out = PtdpTrainer::new(master, spec).train_with(&data, ctl);
    assert!(out.error.is_none(), "real run failed: {:?}", out.error);
    let log = out.log;

    // --- Simulated twin ---
    let pc = ParallelConfig::new(p as u64, t as u64, d as u64, 1, batch as u64);
    let mut run = TrainingRun::ptdp(mirror.clone(), ClusterSpec::selene(p * t * d), pc);
    run.options.enforce_memory = false;
    run.options.recompute = spec.recompute;
    let (report, sim_trace) = run.simulate_traced().expect("sim twin failed");

    // --- Export both traces + the metrics JSONL ---
    let real_trace = chrome_trace_json(&sink.hub, p);
    let jsonl = sink.metrics_jsonl();
    let dir = std::env::temp_dir().join(format!("megatron-timeline-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    let mut out_s = String::new();
    for (name, content) in [
        ("real_trace.json", &real_trace),
        ("sim_trace.json", &sim_trace),
        ("metrics.jsonl", &jsonl),
    ] {
        let path = dir.join(name);
        std::fs::write(&path, content).expect("write export");
        out_s.push_str(&format!(
            "wrote {} ({} bytes)\n",
            path.display(),
            content.len()
        ));
    }

    // --- Schema checks (CI gate) ---
    let n_events = check_real_trace_schema(&real_trace, spec.world());
    Json::parse(&sim_trace).expect("sim trace must parse as JSON");
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), iters, "one JSONL snapshot per iteration");
    for line in &lines {
        let snap = Json::parse(line).expect("JSONL line parses");
        assert!(snap["gauges"]["achieved_tflops_per_gpu"].as_f64().is_some());
        assert!(snap["gauges"]["bubble_fraction"].as_f64().is_some());
        assert!(snap["iteration"].as_f64().is_some());
    }
    out_s.push_str(&format!(
        "real trace: {n_events} events across {} ranks, all of fwd/bwd/comm/opt/bubble present\n\
         metrics: {} JSONL snapshots with achieved-TFLOPs and bubble-fraction gauges\n\n",
        spec.world(),
        lines.len()
    ));

    // --- §3 comm-formula cross-check on rank (0,0,0) ---
    // The real trainer moves f32 (4 B) where the paper prices fp16 (2 B),
    // so counted ring bytes must be exactly 2× the analytical volumes.
    let key = (0usize, 0usize, 0usize);
    let vol = log.comm_volumes[&key];
    let layers_per_stage = REAL_CFG.layers / p;
    let expected_tensor = 2.0
        * m as f64
        * layers_per_stage as f64
        * analysis::tensor_parallel_bytes_per_layer(&mirror, spec.microbatch as u64, t as u64);
    let expected_p2p =
        2.0 * m as f64 * analysis::pipeline_p2p_bytes(&mirror, spec.microbatch as u64) as f64;
    let grad_bytes_fp16 = log.final_params[&key].len() as u64 * BYTES_FP16;
    let expected_data = 2.0 * analysis::data_parallel_bytes(grad_bytes_fp16, d as u64);
    let mut t2 = Table::new(["volume (rank p0,d0,t0)", "counted (B)", "2x §3 formula (B)"]);
    for (label, counted, expected) in [
        (
            "tensor-parallel all-reduce",
            vol.tensor.all_reduce_bytes / iters as f64,
            expected_tensor,
        ),
        (
            "pipeline p2p send",
            vol.p2p_send_bytes / iters as f64,
            expected_p2p,
        ),
        (
            "data-parallel grad sync",
            vol.data.all_reduce_bytes / iters as f64,
            expected_data,
        ),
    ] {
        assert!(
            (counted - expected).abs() <= 1e-6 * expected.max(1.0),
            "{label}: counted {counted} B vs formula {expected} B"
        );
        t2.row([
            label.to_string(),
            format!("{counted:.0}"),
            format!("{expected:.0}"),
        ]);
    }
    out_s.push_str(&format!(
        "comm counters vs paper §3 (per iteration, f32 wire = 2x fp16 formulas):\n{}\n",
        t2.render()
    ));

    // --- Per-phase drift table ---
    let total_rank_seconds: f64 = log
        .step_times
        .values()
        .flat_map(|v| v.iter().map(|s| s.seconds))
        .sum();
    let real = phase_shares(&sink.hub, total_rank_seconds);
    let it = report.iteration_time;
    let sim_compute = report.breakdown.compute / it;
    let sim_comm = (report.breakdown.pipeline_comm + report.breakdown.data_parallel) / it;
    let sim_opt = report.breakdown.optimizer / it;
    let sim_bubble = report.analytical_bubble_fraction;
    let mut t3 = Table::new(["phase", "sim share", "real share", "drift"]);
    let mut worst = 0.0f64;
    for (label, sim, real) in [
        ("compute (fwd+bwd)", sim_compute, real.compute),
        ("communication", sim_comm, real.comm),
        ("pipeline bubble", sim_bubble, real.bubble),
        ("optimizer", sim_opt, real.optimizer),
    ] {
        let drift = (sim - real).abs();
        worst = worst.max(drift);
        t3.row([
            label.to_string(),
            format!("{:.1}%", 100.0 * sim),
            format!("{:.1}%", 100.0 * real),
            format!("{:+.1} pp", 100.0 * (real - sim)),
        ]);
    }
    out_s.push_str(&format!(
        "where the time goes, sim vs real (shares of rank-time):\n{}\n",
        t3.render()
    ));
    out_s.push_str(&format!(
        "real accounted share {:.1}% (rest is scheduling overhead), worst phase drift {:.1} pp\n\
         real cumulative bubble fraction {:.3} vs analytical (p-1)/(m+p-1) = {:.3}\n",
        100.0 * real.accounted(),
        100.0 * worst,
        sink.bubble_fraction(),
        sim_bubble,
    ));

    // The sim prices an A100 cluster while the real "GPUs" are CPU
    // threads, so shares — not absolute times — are compared, and the CI
    // gate only rejects gross divergence (a phase off by more than 75 pp
    // means a broken exporter or a broken cost model, not noise).
    assert!(
        worst <= 0.75,
        "excessive sim-vs-real phase drift: {worst:.2} (see table)"
    );
    assert!(
        real.accounted() <= 1.02,
        "phase shares exceed total rank time: {:.3}",
        real.accounted()
    );
    // Every span category made it into the hub (mirrors the trace check,
    // but through the typed API).
    for kind in [
        SpanKind::Forward,
        SpanKind::Backward,
        SpanKind::Comm,
        SpanKind::Optimizer,
        SpanKind::Bubble,
        SpanKind::Checkpoint,
    ] {
        let found = sink
            .hub
            .ranks()
            .iter()
            .any(|r| r.spans.iter().any(|s| s.kind == kind));
        assert!(found, "no {kind:?} spans recorded anywhere");
    }

    out_s
}
