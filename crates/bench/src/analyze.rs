//! E36: cross-rank critical-path analysis and time attribution.
//!
//! Runs the same seeded `(p=2, t=2, d=2)` job as E31 — real thread-per-GPU
//! trainer plus its simulated twin — then feeds **both** Chrome traces
//! through the `megatron-telemetry` analyzer: happens-before DAG, exact
//! per-iteration critical path, and an attribution breakdown whose
//! categories tile the measured iteration time (residue ≤ 1% is the
//! acceptance gate; the construction makes it ~0).
//!
//! Cross-checks, all fatal on violation (the CI `analyze-smoke` gate):
//!
//! * comm bytes seen by the analyzer on rank `(p0,d0,t0)` equal the §3
//!   closed-form volumes (f32 wire = 2× the fp16 formulas);
//! * the sim trace's comm spans carry exactly the §3 fp16 volumes the
//!   `CostModel` priced, and their durations sum to the simulator's own
//!   `TimeBreakdown` comm terms;
//! * real-vs-sim per-phase shares agree within the E31 drift bounds;
//! * exposed-comm on the sim path never exceeds the priced comm time.
//!
//! Writes `BENCH_attribution.json` (shared [`crate::perf`] schema) for the
//! `repro sentry` regression gate, and surfaces the per-rank
//! `spans_dropped` counters so silent ring-buffer overflow is visible.

use megatron_cluster::ClusterSpec;
use megatron_core::TrainingRun;
use megatron_dist::{PtdpSpec, PtdpTrainer, RunControl};
use megatron_model::BYTES_FP16;
use megatron_parallel::{analysis, ParallelConfig};
use megatron_sim::json::Json;
use megatron_telemetry::{
    chrome_trace_json, critical_path, parse_chrome_trace, what_if, Attribution, GpuSpec, Phase,
    SinkConfig, TelemetrySink, TraceDag, WhatIf, Window,
};
use megatron_tensor::gpt::GptModel;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::perf::{bench_json, write_bench_json};
use crate::table::Table;
use crate::timeline::{make_data, mirror_cfg, REAL_CFG};

/// Acceptance gate: attribution categories must sum to the measured
/// iteration time within this fraction.
const RESIDUAL_GATE: f64 = 0.01;
/// E31's drift bound: no phase share may differ sim-vs-real by more than
/// this (the sim prices A100s, the real "GPUs" are CPU threads — shares,
/// not absolute times, are comparable).
const DRIFT_GATE: f64 = 0.75;

fn comm_seconds(dag: &TraceDag, rank: usize) -> f64 {
    dag.ranks[rank]
        .spans
        .iter()
        .filter(|s| s.phase == Phase::Comm)
        .map(|s| s.dur_ns as f64 / 1e9)
        .sum()
}

fn bytes_where(dag: &TraceDag, rank: usize, pred: impl Fn(&str) -> bool) -> f64 {
    dag.ranks[rank]
        .spans
        .iter()
        .filter(|s| pred(&s.name))
        .filter_map(|s| s.bytes)
        .sum()
}

/// `repro analyze` (flagged form) usage string. Bare `repro analyze`
/// runs the E36 attribution experiment.
pub const USAGE: &str = "repro analyze --merge-traces DIR [--out PATH]
  merge a process-mode run's per-rank rank-R.trace.json files (written by
  `repro launch --trace`) into one Chrome trace; default output is
  DIR/merged.trace.json";

/// CLI entry: `repro analyze --merge-traces DIR [--out PATH]`.
pub fn run(args: &[String]) -> Result<String, String> {
    let mut dir: Option<std::path::PathBuf> = None;
    let mut out: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--merge-traces" => {
                dir =
                    Some(std::path::PathBuf::from(it.next().ok_or_else(|| {
                        format!("--merge-traces needs a dir\n{USAGE}")
                    })?));
            }
            "--out" => {
                out = Some(std::path::PathBuf::from(
                    it.next()
                        .ok_or_else(|| format!("--out needs a path\n{USAGE}"))?,
                ));
            }
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    let dir = dir.ok_or_else(|| format!("--merge-traces is required\n{USAGE}"))?;

    // Collect rank-R.trace.json in flat-rank order; ranks without a trace
    // (e.g. killed mid-run) are simply absent from the merge.
    let mut parts: Vec<(usize, String)> = Vec::new();
    let entries = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(rank) = name
            .strip_prefix("rank-")
            .and_then(|s| s.strip_suffix(".trace.json"))
            .and_then(|s| s.parse::<usize>().ok())
        {
            let text = std::fs::read_to_string(entry.path()).map_err(|e| format!("{name}: {e}"))?;
            parts.push((rank, text));
        }
    }
    if parts.is_empty() {
        return Err(format!(
            "no rank-R.trace.json files in {} (run `repro launch --trace`?)",
            dir.display()
        ));
    }
    parts.sort_by_key(|(rank, _)| *rank);
    let merged = megatron_telemetry::merge_chrome_traces(parts.iter().map(|(_, t)| t.as_str()))?;
    let out = out.unwrap_or_else(|| dir.join("merged.trace.json"));
    std::fs::write(&out, &merged).map_err(|e| format!("{}: {e}", out.display()))?;
    Ok(format!(
        "merged {} rank traces (ranks {:?}) into {} ({} bytes)",
        parts.len(),
        parts.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
        out.display(),
        merged.len()
    ))
}

/// E36 entry point (`repro analyze`).
pub fn analyze() -> String {
    let (p, t, d) = (2usize, 2usize, 2usize);
    let iters = 4usize;
    let batch = 8usize;
    let spec = PtdpSpec::new(p, t, d);
    let m = batch / d / spec.microbatch;
    let mirror = mirror_cfg();

    // --- Real run, telemetry attached (same seeds as E31) ---
    let sink = TelemetrySink::new(SinkConfig {
        world: spec.world(),
        flops_per_iteration: mirror.flops_per_iteration_eq3(batch as u64),
        gpu: Some(GpuSpec::a100_80gb()),
    });
    let mut rng = StdRng::seed_from_u64(0x7137);
    let master = GptModel::new(REAL_CFG, &mut rng);
    let data = make_data(batch, iters, 0x7151);
    let ctl = RunControl {
        checkpoint_every: Some(2),
        telemetry: Some(std::sync::Arc::clone(&sink)),
        ..Default::default()
    };
    let out = PtdpTrainer::new(master, spec).train_with(&data, ctl);
    assert!(out.error.is_none(), "real run failed: {:?}", out.error);
    let log = out.log;

    // --- Simulated twin ---
    let pc = ParallelConfig::new(p as u64, t as u64, d as u64, 1, batch as u64);
    let mut run = TrainingRun::ptdp(mirror.clone(), ClusterSpec::selene(p * t * d), pc);
    run.options.enforce_memory = false;
    run.options.recompute = spec.recompute;
    let (report, sim_trace) = run.simulate_traced().expect("sim twin failed");

    // --- One analyzer, both traces ---
    let real_trace = chrome_trace_json(&sink.hub, p);
    let real_dag = parse_chrome_trace(&real_trace, p).expect("real trace builds a DAG");
    let sim_dag = parse_chrome_trace(&sim_trace, p).expect("sim trace builds a DAG");
    assert!(!real_dag.sim && sim_dag.sim);

    let mut out_s = String::new();

    // --- Per-iteration critical path + attribution, real trace ---
    let mut per_iter: Vec<Attribution> = Vec::new();
    let mut wis: Vec<WhatIf> = Vec::new();
    let mut t1 = Table::new([
        "iter", "measured", "compute", "exp comm", "bubble", "straggle", "opt", "ckpt", "other",
        "residue",
    ]);
    for it in 0..iters {
        let w = Window::iteration(it as u64);
        let path = critical_path(&real_dag, w).expect("iteration has spans");
        assert!(!path.truncated, "critical-path walk truncated at iter {it}");
        let a = Attribution::from_path(&path);
        assert!(
            a.residual_s().abs() <= RESIDUAL_GATE * a.measured_s.max(1e-12),
            "iter {it}: attribution residue {:.3e} s exceeds {}% of measured {:.3e} s",
            a.residual_s(),
            100.0 * RESIDUAL_GATE,
            a.measured_s
        );
        let ms = |x: f64| format!("{:.2} ms", 1e3 * x);
        t1.row([
            it.to_string(),
            ms(a.measured_s),
            ms(a.compute_s),
            ms(a.exposed_comm_s),
            ms(a.bubble_s),
            ms(a.straggler_wait_s),
            ms(a.optimizer_s),
            ms(a.checkpoint_s),
            ms(a.other_s),
            format!("{:.1e}", a.residual_s()),
        ]);
        wis.push(what_if(&a, &real_dag, w));
        per_iter.push(a);
    }
    let real = Attribution::mean(&per_iter);
    let n = wis.len().max(1) as f64;
    let wi = WhatIf {
        zero_comm_s: wis.iter().map(|w| w.zero_comm_s).sum::<f64>() / n,
        perfect_overlap_s: wis.iter().map(|w| w.perfect_overlap_s).sum::<f64>() / n,
        no_straggler_s: wis.iter().map(|w| w.no_straggler_s).sum::<f64>() / n,
    };
    out_s.push_str(&format!(
        "real run: per-iteration critical path over {} ranks (exact tiling, so the\n\
         categories sum to the measured wall time):\n{}\n",
        spec.world(),
        t1.render()
    ));

    // --- Sim trace through the same analyzer ---
    let sim_path = critical_path(&sim_dag, Window::default()).expect("sim trace has spans");
    assert!(!sim_path.truncated, "sim critical-path walk truncated");
    let sim_attr = Attribution::from_path(&sim_path);
    assert!(
        sim_attr.residual_s().abs() <= RESIDUAL_GATE * sim_attr.measured_s.max(1e-12),
        "sim attribution residue {:.3e} s",
        sim_attr.residual_s()
    );
    // The sim trace covers exactly one iteration, so the analyzer's window
    // must reproduce the simulator's own iteration time.
    assert!(
        (sim_attr.measured_s - report.iteration_time).abs()
            <= 0.02 * report.iteration_time.max(1e-12),
        "analyzer window {:.6} s vs simulator iteration {:.6} s",
        sim_attr.measured_s,
        report.iteration_time
    );

    // --- Real-vs-sim phase drift (E31 bounds) ---
    let share = |a: &Attribution, x: f64| x / a.measured_s.max(1e-12);
    let mut t2 = Table::new(["phase", "sim share", "real share", "drift"]);
    let mut worst = 0.0f64;
    for (label, s, r) in [
        (
            "on-path compute",
            share(&sim_attr, sim_attr.compute_s),
            share(&real, real.compute_s),
        ),
        (
            "exposed communication",
            share(
                &sim_attr,
                sim_attr.exposed_comm_s + sim_attr.straggler_wait_s,
            ),
            share(&real, real.exposed_comm_s + real.straggler_wait_s),
        ),
        (
            "pipeline bubble",
            share(&sim_attr, sim_attr.bubble_s),
            share(&real, real.bubble_s),
        ),
        (
            "optimizer",
            share(&sim_attr, sim_attr.optimizer_s),
            share(&real, real.optimizer_s),
        ),
        (
            "other",
            share(&sim_attr, sim_attr.other_s),
            share(&real, real.other_s + real.checkpoint_s),
        ),
    ] {
        let drift = (s - r).abs();
        worst = worst.max(drift);
        t2.row([
            label.to_string(),
            format!("{:.1}%", 100.0 * s),
            format!("{:.1}%", 100.0 * r),
            format!("{:+.1} pp", 100.0 * (r - s)),
        ]);
    }
    assert!(
        worst <= DRIFT_GATE,
        "sim-vs-real attribution drift {worst:.2} exceeds the E31 bound {DRIFT_GATE}"
    );
    out_s.push_str(&format!(
        "attribution drift, sim twin vs real (shares of the critical path; E31\n\
         bound {DRIFT_GATE}):\n{}\n",
        t2.render()
    ));

    // --- §3 closed-form byte cross-check, from the analyzer's own view ---
    // The analyzer re-derives comm volumes from span args; they must equal
    // the paper's formulas exactly (f32 wire = 2× fp16).
    let p2p_counted = bytes_where(&real_dag, 0, |n| n.starts_with("p2p-send")) / iters as f64;
    let dp_counted = bytes_where(&real_dag, 0, |n| {
        n == "grad-allreduce" || n == "grad-reduce-scatter" || n == "param-allgather"
    }) / iters as f64;
    let expected_p2p =
        2.0 * m as f64 * analysis::pipeline_p2p_bytes(&mirror, spec.microbatch as u64) as f64;
    let grad_bytes_fp16 = log.final_params[&(0, 0, 0)].len() as u64 * BYTES_FP16;
    let expected_dp = 2.0 * analysis::data_parallel_bytes(grad_bytes_fp16, d as u64);
    // Sim spans carry the fp16 volumes the CostModel actually priced.
    let sim_p2p_total: f64 = (0..p)
        .map(|r| bytes_where(&sim_dag, r, |n| n == "pipeline-p2p"))
        .sum();
    let sim_expected_p2p =
        2.0 * m as f64 * analysis::pipeline_p2p_bytes(&mirror, spec.microbatch as u64) as f64;
    let sim_dp_per_dev = bytes_where(&sim_dag, 0, |n| n == "grad-allreduce");
    let mut t3 = Table::new(["volume", "analyzer (B)", "§3 formula (B)"]);
    for (label, counted, expected) in [
        (
            "real pipeline p2p, rank (p0,d0,t0)",
            p2p_counted,
            expected_p2p,
        ),
        ("real grad sync, rank (p0,d0,t0)", dp_counted, expected_dp),
        (
            "sim pipeline p2p, all devices (fp16)",
            sim_p2p_total,
            sim_expected_p2p,
        ),
        (
            "sim grad all-reduce per device (fp16)",
            sim_dp_per_dev,
            report.comm.data_parallel_bytes_per_gpu,
        ),
    ] {
        assert!(
            (counted - expected).abs() <= 1e-6 * expected.max(1.0),
            "{label}: analyzer saw {counted} B, formula says {expected} B"
        );
        t3.row([
            label.to_string(),
            format!("{counted:.0}"),
            format!("{expected:.0}"),
        ]);
    }
    out_s.push_str(&format!(
        "comm volumes as seen by the analyzer vs paper §3 closed forms (per\n\
         iteration; real wire is f32 = 2x fp16):\n{}\n",
        t3.render()
    ));

    // --- CostModel pricing cross-check ---
    // The sim trace's comm span durations are the CostModel's prices for
    // those §3 volumes; per device they must reproduce the simulator's own
    // TimeBreakdown, and the path can never expose more comm than exists.
    let sim_comm_per_dev = (0..p).map(|r| comm_seconds(&sim_dag, r)).sum::<f64>() / p as f64;
    let priced = report.breakdown.pipeline_comm + report.breakdown.data_parallel;
    assert!(
        (sim_comm_per_dev - priced).abs() <= 0.10 * priced.max(1e-12),
        "sim comm spans sum to {sim_comm_per_dev:.6} s/device but the CostModel priced {priced:.6} s"
    );
    let sim_comm_total: f64 = (0..p).map(|r| comm_seconds(&sim_dag, r)).sum();
    assert!(
        sim_attr.exposed_comm_s > 0.0 && sim_attr.exposed_comm_s <= sim_comm_total + 1e-12,
        "exposed comm {:.6} s outside (0, {sim_comm_total:.6}] s of priced comm",
        sim_attr.exposed_comm_s
    );
    out_s.push_str(&format!(
        "CostModel cross-check: sim comm spans {:.3} ms/device vs TimeBreakdown\n\
         {:.3} ms; exposed on the sim path {:.3} ms of {:.3} ms total priced comm\n\n",
        1e3 * sim_comm_per_dev,
        1e3 * priced,
        1e3 * sim_attr.exposed_comm_s,
        1e3 * sim_comm_total,
    ));

    // --- What-if bounds ---
    let mut t4 = Table::new(["what-if", "iteration", "vs measured"]);
    for (label, v) in [
        ("measured (mean)", real.measured_s),
        ("zero-cost communication", wi.zero_comm_s),
        ("perfect comm/compute overlap", wi.perfect_overlap_s),
        ("no stragglers", wi.no_straggler_s),
    ] {
        t4.row([
            label.to_string(),
            format!("{:.2} ms", 1e3 * v),
            format!("{:.3}x", v / real.measured_s.max(1e-12)),
        ]);
    }
    out_s.push_str(&format!(
        "analytic what-if bounds (mean over iterations):\n{}\n",
        t4.render()
    ));

    // --- Dropped-span accounting (satellite: silent overflow is visible) ---
    let snap = sink.metrics.snapshot();
    let dropped: f64 = match &snap["counters"] {
        Json::Obj(map) => map
            .iter()
            .filter(|(k, _)| k.starts_with("spans_dropped."))
            .filter_map(|(_, v)| v.as_f64())
            .sum(),
        _ => 0.0,
    };
    assert_eq!(
        dropped, 0.0,
        "ring buffers overflowed ({dropped} spans dropped) — attribution would be built on a truncated trace"
    );
    out_s.push_str(&format!(
        "spans dropped across {} rank ring buffers: {dropped:.0} (attribution is exact)\n\n",
        spec.world()
    ));

    // --- Export traces + the BENCH record ---
    let dir = std::env::temp_dir().join(format!("megatron-analyze-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    for (name, content) in [
        ("real_trace.json", &real_trace),
        ("sim_trace.json", &sim_trace),
    ] {
        let path = dir.join(name);
        std::fs::write(&path, content).expect("write trace export");
        out_s.push_str(&format!(
            "wrote {} ({} bytes)\n",
            path.display(),
            content.len()
        ));
    }
    let record = bench_json(
        "attribution",
        vec![
            ("p".into(), Json::Num(p as f64)),
            ("t".into(), Json::Num(t as f64)),
            ("d".into(), Json::Num(d as f64)),
            ("iters".into(), Json::Num(iters as f64)),
            ("batch".into(), Json::Num(batch as f64)),
            ("microbatch".into(), Json::Num(spec.microbatch as f64)),
        ],
        vec![
            // Deterministic: byte volumes and everything the simulator says.
            ("p2p_bytes_rank0".into(), p2p_counted),
            ("data_parallel_bytes_rank0".into(), dp_counted),
            ("sim_iter_s".into(), sim_attr.measured_s),
            (
                "sim_compute_share".into(),
                share(&sim_attr, sim_attr.compute_s),
            ),
            (
                "sim_comm_share".into(),
                share(
                    &sim_attr,
                    sim_attr.exposed_comm_s + sim_attr.straggler_wait_s,
                ),
            ),
            (
                "sim_bubble_share".into(),
                share(&sim_attr, sim_attr.bubble_s),
            ),
            (
                "sim_optimizer_share".into(),
                share(&sim_attr, sim_attr.optimizer_s),
            ),
            // Measured on this machine: noisy, judged with wide tolerance.
            ("real_iter_s".into(), real.measured_s),
            ("real_compute_share".into(), share(&real, real.compute_s)),
            (
                "real_comm_share".into(),
                share(&real, real.exposed_comm_s + real.straggler_wait_s),
            ),
            ("real_bubble_share".into(), share(&real, real.bubble_s)),
            (
                "real_optimizer_share".into(),
                share(&real, real.optimizer_s),
            ),
            (
                "zero_comm_ratio".into(),
                wi.zero_comm_s / real.measured_s.max(1e-12),
            ),
            (
                "perfect_overlap_ratio".into(),
                wi.perfect_overlap_s / real.measured_s.max(1e-12),
            ),
            (
                "no_straggler_ratio".into(),
                wi.no_straggler_s / real.measured_s.max(1e-12),
            ),
            // Health gates: both ~0 by construction.
            (
                "attribution_residual_frac".into(),
                real.residual_s().abs() / real.measured_s.max(1e-12),
            ),
            ("worst_phase_drift".into(), worst),
            ("spans_dropped".into(), dropped),
        ],
    );
    out_s.push_str(&write_bench_json("BENCH_attribution.json", &record));
    out_s.push('\n');
    out_s
}
