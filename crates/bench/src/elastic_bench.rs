//! E35: elastic (p, t, d) reconfiguration, end-to-end on the real trainer.
//!
//! A seeded `FaultPlan` kills a rank mid-job and a seeded
//! `CapacityEvent::Returned` repairs it a few iterations later. The
//! elastic supervisor shrinks to the best degraded topology the
//! simulator's cost model picks, keeps training, and grows back at the
//! next checkpoint boundary — while the restart-at-full baseline must
//! stall until the capacity returns. The experiment proves three things:
//!
//! 1. **Bit-identity**: every post-reconfiguration segment of the elastic
//!    run equals a fresh launch at that topology restored from the same
//!    checkpoint generation, loss-for-loss and weight-for-weight.
//! 2. **Goodput**: elastic shrink-and-continue measures strictly higher
//!    goodput than restart-at-full under the same fault plan, and the
//!    analytic `ElasticGoodputModel` predicts the measured elastic
//!    goodput within the acceptance band.
//! 3. **Sim pricing**: `megatron_sim::elastic::price_schedule` prices
//!    capacity-loss schedules the real engine never runs, anchored by the
//!    one point the real run measured.

use megatron_dist::{
    CapacityEvent, CheckpointStore, KillSwitch, PtdpSpec, PtdpTrainer, ReconfigureDirection,
    RunControl, Supervisor, SupervisorConfig,
};
use megatron_fault::{ElasticGoodputModel, FaultPlan, FaultRates, RecoveryMeasurement};
use megatron_sim::elastic::{price_schedule, CapacityWindow, CostModel};
use megatron_sim::json::Json;
use megatron_tensor::gpt::{GptModel, TinyGptConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

use crate::perf;
use crate::table::Table;

/// Wall-clock seconds per iteration of a clean (fault-free, no-durable)
/// run. Wall-clock — not per-thread step times summed up — because
/// pipeline stages overlap in time and the goodput ratios this feeds
/// normalize wall-clock quantities.
fn timed_iter_s(master: &GptModel, spec: PtdpSpec, data: &[(Vec<usize>, Vec<usize>)]) -> f64 {
    let t0 = std::time::Instant::now();
    let _log = PtdpTrainer::new(master.clone(), spec).train(data);
    t0.elapsed().as_secs_f64() / data.len() as f64
}

/// E35 entry point (`repro elastic`).
pub fn elastic() -> String {
    // Same tiny-but-real job as E30: 8 "GPUs" as (p=2, t=2, d=2) threads.
    let cfg = TinyGptConfig {
        vocab: 13,
        seq: 8,
        hidden: 32,
        heads: 4,
        layers: 2,
    };
    let iters = 24usize;
    let ckpt_every = 2usize;
    let spec = PtdpSpec::new(2, 2, 2);
    let mut rng = StdRng::seed_from_u64(0x5eed_e35);
    let master = GptModel::new(cfg, &mut rng);
    let batch = 64usize;
    let data: Vec<(Vec<usize>, Vec<usize>)> = (0..iters)
        .map(|_| {
            let toks = (0..batch * cfg.seq)
                .map(|_| rng.gen_range(0..cfg.vocab))
                .collect();
            let tgts = (0..batch * cfg.seq)
                .map(|_| rng.gen_range(0..cfg.vocab))
                .collect();
            (toks, tgts)
        })
        .collect();

    // Seeded fault + repair schedule: one GPU death mid-job, repaired a
    // seeded handful of iterations later (mirroring how `KillSwitch`
    // schedules deaths).
    let mut rates = FaultRates::none();
    rates.gpu_death_mtbf_s = 10.0;
    let (seed, plan) = (0u64..64)
        .map(|i| {
            let s = 0xe35 + i;
            (
                s,
                FaultPlan::generate(s, spec.world(), iters as f64, &rates),
            )
        })
        .find(|(_, p)| {
            p.events
                .first()
                .is_some_and(|ev| (3..=10).contains(&(ev.at_s as usize)))
        })
        .expect("some seed in [0xe35, 0xe35+64) draws a usable mid-job death");
    let death = &plan.events[0];
    let kill_iter = (death.at_s as usize).clamp(3, 10);
    let kill = KillSwitch {
        thread: spec.thread_key(death.gpu % spec.world()),
        iteration: kill_iter,
    };
    // A long-ish outage: the goodput gap between the two policies scales
    // with it, and it must dominate scheduler noise in the wall clocks.
    let repair_iters = 10 + (seed % 3) as usize;
    let return_iter = (kill_iter + repair_iters).min(iters - 6);
    let capacity = [CapacityEvent::Returned {
        iteration: return_iter,
        ranks: 1,
    }];

    let mut out = String::new();
    out.push_str(&format!(
        "seeded capacity schedule (seed {seed:#x}) on {} threads (p=2, t=2, d=2), {iters} iterations,\n\
         durable checkpoint every {ckpt_every}:\n\
           gpu {} (thread {:?}) dies at iteration {kill_iter},\n\
           1 rank repaired and returned at iteration {return_iter}\n\n",
        spec.world(),
        death.gpu % spec.world(),
        kill.thread,
    ));

    // Clean full-topology reference: per-iteration cost without faults.
    // The first run warms thread pools and allocator arenas, so time two
    // and keep the cheaper estimate — a cold reference would overstate
    // the per-iteration cost and inflate every goodput it normalizes.
    let clean = PtdpTrainer::new(master.clone(), spec).train(&data);
    let clean_iter_s = timed_iter_s(&master, spec, &data).min(timed_iter_s(&master, spec, &data));

    // ---- The elastic run: shrink on death, grow on return. Run it
    // twice (it is deterministic in everything but wall-clock) and keep
    // the faster observation, mirroring the min-of-two clean references.
    let sup_cfg = SupervisorConfig {
        max_restarts: 3,
        checkpoint_every: ckpt_every,
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(8),
        ..SupervisorConfig::default()
    };
    let run_elastic_once = |tag: usize| {
        let root =
            std::env::temp_dir().join(format!("megatron-elastic-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let store = CheckpointStore::open(&root).expect("checkpoint store");
        let sup = Supervisor::new(master.clone(), spec, Arc::clone(&store), sup_cfg);
        let report = sup.run_elastic(&data, &[kill], &capacity);
        (report, store, root)
    };
    let (report_a, store_a, root_a) = run_elastic_once(0);
    let (report_b, store_b, root_b) = run_elastic_once(1);
    assert_eq!(
        report_a.losses, report_b.losses,
        "the elastic trajectory must be deterministic"
    );
    let (report, store) = if report_a.wall_s <= report_b.wall_s {
        (report_a, store_a)
    } else {
        (report_b, store_b)
    };
    assert!(
        report.completed(),
        "elastic supervisor gave up: {:?}",
        report.gave_up
    );
    assert_eq!(
        report.reconfigurations.len(),
        2,
        "expected shrink then grow: {:?}",
        report.reconfigurations
    );
    let shrink = report.reconfigurations[0];
    let grow = report.reconfigurations[1];
    assert_eq!(shrink.direction, ReconfigureDirection::Shrink);
    assert_eq!(grow.direction, ReconfigureDirection::Grow);
    assert_eq!(grow.to, (2, 2, 2), "grow returns to the launch topology");

    let mut t = Table::new(["event", "at iter", "generation", "topology", "capacity"]);
    for rc in &report.reconfigurations {
        t.row([
            match rc.direction {
                ReconfigureDirection::Shrink => "shrink",
                ReconfigureDirection::Grow => "grow",
            }
            .to_string(),
            rc.at_iter.to_string(),
            rc.generation.to_string(),
            format!("{:?} -> {:?}", rc.from, rc.to),
            format!("{} GPUs", rc.capacity),
        ]);
    }
    out.push_str(&format!(
        "elastic timeline ({} attempts, {} restart, {} reconfigurations):\n{}\n",
        report.attempts,
        report.restarts,
        report.reconfigurations.len(),
        t.render()
    ));

    // ---- Bit-identity: replay the elastic trajectory as a sequence of
    // fresh launches from the same generations. ----
    let degraded = PtdpSpec {
        pipeline: shrink.to.0,
        tensor: shrink.to.1,
        data: shrink.to.2,
        ..spec
    };
    let root2 = std::env::temp_dir().join(format!("megatron-elastic-ref-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root2);
    let store2 = CheckpointStore::open(&root2).expect("replication store");

    // Segment 1: the doomed full-topology run, durably checkpointing into
    // the replication store (deterministic, so it writes the same
    // generations the elastic run's first attempt did).
    let seg1 = PtdpTrainer::new(master.clone(), spec).train_with(
        &data,
        RunControl {
            checkpoint_every: Some(ckpt_every),
            kill: Some(kill),
            durable: Some(Arc::clone(&store2)),
            ..RunControl::default()
        },
    );
    assert!(
        seg1.error.is_some(),
        "the kill must fire in the replication"
    );

    // Segment 2: a FRESH degraded launch restored from the same
    // generation the elastic shrink used.
    let restored = store2
        .load_latest(&degraded, cfg)
        .expect("cross-topology restore for the degraded replication");
    assert_eq!(restored.generation, shrink.generation);
    let grow_stop = grow.at_iter;
    let seg2 = PtdpTrainer::new(master.clone(), degraded).train_with(
        &data[..grow_stop],
        RunControl {
            checkpoint_every: Some(ckpt_every),
            restore: Some(restored.snapshot),
            durable: Some(Arc::clone(&store2)),
            ..RunControl::default()
        },
    );
    assert!(seg2.error.is_none(), "degraded replication failed");
    let degraded_window = shrink.generation..grow_stop;
    let seg_ok = seg2.log.losses[degraded_window.clone()] == report.losses[degraded_window.clone()];

    // Segment 3: a FRESH full-topology launch restored from the grow
    // boundary generation.
    let regrown = store2
        .load_latest(&spec, cfg)
        .expect("cross-topology restore for the regrown replication");
    assert_eq!(regrown.generation, grow.generation);
    let seg3 = PtdpTrainer::new(master.clone(), spec).train_with(
        &data,
        RunControl {
            checkpoint_every: Some(ckpt_every),
            restore: Some(regrown.snapshot),
            ..RunControl::default()
        },
    );
    assert!(seg3.error.is_none(), "regrown replication failed");
    let tail_ok = seg3.log.losses[grow_stop..] == report.losses[grow_stop..];
    let params_ok = report.final_params.as_ref() == Some(&seg3.log.final_params);
    out.push_str(&format!(
        "degraded segment (iters {}..{}) bit-identical to fresh {:?} launch from gen {}: {}\n\
         post-grow segment (iters {}..{}) bit-identical to fresh (2, 2, 2) launch from gen {}: {}\n\
         final weights bit-identical to the replayed trajectory: {}\n\n",
        degraded_window.start,
        degraded_window.end,
        shrink.to,
        shrink.generation,
        if seg_ok { "yes" } else { "NO" },
        grow_stop,
        iters,
        grow.generation,
        if tail_ok { "yes" } else { "NO" },
        if params_ok { "yes" } else { "NO" },
    ));
    assert!(seg_ok && tail_ok && params_ok, "bit-identity must hold");

    // ---- Goodput: elastic vs restart-at-full under the same plan. ----
    //
    // Iteration pricing. The harness backs every rank with a host thread,
    // so shrinking the topology does NOT slow it down the way losing GPUs
    // slows a real job (fewer threads can even run faster per iteration
    // on a contended host). Degraded iterations are therefore priced by
    // the simulator's cost model — the same model the supervisor used to
    // pick the degraded configuration — calibrated so one full-topology
    // model iteration costs the measured `clean_iter_s`. Checkpoint
    // saves, restores, detection, and backoff stay measured wall-clock,
    // and each policy's wall is assembled from those components: the
    // end-to-end raw walls of runs this size are dominated by host
    // scheduler jitter, which would drown the ~10% overhead signal the
    // experiment exists to measure.
    let cost = CostModel::for_job(cfg.layers, cfg.heads, batch, spec.microbatch);
    let full = (spec.pipeline, spec.tensor, spec.data);
    let unit_s = clean_iter_s / cost.iteration_s(full.0, full.1, full.2);
    let degraded_iter_s =
        unit_s * cost.iteration_s(degraded.pipeline, degraded.tensor, degraded.data);
    let rho = (clean_iter_s / degraded_iter_s).clamp(1e-3, 1.0);

    // The outage: the degraded window's work at degraded speed. Elastic
    // pays only the slowdown (outage · (1 − rho) extra wall); the restart
    // baseline stalls for the whole outage.
    let degraded_work = (grow_stop - shrink.generation) as f64;
    let outage_s = degraded_work * degraded_iter_s;
    let useful_s = iters as f64 * clean_iter_s;

    // Measured overhead components of the elastic run.
    let windows = store.save_windows();
    let save_s_total: f64 = windows.iter().map(|(_, s)| s).sum();
    let mean_save = save_s_total / windows.len().max(1) as f64;
    let mut detect_s_total = 0.0;
    let mut start = 0usize;
    for inc in &report.incidents {
        let executed = (inc.resumed_from + inc.lost_iterations).saturating_sub(start);
        let saves = executed / ckpt_every;
        let explained = (executed as f64 + 0.5) * clean_iter_s + saves as f64 * mean_save;
        detect_s_total += (inc.attempt_wall_s - explained).max(0.0);
        start = inc.resumed_from;
    }
    let lost_iterations: usize = report.incidents.iter().map(|i| i.lost_iterations).sum();
    let restore_s_total: f64 = report.incidents.iter().map(|i| i.restore_s).sum();
    let backoff_s_total: f64 = report.incidents.iter().map(|i| i.backoff_s).sum();
    let elastic_overhead_s = save_s_total
        + restore_s_total
        + backoff_s_total
        + detect_s_total
        + grow.restore_s
        + lost_iterations as f64 * clean_iter_s;
    let elastic_wall_s =
        useful_s + degraded_work * (degraded_iter_s - clean_iter_s) + elastic_overhead_s;

    // Restart-at-full baseline: same kill, non-elastic supervisor (it
    // restores at (2,2,2) as soon as the job allows), but the real cluster
    // could not have run 8 ranks until the repair — it stalls for the
    // whole outage on top of its own measured recovery overheads.
    let run_baseline_once = |tag: usize| {
        let root = std::env::temp_dir().join(format!(
            "megatron-elastic-base-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let store = CheckpointStore::open(&root).expect("baseline store");
        let sup = Supervisor::new(master.clone(), spec, Arc::clone(&store), sup_cfg);
        let report = sup.run(&data, &[kill]);
        (report, store, root)
    };
    let (base_a, bstore_a, broot_a) = run_baseline_once(0);
    let (base_b, bstore_b, broot_b) = run_baseline_once(1);
    let (base_report, base_store) = if base_a.wall_s <= base_b.wall_s {
        (base_a, bstore_a)
    } else {
        (base_b, bstore_b)
    };
    assert!(
        base_report.completed(),
        "baseline gave up: {:?}",
        base_report.gave_up
    );
    assert_eq!(base_report.losses, clean.losses, "baseline bit-identity");
    let base_save_s: f64 = base_store.save_windows().iter().map(|(_, s)| s).sum();
    let base_overhead_s = base_save_s
        + base_report
            .incidents
            .iter()
            .map(|i| i.restore_s + i.backoff_s)
            .sum::<f64>()
        + base_report
            .incidents
            .iter()
            .map(|i| i.lost_iterations)
            .sum::<usize>() as f64
            * clean_iter_s;
    let restart_wall_s = useful_s + outage_s + base_overhead_s;
    let _ = std::fs::remove_dir_all(&broot_a);
    let _ = std::fs::remove_dir_all(&broot_b);

    let elastic_goodput = useful_s / elastic_wall_s;
    let restart_goodput = useful_s / restart_wall_s;
    out.push_str(&format!(
        "measured goodput under the same fault plan ({:.0}-iteration outage priced at {:.1} ms,\n\
         degraded iterations priced {:.1} ms by the cost model vs {:.1} ms clean):\n\
           elastic shrink-and-continue: {:.1}%  ({:.1} ms wall, {:.1} ms measured overheads, works through the outage)\n\
           restart-at-full baseline:    {:.1}%  ({:.1} ms wall, {:.1} ms measured overheads + the full stall)\n",
        degraded_work,
        1e3 * outage_s,
        1e3 * degraded_iter_s,
        1e3 * clean_iter_s,
        100.0 * elastic_goodput,
        1e3 * elastic_wall_s,
        1e3 * elastic_overhead_s,
        100.0 * restart_goodput,
        1e3 * restart_wall_s,
        1e3 * base_overhead_s,
    ));
    assert!(
        elastic_goodput > restart_goodput,
        "elastic ({elastic_goodput:.3}) must beat restart-at-full ({restart_goodput:.3})"
    );

    // ---- Analytic prediction: ElasticGoodputModel fed with this run's
    // own measured costs. ----
    let meas = RecoveryMeasurement {
        wall_s: elastic_wall_s,
        n_iterations: report.iterations,
        clean_iter_s,
        n_failures: report.incidents.len(),
        lost_iterations,
        restore_s_total,
        backoff_s_total,
        detect_s_total,
        save_s_total,
        n_checkpoints: windows.len(),
        checkpoint_every_iters: ckpt_every,
    };
    let em = ElasticGoodputModel {
        base: meas.to_model(),
        relative_throughput: rho,
        reconfigure_s: grow.restore_s,
    };
    let predicted = em.elastic_goodput(meas.interval_s(), useful_s, outage_s);
    let err = (elastic_goodput - predicted).abs() / predicted.max(1e-12);
    out.push_str(&format!(
        "\nanalytic elastic mode (rho = {:.2}, cost model's relative throughput of {:?}):\n\
           predicted elastic goodput: {:.1}%\n\
           measured elastic goodput:  {:.1}%\n\
           agreement: {:.1}% {}\n\
           break-even outage for one reconfiguration ({:.2} ms): {:.2} ms\n",
        rho,
        shrink.to,
        100.0 * predicted,
        100.0 * elastic_goodput,
        100.0 * err,
        if err <= 0.10 {
            "(within the 10% acceptance band)"
        } else {
            "(OUTSIDE the 10% acceptance band)"
        },
        1e3 * em.reconfigure_s,
        1e3 * em.break_even_outage_s(),
    ));

    // ---- Sim mirror: price capacity-loss schedules the real engine
    // never ran. ----
    let unit = cost.iteration_s(full.0, full.1, full.2);
    let mut t = Table::new([
        "outage (iters of model time)",
        "elastic goodput",
        "restart goodput",
        "reconfigs",
    ]);
    for outage_iters in [0usize, 4, 8, 16, 32] {
        let horizon = 64.0 * unit;
        let outage = outage_iters as f64 * unit;
        let windows = if outage_iters == 0 {
            vec![CapacityWindow { at_s: 0.0, gpus: 8 }]
        } else {
            vec![
                CapacityWindow { at_s: 0.0, gpus: 8 },
                CapacityWindow {
                    at_s: 16.0 * unit,
                    gpus: 7,
                },
                CapacityWindow {
                    at_s: 16.0 * unit + outage,
                    gpus: 8,
                },
            ]
        };
        let cmp = price_schedule(&cost, full, &windows, horizon, 0.5 * unit, 0.5 * unit);
        t.row([
            outage_iters.to_string(),
            format!("{:.1}%", 100.0 * cmp.elastic_goodput()),
            format!("{:.1}%", 100.0 * cmp.restart_goodput()),
            cmp.reconfigurations.to_string(),
        ]);
    }
    out.push_str(&format!(
        "\nsim-priced capacity schedules (cost-model units, one mid-job loss of 1 GPU,\n\
         reconfigure/restore each 0.5 iterations):\n{}\n",
        t.render()
    ));

    // ---- Machine-readable record in the shared BENCH schema. ----
    let record = perf::bench_json(
        "elastic",
        vec![
            ("iters".into(), Json::Num(iters as f64)),
            ("ckpt_every".into(), Json::Num(ckpt_every as f64)),
            ("batch".into(), Json::Num(batch as f64)),
            ("seed".into(), Json::Num(seed as f64)),
            ("kill_iter".into(), Json::Num(kill_iter as f64)),
            ("return_iter".into(), Json::Num(return_iter as f64)),
            ("world".into(), Json::Num(spec.world() as f64)),
            ("degraded_world".into(), Json::Num(degraded.world() as f64)),
        ],
        vec![
            ("elastic_goodput".into(), elastic_goodput),
            ("restart_goodput".into(), restart_goodput),
            ("predicted_elastic_goodput".into(), predicted),
            ("model_error".into(), err),
            ("relative_throughput".into(), rho),
            ("clean_iter_s".into(), clean_iter_s),
            ("degraded_iter_s".into(), degraded_iter_s),
            ("outage_s".into(), outage_s),
            ("elastic_wall_s".into(), elastic_wall_s),
            ("restart_wall_s".into(), restart_wall_s),
            (
                "reconfigurations".into(),
                report.reconfigurations.len() as f64,
            ),
            ("reconfigure_s".into(), grow.restore_s),
        ],
    );
    out.push_str(&perf::write_bench_json("BENCH_elastic.json", &record));
    out.push('\n');

    let _ = std::fs::remove_dir_all(&root_a);
    let _ = std::fs::remove_dir_all(&root_b);
    let _ = std::fs::remove_dir_all(&root2);
    out
}
