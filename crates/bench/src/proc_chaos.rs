//! E38: `repro chaos --process` — real-kill chaos through a supervised
//! 8-process (2,2,2) UDS job.
//!
//! Where E33 injects faults into threads sharing one address space, this
//! experiment pulls real power cords: seeded **SIGKILLs** delivered to
//! worker OS processes mid-iteration (triggered by their own progress
//! heartbeats), plus a seeded socket fault plan (mid-frame severs,
//! connection refusals, per-link slowdowns) armed inside the workers.
//! The launcher-side [`ProcSupervisor`] must notice each death, commit
//! whatever durable shard generations the dead world left behind,
//! restore the newest, and respawn — and the healed run's **final
//! parameters must be bit-identical** to a fault-free process run of the
//! same job.
//!
//! The run is then priced: the measured goodput (useful work over
//! supervised wall-clock) is compared against the Young/Daly
//! [`GoodputModel`] parameterized by the *measured* MTBF, restore, and
//! backoff costs, and an elastic shrink→grow cycle through the same
//! durable store validates [`ElasticGoodputModel`] the same way. Both
//! land in `BENCH_proc_chaos.json` for the perf-regression sentry.

use std::path::PathBuf;
use std::time::Instant;

use megatron_dist::proc::{launch_configured, JobSpec, ProcKill, ProcSupervisor, SocketFaultPlan};
use megatron_dist::CapacityEvent;
use megatron_fault::{ElasticGoodputModel, RecoveryMeasurement};
use megatron_sim::json::Json;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `repro chaos --process` usage string.
pub const USAGE: &str = "repro chaos --process [--seed N] [--iters N] [--ckpt-every N] [--kills N]
            [--ptd P,T,D] [--out PATH]
  E38: seeded SIGKILL + socket-fault chaos through a supervised process-mode
  job; gates on final params bit-identical to the fault-free process run and
  writes measured-vs-predicted goodput to BENCH_proc_chaos.json";

/// CLI-tunable knobs for the process-mode chaos run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcChaosKnobs {
    /// Seed for the kill schedule and the socket fault plan.
    pub seed: u64,
    /// Total training iterations.
    pub iters: usize,
    /// Durable checkpoint interval in iterations.
    pub ckpt_every: usize,
    /// Scheduled SIGKILLs (each on a seeded victim at a seeded trigger).
    pub kills: usize,
    /// Parallelization `(p, t, d)`.
    pub ptd: (usize, usize, usize),
}

impl Default for ProcChaosKnobs {
    fn default() -> Self {
        ProcChaosKnobs {
            seed: 0xe38,
            iters: 12,
            ckpt_every: 2,
            kills: 2,
            ptd: (2, 2, 2),
        }
    }
}

/// CLI entry: parse flags (ignoring the dispatching `--process`), run.
pub fn run(args: &[String]) -> Result<String, String> {
    let mut knobs = ProcChaosKnobs::default();
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || -> Result<&String, String> {
            it.next()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--process" => {}
            "--seed" => knobs.seed = parse(val()?)?,
            "--iters" => knobs.iters = parse(val()?)?,
            "--ckpt-every" => knobs.ckpt_every = parse(val()?)?,
            "--kills" => knobs.kills = parse(val()?)?,
            "--ptd" => {
                let parts: Vec<usize> = val()?
                    .split(',')
                    .map(|s| s.trim().parse())
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("--ptd: {e}\n{USAGE}"))?;
                if parts.len() != 3 || parts.contains(&0) {
                    return Err(format!("--ptd needs three nonzero values\n{USAGE}"));
                }
                knobs.ptd = (parts[0], parts[1], parts[2]);
            }
            "--out" => out = Some(val()?.clone()),
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    if knobs.ckpt_every == 0 || knobs.iters < 2 * knobs.ckpt_every {
        return Err("need --ckpt-every >= 1 and --iters >= 2*ckpt-every".into());
    }
    report(&knobs, out.as_deref().unwrap_or("BENCH_proc_chaos.json"))
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("could not parse '{s}'\n{USAGE}"))
}

fn yn(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("megatron-e38-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Seeded kill schedule: `n` victims at progress triggers spread through
/// the run, sorted so earlier kills fire first.
fn kill_schedule(seed: u64, world: usize, iters: usize, n: usize) -> Vec<ProcKill> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6b11_5eed);
    let mut kills: Vec<ProcKill> = (0..n)
        .map(|_| ProcKill {
            rank: rng.gen_range(0..world),
            after_iter: rng.gen_range(1..iters.max(2) - 1),
        })
        .collect();
    kills.sort_by_key(|k| (k.after_iter, k.rank));
    kills
}

fn report(knobs: &ProcChaosKnobs, out_path: &str) -> Result<String, String> {
    let (p, t, d) = knobs.ptd;
    let mut job = JobSpec::canonical(p, t, d);
    job.retry = true; // arms ReliableTransport + the socket replay log
    job.iters = knobs.iters;
    // Heavier than the canonical toy so per-iteration compute dominates
    // process spawn/rendezvous — otherwise the goodput comparison only
    // measures launcher overhead.
    job.batch = 32;
    job.model.seq = 8;
    job.model.hidden = 16;
    let world = job.world();

    // --- Fault-free reference run (no checkpointing): params + clean rate.
    let dir_a = scratch("clean");
    let t0 = Instant::now();
    let handle = launch_configured(&job, &dir_a, None, None).map_err(|e| e.to_string())?;
    let clean = handle.wait();
    let clean_wall = t0.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&dir_a);
    if !clean.ok() {
        return Err(format!(
            "fault-free run failed: missing {:?}, exits {:?}",
            clean.missing, clean.exits
        ));
    }
    let clean_iter_s = clean_wall / knobs.iters as f64;

    // --- Fault-free run *with* checkpointing: save cost, and proof that
    // durable shard writes don't perturb the numerics.
    let mut job_ck = job;
    job_ck.checkpoint_every = knobs.ckpt_every;
    let dir_b = scratch("clean-ckpt");
    let t0 = Instant::now();
    let handle = launch_configured(&job_ck, &dir_b, Some(&dir_b.join("ckpt")), None)
        .map_err(|e| e.to_string())?;
    let clean_ck = handle.wait();
    let ckpt_wall = t0.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&dir_b);
    if !clean_ck.ok() {
        return Err(format!(
            "checkpointed fault-free run failed: missing {:?}, exits {:?}",
            clean_ck.missing, clean_ck.exits
        ));
    }
    let ckpt_params_ok = clean
        .outputs
        .iter()
        .all(|(k, o)| clean_ck.outputs.get(k).map(|c| &c.params) == Some(&o.params));
    let n_gens = knobs.iters / knobs.ckpt_every;
    let save_s_total = (ckpt_wall - clean_wall).max(0.0);

    // --- The chaos run: seeded SIGKILLs + socket faults, supervised.
    let kills = kill_schedule(knobs.seed, world, knobs.iters, knobs.kills);
    let faults = SocketFaultPlan::seeded(knobs.seed, world);
    let root = scratch("chaos");
    let sup = ProcSupervisor::new(&job_ck, &root);
    let report = sup.run(&kills, Some(&faults)).map_err(|e| e.to_string())?;
    let _ = std::fs::remove_dir_all(&root);
    let chaos_params_ok = clean
        .outputs
        .iter()
        .all(|(k, o)| report.outcome.outputs.get(k).map(|c| &c.params) == Some(&o.params));

    // Lost (re-executed) iterations and detection overhead per incident.
    let mut prev_gen = 0usize;
    let mut lost_iters = 0usize;
    let mut detect_s_total = 0.0f64;
    let mut restore_s_total = 0.0f64;
    let mut backoff_s_total = 0.0f64;
    for inc in &report.incidents {
        let executed = inc.at_progress.saturating_sub(prev_gen);
        lost_iters += inc.at_progress.saturating_sub(inc.restored_generation);
        detect_s_total += (inc.detect_s - executed as f64 * clean_iter_s).max(0.0);
        restore_s_total += inc.restore_s;
        backoff_s_total += inc.backoff_s;
        prev_gen = inc.restored_generation;
    }
    let meas = RecoveryMeasurement {
        wall_s: report.wall_s,
        n_iterations: knobs.iters,
        clean_iter_s,
        n_failures: report.incidents.len(),
        lost_iterations: lost_iters,
        restore_s_total,
        backoff_s_total,
        detect_s_total,
        save_s_total,
        n_checkpoints: n_gens,
        checkpoint_every_iters: knobs.ckpt_every,
    };
    let measured = meas.measured_goodput();
    let predicted = meas.predicted_goodput();
    let young_daly_s = meas.to_model().young_daly_interval();
    let model_error = (measured - predicted).abs() / measured.max(1e-12);

    // --- Elastic cycle through the same machinery: shrink on Lost,
    // grow back on Returned, every hop over the canonical restore path.
    let lost_at = knobs.iters / 3;
    let back_at = 2 * knobs.iters / 3;
    let events = [
        CapacityEvent::Lost {
            iteration: lost_at,
            ranks: world / 4,
        },
        CapacityEvent::Returned {
            iteration: back_at,
            ranks: world / 4,
        },
    ];
    let root_e = scratch("elastic");
    let sup_e = ProcSupervisor::new(&job_ck, &root_e);
    let elastic = sup_e.run_elastic(&events).map_err(|e| e.to_string())?;
    // A degraded topology regroups the data-parallel gradient sum, so the
    // elastic run is *not* comparable bit-for-bit against the full-topology
    // run (same as E35). The determinism claim is per-segment: a fresh
    // process world launched from the grow-boundary generation must
    // reproduce the post-grow segment exactly.
    let grow_gen = elastic
        .reconfigurations
        .iter()
        .find(|r| r.direction == megatron_dist::ReconfigureDirection::Grow)
        .map(|r| r.generation);
    let elastic_params_ok = match grow_gen {
        Some(gen) => {
            let mut job_r = job_ck;
            job_r.resume_from = gen;
            let handle = launch_configured(
                &job_r,
                &root_e.join("replay"),
                Some(&root_e.join("ckpt")),
                None,
            )
            .map_err(|e| e.to_string())?;
            let replay = handle.wait();
            replay.ok()
                && elastic
                    .outcome
                    .outputs
                    .iter()
                    .all(|(k, o)| replay.outputs.get(k).map(|c| &c.params) == Some(&o.params))
        }
        None => false,
    };
    let _ = std::fs::remove_dir_all(&root_e);
    let elastic_wall: f64 = elastic.segments.iter().map(|s| s.wall_s).sum();
    let degraded = elastic
        .segments
        .iter()
        .find(|s| s.spec != knobs.ptd)
        .copied();
    let degraded_iter_s = degraded
        .map(|s| s.wall_s / (s.to_iter - s.from_iter).max(1) as f64)
        .unwrap_or(clean_iter_s);
    let reconfigure_s: f64 = elastic.reconfigurations.iter().map(|r| r.restore_s).sum();
    let emodel = ElasticGoodputModel::from_measured(
        meas.to_model(),
        clean_iter_s,
        degraded_iter_s,
        reconfigure_s,
    );
    let useful_s = knobs.iters as f64 * clean_iter_s;
    let outage_s = degraded.map(|s| s.wall_s).unwrap_or(0.0);
    let elastic_measured = (useful_s / elastic_wall).clamp(0.0, 1.0);
    let elastic_predicted = emodel.elastic_goodput(meas.interval_s(), useful_s, outage_s);
    let elastic_error = (elastic_measured - elastic_predicted).abs() / elastic_measured.max(1e-12);

    // --- Report.
    let mut rep = String::new();
    rep.push_str(&format!(
        "E38: supervised ({p},{t},{d}) = {world} OS processes over UDS, {} iterations, \
         checkpoint every {}\n\n",
        knobs.iters, knobs.ckpt_every
    ));
    rep.push_str(&format!(
        "  chaos plan (seed {:#x}): {} SIGKILLs {:?}, {} socket faults\n",
        knobs.seed,
        kills.len(),
        kills
            .iter()
            .map(|k| (k.rank, k.after_iter))
            .collect::<Vec<_>>(),
        faults.faults.len(),
    ));
    rep.push_str(&format!(
        "  incidents: {} (attempts {})\n",
        report.incidents.len(),
        report.attempts
    ));
    for inc in &report.incidents {
        rep.push_str(&format!(
            "    attempt {}: {:?} at progress {} → restored gen {} \
             (detect {:.3} s, restore {:.3} s, backoff {:.3} s)\n",
            inc.attempt,
            inc.dead_ranks,
            inc.at_progress,
            inc.restored_generation,
            inc.detect_s,
            inc.restore_s,
            inc.backoff_s
        ));
    }
    rep.push_str(&format!(
        "\n  checkpointed fault-free params match plain fault-free: {}\n",
        yn(ckpt_params_ok)
    ));
    rep.push_str(&format!(
        "  final params bit-identical to fault-free process run: {}\n",
        yn(chaos_params_ok)
    ));
    rep.push_str(&format!(
        "\n  goodput: measured {:.4}, Young/Daly-predicted {:.4} (error {:.1}%)\n\
         \x20 young/daly interval: {:.2} s (run used {:.2} s)\n\
         \x20 lost iterations: {}, restore {:.3} s, backoff {:.3} s\n",
        measured,
        predicted,
        model_error * 100.0,
        young_daly_s,
        meas.interval_s(),
        lost_iters,
        restore_s_total,
        backoff_s_total,
    ));
    rep.push_str(&format!(
        "\n  elastic: {} segments {:?}\n\
         \x20 post-grow segment bit-identical to fresh launch from the grow generation: {}\n\
         \x20 elastic goodput: measured {:.4}, predicted {:.4} (error {:.1}%)\n",
        elastic.segments.len(),
        elastic
            .segments
            .iter()
            .map(|s| (s.spec, s.from_iter, s.to_iter))
            .collect::<Vec<_>>(),
        yn(elastic_params_ok),
        elastic_measured,
        elastic_predicted,
        elastic_error * 100.0,
    ));

    let record = crate::perf::bench_json(
        "proc_chaos",
        vec![
            ("world".into(), Json::Num(world as f64)),
            ("p".into(), Json::Num(p as f64)),
            ("t".into(), Json::Num(t as f64)),
            ("d".into(), Json::Num(d as f64)),
            ("iters".into(), Json::Num(knobs.iters as f64)),
            ("ckpt_every".into(), Json::Num(knobs.ckpt_every as f64)),
            ("kills".into(), Json::Num(knobs.kills as f64)),
            ("seed".into(), Json::Num(knobs.seed as f64)),
        ],
        vec![
            ("measured_goodput".into(), measured),
            ("predicted_goodput".into(), predicted),
            // Named to dodge the sentry's "goodput → higher-better"
            // keyword: a model error is lower-better.
            ("model_error".into(), model_error),
            ("clean_iter_s".into(), clean_iter_s),
            ("restarts".into(), report.incidents.len() as f64),
            // `lost_iterations` stays console-only: it races the 5 ms
            // supervisor poll (0 or 1 run-to-run), and a 0 baseline makes
            // any relative sentry delta explode.
            ("restore_s_total".into(), restore_s_total),
            ("backoff_s_total".into(), backoff_s_total),
            ("elastic_measured_goodput".into(), elastic_measured),
            ("elastic_predicted_goodput".into(), elastic_predicted),
            ("elastic_model_error".into(), elastic_error),
            ("degraded_iter_s".into(), degraded_iter_s),
            ("relative_throughput".into(), emodel.relative_throughput),
        ],
    );
    rep.push_str(&format!(
        "\n  {}\n",
        crate::perf::write_bench_json(out_path, &record)
    ));

    if !(chaos_params_ok && elastic_params_ok && ckpt_params_ok) {
        return Err(rep + "\nFAIL: a healed run diverged from the fault-free run");
    }
    if report.incidents.is_empty() {
        return Err(rep + "\nFAIL: chaos run saw no incidents — the kills never landed");
    }
    Ok(rep)
}
