//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each `expNN`-style module produces the rows/series of one paper table or
//! figure and prints them alongside the paper-reported values where
//! available. The `repro` binary dispatches to them by name; `repro all`
//! runs the full sweep (used to fill `EXPERIMENTS.md`).

pub mod analyze;
pub mod chaos;
pub mod collective_bench;
pub mod elastic_bench;
pub mod experiments;
pub mod harness;
pub mod launch;
pub mod perf;
pub mod proc_chaos;
pub mod sentry;
pub mod serving;
pub mod simulate_cli;
pub mod table;
pub mod timeline;
