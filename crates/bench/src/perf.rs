//! Shared machine-readable benchmark output: every `BENCH_*.json` the
//! harness writes uses one schema, so perf history tooling can diff runs
//! of different benchmarks without per-file parsers.
//!
//! ```json
//! {
//!   "bench": "serving",
//!   "schema_version": 1,
//!   "config": { "requests": 80, ... },
//!   "metrics": { "tokens_per_sec": 41.2, ... }
//! }
//! ```
//!
//! `config` echoes the knobs that produced the numbers (so a regression
//! diff can refuse to compare unlike runs); `metrics` is flat
//! name → number. Keys are sorted by the [`Json`] writer, so equal runs
//! produce byte-identical files.

use megatron_sim::json::Json;

/// Current `schema_version` for all `BENCH_*.json` files.
pub const BENCH_SCHEMA_VERSION: f64 = 1.0;

/// Assemble one benchmark record in the shared schema.
pub fn bench_json(bench: &str, config: Vec<(String, Json)>, metrics: Vec<(String, f64)>) -> Json {
    Json::obj([
        ("bench", Json::Str(bench.to_string())),
        ("schema_version", Json::Num(BENCH_SCHEMA_VERSION)),
        ("config", Json::Obj(config.into_iter().collect())),
        (
            "metrics",
            Json::Obj(
                metrics
                    .into_iter()
                    .map(|(k, v)| (k, Json::Num(v)))
                    .collect(),
            ),
        ),
    ])
}

/// Write a record produced by [`bench_json`] to `path`, returning a
/// printable one-line status for the experiment report.
pub fn write_bench_json(path: &str, record: &Json) -> String {
    let body = record.to_string();
    match std::fs::write(path, &body) {
        Ok(()) => format!("wrote {path} ({} bytes)", body.len()),
        Err(e) => format!("could not write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_roundtrips_and_sorts_keys() {
        let rec = bench_json(
            "serving",
            vec![
                ("requests".into(), Json::Num(80.0)),
                ("tensor_parallel".into(), Json::Num(2.0)),
            ],
            vec![
                ("tokens_per_sec".into(), 41.5),
                ("p99_latency_s".into(), 0.25),
            ],
        );
        let parsed = Json::parse(&rec.to_string()).unwrap();
        assert_eq!(parsed.get("bench").as_str(), Some("serving"));
        assert_eq!(
            parsed.get("schema_version").as_f64(),
            Some(BENCH_SCHEMA_VERSION)
        );
        assert_eq!(parsed.get("config").get("requests").as_f64(), Some(80.0));
        assert_eq!(
            parsed.get("metrics").get("p99_latency_s").as_f64(),
            Some(0.25)
        );
        // Deterministic output: building the same record twice is
        // byte-identical (BTreeMap ordering).
        assert_eq!(rec.to_string(), parsed.to_string());
    }
}
