//! E33: the seeded chaos harness — mixed transient + fatal faults through
//! real (2,2,2) training.
//!
//! Each seed draws a [`FaultPlan`] mixing *transient* faults (lossy,
//! delayed, duplicated, degraded wires — absorbed by the reliable
//! transport) with *fatal* ones (GPU/node deaths — paid for with a
//! checkpoint restore by the supervisor), then drives the full
//! self-healing stack and asserts the chaos invariants:
//!
//! 1. every collective terminates (the runs complete — no deadlock, no
//!    `CommError::Timeout` from a transient fault);
//! 2. the final model state is bit-identical to the fault-free baseline;
//! 3. transient-only plans cause **zero** supervisor restarts (the retry
//!    counters prove the faults really happened);
//! 4. mixed plans cause exactly one restart per fatal fault.
//!
//! The same lossy/degraded behaviour is mirrored onto the discrete-event
//! simulator links ([`megatron_net::LinkImpairment`]) and cross-checked
//! against the closed-form retransmit expectation, and the observed
//! transient:fatal mix is priced with the [`GoodputModel`] to show what
//! the severity taxonomy is worth at production scale.

use std::sync::Arc;
use std::time::Duration;

use megatron_cluster::ClusterSpec;
use megatron_collective::{RetryPolicy, TransientFaults};
use megatron_dist::{
    CheckpointStore, FaultProfile, HealthMonitor, KillSwitch, PtdpSpec, PtdpTrainer, RunControl,
    Supervisor, SupervisorConfig, SupervisorReport, TransportConfig, WireKind,
};
use megatron_fault::{FaultKind, FaultPlan, FaultRates, GoodputModel, StragglerReport};
use megatron_net::{LinkImpairment, Network};
use megatron_sim::json::Json;
use megatron_sim::{time_to_secs, DagSim};
use megatron_telemetry::{SinkConfig, TelemetrySink};
use megatron_tensor::gpt::{GptModel, TinyGptConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::table::Table;

/// CLI-tunable chaos knobs (`repro chaos [flags]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosKnobs {
    /// Number of seeds to sweep.
    pub seeds: usize,
    /// First seed; seed `i` of the sweep is `seed_base + i`.
    pub seed_base: u64,
    /// Per-send probability a frame is dropped on the faulty wire.
    pub drop_prob: f64,
    /// Per-send probability a frame is delivered twice.
    pub duplicate_prob: f64,
    /// Per-send probability a frame is delayed.
    pub delay_prob: f64,
    /// Straggler flagging threshold (mean-vs-median ratio), fed to both
    /// [`StragglerReport::analyze`] and [`HealthMonitor::classify`].
    pub straggler_threshold: f64,
    /// Expected heartbeat period for the rank health monitor.
    pub heartbeat_ms: u64,
}

impl Default for ChaosKnobs {
    fn default() -> Self {
        ChaosKnobs {
            seeds: 5,
            seed_base: 0xe33,
            drop_prob: 0.02,
            duplicate_prob: 0.01,
            delay_prob: 0.02,
            straggler_threshold: 1.5,
            heartbeat_ms: 25,
        }
    }
}

/// `repro chaos` usage string.
pub const USAGE: &str = "repro chaos [--seeds N] [--seed-base N] [--drop P] [--duplicate P]
            [--delay P] [--straggler-threshold X] [--heartbeat-ms N]
  seeded chaos sweep: transient+fatal fault plans through real (2,2,2)
  training, asserting bit-identical recovery and restarts == fatal faults
repro chaos --process [...]   E38: the same idea with real OS processes —
  seeded SIGKILLs + socket faults healed by the launcher supervisor
  (see `repro chaos --process --help` flags in proc_chaos)";

/// Parse CLI flags into [`ChaosKnobs`].
pub fn parse_knobs(args: &[String]) -> Result<ChaosKnobs, String> {
    let mut knobs = ChaosKnobs::default();
    fn val<'a>(flag: &str, v: Option<&'a String>) -> Result<&'a String, String> {
        v.ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
    }
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let val = |v| val(flag, v);
        match flag.as_str() {
            "--seeds" => knobs.seeds = parse(val(it.next())?)?,
            "--seed-base" => knobs.seed_base = parse(val(it.next())?)?,
            "--drop" => knobs.drop_prob = parse(val(it.next())?)?,
            "--duplicate" => knobs.duplicate_prob = parse(val(it.next())?)?,
            "--delay" => knobs.delay_prob = parse(val(it.next())?)?,
            "--straggler-threshold" => knobs.straggler_threshold = parse(val(it.next())?)?,
            "--heartbeat-ms" => knobs.heartbeat_ms = parse(val(it.next())?)?,
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    if knobs.seeds == 0 {
        return Err("--seeds must be at least 1".into());
    }
    for (name, p) in [
        ("--drop", knobs.drop_prob),
        ("--duplicate", knobs.duplicate_prob),
        ("--delay", knobs.delay_prob),
    ] {
        if !(0.0..1.0).contains(&p) {
            return Err(format!("{name} must be a probability in [0, 1)"));
        }
    }
    if knobs.straggler_threshold < 1.0 {
        return Err("--straggler-threshold must be >= 1".into());
    }
    if knobs.heartbeat_ms == 0 {
        return Err("--heartbeat-ms must be at least 1".into());
    }
    Ok(knobs)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("could not parse '{s}'\n{USAGE}"))
}

/// CLI entry: parse flags, run the sweep. `--process` switches to E38,
/// the process-mode chaos run (real SIGKILLs through the launcher-side
/// supervisor — see [`crate::proc_chaos`]).
pub fn run(args: &[String]) -> Result<String, String> {
    if args.iter().any(|a| a == "--process") {
        return crate::proc_chaos::run(args);
    }
    parse_knobs(args).map(|knobs| report(&knobs))
}

/// E33 registry entry: the default sweep.
pub fn chaos() -> String {
    report(&ChaosKnobs::default())
}

struct Scenario {
    seed: u64,
    kills: Vec<KillSwitch>,
    transient_events: usize,
    degrade_factor: f64,
}

/// Split one seeded plan into the fatal kills and the steady transient
/// wire profile, checking on the way that the plan archives losslessly
/// through its JSON form (chaos runs are reproduced from archived plans).
fn scenario(seed: u64, spec: &PtdpSpec, iters: usize, rates: &FaultRates) -> Scenario {
    let plan = FaultPlan::generate(seed, spec.world(), iters as f64, rates);
    let archived = Json::parse(&plan.to_json().to_string())
        .ok()
        .and_then(|j| FaultPlan::from_json(&j));
    assert_eq!(
        archived.as_ref(),
        Some(&plan),
        "fault plan must archive losslessly"
    );
    let mut kills = Vec::new();
    let mut degrades = Vec::new();
    for ev in &plan.events {
        match ev.kind {
            FaultKind::GpuDeath { .. } | FaultKind::NodeDeath { .. } => kills.push(KillSwitch {
                thread: spec.thread_key(ev.gpu % spec.world()),
                iteration: (ev.at_s as usize).clamp(1, iters - 1),
            }),
            FaultKind::LinkDegrade { factor, .. } => degrades.push(factor),
            _ => degrades.push(1.5),
        }
    }
    // Cap the degrade factor: it multiplies real wall-clock wire sleeps.
    let degrade_factor = if degrades.is_empty() {
        1.0
    } else {
        (degrades.iter().sum::<f64>() / degrades.len() as f64).min(3.0)
    };
    Scenario {
        seed,
        kills,
        transient_events: degrades.len(),
        degrade_factor,
    }
}

fn supervised_run(
    master: &GptModel,
    spec: PtdpSpec,
    data: &[(Vec<usize>, Vec<usize>)],
    transport: TransportConfig,
    kills: &[KillSwitch],
    heartbeat: Duration,
    tag: &str,
) -> (SupervisorReport, Arc<TelemetrySink>) {
    let sink = TelemetrySink::new(SinkConfig {
        world: spec.world(),
        ..SinkConfig::default()
    });
    let root = std::env::temp_dir().join(format!("megatron-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = CheckpointStore::open(&root).expect("checkpoint store");
    let sup = Supervisor::new(
        master.clone(),
        spec,
        store,
        SupervisorConfig {
            max_restarts: kills.len() + 2,
            checkpoint_every: 2,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(8),
            min_comm_timeout: Duration::from_secs(3),
            ..SupervisorConfig::default()
        },
    )
    .with_telemetry(Arc::clone(&sink))
    .with_transport(transport)
    .with_health(heartbeat);
    let report = sup.run(data, kills);
    let _ = std::fs::remove_dir_all(&root);
    (report, sink)
}

fn report(knobs: &ChaosKnobs) -> String {
    let cfg = TinyGptConfig {
        vocab: 13,
        seq: 8,
        hidden: 32,
        heads: 4,
        layers: 2,
    };
    let iters = 12usize;
    let batch = 32usize;
    let spec = PtdpSpec::new(2, 2, 2);
    let mut rng = StdRng::seed_from_u64(0x5eed_e33);
    let master = GptModel::new(cfg, &mut rng);
    let data: Vec<(Vec<usize>, Vec<usize>)> = (0..iters)
        .map(|_| {
            let toks = (0..batch * cfg.seq)
                .map(|_| rng.gen_range(0..cfg.vocab))
                .collect();
            let tgts = (0..batch * cfg.seq)
                .map(|_| rng.gen_range(0..cfg.vocab))
                .collect();
            (toks, tgts)
        })
        .collect();

    // Fault classes over the 12-"second" horizon: deaths are fatal, link
    // degradations are transient (they parameterize the faulty wire).
    let rates = FaultRates {
        gpu_death_mtbf_s: 8.0,
        link_degrade_mtbf_s: 5.0,
        ..FaultRates::none()
    };

    // Fault-free baseline: the bit-identity reference for every scenario.
    let baseline = PtdpTrainer::new(master.clone(), spec).train(&data);
    let heartbeat = Duration::from_millis(knobs.heartbeat_ms);

    let mut out = String::new();
    out.push_str(&format!(
        "chaos sweep: {} seeds from {:#x}, (p,t,d)=(2,2,2), {iters} iterations, B={batch}\n\
         transient wire: drop {:.1}%, duplicate {:.1}%, delay {:.1}%, degrade from plan\n\n",
        knobs.seeds,
        knobs.seed_base,
        100.0 * knobs.drop_prob,
        100.0 * knobs.duplicate_prob,
        100.0 * knobs.delay_prob,
    ));

    let mut t = Table::new([
        "seed",
        "transient",
        "fatal",
        "injected",
        "retries",
        "retransmits",
        "dups dropped",
        "restarts (T-only)",
        "restarts (mixed)",
        "bit-identical",
    ]);
    let (mut total_transient, mut total_fatal) = (0usize, 0usize);
    let mut degrade_used = 1.0f64;
    for i in 0..knobs.seeds {
        let sc = scenario(knobs.seed_base + i as u64, &spec, iters, &rates);
        total_transient += sc.transient_events;
        total_fatal += sc.kills.len();
        degrade_used = degrade_used.max(sc.degrade_factor);
        let transport = TransportConfig {
            wire: WireKind::Mailbox,
            retry: Some(RetryPolicy::default()),
            faults: Some(FaultProfile {
                seed: sc.seed,
                faults: TransientFaults {
                    drop_prob: knobs.drop_prob,
                    duplicate_prob: knobs.duplicate_prob,
                    delay_prob: knobs.delay_prob,
                    delay: Duration::from_micros(200),
                    degrade_factor: sc.degrade_factor,
                    ..TransientFaults::default()
                },
            }),
        };

        // Invariant 3: a transient-only plan never restarts — yet the
        // counters prove the wire really was hostile.
        let (t_only, t_sink) = supervised_run(
            &master,
            spec,
            &data,
            transport,
            &[],
            heartbeat,
            &format!("t{i}"),
        );
        assert!(
            t_only.completed(),
            "seed {:#x}: transient-only run gave up: {:?}",
            sc.seed,
            t_only.gave_up
        );
        assert_eq!(
            t_only.restarts, 0,
            "seed {:#x}: transient faults must never cost a restart",
            sc.seed
        );
        assert_eq!(t_only.attempts, 1);
        assert_eq!(t_only.losses, baseline.losses);
        assert_eq!(t_only.final_params.as_ref(), Some(&baseline.final_params));
        let injected = t_sink.metrics.counter("transport_faults_injected").get();
        let retries = t_sink.metrics.counter("transport_retries").get();
        let retransmits = t_sink.metrics.counter("transport_retransmits").get();
        let dups = t_sink.metrics.counter("transport_duplicates_dropped").get();

        // Invariants 1, 2, 4 on the mixed plan: terminates, bit-identical,
        // and exactly one checkpoint restore per fatal fault.
        let (mixed, _) = supervised_run(
            &master,
            spec,
            &data,
            transport,
            &sc.kills,
            heartbeat,
            &format!("m{i}"),
        );
        assert!(
            mixed.completed(),
            "seed {:#x}: mixed run gave up: {:?}",
            sc.seed,
            mixed.gave_up
        );
        assert_eq!(
            mixed.restarts,
            sc.kills.len(),
            "seed {:#x}: restart count must equal the fatal-fault count",
            sc.seed
        );
        assert_eq!(mixed.losses, baseline.losses);
        assert_eq!(mixed.final_params.as_ref(), Some(&baseline.final_params));

        t.row([
            format!("{:#x}", sc.seed),
            sc.transient_events.to_string(),
            sc.kills.len().to_string(),
            injected.to_string(),
            retries.to_string(),
            retransmits.to_string(),
            dups.to_string(),
            t_only.restarts.to_string(),
            format!("{}/{}", mixed.restarts, sc.kills.len()),
            "yes".to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "every collective terminated, all final states bit-identical to the\n\
         fault-free baseline, and only fatal faults paid a checkpoint restore\n\n",
    );

    // Health + straggler classification at the CLI-configured threshold
    // and heartbeat period, on one instrumented clean run.
    let monitor = HealthMonitor::new(&spec, heartbeat);
    let outcome = PtdpTrainer::new(master.clone(), spec).train_with(
        &data,
        RunControl {
            health: Some(Arc::clone(&monitor)),
            ..RunControl::default()
        },
    );
    assert!(outcome.error.is_none(), "clean run failed");
    let health = monitor.classify(knobs.straggler_threshold);
    let stragglers = StragglerReport::analyze(&outcome.log.step_times, knobs.straggler_threshold)
        .with_liveness(&health);
    out.push_str(&format!(
        "health monitor (period {} ms, threshold {:.2}x): {} ranks beat {} times each;\n\
         dead: {}, slow: {}, stragglers flagged: {}\n\n",
        knobs.heartbeat_ms,
        knobs.straggler_threshold,
        spec.world(),
        monitor.beats(0),
        stragglers.dead.len(),
        health.slow().len(),
        stragglers.stragglers().len(),
    ));

    // Sim mirror: the same loss/degrade profile as a LinkImpairment on the
    // discrete-event links must inflate a cross-node ring all-reduce by
    // exactly factor/(1−p) — the closed-form retransmit expectation.
    let imp = LinkImpairment {
        loss_prob: knobs.drop_prob,
        degrade_factor: degrade_used,
    };
    let ranks: Vec<usize> = vec![0, 4, 8, 12];
    let bytes = 32 * 1024 * 1024u64;
    let sim_secs = |impairment: Option<LinkImpairment>| {
        let mut sim = DagSim::new();
        let net = Network::new(&mut sim, ClusterSpec::selene(16));
        if let Some(imp) = impairment {
            for &r in &ranks {
                net.impair(r, imp);
            }
        }
        net.ring_all_reduce(&mut sim, &ranks, bytes, &[], 0);
        time_to_secs(sim.run().unwrap().makespan)
    };
    let clean_s = sim_secs(None);
    let lossy_s = sim_secs(Some(imp));
    let measured_inflation = lossy_s / clean_s;
    assert!(
        (measured_inflation / imp.inflation() - 1.0).abs() < 0.01,
        "sim mirror drifted: measured {measured_inflation:.4} vs {:.4}",
        imp.inflation()
    );
    out.push_str(&format!(
        "sim mirror: impaired inter-node ring all-reduce took {measured_inflation:.3}x the clean\n\
         wire (closed-form expectation factor/(1-p) = {:.3}x) — transient faults stretch\n\
         communication time but add no restart term\n\n",
        imp.inflation()
    ));

    // GoodputModel cross-check: what the taxonomy is worth. With the
    // sweep's observed transient:fatal mix at a production-scale fatal
    // MTBF of 4 h (§5.10 1T-model checkpoint costs), restarting on
    // *every* fault would shrink the effective MTBF by
    // (fatal + transient) / fatal.
    let fatal_mtbf_s = 4.0 * 3600.0;
    let naive_mtbf_s =
        fatal_mtbf_s * total_fatal.max(1) as f64 / (total_fatal.max(1) + total_transient) as f64;
    let healing = GoodputModel {
        mtbf_s: fatal_mtbf_s,
        save_s: 50.0,
        restart_s: 134.0,
    };
    let naive = GoodputModel {
        mtbf_s: naive_mtbf_s,
        ..healing
    };
    out.push_str(&format!(
        "goodput cross-check ({} transient : {} fatal faults observed across the sweep,\n\
         1T-model costs, fatal MTBF 4 h, Young/Daly checkpoint intervals):\n\
         self-healing (restart only on fatal): {:.1}% goodput\n\
         naive (restart on every fault):       {:.1}% goodput at MTBF {:.0} s\n",
        total_transient,
        total_fatal,
        100.0 * healing.goodput(healing.young_daly_interval()),
        100.0 * naive.goodput(naive.young_daly_interval()),
        naive_mtbf_s,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_split_is_deterministic_and_mixed() {
        let spec = PtdpSpec::new(2, 2, 2);
        let rates = FaultRates {
            gpu_death_mtbf_s: 8.0,
            link_degrade_mtbf_s: 5.0,
            ..FaultRates::none()
        };
        let a = scenario(0xe33, &spec, 12, &rates);
        let b = scenario(0xe33, &spec, 12, &rates);
        assert_eq!(a.kills.len(), b.kills.len());
        assert_eq!(a.transient_events, b.transient_events);
        assert_eq!(a.degrade_factor, b.degrade_factor);
        for k in &a.kills {
            assert!((1..12).contains(&k.iteration));
        }
        assert!(a.degrade_factor >= 1.0 && a.degrade_factor <= 3.0);
        // At these rates, a small seed window exercises both fault classes.
        let any_fatal = (0..8).any(|i| !scenario(0xe33 + i, &spec, 12, &rates).kills.is_empty());
        let any_transient =
            (0..8).any(|i| scenario(0xe33 + i, &spec, 12, &rates).transient_events > 0);
        assert!(any_fatal, "no fatal faults in 8 seeds");
        assert!(any_transient, "no transient faults in 8 seeds");
    }

    #[test]
    fn cli_flags_parse_and_validate() {
        let to_args =
            |flags: &[&str]| -> Vec<String> { flags.iter().map(|s| s.to_string()).collect() };
        let knobs = parse_knobs(&to_args(&[
            "--seeds",
            "2",
            "--straggler-threshold",
            "1.3",
            "--heartbeat-ms",
            "10",
            "--drop",
            "0.05",
        ]))
        .unwrap();
        assert_eq!(knobs.seeds, 2);
        assert_eq!(knobs.straggler_threshold, 1.3);
        assert_eq!(knobs.heartbeat_ms, 10);
        assert_eq!(knobs.drop_prob, 0.05);
        assert_eq!(
            parse_knobs(&[]).unwrap(),
            ChaosKnobs::default(),
            "no flags means defaults"
        );
        assert!(parse_knobs(&to_args(&["--drop", "1.5"])).is_err());
        assert!(parse_knobs(&to_args(&["--seeds", "0"])).is_err());
        assert!(parse_knobs(&to_args(&["--seeds"])).is_err());
        assert!(parse_knobs(&to_args(&["--gremlins"])).is_err());
    }

    #[test]
    fn chaos_one_seed_holds_the_invariants() {
        // One full scenario end-to-end (the 5-seed sweep is `repro chaos`
        // and the CI chaos-smoke job). The invariant asserts live inside
        // report() — reaching the final summary means they all held.
        let out = report(&ChaosKnobs {
            seeds: 1,
            ..ChaosKnobs::default()
        });
        assert!(out.contains("bit-identical"));
        assert!(out.contains("self-healing"));
    }
}
