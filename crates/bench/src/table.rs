//! Minimal fixed-width table printer for experiment output.

/// A column-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                let pad = width[i] - c.chars().count();
                line.push_str(c);
                line.push_str(&" ".repeat(pad));
                if i + 1 < cols {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["a", "long-header"]);
        t.row(["xxxx", "1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a     long-header"));
        assert!(lines[2].starts_with("xxxx  1"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_bad_row() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }
}
