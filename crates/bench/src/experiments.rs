//! One function per paper table/figure. Each returns the printable
//! reproduction (and, where the paper gives numbers, a side-by-side
//! comparison).

use megatron_cluster::ClusterSpec;
use megatron_core::{CheckpointIo, FilesystemSpec, TrainingRun};
use megatron_model::{zoo, GptConfig};
use megatron_parallel::{analysis, heuristics, ParallelConfig};
use megatron_schedule::ScheduleKind;

use crate::table::Table;

/// An experiment registry entry.
pub struct Experiment {
    /// Subcommand name (e.g. `table1`).
    pub name: &'static str,
    /// What it reproduces.
    pub paper_ref: &'static str,
    /// Run it, returning printable output.
    pub run: fn() -> String,
}

/// All registered experiments, in paper order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            name: "fig1",
            paper_ref: "Figure 1: model size / compute trend",
            run: fig1,
        },
        Experiment {
            name: "formulas",
            paper_ref: "Eqs. 2-3: parameter and FLOP formulas vs exact counts",
            run: formulas,
        },
        Experiment {
            name: "gantt",
            paper_ref: "Figures 3-4: pipeline schedule timelines",
            run: gantt,
        },
        Experiment {
            name: "fig6",
            paper_ref: "Figure 6: bubble fraction vs data-parallel size",
            run: fig6,
        },
        Experiment {
            name: "fig7",
            paper_ref: "Figure 7: per-GPU throughput vs microbatch size",
            run: fig7,
        },
        Experiment {
            name: "fig8",
            paper_ref: "Figure 8: Eq. 1 estimated throughput vs microbatch size",
            run: fig8,
        },
        Experiment {
            name: "table1",
            paper_ref: "Table 1: weak scaling 1.7B - 1T",
            run: table1,
        },
        Experiment {
            name: "table2",
            paper_ref: "Table 2 / Figure 10: PTD-P vs ZeRO-3",
            run: table2,
        },
        Experiment {
            name: "fig11",
            paper_ref: "Figure 11: pipeline-parallel weak scaling",
            run: fig11,
        },
        Experiment {
            name: "fig12",
            paper_ref: "Figure 12: interleaved vs non-interleaved schedule",
            run: fig12,
        },
        Experiment {
            name: "fig13",
            paper_ref: "Figure 13: tensor vs pipeline parallelism",
            run: fig13,
        },
        Experiment {
            name: "fig14",
            paper_ref: "Figure 14: pipeline vs data parallelism",
            run: fig14,
        },
        Experiment {
            name: "fig15",
            paper_ref: "Figure 15: tensor vs data parallelism",
            run: fig15,
        },
        Experiment {
            name: "fig16",
            paper_ref: "Figure 16: microbatch size at (t,p)=(8,8)",
            run: fig16,
        },
        Experiment {
            name: "fig17",
            paper_ref: "Figure 17: activation recomputation",
            run: fig17,
        },
        Experiment {
            name: "fig18",
            paper_ref: "Figure 18: scatter/gather optimization",
            run: fig18,
        },
        Experiment {
            name: "fusion",
            paper_ref: "Section 5.8: fused operators",
            run: fusion,
        },
        Experiment {
            name: "bisection",
            paper_ref: "Section 5.9: inter-node communication bandwidth",
            run: bisection,
        },
        Experiment {
            name: "checkpoint",
            paper_ref: "Section 5.10: checkpoint loading and saving",
            run: checkpoint,
        },
        Experiment {
            name: "traintime",
            paper_ref: "Section 5.1: end-to-end training time estimates",
            run: traintime,
        },
        Experiment {
            name: "heuristics",
            paper_ref: "Section 3 takeaways: auto-configuration vs Table 1",
            run: heuristics_exp,
        },
        Experiment {
            name: "v100",
            paper_ref: "Section 1: GPT-3 on a single V100 takes ~288 years",
            run: v100_years,
        },
        Experiment {
            name: "ablations",
            paper_ref: "DESIGN.md section 5: design-choice ablations",
            run: ablations,
        },
        Experiment {
            name: "batchscale",
            paper_ref: "Section 3.3.1: throughput rises with global batch size",
            run: batchscale,
        },
        Experiment {
            name: "twobw",
            paper_ref: "Section 2.2/6 future work: PipeDream-2BW no-flush schedule",
            run: twobw,
        },
        Experiment {
            name: "zero-stages",
            paper_ref: "Section 6 related work: ZeRO stages 1/2/3/Infinity tradeoffs",
            run: zero_stages,
        },
        Experiment {
            name: "trace",
            paper_ref: "tooling: Chrome-trace export of a simulated iteration",
            run: trace,
        },
        Experiment {
            name: "faults",
            paper_ref: "Section 5.10 extension: goodput vs MTBF for the Table 1 zoo",
            run: faults,
        },
        Experiment {
            name: "ckpt-interval",
            paper_ref: "Section 5.10 extension: Young/Daly optimal checkpoint interval",
            run: ckpt_interval,
        },
        Experiment {
            name: "recovery",
            paper_ref: "Section 5.10 extension: auto-recovery through a seeded fault plan",
            run: recovery,
        },
        Experiment {
            name: "timeline",
            paper_ref: "E31: sim-vs-real per-rank timeline, traces + per-phase drift table",
            run: crate::timeline::timeline,
        },
        Experiment {
            name: "collective",
            paper_ref: "E32: blackboard vs ring all-reduce wall time on the real transport",
            run: crate::collective_bench::collective,
        },
        Experiment {
            name: "chaos",
            paper_ref: "E33: seeded chaos sweep — transient faults retried, fatal ones restored",
            run: crate::chaos::chaos,
        },
        Experiment {
            name: "serving",
            paper_ref: "E34: continuous-batched KV-cached serving over a real tensor group",
            run: crate::serving::serving,
        },
        Experiment {
            name: "elastic",
            paper_ref: "E35: elastic (p,t,d) shrink-and-continue vs restart-at-full goodput",
            run: crate::elastic_bench::elastic,
        },
        Experiment {
            name: "analyze",
            paper_ref: "E36: cross-rank critical path, time attribution, what-if bounds",
            run: crate::analyze::analyze,
        },
    ]
}

fn run_ptdp(
    model: GptConfig,
    n_gpus: usize,
    pc: ParallelConfig,
    enforce_memory: bool,
) -> Result<megatron_core::IterationReport, megatron_core::RunError> {
    let cluster = ClusterSpec::selene(n_gpus);
    let mut run = TrainingRun::ptdp(model, cluster, pc);
    run.options.enforce_memory = enforce_memory;
    run.simulate()
}

/// Figure 1: model sizes and training compute of the evaluated family.
pub fn fig1() -> String {
    let mut t = Table::new(["model", "params (B)", "train FLOPs/iter @B=1536 (PF)"]);
    for row in zoo::table1() {
        t.row([
            row.config.name.clone(),
            format!("{:.1}", row.config.params_eq2() / 1e9),
            format!("{:.1}", row.config.flops_per_iteration_eq3(1536) / 1e15),
        ]);
    }
    t.render()
}

/// Eqs. 2 and 3 cross-checked against exact enumeration.
pub fn formulas() -> String {
    let mut t = Table::new(["model", "P exact", "P eq2", "rel err", "F eq3 (B=512, EF)"]);
    for row in zoo::table1() {
        let exact = row.config.params_exact() as f64;
        let eq2 = row.config.params_eq2();
        t.row([
            row.config.name.clone(),
            format!("{exact:.4e}"),
            format!("{eq2:.4e}"),
            format!("{:.2e}", (exact - eq2).abs() / exact),
            format!("{:.3}", row.config.flops_per_iteration_eq3(512) / 1e18),
        ]);
    }
    t.render()
}

/// Figures 3-4: schedule timelines for p=4, m=8 (and v=2 interleaved).
pub fn gantt() -> String {
    let mut out = String::new();
    for (label, kind) in [
        ("GPipe (Figure 3)", ScheduleKind::GPipe),
        (
            "1F1B / PipeDream-Flush (Figure 4, top)",
            ScheduleKind::OneFOneB,
        ),
        (
            "Interleaved 1F1B, v=2 (Figure 4, bottom)",
            ScheduleKind::Interleaved { chunks: 2 },
        ),
    ] {
        let sched = kind.build(4, 8);
        let replay = sched.replay(1.0, 2.0).expect("valid schedule");
        out.push_str(&format!(
            "{label}: bubble fraction measured {:.4}, analytical {:.4}\n",
            replay.bubble_fraction,
            sched.analytical_bubble_fraction()
        ));
        out.push_str(&megatron_schedule::render_replay(&replay, 4, 96));
        out.push('\n');
    }
    out
}

/// Figure 6: pipeline bubble size vs data-parallel size.
pub fn fig6() -> String {
    let mut t = Table::new(["n", "b'=B/b", "d", "bubble fraction (n-d)/b'"]);
    for (n, b_prime) in [(32u64, 32u64), (32, 128), (128, 128), (128, 512)] {
        for d in [1u64, 2, 4, 8, 16, 32, 64, 128] {
            if d > n || n % d != 0 {
                continue;
            }
            t.row([
                n.to_string(),
                b_prime.to_string(),
                d.to_string(),
                format!(
                    "{:.4}",
                    analysis::bubble_fraction_vs_data_parallel(n, d, b_prime)
                ),
            ]);
        }
    }
    t.render()
}

/// Figure 7: single-GPU throughput vs microbatch size for the 1B model.
pub fn fig7() -> String {
    let model = zoo::gpt_1b_microbench();
    let cluster = ClusterSpec::selene(8);
    let mut t = Table::new(["microbatch b", "teraFLOP/s per GPU", "vs b=1"]);
    let mut base = 0.0;
    for b in [1u64, 2, 4, 8, 16] {
        let (tf, tb) = heuristics::stage_times(&model, &cluster, 1, 1, b, true, true);
        // One microbatch of b samples forward+backward; FLOPs per Eq. 3.
        let flops = model.flops_per_iteration_eq3(b);
        let tput = flops / (tf + tb) / 1e12;
        if b == 1 {
            base = tput;
        }
        t.row([
            b.to_string(),
            format!("{tput:.1}"),
            format!("{:.2}x", tput / base),
        ]);
    }
    t.render() + "paper: throughput increases by up to 1.3x with larger microbatch size\n"
}

/// Figure 8: Eq. 1 normalized estimated throughput vs microbatch size,
/// (p,t) = (8,8), batch sizes 128 and 512.
pub fn fig8() -> String {
    let model = zoo::gpt_1b_microbench();
    let cluster = ClusterSpec::selene(64);
    let (p, t, d) = (8u64, 8u64, 1u64);
    let mut out = Table::new(["batch", "microbatch b", "normalized throughput"]);
    for batch in [128u64, 512] {
        let b_prime = batch / d;
        let times: Vec<(u64, f64)> = [1u64, 2, 4, 8, 16]
            .iter()
            .filter(|&&b| b_prime % b == 0)
            .map(|&b| {
                let (tf, tb) = heuristics::stage_times(&model, &cluster, p, t, b, true, true);
                let time = analysis::eq1_batch_time(b_prime, b, p, |_| tf, |_| tb);
                (b, batch as f64 / time)
            })
            .collect();
        let max = times.iter().fold(0.0f64, |a, &(_, x)| a.max(x));
        for (b, tput) in times {
            out.row([
                batch.to_string(),
                b.to_string(),
                format!("{:.3}", tput / max),
            ]);
        }
    }
    out.render() + "paper: optimal microbatch size is 4 for both batch sizes\n"
}

/// Table 1: weak scaling from 1.7B to 1T parameters.
pub fn table1() -> String {
    let mut t = Table::new([
        "model", "(t,p,d)", "GPUs", "batch", "TF/s/GPU", "paper", "% peak", "paper", "agg PF/s",
        "paper",
    ]);
    for row in zoo::table1() {
        let d = row.n_gpus / (row.tensor_parallel * row.pipeline_parallel);
        // The paper uses the interleaved schedule with scatter/gather for
        // Table 1; interleave with v=2 when the pipeline is deep enough and
        // divisibility allows.
        let mut pc = ParallelConfig::new(
            row.pipeline_parallel,
            row.tensor_parallel,
            d,
            microbatch_for(&row),
            row.batch_size,
        );
        let m = pc.microbatches();
        if row.pipeline_parallel > 1
            && m.is_multiple_of(row.pipeline_parallel)
            && row.config.num_layers % (row.pipeline_parallel * 2) == 0
        {
            pc = pc.with_chunks(2);
        }
        match run_ptdp(row.config.clone(), row.n_gpus as usize, pc, true) {
            Ok(r) => t.row([
                row.config.name.clone(),
                format!("({},{},{})", row.tensor_parallel, row.pipeline_parallel, d),
                row.n_gpus.to_string(),
                row.batch_size.to_string(),
                format!("{:.0}", r.tflops_per_gpu),
                format!("{:.0}", row.paper_tflops_per_gpu),
                format!("{:.0}%", r.pct_of_peak),
                format!("{:.0}%", row.paper_pct_peak),
                format!("{:.1}", r.aggregate_pflops),
                format!("{:.1}", row.paper_aggregate_pflops),
            ]),
            Err(e) => t.row([
                row.config.name.clone(),
                format!("({},{},{})", row.tensor_parallel, row.pipeline_parallel, d),
                row.n_gpus.to_string(),
                row.batch_size.to_string(),
                format!("ERR {e}"),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ]),
        }
    }
    t.render()
}

/// Microbatch sizes for Table 1 rows: the paper doesn't list them; large
/// models used b=1, smaller models larger b (§5.4.3 and Table 2 use b=1 at
/// scale). We use the heuristic's Eq.-1-optimal choice among {1,2,4,8}.
fn microbatch_for(row: &zoo::Table1Row) -> u64 {
    let cluster = ClusterSpec::selene(row.n_gpus as usize);
    let d = row.n_gpus / (row.tensor_parallel * row.pipeline_parallel);
    let b_prime = row.batch_size / d;
    let mut best = (1u64, f64::INFINITY);
    for b in [1u64, 2, 4, 8] {
        if !b_prime.is_multiple_of(b) {
            continue;
        }
        let pc = ParallelConfig::new(
            row.pipeline_parallel,
            row.tensor_parallel,
            d,
            b,
            row.batch_size,
        );
        if pc
            .validate_for_model(&row.config, row.n_gpus, cluster.gpu.mem_capacity, true)
            .is_err()
        {
            continue;
        }
        let (tf, tb) = heuristics::stage_times(
            &row.config,
            &cluster,
            row.pipeline_parallel,
            row.tensor_parallel,
            b,
            true,
            true,
        );
        let time = analysis::eq1_batch_time(b_prime, b, row.pipeline_parallel, |_| tf, |_| tb);
        if time < best.1 {
            best = (b, time);
        }
    }
    best.0
}

/// Table 2 / Figure 10: PTD-P vs ZeRO-3.
pub fn table2() -> String {
    use megatron_zero::ZeroRun;
    let mut t = Table::new([
        "scheme",
        "model",
        "MP size",
        "batch",
        "GPUs",
        "b",
        "TF/s/GPU",
        "paper",
        "days/300B",
        "paper",
    ]);
    // (model, batch, gpus, microbatch, paper TF/s, paper days)
    let zero_rows: [(GptConfig, u64, u64, u64, f64, f64); 6] = [
        (zoo::gpt3_175b(), 1536, 384, 4, 144.0, 90.0),
        (zoo::gpt3_175b(), 1536, 768, 2, 88.0, 74.0),
        (zoo::gpt3_175b(), 1536, 1536, 1, 44.0, 74.0),
        (zoo::gpt_530b(), 2560, 640, 4, 138.0, 169.0),
        (zoo::gpt_530b(), 2240, 1120, 2, 98.0, 137.0),
        (zoo::gpt_530b(), 2240, 2240, 1, 48.0, 140.0),
    ];
    for (model, batch, gpus, b, paper_tf, paper_days) in zero_rows {
        let cluster = ClusterSpec::selene(gpus as usize);
        let run = ZeroRun::new(model.clone(), cluster, batch, b);
        let r = run.simulate();
        let days = model.training_time_eq4(300e9, gpus as f64, r.tflops_per_gpu * 1e12) / 86400.0;
        t.row([
            "ZeRO-3".to_string(),
            model.name.clone(),
            "1".to_string(),
            batch.to_string(),
            gpus.to_string(),
            b.to_string(),
            format!("{:.0}", r.tflops_per_gpu),
            format!("{paper_tf:.0}"),
            format!("{days:.0}"),
            format!("{paper_days:.0}"),
        ]);
    }
    // PTD-P rows: (model, mp (t,p), batch, gpus, paper TF/s, paper days)
    let ptdp_rows: [(GptConfig, u64, u64, u64, u64, f64, f64); 6] = [
        (zoo::gpt3_175b(), 8, 12, 1536, 384, 153.0, 84.0),
        (zoo::gpt3_175b(), 8, 12, 1536, 768, 149.0, 43.0),
        (zoo::gpt3_175b(), 8, 12, 1536, 1536, 141.0, 23.0),
        (zoo::gpt_530b(), 8, 35, 2240, 560, 171.0, 156.0),
        (zoo::gpt_530b(), 8, 35, 2240, 1120, 167.0, 80.0),
        (zoo::gpt_530b(), 8, 35, 2240, 2240, 159.0, 42.0),
    ];
    for (model, tp, pp, batch, gpus, paper_tf, paper_days) in ptdp_rows {
        let d = gpus / (tp * pp);
        let pc = ParallelConfig::new(pp, tp, d, 1, batch);
        let cell = match run_ptdp(model.clone(), gpus as usize, pc, true) {
            Ok(r) => {
                let days =
                    model.training_time_eq4(300e9, gpus as f64, r.tflops_per_gpu * 1e12) / 86400.0;
                (format!("{:.0}", r.tflops_per_gpu), format!("{days:.0}"))
            }
            Err(e) => (format!("ERR {e}"), String::new()),
        };
        t.row([
            "PTD-P".to_string(),
            model.name.clone(),
            (tp * pp).to_string(),
            batch.to_string(),
            gpus.to_string(),
            "1".to_string(),
            cell.0,
            format!("{paper_tf:.0}"),
            cell.1,
            format!("{paper_days:.0}"),
        ]);
    }
    t.render()
}

/// Figure 11: pipeline-parallel weak scaling (batch 8 vs 128).
pub fn fig11() -> String {
    let mut t = Table::new(["p", "model", "batch", "TF/s/GPU", "idle frac"]);
    for p in [1u64, 2, 4, 8] {
        let model = zoo::pipeline_weak_scaling(p);
        for batch in [8u64, 128] {
            let pc = ParallelConfig::new(p, 8, 1, 1, batch);
            match run_ptdp(model.clone(), (8 * p) as usize, pc, false) {
                Ok(r) => t.row([
                    p.to_string(),
                    model.name.clone(),
                    batch.to_string(),
                    format!("{:.0}", r.tflops_per_gpu),
                    format!("{:.3}", r.measured_idle_fraction),
                ]),
                Err(e) => t.row([
                    p.to_string(),
                    model.name.clone(),
                    batch.to_string(),
                    format!("ERR {e}"),
                    String::new(),
                ]),
            }
        }
    }
    t.render() + "paper: higher batch size scales better since the pipeline bubble is amortized\n"
}

/// Figure 12: interleaved vs non-interleaved 1F1B on GPT-3 175B, 96 GPUs.
pub fn fig12() -> String {
    let model = zoo::gpt3_175b();
    let (tp, pp) = (8u64, 12u64);
    let mut t = Table::new(["batch", "non-interleaved TF/s", "interleaved TF/s", "gain"]);
    for batch in [12u64, 24, 36, 48, 60] {
        let base = ParallelConfig::new(pp, tp, 1, 1, batch);
        let inter = base.with_chunks(2);
        let rb = run_ptdp(model.clone(), 96, base, false);
        let ri = run_ptdp(model.clone(), 96, inter, false);
        match (rb, ri) {
            (Ok(rb), Ok(ri)) => t.row([
                batch.to_string(),
                format!("{:.0}", rb.tflops_per_gpu),
                format!("{:.0}", ri.tflops_per_gpu),
                format!(
                    "{:+.1}%",
                    100.0 * (ri.tflops_per_gpu / rb.tflops_per_gpu - 1.0)
                ),
            ]),
            (rb, ri) => t.row([
                batch.to_string(),
                rb.map(|r| format!("{:.0}", r.tflops_per_gpu))
                    .unwrap_or_else(|e| format!("ERR {e}")),
                ri.map(|r| format!("{:.0}", r.tflops_per_gpu))
                    .unwrap_or_else(|e| format!("ERR {e}")),
                String::new(),
            ]),
        }
    }
    t.render() + "paper: interleaving wins at small batch; the gap closes as batch grows\n"
}

/// Figure 13: (t, p) combinations for the 162.2B model on 64 GPUs.
pub fn fig13() -> String {
    let model = zoo::gpt_162b();
    let mut t = Table::new(["(p,t)", "batch", "TF/s/GPU", "note"]);
    for (p, tp) in [(32u64, 2u64), (16, 4), (8, 8), (4, 16), (2, 32)] {
        for batch in [32u64, 128] {
            let pc = ParallelConfig::new(p, tp, 1, 1, batch);
            let note = if tp > 8 { "t spans nodes" } else { "" };
            match run_ptdp(model.clone(), 64, pc, false) {
                Ok(r) => t.row([
                    format!("({p},{tp})"),
                    batch.to_string(),
                    format!("{:.0}", r.tflops_per_gpu),
                    note.to_string(),
                ]),
                Err(e) => t.row([
                    format!("({p},{tp})"),
                    batch.to_string(),
                    format!("ERR {e}"),
                    note.to_string(),
                ]),
            }
        }
    }
    t.render() + "paper: peak at (t,p)=(8,8) - tensor parallelism within a node, pipeline across\n"
}

/// Figure 14: (p, d) combinations for the 5.9B model on 64 GPUs, t = 1
/// ("models that fit when the model-parallel size is only 2" — pipeline
/// parallelism alone provides the model-parallel factor here).
pub fn fig14() -> String {
    let model = zoo::gpt_5p9b();
    let mut t = Table::new(["(p,d)", "batch", "TF/s/GPU"]);
    for (p, d) in [(2u64, 32u64), (4, 16), (8, 8), (16, 4), (32, 2)] {
        for batch in [32u64, 128, 512] {
            let pc = ParallelConfig::new(p, 1, d, 1, batch);
            match run_ptdp(model.clone(), 64, pc, false) {
                Ok(r) => t.row([
                    format!("({p},{d})"),
                    batch.to_string(),
                    format!("{:.0}", r.tflops_per_gpu),
                ]),
                Err(e) => t.row([format!("({p},{d})"), batch.to_string(), format!("ERR {e}")]),
            }
        }
    }
    t.render() + "paper: throughput decreases as the pipeline-parallel size rises; use data\nparallelism to scale out and pipeline only to fit the model\n"
}

/// Figure 15: (t, d) combinations for the 5.9B model on 64 GPUs, p = 1.
pub fn fig15() -> String {
    let model = zoo::gpt_5p9b();
    let mut t = Table::new(["(t,d)", "batch", "TF/s/GPU", "note"]);
    for (tp, d) in [(2u64, 32u64), (4, 16), (8, 8), (16, 4), (32, 2)] {
        for batch in [32u64, 128, 512] {
            let pc = ParallelConfig::new(1, tp, d, 1, batch);
            let note = if tp > 8 { "t spans nodes" } else { "" };
            match run_ptdp(model.clone(), 64, pc, false) {
                Ok(r) => t.row([
                    format!("({tp},{d})"),
                    batch.to_string(),
                    format!("{:.0}", r.tflops_per_gpu),
                    note.to_string(),
                ]),
                Err(e) => t.row([
                    format!("({tp},{d})"),
                    batch.to_string(),
                    format!("ERR {e}"),
                    note.to_string(),
                ]),
            }
        }
    }
    t.render() + "paper: throughput falls as t grows (all-to-all per microbatch, smaller GEMMs)\n"
}

/// Figure 16: microbatch size sweep for the 91B model, (t,p)=(8,8).
pub fn fig16() -> String {
    let model = zoo::gpt_91b();
    let mut t = Table::new(["batch", "microbatch", "TF/s/GPU"]);
    for batch in [128u64, 512] {
        for b in [1u64, 2, 4, 8] {
            let pc = ParallelConfig::new(8, 8, 1, b, batch);
            match run_ptdp(model.clone(), 64, pc, false) {
                Ok(r) => t.row([
                    batch.to_string(),
                    b.to_string(),
                    format!("{:.0}", r.tflops_per_gpu),
                ]),
                Err(e) => t.row([batch.to_string(), b.to_string(), format!("ERR {e}")]),
            }
        }
    }
    t.render() + "paper: best microbatch size is 2 for this model (model-dependent)\n"
}

/// Figure 17: throughput with and without activation recomputation,
/// 145B model, (t,p)=(8,16), 128 GPUs. Memory is judged against the
/// practically usable fraction of the 80 GB device (see
/// `megatron_parallel::heuristics::USABLE_MEMORY_FRACTION`), which is what
/// makes the paper's non-recompute line stop at moderate batch sizes.
pub fn fig17() -> String {
    let model = zoo::gpt_145b();
    let usable =
        (80.0 * (1u64 << 30) as f64 * megatron_parallel::heuristics::USABLE_MEMORY_FRACTION) as u64;
    let mut t = Table::new(["batch", "recompute", "seq/s", "memory GiB/GPU"]);
    for batch in [1u64, 2, 4, 8, 16, 32, 64, 128] {
        for recompute in [false, true] {
            let pc = ParallelConfig::new(16, 8, 1, 1, batch);
            let cluster = ClusterSpec::selene(128);
            let mut run = TrainingRun::ptdp(model.clone(), cluster, pc);
            run.options.recompute = recompute;
            match run.simulate() {
                Ok(r) if r.memory_bytes_per_gpu > usable => t.row([
                    batch.to_string(),
                    recompute.to_string(),
                    "OOM".to_string(),
                    format!(
                        "{} (> {} usable)",
                        r.memory_bytes_per_gpu >> 30,
                        usable >> 30
                    ),
                ]),
                Ok(r) => t.row([
                    batch.to_string(),
                    recompute.to_string(),
                    format!("{:.2}", r.sequences_per_second),
                    format!("{}", r.memory_bytes_per_gpu >> 30),
                ]),
                Err(e) => t.row([
                    batch.to_string(),
                    recompute.to_string(),
                    format!("ERR {e}"),
                    String::new(),
                ]),
            }
        }
    }
    t.render()
        + "paper: recomputation costs up to 33% at small batch but enables large batches\nwhere throughput is up to 2x the best non-recompute point\n"
}

/// Figure 18: scatter/gather optimization, GPT-3 175B, 96 GPUs, interleaved.
pub fn fig18() -> String {
    let model = zoo::gpt3_175b();
    let mut t = Table::new(["batch", "unoptimized TF/s", "scatter/gather TF/s", "gain"]);
    for batch in [12u64, 24, 36, 48, 60] {
        // 96 layers over 12 devices leave 8 layers per device; the paper's
        // communication-intensive setting interleaves them as 8 one-layer
        // chunks.
        let pc = ParallelConfig::new(12, 8, 1, 1, batch).with_chunks(8);
        let cluster = ClusterSpec::selene(96);
        let mut with = TrainingRun::ptdp(model.clone(), cluster, pc);
        with.options.enforce_memory = false;
        let mut without = with.clone();
        without.options.scatter_gather = false;
        match (without.simulate(), with.simulate()) {
            (Ok(a), Ok(b)) => t.row([
                batch.to_string(),
                format!("{:.0}", a.tflops_per_gpu),
                format!("{:.0}", b.tflops_per_gpu),
                format!(
                    "{:+.1}%",
                    100.0 * (b.tflops_per_gpu / a.tflops_per_gpu - 1.0)
                ),
            ]),
            _ => t.row([batch.to_string(), "ERR".into(), "ERR".into(), String::new()]),
        }
    }
    t.render() + "paper: up to 11% improvement for communication-intensive schedules\n"
}

/// §5.8: operator fusion on the 175B and 530B models.
pub fn fusion() -> String {
    let mut t = Table::new(["model", "unfused TF/s", "fused TF/s", "gain", "paper"]);
    let cases = [
        (
            zoo::gpt3_175b(),
            12u64,
            8u64,
            1536u64,
            96usize * 16,
            "19% (113->135)",
        ),
        (zoo::gpt_530b(), 35, 8, 2520, 2520, "11% (133->148)"),
    ];
    for (model, pp, tp, batch, gpus, paper) in cases {
        let d = gpus as u64 / (pp * tp);
        let pc = ParallelConfig::new(pp, tp, d, 1, batch);
        let cluster = ClusterSpec::selene(gpus);
        let mut fused = TrainingRun::ptdp(model.clone(), cluster, pc);
        fused.options.enforce_memory = false;
        let mut unfused = fused.clone();
        unfused.options.fused = false;
        match (unfused.simulate(), fused.simulate()) {
            (Ok(a), Ok(b)) => t.row([
                model.name.clone(),
                format!("{:.0}", a.tflops_per_gpu),
                format!("{:.0}", b.tflops_per_gpu),
                format!(
                    "{:+.1}%",
                    100.0 * (b.tflops_per_gpu / a.tflops_per_gpu - 1.0)
                ),
                paper.to_string(),
            ]),
            _ => t.row([
                model.name.clone(),
                "ERR".into(),
                "ERR".into(),
                "".into(),
                paper.into(),
            ]),
        }
    }
    t.render()
}

/// §5.9: effective bisection bandwidths on the trillion-parameter run.
pub fn bisection() -> String {
    let model = zoo::gpt_1t();
    // Table 1's trillion-parameter run uses the interleaved schedule.
    let pc = ParallelConfig::new(64, 8, 6, 1, 3072).with_chunks(2);
    match run_ptdp(model, 3072, pc, true) {
        Ok(r) => format!(
            "pipeline p2p inter-node volume/iteration: {:.1} TB; effective bandwidth \
             {:.0} GB/s (paper: 892 GB/s)\n\
             data-parallel all-reduce inter-node volume/iteration: {:.1} TB; rate while \
             communicating {:.1} TB/s (paper: 12.9 TB/s; our simulated rings sustain \
             near-peak HCA bandwidth, so the while-communicating rate is higher)\n\
             iteration time: {:.2} s\n",
            r.comm.pipeline_bisection_bytes / 1e12,
            r.pipeline_bisection_bandwidth() / 1e9,
            r.comm.data_parallel_bisection_bytes / 1e12,
            r.data_parallel_bisection_bandwidth() / 1e12,
            r.iteration_time
        ),
        Err(e) => format!("ERR {e}\n"),
    }
}

/// §5.10: checkpoint I/O for the trillion-parameter model.
pub fn checkpoint() -> String {
    let io = CheckpointIo::estimate(&zoo::gpt_1t(), &FilesystemSpec::selene(), 384);
    format!(
        "checkpoint size: {:.1} TB (paper: 13.8 TB)\n\
         load: {:.1} s at {:.2} TB/s read (paper: peak 1 TB/s)\n\
         save: {:.1} s at {:.0} GB/s write (paper: 273 GB/s, 40% of peak)\n",
        io.bytes as f64 / 1e12,
        io.load_seconds,
        io.read_bandwidth / 1e12,
        io.save_seconds,
        io.write_bandwidth / 1e9,
    )
}

/// §5.1: training-time estimates via Eq. 4.
pub fn traintime() -> String {
    let mut t = Table::new(["model", "tokens", "GPUs", "TF/s/GPU", "days (eq4)", "paper"]);
    let gpt3 = zoo::gpt3_175b();
    t.row([
        gpt3.name.clone(),
        "300B".into(),
        "1024".into(),
        "140".into(),
        format!(
            "{:.0}",
            gpt3.training_time_eq4(300e9, 1024.0, 140e12) / 86400.0
        ),
        "34".into(),
    ]);
    let one_t = zoo::gpt_1t();
    t.row([
        one_t.name.clone(),
        "450B".into(),
        "3072".into(),
        "163".into(),
        format!(
            "{:.0}",
            one_t.training_time_eq4(450e9, 3072.0, 163e12) / 86400.0
        ),
        "84".into(),
    ]);
    t.render()
}

/// §3 takeaways: the heuristic configurator vs the paper's Table 1 choices.
pub fn heuristics_exp() -> String {
    let mut t = Table::new(["model", "paper (t,p)", "heuristic (t,p,d,b)"]);
    for row in zoo::table1() {
        let cluster = ClusterSpec::selene(row.n_gpus as usize);
        match heuristics::suggest_config(&row.config, &cluster, row.batch_size) {
            Ok(c) => t.row([
                row.config.name.clone(),
                format!("({},{})", row.tensor_parallel, row.pipeline_parallel),
                format!("({},{},{},{})", c.tensor, c.pipeline, c.data, c.microbatch),
            ]),
            Err(e) => t.row([
                row.config.name.clone(),
                format!("({},{})", row.tensor_parallel, row.pipeline_parallel),
                format!("ERR {e}"),
            ]),
        }
    }
    t.render()
}

/// §1's motivating claim: "training GPT-3 with 175 billion parameters would
/// require approximately 288 years with a single V100 NVIDIA GPU".
pub fn v100_years() -> String {
    use megatron_cluster::{GpuSpec, NodeSpec};
    let model = zoo::gpt3_175b();
    let cluster = ClusterSpec::custom(GpuSpec::v100_32gb(), NodeSpec::dgx_a100(), 1);
    // Per-sample compute throughput of one V100 (ignoring the impossibility
    // of fitting the model — the paper's thought experiment does too).
    let (tf, tb) = heuristics::stage_times(&model, &cluster, 1, 1, 1, true, true);
    let x = model.flops_per_iteration_eq3(1) / (tf + tb);
    let secs = model.training_time_exact(300e9, 1, 1.0, x);
    format!(
        "single V100 sustained throughput: {:.0} teraFLOP/s ({:.0}% of 125 peak)\n\
         GPT-3 (175B, 300B tokens) on ONE V100: {:.0} years (paper: ~288 years)\n",
        x / 1e12,
        100.0 * x / 125e12,
        secs / (86400.0 * 365.0),
    )
}

/// Design-choice ablations beyond the paper's figures (DESIGN.md §5):
/// rank-placement, blocking-p2p, and interleaving-degree sensitivity.
pub fn ablations() -> String {
    let mut out = String::new();

    // 1. Tensor-parallel placement: t within a node vs spanning nodes for
    //    the same (t,p) product (Figure 13's mechanism isolated).
    let model = zoo::gpt_162b();
    let mut t = Table::new(["ablation", "config", "TF/s/GPU"]);
    for (label, tp, pp) in [("t inside node", 8u64, 8u64), ("t spans 2 nodes", 16, 4)] {
        let pc = ParallelConfig::new(pp, tp, 1, 1, 32);
        match run_ptdp(model.clone(), 64, pc, false) {
            Ok(r) => t.row([
                "tensor placement".to_string(),
                format!("(t={tp}, p={pp}) {label}"),
                format!("{:.0}", r.tflops_per_gpu),
            ]),
            Err(e) => t.row(["tensor placement".into(), label.into(), format!("ERR {e}")]),
        }
    }

    // 2. Blocking vs idealized fully-overlapped pipeline p2p.
    let pc = ParallelConfig::new(12, 8, 1, 1, 24).with_chunks(8);
    let cluster = ClusterSpec::selene(96);
    let mut blocking = TrainingRun::ptdp(zoo::gpt3_175b(), cluster, pc);
    blocking.options.enforce_memory = false;
    let mut overlapped = blocking.clone();
    overlapped.options.blocking_p2p = false;
    for (label, run) in [
        ("synchronous sends (real)", &blocking),
        ("ideal overlap", &overlapped),
    ] {
        match run.simulate() {
            Ok(r) => t.row([
                "p2p blocking".to_string(),
                label.to_string(),
                format!("{:.0}", r.tflops_per_gpu),
            ]),
            Err(e) => t.row(["p2p blocking".into(), label.into(), format!("ERR {e}")]),
        }
    }

    // 3. Interleaving degree v: bubble shrinks as 1/v but communication
    //    grows as v — a sweet spot appears.
    let model = zoo::gpt3_175b(); // 96 layers / 12 devices = up to v=8
    for v in [1u64, 2, 4, 8] {
        let pc = ParallelConfig::new(12, 8, 1, 1, 24).with_chunks(v);
        match run_ptdp(model.clone(), 96, pc, false) {
            Ok(r) => t.row([
                "interleave degree".to_string(),
                format!("v={v} (bubble {:.3})", r.analytical_bubble_fraction),
                format!("{:.0}", r.tflops_per_gpu),
            ]),
            Err(e) => t.row([
                "interleave degree".into(),
                format!("v={v}"),
                format!("ERR {e}"),
            ]),
        }
    }

    out.push_str(&t.render());
    out
}

/// Export a Chrome `about:tracing` timeline of one simulated iteration
/// (open `chrome://tracing` or Perfetto and load the file).
pub fn trace() -> String {
    let model = zoo::gpt_5p9b();
    let pc = ParallelConfig::new(8, 2, 4, 1, 64);
    let run = TrainingRun::ptdp(model, ClusterSpec::selene(64), pc);
    match run.simulate_traced() {
        Ok((report, trace)) => {
            let path = "trace_gpt5.9b_p8.json";
            match std::fs::write(path, &trace) {
                Ok(()) => format!(
                    "wrote {path} ({} KiB, {:.2} s simulated iteration)\nopen in chrome://tracing or ui.perfetto.dev\n",
                    trace.len() / 1024,
                    report.iteration_time
                ),
                Err(e) => format!("could not write {path}: {e}\n"),
            }
        }
        Err(e) => format!("ERR {e}\n"),
    }
}

/// Goodput vs failure rate for the Table 1 zoo: each row's §5.10
/// checkpoint costs composed with an MTBF failure model, evaluated at the
/// row's Young/Daly checkpoint interval. A second section shows what a
/// seeded week of faults on the 1T run's 3072 GPUs actually looks like.
pub fn faults() -> String {
    use megatron_fault::{FaultPlan, FaultRates, GoodputModel};
    let fs = FilesystemSpec::selene();
    let relaunch_s = 120.0; // job requeue + process launch on top of §5.10 load
    let mut t = Table::new([
        "model",
        "GPUs",
        "save s",
        "MTBF",
        "ckpt every",
        "goodput",
        "ckpt ovh",
        "lost work",
    ]);
    for row in zoo::table1() {
        for (label, mtbf_h) in [("6h", 6.0), ("24h", 24.0), ("1wk", 168.0)] {
            let m = GoodputModel::for_table1_row(&row, &fs, mtbf_h * 3600.0, relaunch_s);
            let tau = m.young_daly_interval();
            t.row([
                row.config.name.clone(),
                row.n_gpus.to_string(),
                format!("{:.1}", m.save_s),
                label.to_string(),
                format!("{:.1} min", tau / 60.0),
                format!("{:.1}%", 100.0 * m.goodput(tau)),
                format!("{:.2}%", 100.0 * m.checkpoint_overhead_fraction(tau)),
                format!("{:.2}%", 100.0 * m.lost_work_fraction(tau)),
            ]);
        }
    }
    let mut out = t.render();
    out.push_str(
        "goodput falls monotonically as MTBF shrinks; bigger checkpoints (save s)\n\
         force longer intervals and lose more work per failure\n\n",
    );

    // One concrete week on the trillion-parameter run: a seeded plan of
    // every fault class, as the injector would lower it into the simulator.
    let week = 7.0 * 24.0 * 3600.0;
    let rates = FaultRates {
        gpu_death_mtbf_s: 24.0 * 3600.0,
        node_death_mtbf_s: 7.0 * 24.0 * 3600.0,
        link_degrade_mtbf_s: 12.0 * 3600.0,
        link_flap_mtbf_s: 24.0 * 3600.0,
        straggler_mtbf_s: 6.0 * 3600.0,
    };
    let plan = FaultPlan::generate(0xfa11, 3072, week, &rates);
    let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
    for ev in &plan.events {
        *counts.entry(ev.kind.label()).or_default() += 1;
    }
    out.push_str(&format!(
        "seeded fault plan, 1T run (3072 GPUs), one week, cluster-wide MTBFs\n\
         (gpu-death 24h, node-death 1wk, link-degrade 12h, link-flap 24h, straggler 6h):\n\
         {} events total: {}\n",
        plan.events.len(),
        counts
            .iter()
            .map(|(k, v)| format!("{v} {k}"))
            .collect::<Vec<_>>()
            .join(", "),
    ));
    out
}

/// Young/Daly √(2δM) checkpoint interval vs the brute-force optimum for
/// the trillion-parameter run at §5.10 checkpoint costs.
pub fn ckpt_interval() -> String {
    use megatron_fault::GoodputModel;
    let rows = zoo::table1();
    let row = rows.last().expect("Table 1 is non-empty"); // 1T, 3072 GPUs
    let fs = FilesystemSpec::selene();
    let mut t = Table::new([
        "MTBF",
        "Young/Daly",
        "brute force",
        "interval err",
        "goodput (YD)",
        "goodput (BF)",
    ]);
    for (label, mtbf_h) in [("1h", 1.0), ("4h", 4.0), ("24h", 24.0), ("1wk", 168.0)] {
        let m = GoodputModel::for_table1_row(row, &fs, mtbf_h * 3600.0, 120.0);
        let yd = m.young_daly_interval();
        let bf = m.optimal_interval_brute_force(10.0, m.mtbf_s, 20_000);
        t.row([
            label.to_string(),
            format!("{:.1} min", yd / 60.0),
            format!("{:.1} min", bf / 60.0),
            format!("{:+.1}%", 100.0 * (yd / bf - 1.0)),
            format!("{:.3}%", 100.0 * m.goodput(yd)),
            format!("{:.3}%", 100.0 * m.goodput(bf)),
        ]);
    }
    t.render()
        + "the analytic interval lands within a few percent of the sweep and its\n\
           goodput within 0.2% — the optimum is flat, which is why √(2δM) is the\n\
           operational rule of thumb\n"
}

/// E30: the reliability loop, end-to-end on the real trainer. A seeded
/// `FaultPlan` kills ranks mid-iteration; the `Supervisor` restores each
/// time from the durable sharded checkpoint store and resumes; the final
/// losses must match a fault-free run bit-for-bit; and the *measured*
/// goodput is cross-checked against the Young/Daly `GoodputModel`
/// parameterized by the run's own measured MTBF / save / restart costs.
pub fn recovery() -> String {
    use megatron_dist::{
        CheckpointStore, KillSwitch, PtdpSpec, PtdpTrainer, Supervisor, SupervisorConfig,
    };
    use megatron_fault::{FaultPlan, FaultRates, RecoveryMeasurement};
    use megatron_tensor::gpt::{GptModel, TinyGptConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::time::Duration;

    // A tiny but non-trivial job: 8 "GPUs" as (p=2, t=2, d=2) threads.
    let cfg = TinyGptConfig {
        vocab: 13,
        seq: 8,
        hidden: 32,
        heads: 4,
        layers: 2,
    };
    let iters = 24usize;
    let ckpt_every = 2usize;
    let spec = PtdpSpec::new(2, 2, 2);
    let mut rng = StdRng::seed_from_u64(0x5eed_e30);
    let master = GptModel::new(cfg, &mut rng);
    let batch = 64usize;
    let data: Vec<(Vec<usize>, Vec<usize>)> = (0..iters)
        .map(|_| {
            let toks = (0..batch * cfg.seq)
                .map(|_| rng.gen_range(0..cfg.vocab))
                .collect();
            let tgts = (0..batch * cfg.seq)
                .map(|_| rng.gen_range(0..cfg.vocab))
                .collect();
            (toks, tgts)
        })
        .collect();

    // Seeded fault plan: only GPU deaths, one fictional second per
    // iteration, cluster-wide MTBF of 8 "seconds" over a 24-iteration
    // horizon → ~3 expected deaths. Each death maps onto the rank whose
    // flat index matches the dead GPU, killed mid-iteration.
    let mut rates = FaultRates::none();
    rates.gpu_death_mtbf_s = 8.0;
    let (seed, plan) = (0u64..64)
        .map(|i| {
            let s = 0xe30 + i;
            (
                s,
                FaultPlan::generate(s, spec.world(), iters as f64, &rates),
            )
        })
        .find(|(_, p)| p.events.len() >= 2)
        .expect("some seed in [0xe30, 0xe30+64) draws >= 2 deaths");
    let kills: Vec<KillSwitch> = plan
        .events
        .iter()
        .map(|ev| KillSwitch {
            thread: spec.thread_key(ev.gpu % spec.world()),
            iteration: (ev.at_s as usize).clamp(1, iters - 1),
        })
        .collect();

    let mut out = String::new();
    let mut t = Table::new(["event", "at", "gpu", "kills thread", "at iteration"]);
    for (ev, k) in plan.events.iter().zip(&kills) {
        t.row([
            ev.kind.label().to_string(),
            format!("{:.1} s", ev.at_s),
            ev.gpu.to_string(),
            format!("{:?}", k.thread),
            k.iteration.to_string(),
        ]);
    }
    out.push_str(&format!(
        "seeded fault plan (seed {seed:#x}) on {} threads (p=2, t=2, d=2), {} iterations,\n\
         durable checkpoint every {} iterations:\n{}\n",
        spec.world(),
        iters,
        ckpt_every,
        t.render()
    ));

    // Reference: the same job, fault-free. Its step times give the clean
    // per-iteration cost over all 24 iterations (the supervisor's own
    // estimate only sees the iterations of the final attempt).
    let clean = PtdpTrainer::new(master.clone(), spec).train(&data);
    let clean_iter_s = {
        let mut per_iter = vec![0.0f64; iters];
        for samples in clean.step_times.values() {
            for s in samples {
                let slot = &mut per_iter[s.iteration];
                *slot = slot.max(s.seconds);
            }
        }
        per_iter.iter().sum::<f64>() / iters as f64
    };

    // The supervised run, through every kill.
    let root = std::env::temp_dir().join(format!("megatron-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = CheckpointStore::open(&root).expect("checkpoint store");
    let sup = Supervisor::new(
        master,
        spec,
        std::sync::Arc::clone(&store),
        SupervisorConfig {
            max_restarts: kills.len() + 2,
            checkpoint_every: ckpt_every,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(8),
            ..SupervisorConfig::default()
        },
    );
    let report = sup.run(&data, &kills);
    assert!(
        report.completed(),
        "supervisor gave up: {:?}",
        report.gave_up
    );

    let mut t = Table::new([
        "incident",
        "error",
        "resumed from",
        "lost iters",
        "restore",
        "backoff",
    ]);
    for inc in &report.incidents {
        t.row([
            format!("attempt {}", inc.attempt),
            format!("{}", inc.error),
            format!("iter {}", inc.resumed_from),
            inc.lost_iterations.to_string(),
            format!("{:.1} ms", 1e3 * inc.restore_s),
            format!("{:.1} ms", 1e3 * inc.backoff_s),
        ]);
    }
    out.push_str(&format!(
        "recovery timeline ({} attempts, zero manual intervention):\n{}\n",
        report.attempts,
        t.render()
    ));

    // Bit-identity against the fault-free run.
    let losses_ok = report.losses == clean.losses;
    let params_ok = report.final_params.as_ref() == Some(&clean.final_params);
    out.push_str(&format!(
        "final losses bit-identical to fault-free run: {}\n\
         final weights bit-identical to fault-free run: {}\n\n",
        if losses_ok { "yes" } else { "NO" },
        if params_ok { "yes" } else { "NO" },
    ));

    // Empirical goodput vs the analytic model fed with the run's own
    // measured MTBF, save cost, and restart cost. Detection/relaunch
    // overhead per incident is the failed attempt's wall time not
    // explained by executed iterations or checkpoint saves.
    let windows = store.save_windows();
    let save_s_total: f64 = windows.iter().map(|(_, s)| s).sum();
    let mean_save = save_s_total / windows.len().max(1) as f64;
    let mut detect_s_total = 0.0;
    let mut start = 0usize;
    for inc in &report.incidents {
        let executed = (inc.resumed_from + inc.lost_iterations).saturating_sub(start);
        let saves = executed / ckpt_every;
        // The dying rank gets through about half its op schedule, so each
        // incident also burned ~half an iteration of work — that belongs
        // to the model's τ/2 lost-work term, not to restart cost.
        let explained = (executed as f64 + 0.5) * clean_iter_s + saves as f64 * mean_save;
        detect_s_total += (inc.attempt_wall_s - explained).max(0.0);
        start = inc.resumed_from;
    }
    let meas = RecoveryMeasurement {
        wall_s: report.wall_s,
        n_iterations: report.iterations,
        clean_iter_s,
        n_failures: report.incidents.len(),
        lost_iterations: report.incidents.iter().map(|i| i.lost_iterations).sum(),
        restore_s_total: report.incidents.iter().map(|i| i.restore_s).sum(),
        backoff_s_total: report.incidents.iter().map(|i| i.backoff_s).sum(),
        detect_s_total,
        save_s_total,
        n_checkpoints: windows.len(),
        checkpoint_every_iters: ckpt_every,
    };
    let measured = meas.measured_goodput();
    let predicted = meas.predicted_goodput();
    let model = meas.to_model();
    let err = (measured - predicted).abs() / predicted.max(1e-12);
    out.push_str(&format!(
        "measured on this run: clean iteration {:.2} ms, save {:.2} ms,\n\
         MTBF {:.1} ms, restart {:.2} ms (restore + backoff + detection)\n\
         measured goodput:  {:.1}% ({} iterations of useful work in {:.1} ms wall)\n\
         predicted goodput: {:.1}% (Young/Daly model at tau = {:.1} ms)\n\
         agreement: {:.1}% {}\n",
        1e3 * meas.clean_iter_s,
        1e3 * mean_save,
        1e3 * model.mtbf_s,
        1e3 * model.restart_s,
        100.0 * measured,
        meas.n_iterations,
        1e3 * meas.wall_s,
        100.0 * predicted,
        1e3 * meas.interval_s(),
        100.0 * err,
        if err <= 0.10 {
            "(within the 10% acceptance band)"
        } else {
            "(OUTSIDE the 10% acceptance band)"
        },
    ));
    let _ = std::fs::remove_dir_all(&root);
    out
}

/// §6 "Sharded Data Parallelism" related work, quantified: the
/// memory-vs-communication ladder of ZeRO stages for GPT-3 on 384 GPUs.
pub fn zero_stages() -> String {
    use megatron_zero::{ZeroRun, ZeroStage};
    let model = zoo::gpt3_175b();
    let cluster = ClusterSpec::selene(384);
    let mut t = Table::new([
        "stage",
        "memory GiB/GPU",
        "comm s/iter",
        "TF/s/GPU",
        "fits 80 GB?",
    ]);
    for (name, stage) in [
        ("ZeRO-1 (optimizer shard)", ZeroStage::One),
        ("ZeRO-2 (+ gradient shard)", ZeroStage::Two),
        ("ZeRO-3 (+ parameter shard)", ZeroStage::Three),
        ("ZeRO-Infinity (NVMe offload)", ZeroStage::Infinity),
    ] {
        let r = ZeroRun::new(model.clone(), cluster.clone(), 1536, 4)
            .with_stage(stage)
            .simulate();
        t.row([
            name.to_string(),
            format!("{}", r.memory_bytes_per_gpu >> 30),
            format!("{:.1}", r.comm_time),
            format!("{:.0}", r.tflops_per_gpu),
            if r.memory_bytes_per_gpu <= 80 * (1 << 30) {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
    }
    t.render()
        + "stages 1-2 cannot even hold a 175B model (replicated fp16 parameters);\nstage 3 fits but pays 1.5x the parameter traffic; Infinity fits anywhere and\npays the NVMe bill — 'a small number of GPUs ... results in unrealistic\ntraining times' (section 6)\n"
}

/// The flush-vs-no-flush tradeoff the paper defers to future work (§2.2):
/// PipeDream-2BW eliminates the pipeline bubble at the cost of 1-stale
/// weight updates. Steady-state speedup over a flushed schedule is
/// `1 + (p−1)/(v·m)`; the real-engine implementation (`dist::two_bw`)
/// demonstrates the semantics (bounded staleness, convergence) in tests.
pub fn twobw() -> String {
    let mut t = Table::new(["p", "m", "flushed bubble", "2BW steady-state speedup"]);
    for (p, m) in [(8u64, 8u64), (8, 32), (8, 128), (64, 512)] {
        let bubble = (p as f64 - 1.0) / m as f64;
        t.row([
            p.to_string(),
            m.to_string(),
            format!("{:.3}", bubble),
            format!("{:.3}x", 1.0 + bubble),
        ]);
    }
    t.render()
        + "the real thread-parallel 2BW implementation lives in megatron-dist::two_bw;\n\
           its tests verify staleness <= 1 batch, cross-batch overlap (no flush), and\n\
           convergence — the semantics/throughput tradeoff the paper cites for\n\
           PipeDream-2BW and PipeMare\n"
}

/// §3.3.1's batch-size analysis: "as the batch size B increases ... the
/// pipeline bubble shrinks and data-parallel communication becomes more
/// infrequent, increasing throughput". Fixed 175B configuration, rising B.
pub fn batchscale() -> String {
    let model = zoo::gpt3_175b();
    let mut t = Table::new(["batch", "m per pipeline", "bubble", "TF/s/GPU"]);
    for batch in [64u64, 128, 256, 512, 1024, 1536] {
        let pc = ParallelConfig::new(12, 8, 8, 1, batch);
        match run_ptdp(model.clone(), 768, pc, true) {
            Ok(r) => t.row([
                batch.to_string(),
                pc.microbatches().to_string(),
                format!("{:.3}", r.analytical_bubble_fraction),
                format!("{:.0}", r.tflops_per_gpu),
            ]),
            Err(e) => t.row([
                batch.to_string(),
                String::new(),
                String::new(),
                format!("ERR {e}"),
            ]),
        }
    }
    t.render() + "throughput rises monotonically with batch size (bubble amortization +\nless frequent gradient all-reduce)\n"
}
