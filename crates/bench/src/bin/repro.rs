//! Experiment driver: `repro <experiment>` regenerates one paper table or
//! figure; `repro all` runs everything; `repro list` enumerates;
//! `repro simulate ...` prices an arbitrary user configuration;
//! `repro chaos ...` runs the seeded chaos sweep with tunable knobs;
//! `repro serving ...` / `repro collective ...` take benchmark flags.

use megatron_bench::{
    analyze, chaos, collective_bench, experiments, launch, sentry, serving, simulate_cli,
};

fn main() {
    // Process-mode rank workers re-exec this binary with `--proc-worker
    // <dir> <rank>` (`repro launch` spawns them); run the worker and exit
    // before any experiment parsing.
    megatron_dist::proc::maybe_worker();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = experiments::all();
    match args.first().map(String::as_str) {
        None | Some("list") => {
            println!("usage: repro <experiment>|all|list|simulate\n\navailable experiments:");
            for e in &registry {
                println!("  {:<12} {}", e.name, e.paper_ref);
            }
            println!("\n{}", simulate_cli::USAGE);
            println!("\n{}", chaos::USAGE);
            println!("\n{}", serving::USAGE);
            println!("\n{}", collective_bench::USAGE);
            println!("\n{}", launch::USAGE);
            println!("\n{}", analyze::USAGE);
            println!("\n{}", sentry::USAGE);
        }
        Some("sentry") => match sentry::run(&args[1..]) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        },
        Some("chaos") if args.len() > 1 => match chaos::run(&args[1..]) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        },
        Some("serving") if args.len() > 1 => match serving::run(&args[1..]) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        },
        Some("collective") if args.len() > 1 => match collective_bench::run(&args[1..]) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        },
        Some("launch") => match launch::run(&args[1..]) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        },
        Some("analyze") if args.len() > 1 => match analyze::run(&args[1..]) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        },
        Some("simulate") => match simulate_cli::run(&args[1..]) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        },
        Some("all") => {
            for e in &registry {
                println!("=== {} — {} ===", e.name, e.paper_ref);
                println!("{}", (e.run)());
            }
        }
        Some(name) => match registry.iter().find(|e| e.name == name) {
            Some(e) => {
                println!("=== {} — {} ===", e.name, e.paper_ref);
                println!("{}", (e.run)());
            }
            None => {
                eprintln!("unknown experiment '{name}'; try `repro list`");
                std::process::exit(1);
            }
        },
    }
}
