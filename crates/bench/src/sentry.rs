//! Perf-regression sentry: compares a current `BENCH_*.json` record (the
//! shared schema of [`crate::perf`]) against a committed baseline and
//! fails — with a readable per-metric delta table — when any metric moves
//! past its tolerance in the *bad* direction.
//!
//! Direction is inferred from the metric name, so every bench record the
//! repo emits works without per-file configuration:
//!
//! * **lower-better** (`*_s`, `*_ns`, `latency`, `seconds`, `drift`,
//!   `dropped`, `residual`, `error`, `lost`, `outage`): fail when the
//!   current value rises more than `tolerance` relative;
//! * **higher-better** (`goodput`, `throughput`, `tflops`, `per_sec`):
//!   fail when it falls more than `tolerance` relative;
//! * everything else (byte volumes, counts, shares) is **two-sided**:
//!   any relative move past `tolerance` fails, in either direction —
//!   a comm-volume "improvement" is a formula bug, not a win.
//!
//! Runs with different `config` sections are refused outright rather than
//! compared: a delta between unlike runs is noise, not signal.

use megatron_sim::json::Json;

/// Default relative tolerance when the caller doesn't pass one.
pub const DEFAULT_TOLERANCE: f64 = 0.2;

/// CLI usage string for `repro sentry`.
pub const USAGE: &str = "repro sentry --baseline <file|dir> --current <file|dir> \
[--tolerance <rel>]   compare BENCH_*.json records; nonzero exit on regression";

/// Which way a metric is allowed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    LowerBetter,
    HigherBetter,
    TwoSided,
}

impl Direction {
    fn label(self) -> &'static str {
        match self {
            Direction::LowerBetter => "lower-better",
            Direction::HigherBetter => "higher-better",
            Direction::TwoSided => "two-sided",
        }
    }
}

/// Infer a metric's direction from its name.
fn classify(name: &str) -> Direction {
    let lower = [
        "latency", "seconds", "drift", "dropped", "residual", "error", "lost", "outage",
    ];
    let higher = ["goodput", "throughput", "tflops", "per_sec", "tput"];
    if higher.iter().any(|k| name.contains(k)) {
        return Direction::HigherBetter;
    }
    if name.ends_with("_s") || name.ends_with("_ns") || lower.iter().any(|k| name.contains(k)) {
        return Direction::LowerBetter;
    }
    Direction::TwoSided
}

/// One metric's comparison outcome.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// Metric name.
    pub name: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Relative delta `(current − baseline) / max(|baseline|, ε)`.
    pub rel_delta: f64,
    /// Whether this metric regressed past tolerance.
    pub regressed: bool,
}

/// Comparison of one baseline/current record pair.
#[derive(Debug, Clone)]
pub struct SentryReport {
    /// The record's `bench` name.
    pub bench: String,
    /// Per-metric outcomes, sorted by name.
    pub deltas: Vec<MetricDelta>,
    /// Metrics present in the baseline but missing from the current run
    /// (each counts as a regression: a silently vanished metric hides
    /// whatever it used to measure).
    pub missing: Vec<String>,
}

impl SentryReport {
    /// Did every metric stay within tolerance?
    pub fn passed(&self) -> bool {
        self.missing.is_empty() && self.deltas.iter().all(|d| !d.regressed)
    }

    /// Human-readable per-metric delta table.
    pub fn render(&self) -> String {
        let mut t = crate::table::Table::new([
            "metric",
            "baseline",
            "current",
            "delta",
            "direction",
            "verdict",
        ]);
        for d in &self.deltas {
            t.row([
                d.name.clone(),
                format!("{:.6}", d.baseline),
                format!("{:.6}", d.current),
                format!("{:+.1}%", 100.0 * d.rel_delta),
                classify(&d.name).label().to_string(),
                if d.regressed { "REGRESSED" } else { "ok" }.to_string(),
            ]);
        }
        for m in &self.missing {
            t.row([
                m.clone(),
                "-".into(),
                "missing".into(),
                "-".into(),
                classify(m).label().to_string(),
                "REGRESSED".into(),
            ]);
        }
        format!("bench '{}':\n{}", self.bench, t.render())
    }
}

fn num_fields(v: &Json, section: &str) -> Result<Vec<(String, f64)>, String> {
    match &v[section] {
        Json::Obj(map) => Ok(map
            .iter()
            .filter_map(|(k, val)| val.as_f64().map(|x| (k.clone(), x)))
            .collect()),
        _ => Err(format!("record has no '{section}' object")),
    }
}

/// Compare one parsed baseline record against one current record.
///
/// `Err` means the comparison itself was refused (schema mismatch, unlike
/// configs); `Ok` carries the per-metric report — check
/// [`SentryReport::passed`].
pub fn compare(baseline: &Json, current: &Json, tolerance: f64) -> Result<SentryReport, String> {
    let bench = baseline["bench"]
        .as_str()
        .ok_or("baseline record has no 'bench' name")?;
    let cur_bench = current["bench"]
        .as_str()
        .ok_or("current record has no 'bench' name")?;
    if bench != cur_bench {
        return Err(format!(
            "refusing to compare unlike benches: baseline '{bench}' vs current '{cur_bench}'"
        ));
    }
    if baseline["schema_version"].as_f64() != current["schema_version"].as_f64() {
        return Err("refusing to compare records with different schema_version".into());
    }
    // Unlike configs produce meaningless deltas; refuse rather than warn.
    let base_cfg = num_fields(baseline, "config")?;
    let cur_cfg: std::collections::BTreeMap<String, f64> =
        num_fields(current, "config")?.into_iter().collect();
    for (k, bv) in &base_cfg {
        match cur_cfg.get(k) {
            Some(cv) if cv == bv => {}
            Some(cv) => {
                return Err(format!(
                    "refusing to compare unlike runs: config '{k}' is {bv} in baseline, {cv} in current"
                ))
            }
            None => return Err(format!("current run lacks config knob '{k}'")),
        }
    }

    let base_metrics = num_fields(baseline, "metrics")?;
    let cur_metrics: std::collections::BTreeMap<String, f64> =
        num_fields(current, "metrics")?.into_iter().collect();
    let mut deltas = Vec::new();
    let mut missing = Vec::new();
    for (name, base) in base_metrics {
        let Some(&cur) = cur_metrics.get(&name) else {
            missing.push(name);
            continue;
        };
        // ε floors the denominator so near-zero baselines (residuals,
        // dropped-span counts) don't turn float dust into a regression.
        let rel = (cur - base) / base.abs().max(1e-9);
        let regressed = match classify(&name) {
            Direction::LowerBetter => rel > tolerance,
            Direction::HigherBetter => rel < -tolerance,
            Direction::TwoSided => rel.abs() > tolerance,
        };
        deltas.push(MetricDelta {
            name,
            baseline: base,
            current: cur,
            rel_delta: rel,
            regressed,
        });
    }
    Ok(SentryReport {
        bench: bench.to_string(),
        deltas,
        missing,
    })
}

fn load(path: &std::path::Path) -> Result<Json, String> {
    let body =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    Json::parse(&body).map_err(|e| format!("parse {}: {e:?}", path.display()))
}

/// Compare a baseline file (or directory of `BENCH_*.json`) against the
/// current counterpart. Directory mode pairs files by name; a baseline
/// file with no current counterpart is a failure.
pub fn check_paths(
    baseline: &std::path::Path,
    current: &std::path::Path,
    tolerance: f64,
) -> Result<String, String> {
    let pairs: Vec<(std::path::PathBuf, std::path::PathBuf)> = if baseline.is_dir() {
        let mut v = Vec::new();
        let entries =
            std::fs::read_dir(baseline).map_err(|e| format!("read {}: {e}", baseline.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| e.to_string())?;
            let name = entry.file_name();
            let n = name.to_string_lossy();
            if n.starts_with("BENCH_") && n.ends_with(".json") {
                v.push((entry.path(), current.join(&name)));
            }
        }
        v.sort();
        if v.is_empty() {
            return Err(format!(
                "no BENCH_*.json files under {}",
                baseline.display()
            ));
        }
        v
    } else {
        vec![(baseline.to_path_buf(), current.to_path_buf())]
    };

    let mut out = String::new();
    let mut failures = 0usize;
    for (b, c) in &pairs {
        if !c.exists() {
            out.push_str(&format!(
                "{}: current file missing — REGRESSED\n",
                c.display()
            ));
            failures += 1;
            continue;
        }
        let report = compare(&load(b)?, &load(c)?, tolerance)?;
        out.push_str(&report.render());
        if !report.passed() {
            failures += 1;
        }
    }
    out.push_str(&format!(
        "sentry: {} of {} record(s) within tolerance {tolerance}\n",
        pairs.len() - failures,
        pairs.len()
    ));
    if failures > 0 {
        Err(out)
    } else {
        Ok(out)
    }
}

/// `repro sentry` entry point.
pub fn run(args: &[String]) -> Result<String, String> {
    let mut baseline: Option<String> = None;
    let mut current: Option<String> = None;
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let val = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value\nusage: {USAGE}"))?;
        match flag {
            "--baseline" => baseline = Some(val.clone()),
            "--current" => current = Some(val.clone()),
            "--tolerance" => {
                tolerance = val
                    .parse()
                    .map_err(|_| format!("--tolerance wants a number, got '{val}'"))?
            }
            _ => return Err(format!("unknown flag '{flag}'\nusage: {USAGE}")),
        }
        i += 2;
    }
    let baseline = baseline.ok_or(format!("--baseline is required\nusage: {USAGE}"))?;
    let current = current.ok_or(format!("--current is required\nusage: {USAGE}"))?;
    check_paths(
        std::path::Path::new(&baseline),
        std::path::Path::new(&current),
        tolerance,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::bench_json;

    fn record(tput: f64, p99: f64) -> Json {
        bench_json(
            "serving",
            vec![
                ("requests".into(), Json::Num(80.0)),
                ("tensor_parallel".into(), Json::Num(2.0)),
            ],
            vec![
                ("tokens_per_sec".into(), tput),
                ("p99_latency_s".into(), p99),
                ("spans_dropped".into(), 0.0),
            ],
        )
    }

    #[test]
    fn identical_records_pass() {
        let base = record(40.0, 0.25);
        let rep = compare(&base, &base, 0.1).unwrap();
        assert!(rep.passed(), "{}", rep.render());
    }

    #[test]
    fn injected_throughput_regression_fails() {
        let base = record(40.0, 0.25);
        let cur = record(32.0, 0.25); // 20% slower
        let rep = compare(&base, &cur, 0.1).unwrap();
        assert!(!rep.passed());
        let bad: Vec<_> = rep.deltas.iter().filter(|d| d.regressed).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].name, "tokens_per_sec");
        assert!(rep.render().contains("REGRESSED"));
    }

    #[test]
    fn throughput_improvement_and_latency_noise_pass() {
        let base = record(40.0, 0.25);
        let cur = record(48.0, 0.26); // 20% faster, 4% latency noise
        let rep = compare(&base, &cur, 0.1).unwrap();
        assert!(rep.passed(), "{}", rep.render());
    }

    #[test]
    fn latency_regression_fails_two_sided_volume_too() {
        let base = bench_json(
            "x",
            vec![],
            vec![("p99_latency_s".into(), 0.25), ("p2p_bytes".into(), 1024.0)],
        );
        let cur = bench_json(
            "x",
            vec![],
            vec![("p99_latency_s".into(), 0.40), ("p2p_bytes".into(), 512.0)],
        );
        let rep = compare(&base, &cur, 0.1).unwrap();
        assert_eq!(rep.deltas.iter().filter(|d| d.regressed).count(), 2);
        // Byte volumes are two-sided: halving the traffic is a formula
        // bug, not an optimization.
        assert!(rep
            .deltas
            .iter()
            .any(|d| d.name == "p2p_bytes" && d.regressed));
    }

    #[test]
    fn unlike_configs_are_refused() {
        let base = record(40.0, 0.25);
        let mut cur = record(40.0, 0.25);
        if let Json::Obj(map) = &mut cur {
            if let Some(Json::Obj(cfg)) = map.get_mut("config") {
                cfg.insert("requests".into(), Json::Num(160.0));
            }
        }
        let err = compare(&base, &cur, 0.1).unwrap_err();
        assert!(err.contains("unlike runs"), "{err}");
    }

    #[test]
    fn missing_metric_is_a_regression() {
        let base = record(40.0, 0.25);
        let cur = bench_json(
            "serving",
            vec![
                ("requests".into(), Json::Num(80.0)),
                ("tensor_parallel".into(), Json::Num(2.0)),
            ],
            vec![("tokens_per_sec".into(), 40.0)],
        );
        let rep = compare(&base, &cur, 0.1).unwrap();
        assert!(!rep.passed());
        assert!(rep.missing.contains(&"p99_latency_s".to_string()));
    }
}
