//! E37: `repro launch` — run a seeded (p,t,d) job as `p*t*d` real OS
//! processes over the socket transport (UDS by default, loopback TCP on
//! request) and prove the run **bit-identical** to the same job executed
//! in-process on the mailbox transport.
//!
//! Each rank process re-execs this very binary with `--proc-worker`
//! (hence [`megatron_dist::proc::maybe_worker`] at the top of `repro`'s
//! `main`), rendezvouses through the scratch directory, trains, and
//! writes its losses/params/comm-volume as bit patterns. The launcher
//! merges them and replays the job on threads for the comparison. The
//! per-rank socket byte counts are also checked against the op tape's
//! ring closed forms — the §3 identity, now measured on a real wire.

use std::path::PathBuf;
use std::time::Instant;

use megatron_dist::proc::{launch, JobSpec};
use megatron_dist::{PtdpTrainer, WireKind};

/// `repro launch` usage string.
pub const USAGE: &str =
    "repro launch [--ptd P,T,D] [--wire uds|tcp] [--iters N] [--reliable] [--trace] [--dir PATH]
  E37: run the seeded job as P*T*D OS processes over sockets and check
  bit-identity against the in-process mailbox run; --trace keeps the
  scratch dir with per-rank Chrome traces for `repro analyze
  --merge-traces`";

/// CLI entry: `repro launch [flags]`.
pub fn run(args: &[String]) -> Result<String, String> {
    let (mut p, mut t, mut d) = (2usize, 2usize, 2usize);
    let mut wire = WireKind::Uds;
    let mut iters: Option<usize> = None;
    let mut reliable = false;
    let mut trace = false;
    let mut dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--ptd" => {
                let v = it
                    .next()
                    .ok_or_else(|| format!("--ptd needs P,T,D\n{USAGE}"))?;
                let parts: Vec<usize> = v
                    .split(',')
                    .map(|s| s.trim().parse())
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("--ptd: {e}\n{USAGE}"))?;
                if parts.len() != 3 || parts.contains(&0) {
                    return Err(format!("--ptd needs three nonzero values\n{USAGE}"));
                }
                (p, t, d) = (parts[0], parts[1], parts[2]);
            }
            "--wire" => {
                let v = it
                    .next()
                    .ok_or_else(|| format!("--wire needs a value\n{USAGE}"))?;
                wire = match v.as_str() {
                    "uds" => WireKind::Uds,
                    "tcp" => WireKind::Tcp,
                    other => return Err(format!("unknown wire '{other}'\n{USAGE}")),
                };
            }
            "--iters" => {
                iters = Some(
                    it.next()
                        .ok_or_else(|| format!("--iters needs a value\n{USAGE}"))?
                        .parse()
                        .map_err(|e| format!("--iters: {e}\n{USAGE}"))?,
                );
            }
            "--reliable" => reliable = true,
            "--trace" => trace = true,
            "--dir" => {
                dir = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| format!("--dir needs a path\n{USAGE}"))?,
                ));
            }
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }

    let mut job = JobSpec::canonical(p, t, d);
    job.wire = wire;
    job.retry = reliable;
    job.trace = trace;
    if let Some(n) = iters {
        if n == 0 {
            return Err("--iters must be at least 1".into());
        }
        job.iters = n;
    }
    let dir = dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("megatron-launch-{}", std::process::id()))
    });
    let _ = std::fs::remove_dir_all(&dir);

    let world = job.world();
    let t0 = Instant::now();
    let handle = launch(&job, &dir).map_err(|e| format!("launch failed: {e}"))?;
    let out = handle.wait();
    let proc_wall = t0.elapsed().as_secs_f64();
    if !out.ok() {
        let errors: Vec<String> = out
            .outputs
            .values()
            .filter_map(|o| o.error.clone())
            .collect();
        return Err(format!(
            "process run failed: missing ranks {:?}, errors {errors:?} (scratch kept at {})",
            out.missing,
            dir.display()
        ));
    }

    // The same job on threads + mailboxes, for the bit-identity check.
    let t0 = Instant::now();
    let log = PtdpTrainer::new(job.master(), job.spec()).train(&job.dataset());
    let inproc_wall = t0.elapsed().as_secs_f64();

    let losses_ok = out.losses == log.losses;
    let mut params_ok = true;
    let mut volumes_ok = true;
    let mut tape_ok = true;
    let mut total_bytes = 0.0;
    let mut rows: Vec<(String, u32, f64, usize)> = Vec::new();
    for (key, o) in &out.outputs {
        params_ok &= log.final_params.get(key) == Some(&o.params);
        volumes_ok &= log.comm_volumes.get(key) == Some(&o.volume);
        tape_ok &= o.tape_bytes == o.volume.total_bytes();
        total_bytes += o.volume.total_bytes();
        rows.push((format!("{key:?}"), o.pid, o.volume.total_bytes(), o.steps));
    }
    rows.sort_by(|a, b| a.0.cmp(&b.0));

    let mut rep = String::new();
    rep.push_str(&format!(
        "E37: ({p},{t},{d}) = {world} OS processes over {} ({} iterations)\n\n",
        match wire {
            WireKind::Tcp => "loopback TCP",
            _ => "Unix-domain sockets",
        },
        job.iters,
    ));
    rep.push_str("  rank            pid     socket bytes   steps\n");
    for (key, pid, bytes, steps) in &rows {
        rep.push_str(&format!(
            "  {key:<12} {pid:>7}   {bytes:>12.0}   {steps:>5}\n"
        ));
    }
    rep.push_str(&format!(
        "\n  wall time: {proc_wall:.2} s as processes, {inproc_wall:.2} s in-process\n\
         \x20 total bytes on the wire: {:.1} KiB\n\
         \x20 losses bit-identical to in-process run: {}\n\
         \x20 final params bit-identical to in-process run: {}\n\
         \x20 socket-measured volumes == in-process volumes: {}\n\
         \x20 per-rank socket bytes == tape closed forms (S3): {}\n",
        total_bytes / 1024.0,
        yn(losses_ok),
        yn(params_ok),
        yn(volumes_ok),
        yn(tape_ok),
    ));
    rep.push_str(&format!(
        "  bit-identical to in-process run: {}\n",
        yn(losses_ok && params_ok && volumes_ok && tape_ok)
    ));
    if trace {
        rep.push_str(&format!(
            "\n  per-rank traces kept in {}\n\
             \x20 merge with: repro analyze --merge-traces {}\n",
            dir.display(),
            dir.display()
        ));
    } else {
        let _ = std::fs::remove_dir_all(&dir);
    }
    if !(losses_ok && params_ok && volumes_ok && tape_ok) {
        return Err(rep + "\nFAIL: process run diverged from the in-process run");
    }
    Ok(rep)
}

fn yn(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}
