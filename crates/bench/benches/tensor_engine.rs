//! Criterion benches of the real CPU tensor engine: GEMM scaling and a
//! full forward+backward of the tiny GPT used by the distributed runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use megatron_tensor::gemm;
use megatron_tensor::gpt::{GptModel, TinyGptConfig};
use megatron_tensor::Matrix;
use rand::SeedableRng;

fn gemm_scaling(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut g = c.benchmark_group("gemm");
    g.sample_size(20);
    for &n in &[64usize, 128, 256] {
        let a = Matrix::randn(n, n, 1.0, &mut rng);
        let b = Matrix::randn(n, n, 1.0, &mut rng);
        g.bench_with_input(BenchmarkId::new("matmul", n), &n, |bench, _| {
            bench.iter(|| gemm::matmul(&a, &b))
        });
        g.bench_with_input(BenchmarkId::new("matmul_tn", n), &n, |bench, _| {
            bench.iter(|| gemm::matmul_tn(&a, &b))
        });
    }
    g.finish();
}

fn gpt_step(c: &mut Criterion) {
    let cfg = TinyGptConfig {
        vocab: 128,
        seq: 32,
        hidden: 64,
        heads: 4,
        layers: 4,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let mut model = GptModel::new(cfg, &mut rng);
    let tokens: Vec<usize> = (0..4 * cfg.seq).map(|i| i % cfg.vocab).collect();
    let targets: Vec<usize> = tokens.iter().map(|&t| (t + 1) % cfg.vocab).collect();
    let mut g = c.benchmark_group("tiny_gpt");
    g.sample_size(10);
    g.bench_function("forward_backward_b4", |b| {
        b.iter(|| {
            model.zero_grads();
            model.loss_and_grad(&tokens, &targets, 4)
        })
    });
    g.finish();
}

criterion_group!(benches, gemm_scaling, gpt_step);
criterion_main!(benches);
