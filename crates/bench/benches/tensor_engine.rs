//! Benches of the real CPU tensor engine: GEMM scaling and a full
//! forward+backward of the tiny GPT used by the distributed runtime.

use megatron_bench::harness::Bench;
use megatron_tensor::gemm;
use megatron_tensor::gpt::{GptModel, TinyGptConfig};
use megatron_tensor::Matrix;
use rand::SeedableRng;

fn gemm_scaling() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let g = Bench::group("gemm").sample_size(20);
    for &n in &[64usize, 128, 256] {
        let a = Matrix::randn(n, n, 1.0, &mut rng);
        let b = Matrix::randn(n, n, 1.0, &mut rng);
        g.run(&format!("matmul/{n}"), || gemm::matmul(&a, &b));
        g.run(&format!("matmul_tn/{n}"), || gemm::matmul_tn(&a, &b));
    }
}

fn gpt_step() {
    let cfg = TinyGptConfig {
        vocab: 128,
        seq: 32,
        hidden: 64,
        heads: 4,
        layers: 4,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let mut model = GptModel::new(cfg, &mut rng);
    let tokens: Vec<usize> = (0..4 * cfg.seq).map(|i| i % cfg.vocab).collect();
    let targets: Vec<usize> = tokens.iter().map(|&t| (t + 1) % cfg.vocab).collect();
    let g = Bench::group("tiny_gpt").sample_size(10);
    g.run("forward_backward_b4", || {
        model.zero_grads();
        model.loss_and_grad(&tokens, &targets, 4)
    });
}

fn main() {
    gemm_scaling();
    gpt_step();
}
