//! Benches of the simulated-network collectives (event-level ring
//! algorithms) and the §4.1 scatter/gather boundary transfer — including
//! the no-contention ablation called out in DESIGN.md §5.

use megatron_bench::harness::Bench;
use megatron_cluster::ClusterSpec;
use megatron_net::Network;
use megatron_sim::DagSim;

fn ring_collectives() {
    let cluster = ClusterSpec::selene(64);
    let g = Bench::group("simulated_collectives").sample_size(20);
    for &r in &[4usize, 8, 32] {
        let ranks: Vec<usize> = (0..r).collect();
        g.run(&format!("ring_all_reduce/{r}"), || {
            let mut sim = DagSim::new();
            let net = Network::new(&mut sim, cluster.clone());
            net.ring_all_reduce(&mut sim, &ranks, 64 << 20, &[], 0);
            sim.run().unwrap().makespan
        });
    }
}

fn boundary_transfer() {
    let cluster = ClusterSpec::selene(16);
    let senders: Vec<usize> = (0..8).collect();
    let receivers: Vec<usize> = (8..16).collect();
    let g = Bench::group("pipeline_boundary").sample_size(20);
    for (name, sg) in [("redundant", false), ("scatter_gather", true)] {
        g.run(name, || {
            let mut sim = DagSim::new();
            let net = Network::new(&mut sim, cluster.clone());
            net.pipeline_p2p(&mut sim, &senders, &receivers, 64 << 20, sg, &[], 0);
            sim.run().unwrap().makespan
        });
    }
}

/// Contention ablation: concurrent all-reduces on disjoint groups scale
/// (independent ports), concurrent traffic on one sender serializes.
fn contention() {
    let cluster = ClusterSpec::selene(32);
    let g = Bench::group("net_contention").sample_size(20);
    g.run("four_disjoint_all_reduces", || {
        let mut sim = DagSim::new();
        let net = Network::new(&mut sim, cluster.clone());
        for gi in 0..4usize {
            let ranks: Vec<usize> = (gi * 8..(gi + 1) * 8).collect();
            net.ring_all_reduce(&mut sim, &ranks, 16 << 20, &[], 0);
        }
        sim.run().unwrap().makespan
    });
    g.run("four_serialized_sends_one_port", || {
        let mut sim = DagSim::new();
        let net = Network::new(&mut sim, cluster.clone());
        for _ in 0..4 {
            net.send(&mut sim, 0, 8, 16 << 20, &[], 0);
        }
        sim.run().unwrap().makespan
    });
}

fn main() {
    ring_collectives();
    boundary_transfer();
    contention();
}
