//! Criterion benches of the simulated-network collectives (event-level ring
//! algorithms) and the §4.1 scatter/gather boundary transfer — including
//! the no-contention ablation called out in DESIGN.md §5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use megatron_cluster::ClusterSpec;
use megatron_net::Network;
use megatron_sim::DagSim;

fn ring_collectives(c: &mut Criterion) {
    let cluster = ClusterSpec::selene(64);
    let mut g = c.benchmark_group("simulated_collectives");
    g.sample_size(20);
    for &r in &[4usize, 8, 32] {
        g.bench_with_input(BenchmarkId::new("ring_all_reduce", r), &r, |b, &r| {
            let ranks: Vec<usize> = (0..r).collect();
            b.iter(|| {
                let mut sim = DagSim::new();
                let net = Network::new(&mut sim, cluster.clone());
                net.ring_all_reduce(&mut sim, &ranks, 64 << 20, &[], 0);
                sim.run().unwrap().makespan
            })
        });
    }
    g.finish();
}

fn boundary_transfer(c: &mut Criterion) {
    let cluster = ClusterSpec::selene(16);
    let senders: Vec<usize> = (0..8).collect();
    let receivers: Vec<usize> = (8..16).collect();
    let mut g = c.benchmark_group("pipeline_boundary");
    g.sample_size(20);
    for (name, sg) in [("redundant", false), ("scatter_gather", true)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut sim = DagSim::new();
                let net = Network::new(&mut sim, cluster.clone());
                net.pipeline_p2p(&mut sim, &senders, &receivers, 64 << 20, sg, &[], 0);
                sim.run().unwrap().makespan
            })
        });
    }
    g.finish();
}

/// Contention ablation: concurrent all-reduces on disjoint groups scale
/// (independent ports), concurrent traffic on one sender serializes.
fn contention(c: &mut Criterion) {
    let cluster = ClusterSpec::selene(32);
    let mut g = c.benchmark_group("net_contention");
    g.sample_size(20);
    g.bench_function("four_disjoint_all_reduces", |b| {
        b.iter(|| {
            let mut sim = DagSim::new();
            let net = Network::new(&mut sim, cluster.clone());
            for gi in 0..4usize {
                let ranks: Vec<usize> = (gi * 8..(gi + 1) * 8).collect();
                net.ring_all_reduce(&mut sim, &ranks, 16 << 20, &[], 0);
            }
            sim.run().unwrap().makespan
        })
    });
    g.bench_function("four_serialized_sends_one_port", |b| {
        b.iter(|| {
            let mut sim = DagSim::new();
            let net = Network::new(&mut sim, cluster.clone());
            for _ in 0..4 {
                net.send(&mut sim, 0, 8, 16 << 20, &[], 0);
            }
            sim.run().unwrap().makespan
        })
    });
    g.finish();
}

criterion_group!(benches, ring_collectives, boundary_transfer, contention);
criterion_main!(benches);
