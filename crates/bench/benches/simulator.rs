//! Benches of the discrete-event simulation stack: raw DAG engine
//! throughput and full PTD-P iteration simulations at three scales.

use megatron_bench::harness::Bench;
use megatron_cluster::ClusterSpec;
use megatron_core::TrainingRun;
use megatron_model::zoo;
use megatron_parallel::ParallelConfig;
use megatron_sim::DagSim;

fn dag_engine() {
    let g = Bench::group("dag_engine").sample_size(20);
    for &n in &[1_000usize, 10_000, 100_000] {
        g.run(&format!("chain_tasks/{n}"), || {
            let mut sim = DagSim::new();
            let r = sim.add_resource("r");
            let mut prev = None;
            for _ in 0..n {
                let deps: Vec<_> = prev.into_iter().collect();
                prev = Some(sim.add_task(r, 5, &deps, 0));
            }
            sim.run().unwrap().makespan
        });
        g.run(&format!("parallel_tasks/{n}"), || {
            let mut sim = DagSim::new();
            let rs: Vec<_> = (0..16).map(|i| sim.add_resource(format!("r{i}"))).collect();
            for i in 0..n {
                sim.add_task(rs[i % 16], 5, &[], 0);
            }
            sim.run().unwrap().makespan
        });
    }
}

fn iteration_simulation() {
    let g = Bench::group("iteration_simulation").sample_size(10);

    // Small: 5.9B on 64 GPUs.
    let run = TrainingRun::ptdp(
        zoo::gpt_5p9b(),
        ClusterSpec::selene(64),
        ParallelConfig::new(8, 2, 4, 1, 128),
    );
    g.run("gpt_5.9b_64gpus", || run.simulate().unwrap().iteration_time);

    // Medium: GPT-3 on 768 GPUs.
    let run = TrainingRun::ptdp(
        zoo::gpt3_175b(),
        ClusterSpec::selene(768),
        ParallelConfig::new(12, 8, 8, 1, 1536),
    );
    g.run("gpt3_175b_768gpus", || {
        run.simulate().unwrap().iteration_time
    });

    // Flagship: 1T on 3072 GPUs (the paper's largest run).
    let run = TrainingRun::ptdp(
        zoo::gpt_1t(),
        ClusterSpec::selene(3072),
        ParallelConfig::new(64, 8, 6, 1, 3072).with_chunks(2),
    );
    g.run("gpt_1t_3072gpus", || run.simulate().unwrap().iteration_time);
}

fn main() {
    dag_engine();
    iteration_simulation();
}
