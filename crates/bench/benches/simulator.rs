//! Criterion benches of the discrete-event simulation stack: raw DAG
//! engine throughput and full PTD-P iteration simulations at three scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use megatron_cluster::ClusterSpec;
use megatron_core::TrainingRun;
use megatron_model::zoo;
use megatron_parallel::ParallelConfig;
use megatron_sim::DagSim;

fn dag_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("dag_engine");
    g.sample_size(20);
    for &n in &[1_000usize, 10_000, 100_000] {
        g.bench_with_input(BenchmarkId::new("chain_tasks", n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = DagSim::new();
                let r = sim.add_resource("r");
                let mut prev = None;
                for _ in 0..n {
                    let deps: Vec<_> = prev.into_iter().collect();
                    prev = Some(sim.add_task(r, 5, &deps, 0));
                }
                sim.run().unwrap().makespan
            })
        });
        g.bench_with_input(BenchmarkId::new("parallel_tasks", n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = DagSim::new();
                let rs: Vec<_> = (0..16).map(|i| sim.add_resource(format!("r{i}"))).collect();
                for i in 0..n {
                    sim.add_task(rs[i % 16], 5, &[], 0);
                }
                sim.run().unwrap().makespan
            })
        });
    }
    g.finish();
}

fn iteration_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("iteration_simulation");
    g.sample_size(10);

    // Small: 5.9B on 64 GPUs.
    g.bench_function("gpt_5.9b_64gpus", |b| {
        let run = TrainingRun::ptdp(
            zoo::gpt_5p9b(),
            ClusterSpec::selene(64),
            ParallelConfig::new(8, 2, 4, 1, 128),
        );
        b.iter(|| run.simulate().unwrap().iteration_time)
    });

    // Medium: GPT-3 on 768 GPUs.
    g.bench_function("gpt3_175b_768gpus", |b| {
        let run = TrainingRun::ptdp(
            zoo::gpt3_175b(),
            ClusterSpec::selene(768),
            ParallelConfig::new(12, 8, 8, 1, 1536),
        );
        b.iter(|| run.simulate().unwrap().iteration_time)
    });

    // Flagship: 1T on 3072 GPUs (the paper's largest run).
    g.bench_function("gpt_1t_3072gpus", |b| {
        let run = TrainingRun::ptdp(
            zoo::gpt_1t(),
            ClusterSpec::selene(3072),
            ParallelConfig::new(64, 8, 6, 1, 3072).with_chunks(2),
        );
        b.iter(|| run.simulate().unwrap().iteration_time)
    });
    g.finish();
}

criterion_group!(benches, dag_engine, iteration_simulation);
criterion_main!(benches);
