//! Benches of pipeline-schedule generation and replay, across the shapes
//! the paper's largest runs need (p = 64, m = 512, v = 2).

use megatron_bench::harness::Bench;
use megatron_schedule::ScheduleKind;

fn generation() {
    let g = Bench::group("schedule_generation").sample_size(20);
    for &(p, m) in &[(8usize, 64usize), (64, 512)] {
        for kind in [
            ScheduleKind::GPipe,
            ScheduleKind::OneFOneB,
            ScheduleKind::Interleaved { chunks: 2 },
        ] {
            g.run(&format!("{kind:?}/p{p}_m{m}"), || {
                kind.build(p, m).ops.len()
            });
        }
    }
}

fn replay() {
    let g = Bench::group("schedule_replay").sample_size(20);
    for &(p, m, v) in &[(8usize, 64usize, 1usize), (64, 512, 1), (64, 512, 2)] {
        let kind = if v > 1 {
            ScheduleKind::Interleaved { chunks: v }
        } else {
            ScheduleKind::OneFOneB
        };
        let sched = kind.build(p, m);
        g.run(&format!("replay/p{p}_m{m}_v{v}"), || {
            sched.replay(1.0, 2.0).unwrap().makespan
        });
    }
}

fn main() {
    generation();
    replay();
}
