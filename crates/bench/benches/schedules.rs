//! Criterion benches of pipeline-schedule generation and replay, across the
//! shapes the paper's largest runs need (p = 64, m = 512, v = 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use megatron_schedule::ScheduleKind;

fn generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule_generation");
    g.sample_size(20);
    for &(p, m) in &[(8usize, 64usize), (64, 512)] {
        for kind in [
            ScheduleKind::GPipe,
            ScheduleKind::OneFOneB,
            ScheduleKind::Interleaved { chunks: 2 },
        ] {
            g.bench_with_input(
                BenchmarkId::new(format!("{kind:?}"), format!("p{p}_m{m}")),
                &(p, m),
                |b, &(p, m)| b.iter(|| kind.build(p, m).ops.len()),
            );
        }
    }
    g.finish();
}

fn replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule_replay");
    g.sample_size(20);
    for &(p, m, v) in &[(8usize, 64usize, 1usize), (64, 512, 1), (64, 512, 2)] {
        let kind = if v > 1 {
            ScheduleKind::Interleaved { chunks: v }
        } else {
            ScheduleKind::OneFOneB
        };
        let sched = kind.build(p, m);
        g.bench_with_input(
            BenchmarkId::new("replay", format!("p{p}_m{m}_v{v}")),
            &sched,
            |b, sched| b.iter(|| sched.replay(1.0, 2.0).unwrap().makespan),
        );
    }
    g.finish();
}

criterion_group!(benches, generation, replay);
criterion_main!(benches);
