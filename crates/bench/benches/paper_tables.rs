//! Benches wrapping the paper-experiment generators themselves: one
//! benchmark per table/figure regeneration, so `cargo bench` exercises
//! every reproduction path end to end and tracks its cost. (The printable
//! outputs live in the `repro` binary; see EXPERIMENTS.md.)

use megatron_bench::experiments;
use megatron_bench::harness::Bench;

fn main() {
    let g = Bench::group("paper_experiments").sample_size(10);
    // The fast experiments run as timed benches; the heavyweight sweeps
    // (table1, table2, fig17) are exercised once each to keep
    // `cargo bench --workspace` under control.
    for name in [
        "fig6",
        "fig7",
        "fig8",
        "gantt",
        "formulas",
        "checkpoint",
        "traintime",
    ] {
        let exp = experiments::all()
            .into_iter()
            .find(|e| e.name == name)
            .expect("registered experiment");
        g.run(name, || (exp.run)().len());
    }

    // One-shot smoke of the heavy sweeps (not statistically sampled).
    for name in ["fig12", "fig16", "fusion"] {
        let exp = experiments::all()
            .into_iter()
            .find(|e| e.name == name)
            .expect("registered experiment");
        let out = (exp.run)();
        assert!(!out.contains("ERR"), "{name} produced an error:\n{out}");
    }
}
