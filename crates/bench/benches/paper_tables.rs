//! Criterion benches wrapping the paper-experiment generators themselves:
//! one benchmark per table/figure regeneration, so `cargo bench` exercises
//! every reproduction path end to end and tracks its cost. (The printable
//! outputs live in the `repro` binary; see EXPERIMENTS.md.)

use criterion::{criterion_group, criterion_main, Criterion};
use megatron_bench::experiments;

fn paper_experiments(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper_experiments");
    g.sample_size(10);
    // The fast experiments run as criterion benches; the heavyweight sweeps
    // (table1, table2, fig17) are exercised once each to keep
    // `cargo bench --workspace` under control.
    for name in ["fig6", "fig7", "fig8", "gantt", "formulas", "checkpoint", "traintime"] {
        let exp = experiments::all()
            .into_iter()
            .find(|e| e.name == name)
            .expect("registered experiment");
        g.bench_function(name, |b| b.iter(|| (exp.run)().len()));
    }
    g.finish();

    // One-shot smoke of the heavy sweeps (not statistically sampled).
    for name in ["fig12", "fig16", "fusion"] {
        let exp = experiments::all()
            .into_iter()
            .find(|e| e.name == name)
            .expect("registered experiment");
        let out = (exp.run)();
        assert!(!out.contains("ERR"), "{name} produced an error:\n{out}");
    }
}

criterion_group!(benches, paper_experiments);
criterion_main!(benches);
