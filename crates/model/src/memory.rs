//! Memory-footprint accounting for mixed-precision PTD-P training.
//!
//! Three contributors per GPU (§3.3.1, §3.5):
//! 1. model state: fp16 weights + fp16 gradients + fp32 master weights +
//!    fp32 Adam moments for the parameters this rank owns;
//! 2. stashed activations for in-flight microbatches (schedule-dependent —
//!    the schedule layer supplies the stash count);
//! 3. the recomputation tradeoff of §3.5: with activation recomputation only
//!    layer inputs (or `c` checkpoints per stage) are stashed, at the cost of
//!    one extra forward pass.

use crate::{GptConfig, BYTES_FP16, BYTES_FP32};

/// Bytes of model state per parameter with mixed-precision Adam:
/// fp16 weight (2) + fp16 gradient (2) + fp32 master weight (4) +
/// fp32 momentum (4) + fp32 variance (4).
pub const MODEL_STATE_BYTES_PER_PARAM: u64 = 2 * BYTES_FP16 + 3 * BYTES_FP32;

/// Parameters held by ONE GPU at position (`stage`, tensor-parallel rank)
/// of a (p, t) model-parallel grid. Layers are distributed evenly over `p`
/// stages; the first stage additionally holds the (vocab-parallel) embedding
/// and the last stage the final LayerNorm (the LM head is tied).
pub fn params_per_gpu(cfg: &GptConfig, p: u64, t: u64, stage: u64) -> u64 {
    assert!(stage < p, "stage {stage} out of range for p={p}");
    assert!(
        cfg.num_layers.is_multiple_of(p),
        "layers {} must divide evenly into p={p} stages",
        cfg.num_layers
    );
    let h = cfg.hidden_size;
    let layers_here = cfg.num_layers / p;
    // Tensor-parallel split of one layer: QKV and MLP weights divide by t;
    // LayerNorm parameters are replicated.
    let attn = (h * 3 * h + 3 * h) / t + (h * h) / t + h;
    let mlp = (h * 4 * h + 4 * h) / t + (4 * h * h) / t + h;
    let norms = 2 * 2 * h;
    let mut total = layers_here * (attn + mlp + norms);
    if stage == 0 {
        total += (cfg.vocab_size / t) * h + cfg.seq_len * h; // embeddings
    }
    if stage == p - 1 {
        total += 2 * h; // final LayerNorm
    }
    total
}

/// Worst-case (max over stages) model-state bytes per GPU.
pub fn model_state_bytes_per_gpu(cfg: &GptConfig, p: u64, t: u64) -> u64 {
    (0..p)
        .map(|s| params_per_gpu(cfg, p, t, s) * MODEL_STATE_BYTES_PER_PARAM)
        .max()
        .unwrap_or(0)
}

/// Full (no recomputation) activation bytes stashed per layer per
/// microbatch of size `b` on one tensor-parallel rank. The
/// `s·b·h·(10 + 24/t + 5·a·s/(h·t))` accounting: LayerNorm inputs, residual
/// streams and dropout masks are replicated across tensor ranks (the `10`);
/// QKV/attention/MLP intermediates divide by `t`.
pub fn activation_bytes_full(cfg: &GptConfig, b: u64, t: u64) -> u64 {
    let (h, a, s) = (
        cfg.hidden_size as f64,
        cfg.num_heads as f64,
        cfg.seq_len as f64,
    );
    let tf = t as f64;
    let per = s * b as f64 * h * (10.0 + 24.0 / tf + 5.0 * a * s / (h * tf));
    per as u64
}

/// Activation bytes stashed per layer per microbatch *with* recomputation:
/// only the fp16 layer input, `2·s·b·h` (not tensor-parallel-divided —
/// the input is replicated across tensor ranks).
pub fn activation_bytes_recompute(cfg: &GptConfig, b: u64) -> u64 {
    2 * cfg.seq_len * b * cfg.hidden_size
}

/// §3.5's closing remark: "other techniques such as activation partitioning
/// can also be used in conjunction with tensor model parallelism to reduce
/// the memory footprint due to activations further" (ZeRO-R). Partitioning
/// splits the otherwise-replicated activations (LayerNorm inputs, residual
/// streams, dropout masks — the `10·s·b·h` term of
/// [`activation_bytes_full`]) across the `t` tensor ranks, re-gathering
/// them on demand.
pub fn activation_bytes_partitioned(cfg: &GptConfig, b: u64, t: u64) -> u64 {
    let (h, a, s) = (
        cfg.hidden_size as f64,
        cfg.num_heads as f64,
        cfg.seq_len as f64,
    );
    let tf = t as f64;
    let per = s * b as f64 * h * ((10.0 + 24.0 + 5.0 * a * s / h) / tf);
    per as u64
}

/// §3.5 checkpointing model: total activation memory for a stage of `l`
/// layers with `c` checkpoints, `c·A_input + (l/c)·A_intermediate`.
pub fn checkpointed_stage_bytes(a_input: f64, a_intermediate: f64, l: f64, c: f64) -> f64 {
    c * a_input + (l / c) * a_intermediate
}

/// §3.5 optimal checkpoint count: `c* = √(l · A_intermediate / A_input)`.
pub fn optimal_checkpoints(a_input: f64, a_intermediate: f64, l: f64) -> f64 {
    (l * a_intermediate / a_input).sqrt()
}

/// Total per-GPU memory for a training configuration.
///
/// `in_flight` is the schedule's maximum number of stashed microbatches
/// (≤ p for 1F1B, = m for GPipe — §2.2.1); `layers_per_stage` is
/// `l / p` (× the per-device chunk count for interleaving the caller folds
/// in via `in_flight` weighting, see schedule layer).
pub fn total_bytes_per_gpu(
    cfg: &GptConfig,
    p: u64,
    t: u64,
    b: u64,
    in_flight: u64,
    recompute: bool,
) -> u64 {
    let state = model_state_bytes_per_gpu(cfg, p, t);
    let layers_per_stage = cfg.num_layers / p;
    let per_mb_per_layer = if recompute {
        activation_bytes_recompute(cfg, b)
    } else {
        activation_bytes_full(cfg, b, t)
    };
    // During the backward pass of the current microbatch the full
    // intermediate set of one layer must be live even with recomputation.
    let working = activation_bytes_full(cfg, b, t);
    state + in_flight * layers_per_stage * per_mb_per_layer + working
}

/// Checkpoint size in bytes for the whole model: fp16 weights + fp32 master
/// weights + two fp32 optimizer moments (what Megatron serializes).
pub fn checkpoint_bytes(cfg: &GptConfig) -> u64 {
    cfg.params_exact() * (BYTES_FP16 + 3 * BYTES_FP32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn shards_sum_to_whole_model() {
        let cfg = GptConfig::paper("m", 8, 3072, 32);
        for (p, t) in [(1u64, 1u64), (2, 1), (4, 4), (8, 8)] {
            let shard_sum: u64 = (0..p).map(|s| params_per_gpu(&cfg, p, t, s) * t).sum();
            let exact = cfg.params_exact();
            // Replicated tensors (LayerNorms, position embeddings, biases on
            // row-parallel outputs) are counted t times in shard_sum.
            let replicated = cfg.num_layers * (4 * cfg.hidden_size + 2 * cfg.hidden_size)
                + cfg.seq_len * cfg.hidden_size
                + 2 * cfg.hidden_size;
            let want = exact + (t - 1) * replicated;
            assert_eq!(shard_sum, want, "(p,t)=({p},{t})");
        }
    }

    #[test]
    fn model_state_is_18_bytes_per_param() {
        assert_eq!(MODEL_STATE_BYTES_PER_PARAM, 16);
    }

    #[test]
    fn gpt3_does_not_fit_on_one_gpu() {
        // The paper's premise: 175B params × 16 B ≫ 80 GB.
        let cfg = zoo::gpt3_175b();
        let bytes = model_state_bytes_per_gpu(&cfg, 1, 1);
        assert!(bytes > 2_000 * (1u64 << 30), "got {bytes}");
    }

    #[test]
    fn gpt3_fits_with_96_way_model_parallelism() {
        // Table 2: PTD-P runs 174.6B with model-parallel size 96 (t=8, p=12).
        let cfg = zoo::gpt3_175b();
        let bytes = total_bytes_per_gpu(&cfg, 12, 8, 1, 12, true);
        assert!(
            bytes < 80 * (1u64 << 30),
            "should fit in 80 GB, got {} GiB",
            bytes >> 30
        );
    }

    #[test]
    fn activation_partitioning_divides_replicated_term() {
        // With partitioning the whole per-layer activation divides by t;
        // without it only the 24/t + 5as/(ht) share does.
        let cfg = zoo::gpt3_175b();
        let full = activation_bytes_full(&cfg, 1, 8);
        let part = activation_bytes_partitioned(&cfg, 1, 8);
        assert!(part < full, "partitioned {part} vs full {full}");
        // Partitioned( t ) == Full(t=1) / t exactly (same total work).
        let serial = activation_bytes_full(&cfg, 1, 1);
        let rel = (part as f64 - serial as f64 / 8.0).abs() / (serial as f64 / 8.0);
        assert!(rel < 1e-6, "rel {rel}");
    }

    #[test]
    fn recompute_stashes_less_than_full() {
        let cfg = zoo::gpt_145b();
        let full = activation_bytes_full(&cfg, 1, 8);
        let rc = activation_bytes_recompute(&cfg, 1);
        assert!(rc * 3 < full, "full {full} recompute {rc}");
    }

    #[test]
    fn optimal_checkpoint_count_minimizes() {
        let (ai, am, l) = (1.0e6, 30.0e6, 16.0);
        let c_star = optimal_checkpoints(ai, am, l);
        let best = checkpointed_stage_bytes(ai, am, l, c_star);
        for c in [1.0, 2.0, 4.0, 8.0, 16.0] {
            assert!(checkpointed_stage_bytes(ai, am, l, c) >= best - 1e-6);
        }
    }

    #[test]
    fn paper_observation_checkpoint_every_1_or_2_layers() {
        // §3.5: "For most cases, checkpointing every 1 or 2 transformer
        // layers is optimal" — i.e. c ≈ l or l/2 when A_int/A_in is large.
        let cfg = zoo::gpt3_175b();
        let a_in = activation_bytes_recompute(&cfg, 1) as f64;
        let a_int = activation_bytes_full(&cfg, 1, 8) as f64 - a_in;
        let l = 8.0; // one stage of 8 layers
        let c = optimal_checkpoints(a_in, a_int, l);
        assert!(
            c >= l / 2.0,
            "optimal c {c} for l={l}: expect ≥ every-2-layers"
        );
    }

    #[test]
    fn trillion_checkpoint_is_13_8_terabytes() {
        // §5.10: "the trillion-parameter model has a checkpoint of size
        // 13.8 terabytes".
        let cfg = zoo::gpt_1t();
        let tb = checkpoint_bytes(&cfg) as f64 / 1e12;
        assert!((tb - 13.8).abs() < 0.6, "got {tb} TB");
    }

    #[test]
    fn in_flight_scaling_is_linear() {
        let cfg = GptConfig::paper("m", 8, 3072, 32);
        let one = total_bytes_per_gpu(&cfg, 2, 2, 1, 1, true);
        let four = total_bytes_per_gpu(&cfg, 2, 2, 1, 4, true);
        let per_mb = cfg.num_layers / 2 * activation_bytes_recompute(&cfg, 1);
        assert_eq!(four - one, 3 * per_mb);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn rejects_uneven_stage_split() {
        let cfg = GptConfig::paper("m", 10, 3072, 32);
        params_per_gpu(&cfg, 4, 1, 0);
    }
}
