//! Transformer (GPT) model descriptions.
//!
//! Everything the rest of the system needs to know about a model, derived
//! from the five architectural knobs the paper uses (§5): number of layers
//! `l`, hidden size `h`, attention heads `a`, sequence length `s`, and
//! vocabulary size `V`.
//!
//! - [`GptConfig`]: the configuration plus exact and closed-form (paper
//!   Eq. 2) parameter counts and FLOP counts (paper Eq. 3 and the appendix
//!   breakdown).
//! - [`zoo`]: every named model in the paper's evaluation (Table 1 rows,
//!   GPT-3 175B, the 530B/162B/91B/5.9B/145B microbenchmark models).
//! - [`ops`]: per-layer operation lists (GEMMs, element-wise kernels,
//!   tensor-parallel all-reduces) for a given microbatch size and
//!   tensor-parallel degree — the input to the compute-time model.
//! - [`memory`]: weight/gradient/optimizer-state and activation memory
//!   accounting, including the §3.5 activation-recomputation model.

mod config;
pub mod memory;
pub mod ops;
pub mod zoo;

pub use config::GptConfig;

/// Bytes per element in mixed-precision training (fp16 activations/weights).
pub const BYTES_FP16: u64 = 2;
/// Bytes per element for fp32 master state.
pub const BYTES_FP32: u64 = 4;
