//! Every named model configuration in the paper's evaluation.

use crate::GptConfig;

/// One row of the paper's Table 1 (weak-scaling study), together with the
/// parallelization the paper used and the throughput it reported.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Model architecture.
    pub config: GptConfig,
    /// Tensor-model-parallel size `t`.
    pub tensor_parallel: u64,
    /// Pipeline-model-parallel size `p`.
    pub pipeline_parallel: u64,
    /// Total GPUs `n` (data-parallel size is `n / (t·p)`).
    pub n_gpus: u64,
    /// Global batch size `B`.
    pub batch_size: u64,
    /// Paper-reported achieved teraFLOP/s per GPU.
    pub paper_tflops_per_gpu: f64,
    /// Paper-reported percentage of theoretical peak.
    pub paper_pct_peak: f64,
    /// Paper-reported aggregate petaFLOP/s.
    pub paper_aggregate_pflops: f64,
}

/// All ten rows of Table 1, from 1.7 billion to 1 trillion parameters.
/// Raw Table 1 row: (billions, heads, hidden, layers, t, p, n, B, TF/s, %, PF/s).
type RawRow = (f64, u64, u64, u64, u64, u64, u64, u64, f64, f64, f64);

pub fn table1() -> Vec<Table1Row> {
    let rows: [RawRow; 10] = [
        (1.7, 24, 2304, 24, 1, 1, 32, 512, 137.0, 44.0, 4.4),
        (3.6, 32, 3072, 30, 2, 1, 64, 512, 138.0, 44.0, 8.8),
        (7.5, 32, 4096, 36, 4, 1, 128, 512, 142.0, 46.0, 18.2),
        (18.4, 48, 6144, 40, 8, 1, 256, 1024, 135.0, 43.0, 34.6),
        (39.1, 64, 8192, 48, 8, 2, 512, 1536, 138.0, 44.0, 70.8),
        (76.1, 80, 10240, 60, 8, 4, 1024, 1792, 140.0, 45.0, 143.8),
        (145.6, 96, 12288, 80, 8, 8, 1536, 2304, 148.0, 47.0, 227.1),
        (310.1, 128, 16384, 96, 8, 16, 1920, 2160, 155.0, 50.0, 297.4),
        (
            529.6, 128, 20480, 105, 8, 35, 2520, 2520, 163.0, 52.0, 410.2,
        ),
        (
            1008.0, 160, 25600, 128, 8, 64, 3072, 3072, 163.0, 52.0, 502.0,
        ),
    ];
    rows.iter()
        .map(|&(b, heads, h, l, t, p, n, batch, tf, pct, pf)| Table1Row {
            config: GptConfig::paper(&format!("GPT {b}B"), l, h, heads),
            tensor_parallel: t,
            pipeline_parallel: p,
            n_gpus: n,
            batch_size: batch,
            paper_tflops_per_gpu: tf,
            paper_pct_peak: pct,
            paper_aggregate_pflops: pf,
        })
        .collect()
}

/// GPT-3: 175 (174.6) billion parameters — 96 layers, hidden 12288, 96 heads
/// (§5.2, §5.3.2, §5.7).
pub fn gpt3_175b() -> GptConfig {
    GptConfig::paper("GPT-3 175B", 96, 12288, 96)
}

/// The 530-billion-parameter model of Table 1 / Table 2: 105 layers, hidden
/// 20480, 128 heads.
pub fn gpt_530b() -> GptConfig {
    GptConfig::paper("GPT 530B", 105, 20480, 128)
}

/// The trillion-parameter model of Table 1: 128 layers, hidden 25600,
/// 160 heads.
pub fn gpt_1t() -> GptConfig {
    GptConfig::paper("GPT 1T", 128, 25600, 160)
}

/// The 5.9-billion-parameter model of Figures 14 and 15: 32 layers, hidden
/// 3840, 32 heads.
pub fn gpt_5p9b() -> GptConfig {
    GptConfig::paper("GPT 5.9B", 32, 3840, 32)
}

/// The 91-billion-parameter model of Figure 16 ((t,p) = (8,8)). The paper
/// does not spell out the architecture; 72 layers at hidden 10240 with 80
/// heads gives 91.2B parameters and divides evenly into 8 pipeline stages.
pub fn gpt_91b() -> GptConfig {
    GptConfig::paper("GPT 91B", 72, 10240, 80)
}

/// The 145-billion-parameter model of Figure 17: 80 layers, hidden 12288,
/// 96 heads (same architecture as Table 1's 145.6B row).
pub fn gpt_145b() -> GptConfig {
    GptConfig::paper("GPT 145B", 80, 12288, 96)
}

/// The 162.2-billion-parameter model of Figure 13: 32 layers, hidden 20480,
/// 128 heads ("32 transformer layers to support pipeline-parallel size 32").
pub fn gpt_162b() -> GptConfig {
    GptConfig::paper("GPT 162.2B", 32, 20480, 128)
}

/// The 1-billion-parameter microbenchmark model of Figures 7 and 8:
/// 4 layers, hidden 4096, 128 attention heads.
pub fn gpt_1b_microbench() -> GptConfig {
    GptConfig::paper("GPT 1B (Fig 7/8)", 4, 4096, 128)
}

/// The Figure 11 weak-scaling family: hidden 20480, 128 heads, `3·p` layers
/// for pipeline-parallel size `p` (p=1 → 3 layers / 15B params, p=8 → 24
/// layers / 121B params).
pub fn pipeline_weak_scaling(p: u64) -> GptConfig {
    GptConfig::paper(&format!("GPT weak-p{p}"), 3 * p, 20480, 128)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_match_reported_param_counts() {
        for row in table1() {
            let want = row
                .config
                .name
                .trim_start_matches("GPT ")
                .trim_end_matches('B')
                .parse::<f64>()
                .unwrap()
                * 1e9;
            let got = row.config.params_eq2();
            assert!(
                (got - want).abs() / want < 0.035,
                "{}: got {got:.4e} want {want:.4e}",
                row.config.name
            );
        }
    }

    #[test]
    fn table1_gpu_counts_factor() {
        for row in table1() {
            assert_eq!(
                row.n_gpus % (row.tensor_parallel * row.pipeline_parallel),
                0,
                "{}",
                row.config.name
            );
        }
    }

    #[test]
    fn named_models_hit_their_sizes() {
        let cases: [(GptConfig, f64); 6] = [
            (gpt3_175b(), 174.6e9),
            (gpt_530b(), 529.6e9),
            (gpt_1t(), 1008.0e9),
            (gpt_5p9b(), 5.9e9),
            (gpt_162b(), 162.2e9),
            (gpt_91b(), 91.0e9),
        ];
        for (cfg, want) in cases {
            let got = cfg.params_eq2();
            assert!(
                (got - want).abs() / want < 0.015,
                "{}: got {got:.4e} want {want:.4e}",
                cfg.name
            );
        }
    }

    #[test]
    fn fig11_family_endpoints() {
        let p1 = pipeline_weak_scaling(1);
        assert!((p1.params_eq2() - 15e9).abs() / 15e9 < 0.1);
        let p8 = pipeline_weak_scaling(8);
        assert!((p8.params_eq2() - 121e9).abs() / 121e9 < 0.05);
    }

    #[test]
    fn microbench_model_is_one_billion() {
        let p = gpt_1b_microbench().params_eq2();
        assert!((p - 1.0e9).abs() / 1.0e9 < 0.1, "got {p:.3e}");
    }
}
