//! GPT model configuration and the paper's closed-form formulas.

/// Architecture of a GPT-style decoder-only transformer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GptConfig {
    /// Display name (e.g. `"GPT 175B"`).
    pub name: String,
    /// Number of transformer layers, `l`.
    pub num_layers: u64,
    /// Hidden size, `h`.
    pub hidden_size: u64,
    /// Attention heads, `a` (must divide `h`).
    pub num_heads: u64,
    /// Sequence length, `s` (2048 everywhere in the paper).
    pub seq_len: u64,
    /// Vocabulary size, `V` (51,200 everywhere in the paper).
    pub vocab_size: u64,
}

impl GptConfig {
    /// A model with the paper's fixed `s = 2048`, `V = 51200`.
    pub fn paper(name: &str, num_layers: u64, hidden_size: u64, num_heads: u64) -> Self {
        let cfg = GptConfig {
            name: name.to_string(),
            num_layers,
            hidden_size,
            num_heads,
            seq_len: 2048,
            vocab_size: 51200,
        };
        cfg.validate();
        cfg
    }

    /// Panic if the configuration is internally inconsistent.
    pub fn validate(&self) {
        assert!(self.num_layers > 0, "need at least one layer");
        assert!(
            self.num_heads > 0 && self.hidden_size.is_multiple_of(self.num_heads),
            "heads ({}) must divide hidden size ({})",
            self.num_heads,
            self.hidden_size
        );
        assert!(self.seq_len > 0 && self.vocab_size > 0);
    }

    /// Dimension of one attention head, `h / a`.
    pub fn head_dim(&self) -> u64 {
        self.hidden_size / self.num_heads
    }

    /// Exact parameter count by enumerating every weight and bias tensor:
    /// token + position embeddings, per-layer attention (QKV + output
    /// projection), MLP (h→4h→h), two LayerNorms per layer, and the final
    /// LayerNorm. The LM head is tied to the token embedding.
    pub fn params_exact(&self) -> u64 {
        let (l, h, s, v) = (
            self.num_layers,
            self.hidden_size,
            self.seq_len,
            self.vocab_size,
        );
        let embeddings = v * h + s * h;
        let attn = h * 3 * h + 3 * h + h * h + h; // QKV w+b, proj w+b
        let mlp = h * 4 * h + 4 * h + 4 * h * h + h; // fc1 w+b, fc2 w+b
        let layer_norms = 2 * (2 * h); // two LNs, scale+shift each
        let per_layer = attn + mlp + layer_norms;
        embeddings + l * per_layer + 2 * h // final LayerNorm
    }

    /// Paper Eq. 2: `P = 12 l h² (1 + 13/(12h) + (V+s)/(12lh))`.
    pub fn params_eq2(&self) -> f64 {
        let (l, h, s, v) = (
            self.num_layers as f64,
            self.hidden_size as f64,
            self.seq_len as f64,
            self.vocab_size as f64,
        );
        12.0 * l * h * h * (1.0 + 13.0 / (12.0 * h) + (v + s) / (12.0 * l * h))
    }

    /// Paper Eq. 3: FLOPs per training iteration at global batch size `B`,
    /// *with* activation recomputation (the extra forward pass included):
    /// `F = 96 B s l h² (1 + s/(6h) + V/(16lh))`.
    pub fn flops_per_iteration_eq3(&self, batch: u64) -> f64 {
        let (l, h, s, v) = (
            self.num_layers as f64,
            self.hidden_size as f64,
            self.seq_len as f64,
            self.vocab_size as f64,
        );
        let b = batch as f64;
        96.0 * b * s * l * h * h * (1.0 + s / (6.0 * h) + v / (16.0 * l * h))
    }

    /// FLOPs per iteration from the appendix breakdown, selectable
    /// recomputation. Forward per layer: `24Bsh² + 4Bs²h`; backward is 2×
    /// forward; recomputation adds one more forward for transformer layers.
    /// Logit layer: `2BshV` forward + `4BshV` backward (never recomputed).
    pub fn flops_per_iteration(&self, batch: u64, recompute: bool) -> f64 {
        let (l, h, s, v) = (
            self.num_layers as f64,
            self.hidden_size as f64,
            self.seq_len as f64,
            self.vocab_size as f64,
        );
        let b = batch as f64;
        let layer_fwd = 24.0 * b * s * h * h + 4.0 * b * s * s * h;
        let multiplier = if recompute { 4.0 } else { 3.0 };
        l * layer_fwd * multiplier + 6.0 * b * s * h * v
    }

    /// "Model FLOPs" per iteration: forward + backward only (3× forward),
    /// the convention for reporting *useful* work when recomputation is off.
    pub fn model_flops_per_iteration(&self, batch: u64) -> f64 {
        self.flops_per_iteration(batch, false)
    }

    /// Inference FLOPs to decode one token with `context` tokens already in
    /// the KV cache (the new token attends to `context + 1` positions).
    /// Per layer: `24h²` dense work plus `4·(context+1)·h` attention
    /// score/value work, then `2hV` for the logit row. Batch size 1 — the
    /// per-row cost is what a serving scheduler multiplies by batch rows.
    pub fn flops_per_decode_token(&self, context: u64) -> f64 {
        let (l, h, v) = (
            self.num_layers as f64,
            self.hidden_size as f64,
            self.vocab_size as f64,
        );
        let attended = (context + 1) as f64;
        l * (24.0 * h * h + 4.0 * attended * h) + 2.0 * h * v
    }

    /// Inference FLOPs for a full prefill of `prompt` tokens followed by
    /// sampling one token from the last position: the sum of
    /// [`flops_per_decode_token`] over each position's context — causal
    /// attention makes prefill exactly the batched union of the per-token
    /// decodes, except only one logit row is computed.
    pub fn flops_prefill(&self, prompt: u64) -> f64 {
        let (l, h, v) = (
            self.num_layers as f64,
            self.hidden_size as f64,
            self.vocab_size as f64,
        );
        let s = prompt as f64;
        // Σ_{p=0..prompt-1} (p+1) = prompt(prompt+1)/2 attended positions.
        let attended = s * (s + 1.0) / 2.0;
        l * (24.0 * h * h * s + 4.0 * attended * h) + 2.0 * h * v
    }

    /// Estimated end-to-end training time in seconds for `tokens` training
    /// tokens on `n_gpus` GPUs at `achieved_flops_per_gpu` (paper Eq. 4:
    /// `time ≈ 8TP/(nX)`).
    pub fn training_time_eq4(&self, tokens: f64, n_gpus: f64, achieved_flops_per_gpu: f64) -> f64 {
        8.0 * tokens * self.params_eq2() / (n_gpus * achieved_flops_per_gpu)
    }

    /// Exact end-to-end training time: iterations × (FLOPs / aggregate
    /// throughput), with recomputation on.
    pub fn training_time_exact(
        &self,
        tokens: f64,
        batch: u64,
        n_gpus: f64,
        achieved_flops_per_gpu: f64,
    ) -> f64 {
        let iters = tokens / (batch as f64 * self.seq_len as f64);
        iters * self.flops_per_iteration_eq3(batch) / (n_gpus * achieved_flops_per_gpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq2_matches_exact_count_closely() {
        for (l, h, a) in [(24, 2304, 24), (96, 12288, 96), (128, 25600, 160)] {
            let cfg = GptConfig::paper("m", l, h, a);
            let exact = cfg.params_exact() as f64;
            let eq2 = cfg.params_eq2();
            let rel = (exact - eq2).abs() / exact;
            // Eq. 2 omits only the final LayerNorm (2h params).
            assert!(rel < 1e-4, "l={l} h={h}: exact {exact} eq2 {eq2}");
        }
    }

    #[test]
    fn table1_parameter_counts() {
        // Spot-check Table 1's "number of parameters" column.
        let checks = [
            (24u64, 2304u64, 24u64, 1.7e9),
            (36, 4096, 32, 7.5e9),
            (80, 12288, 96, 145.6e9),
            (105, 20480, 128, 529.6e9),
            (128, 25600, 160, 1008.0e9),
        ];
        for (l, h, a, want) in checks {
            let got = GptConfig::paper("m", l, h, a).params_eq2();
            let rel = (got - want).abs() / want;
            assert!(rel < 0.035, "l={l} h={h}: got {got:.3e} want {want:.3e}");
        }
    }

    #[test]
    fn gpt3_is_175b() {
        let cfg = GptConfig::paper("GPT-3", 96, 12288, 96);
        let p = cfg.params_eq2();
        assert!((p - 175e9).abs() / 175e9 < 0.20, "got {p:.3e}");
        // The paper quotes this architecture as 174.6B in Table 2.
        assert!((p - 174.6e9).abs() / 174.6e9 < 0.01, "got {p:.3e}");
    }

    #[test]
    fn eq3_matches_appendix_breakdown_with_recompute() {
        let cfg = GptConfig::paper("m", 96, 12288, 96);
        let b = 1536;
        let eq3 = cfg.flops_per_iteration_eq3(b);
        let appendix = cfg.flops_per_iteration(b, true);
        assert!((eq3 - appendix).abs() / eq3 < 1e-12);
    }

    #[test]
    fn recompute_costs_one_extra_forward() {
        let cfg = GptConfig::paper("m", 24, 2304, 24);
        let with = cfg.flops_per_iteration(512, true);
        let without = cfg.flops_per_iteration(512, false);
        // Transformer-layer work scales 4/3; logit layer unchanged.
        assert!(with > without && with < without * 4.0 / 3.0 + 1.0);
    }

    #[test]
    fn eq4_close_to_exact_for_large_models() {
        // §5.1: GPT-3 175B, 300B tokens, 1024 GPUs at 140 TF/s → 34 days.
        let cfg = GptConfig::paper("GPT-3", 96, 12288, 96);
        let secs = cfg.training_time_eq4(300e9, 1024.0, 140e12);
        let days = secs / 86400.0;
        assert!((days - 34.0).abs() < 2.0, "got {days} days");
        let exact = cfg.training_time_exact(300e9, 1536, 1024.0, 140e12) / 86400.0;
        assert!(
            (days - exact).abs() / exact < 0.10,
            "eq4 {days} vs exact {exact}"
        );
    }

    #[test]
    fn trillion_model_training_time() {
        // §5.1: 1T params, 450B tokens, 3072 GPUs at 163 TF/s → 84 days.
        let cfg = GptConfig::paper("GPT 1T", 128, 25600, 160);
        let days = cfg.training_time_eq4(450e9, 3072.0, 163e12) / 86400.0;
        assert!((days - 84.0).abs() < 5.0, "got {days} days");
    }

    #[test]
    fn prefill_is_sum_of_decodes_minus_extra_logits() {
        let cfg = GptConfig::paper("m", 24, 2304, 24);
        for prompt in [1u64, 7, 64, 2048] {
            let decode_sum: f64 = (0..prompt).map(|p| cfg.flops_per_decode_token(p)).sum();
            // Each decode step pays the 2hV logit row; prefill pays it once.
            let extra_logits =
                (prompt - 1) as f64 * 2.0 * cfg.hidden_size as f64 * cfg.vocab_size as f64;
            let want = cfg.flops_prefill(prompt) + extra_logits;
            assert!(
                (decode_sum - want).abs() / want < 1e-12,
                "prompt {prompt}: {decode_sum} vs {want}"
            );
        }
    }

    #[test]
    fn decode_flops_scale_with_context() {
        let cfg = GptConfig::paper("m", 24, 2304, 24);
        let short = cfg.flops_per_decode_token(0);
        let long = cfg.flops_per_decode_token(2047);
        assert!(long > short);
        // The gap is exactly the extra attention reads: 4·Δctx·h per layer.
        let want_gap = cfg.num_layers as f64 * 4.0 * 2047.0 * cfg.hidden_size as f64;
        assert!(((long - short) - want_gap).abs() / want_gap < 1e-12);
    }

    #[test]
    fn prefill_matches_training_forward_shape() {
        // A full-seq prefill should cost on the order of one forward pass of
        // the training formula at batch 1 (which counts all logit rows and
        // both QKV-sized terms the same way).
        let cfg = GptConfig::paper("m", 24, 2304, 24);
        let prefill = cfg.flops_prefill(cfg.seq_len);
        let train_fwd = cfg.flops_per_iteration(1, false) / 3.0;
        let ratio = prefill / train_fwd;
        assert!((0.5..=1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "heads")]
    fn rejects_bad_heads() {
        GptConfig::paper("bad", 2, 100, 7);
    }

    #[test]
    fn head_dim() {
        assert_eq!(GptConfig::paper("m", 2, 4096, 32).head_dim(), 128);
    }
}
