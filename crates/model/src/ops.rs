//! Per-layer operation lists for the Megatron tensor-parallel transformer.
//!
//! Mirrors §2.3 (tensor model parallelism) and §4.2 (computation
//! optimizations): every GEMM, element-wise kernel, and tensor-parallel
//! all-reduce a single tensor-parallel rank executes for one microbatch, in
//! order. The compute substrate (`megatron-cluster`) prices the GEMM and
//! element-wise ops; the network substrate prices the all-reduces.

use megatron_cluster::{GpuSpec, KernelCost};

use crate::{GptConfig, BYTES_FP16};

/// One device-level operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// (Strided-batched) GEMM: `batch` independent `m × k × n` products.
    Gemm { batch: u64, m: u64, k: u64, n: u64 },
    /// Element-wise kernel(s): `bytes` of HBM traffic over `kernels`
    /// launches.
    Elementwise { bytes: u64, kernels: u32 },
    /// Tensor-parallel all-reduce of `bytes` across the `t` ranks of this
    /// stage (the paper's `g` operator forward / `f` operator backward).
    TensorAllReduce { bytes: u64 },
}

/// Knobs for building op lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpListParams {
    /// Microbatch size `b`.
    pub microbatch: u64,
    /// Tensor-model-parallel size `t` (must divide heads and 4h).
    pub tensor_parallel: u64,
    /// §4.2 operator fusion (bias+GeLU, bias+dropout+add, fused
    /// scale/mask/softmax) and the `[s, b, a, h]` layout enabling strided
    /// batched GEMMs.
    pub fused: bool,
}

impl OpListParams {
    /// Serial execution: t = 1, fusion on.
    pub fn serial(microbatch: u64) -> Self {
        OpListParams {
            microbatch,
            tensor_parallel: 1,
            fused: true,
        }
    }
}

/// Forward-pass op list for ONE transformer layer on one tensor-parallel
/// rank.
pub fn layer_forward(cfg: &GptConfig, p: OpListParams) -> Vec<Op> {
    let (b, t) = (p.microbatch, p.tensor_parallel);
    let (h, a, s) = (cfg.hidden_size, cfg.num_heads, cfg.seq_len);
    assert!(a % t == 0, "tensor-parallel size {t} must divide heads {a}");
    assert!((4 * h) % t == 0, "tensor-parallel size {t} must divide 4h");
    let rows = b * s;
    let hd = cfg.head_dim();
    let heads_local = a / t;
    let e = BYTES_FP16;
    let mut ops = Vec::with_capacity(16);

    // --- Self-attention block ---
    // LayerNorm: read + write b·s·h.
    ops.push(Op::Elementwise {
        bytes: 2 * rows * h * e,
        kernels: 1,
    });
    // Fused QKV projection (column-parallel): (b·s × h) × (h × 3h/t).
    ops.push(Op::Gemm {
        batch: 1,
        m: rows,
        k: h,
        n: 3 * h / t,
    });
    if !p.fused {
        // Without the [s,b,a,h] data layout, Q/K/V must be transposed into
        // head-major form before the batched GEMMs (memory-intensive
        // transposes the paper's first computation optimization removes).
        ops.push(Op::Elementwise {
            bytes: 4 * rows * h * e,
            kernels: 2,
        });
    }
    // Attention scores QKᵀ: batched over b·(a/t) heads, (s × hd × s).
    ops.push(Op::Gemm {
        batch: b * heads_local,
        m: s,
        k: hd,
        n: s,
    });
    // Scale + causal mask + softmax on b·(a/t)·s² attention probabilities.
    let probs = b * heads_local * s * s * e;
    if p.fused {
        // One custom kernel (§4.2): read scores, write probabilities.
        ops.push(Op::Elementwise {
            bytes: 2 * probs,
            kernels: 1,
        });
    } else {
        // Pre-optimization path: scale, mask, and softmax as separate
        // kernels, upcast to fp32 (doubling traffic), plus the
        // [b,s,a,h]-layout transpose the §4.2 data-layout change removes.
        ops.push(Op::Elementwise {
            bytes: 12 * probs,
            kernels: 4,
        });
    }
    // Attention-probability dropout (not fused with the softmax kernel).
    ops.push(Op::Elementwise {
        bytes: 2 * probs,
        kernels: 1,
    });
    // Attention over values: batched (s × s × hd).
    ops.push(Op::Gemm {
        batch: b * heads_local,
        m: s,
        k: s,
        n: hd,
    });
    // Output projection (row-parallel): (b·s × h/t) × (h/t × h).
    ops.push(Op::Gemm {
        batch: 1,
        m: rows,
        k: h / t,
        n: h,
    });
    // g operator: all-reduce of the projection output across t ranks.
    if t > 1 {
        ops.push(Op::TensorAllReduce {
            bytes: rows * h * e,
        });
    }
    // bias + dropout + residual add.
    ops.push(dropout_add(rows * h * e, p.fused));

    // --- MLP block ---
    ops.push(Op::Elementwise {
        bytes: 2 * rows * h * e,
        kernels: 1,
    }); // LayerNorm
    ops.push(Op::Gemm {
        batch: 1,
        m: rows,
        k: h,
        n: 4 * h / t,
    });
    // bias + GeLU on the 4h/t intermediate.
    let inter = rows * (4 * h / t) * e;
    if p.fused {
        ops.push(Op::Elementwise {
            bytes: 2 * inter,
            kernels: 1,
        });
    } else {
        // Separate bias-add and GeLU kernels in fp32.
        ops.push(Op::Elementwise {
            bytes: 8 * inter,
            kernels: 2,
        });
    }
    ops.push(Op::Gemm {
        batch: 1,
        m: rows,
        k: 4 * h / t,
        n: h,
    });
    if t > 1 {
        ops.push(Op::TensorAllReduce {
            bytes: rows * h * e,
        });
    }
    ops.push(dropout_add(rows * h * e, p.fused));

    ops
}

fn dropout_add(tensor_bytes: u64, fused: bool) -> Op {
    if fused {
        // bias+dropout+add fused: read input, read residual, write output.
        Op::Elementwise {
            bytes: 3 * tensor_bytes,
            kernels: 1,
        }
    } else {
        // bias-add, dropout (with mask materialization), and residual-add
        // as three fp32 read+write passes.
        Op::Elementwise {
            bytes: 12 * tensor_bytes,
            kernels: 3,
        }
    }
}

/// Backward-pass op list for ONE transformer layer on one tensor-parallel
/// rank. Every forward GEMM becomes two GEMMs (grad-input and grad-weight)
/// of equal FLOPs; the `f` operator all-reduces grad-input at the two
/// block entries; element-wise backward traffic mirrors forward.
pub fn layer_backward(cfg: &GptConfig, p: OpListParams) -> Vec<Op> {
    let mut ops = Vec::with_capacity(24);
    for op in layer_forward(cfg, p).into_iter().rev() {
        match op {
            Op::Gemm { batch, m, k, n } => {
                // dX = dY · Wᵀ : (m × n × k); dW = Xᵀ · dY : (k × m × n).
                ops.push(Op::Gemm {
                    batch,
                    m,
                    k: n,
                    n: k,
                });
                ops.push(Op::Gemm {
                    batch,
                    m: k,
                    k: m,
                    n,
                });
            }
            Op::Elementwise { bytes, kernels } => {
                ops.push(Op::Elementwise { bytes, kernels });
            }
            // The conjugate `f` operator: identity forward, all-reduce
            // backward, at each block *entry*. Its cost equals the two `g`
            // all-reduces we traverse here in reverse.
            Op::TensorAllReduce { bytes } => ops.push(Op::TensorAllReduce { bytes }),
        }
    }
    ops
}

/// Embedding lookup + positional add for one microbatch (first stage only).
pub fn embedding_forward(cfg: &GptConfig, p: OpListParams) -> Vec<Op> {
    let rows = p.microbatch * cfg.seq_len;
    vec![Op::Elementwise {
        bytes: 3 * rows * cfg.hidden_size * BYTES_FP16,
        kernels: 1,
    }]
}

/// Embedding backward (scatter-add of gradients).
pub fn embedding_backward(cfg: &GptConfig, p: OpListParams) -> Vec<Op> {
    let rows = p.microbatch * cfg.seq_len;
    vec![Op::Elementwise {
        bytes: 2 * rows * cfg.hidden_size * BYTES_FP16,
        kernels: 1,
    }]
}

/// Final LayerNorm + vocab-parallel logit GEMM + cross-entropy for one
/// microbatch (last stage only).
pub fn logit_forward(cfg: &GptConfig, p: OpListParams) -> Vec<Op> {
    let (b, t) = (p.microbatch, p.tensor_parallel);
    let rows = b * cfg.seq_len;
    let (h, v) = (cfg.hidden_size, cfg.vocab_size);
    let mut ops = vec![
        Op::Elementwise {
            bytes: 2 * rows * h * BYTES_FP16,
            kernels: 1,
        },
        Op::Gemm {
            batch: 1,
            m: rows,
            k: h,
            n: v / t,
        },
        // Vocab-parallel cross-entropy: one pass over the logit shard plus a
        // (tiny) all-reduce of per-token max/sum statistics.
        Op::Elementwise {
            bytes: 2 * rows * (v / t) * BYTES_FP16,
            kernels: 1,
        },
    ];
    if t > 1 {
        ops.push(Op::TensorAllReduce {
            bytes: 2 * rows * BYTES_FP16,
        });
    }
    ops
}

/// Logit-layer backward for one microbatch.
pub fn logit_backward(cfg: &GptConfig, p: OpListParams) -> Vec<Op> {
    let (b, t) = (p.microbatch, p.tensor_parallel);
    let rows = b * cfg.seq_len;
    let (h, v) = (cfg.hidden_size, cfg.vocab_size);
    vec![
        Op::Elementwise {
            bytes: 2 * rows * (v / t) * BYTES_FP16,
            kernels: 1,
        },
        Op::Gemm {
            batch: 1,
            m: rows,
            k: v / t,
            n: h,
        },
        Op::Gemm {
            batch: 1,
            m: h,
            k: rows,
            n: v / t,
        },
        Op::Elementwise {
            bytes: 2 * rows * h * BYTES_FP16,
            kernels: 1,
        },
    ]
}

/// Sum of FLOPs in an op list (GEMMs only — the paper's convention).
pub fn list_flops(ops: &[Op]) -> f64 {
    ops.iter()
        .map(|op| match *op {
            Op::Gemm { batch, m, k, n } => 2.0 * (batch * m * k * n) as f64,
            _ => 0.0,
        })
        .sum()
}

/// Price the *local* (non-collective) ops of a list on `gpu`, counting
/// all-reduce bytes separately.
///
/// Returns `(local_cost, all_reduce_bytes)`.
pub fn price_local(ops: &[Op], gpu: &GpuSpec) -> (KernelCost, u64) {
    let mut cost = KernelCost::ZERO;
    let mut ar_bytes = 0u64;
    for op in ops {
        match *op {
            Op::Gemm { batch, m, k, n } => {
                cost = cost.then(gpu.batched_gemm(batch, m, k, n, BYTES_FP16, true));
            }
            Op::Elementwise { bytes, kernels } => {
                cost = cost.then(gpu.elementwise(bytes, kernels));
            }
            Op::TensorAllReduce { bytes } => ar_bytes += bytes,
        }
    }
    (cost, ar_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    fn cfg() -> GptConfig {
        GptConfig::paper("test", 4, 3072, 32)
    }

    #[test]
    fn forward_flops_match_appendix_formula() {
        // Appendix: forward FLOPs per layer = 24Bsh² + 4Bs²h (t = 1).
        let cfg = cfg();
        let b = 4;
        let ops = layer_forward(&cfg, OpListParams::serial(b));
        let got = list_flops(&ops);
        let (s, h) = (cfg.seq_len as f64, cfg.hidden_size as f64);
        let want = 24.0 * b as f64 * s * h * h + 4.0 * b as f64 * s * s * h;
        assert!((got - want).abs() / want < 1e-12, "got {got} want {want}");
    }

    #[test]
    fn backward_flops_are_twice_forward() {
        let cfg = cfg();
        let p = OpListParams::serial(2);
        let f = list_flops(&layer_forward(&cfg, p));
        let b = list_flops(&layer_backward(&cfg, p));
        assert!((b - 2.0 * f).abs() / f < 1e-12);
    }

    #[test]
    fn tensor_parallel_splits_gemm_flops_evenly() {
        let cfg = cfg();
        let serial = list_flops(&layer_forward(&cfg, OpListParams::serial(2)));
        for t in [2u64, 4, 8] {
            let p = OpListParams {
                microbatch: 2,
                tensor_parallel: t,
                fused: true,
            };
            let shard = list_flops(&layer_forward(&cfg, p));
            assert!(
                (shard * t as f64 - serial).abs() / serial < 1e-12,
                "t={t}: shard {shard} serial {serial}"
            );
        }
    }

    #[test]
    fn two_all_reduces_per_layer_forward_and_backward() {
        // §2.3: "two all-reduce operations in the forward pass and two in
        // the backward pass".
        let cfg = cfg();
        let p = OpListParams {
            microbatch: 2,
            tensor_parallel: 4,
            fused: true,
        };
        let count = |ops: &[Op]| {
            ops.iter()
                .filter(|o| matches!(o, Op::TensorAllReduce { .. }))
                .count()
        };
        assert_eq!(count(&layer_forward(&cfg, p)), 2);
        assert_eq!(count(&layer_backward(&cfg, p)), 2);
    }

    #[test]
    fn all_reduce_bytes_are_bsh_each() {
        let cfg = cfg();
        let b = 2u64;
        let p = OpListParams {
            microbatch: b,
            tensor_parallel: 4,
            fused: true,
        };
        let expected = b * cfg.seq_len * cfg.hidden_size * BYTES_FP16;
        for op in layer_forward(&cfg, p) {
            if let Op::TensorAllReduce { bytes } = op {
                assert_eq!(bytes, expected);
            }
        }
    }

    #[test]
    fn no_all_reduce_when_serial() {
        let cfg = cfg();
        let ops = layer_forward(&cfg, OpListParams::serial(2));
        assert!(ops.iter().all(|o| !matches!(o, Op::TensorAllReduce { .. })));
    }

    #[test]
    fn fusion_reduces_kernels_and_bytes() {
        let cfg = cfg();
        let mk = |fused| OpListParams {
            microbatch: 2,
            tensor_parallel: 1,
            fused,
        };
        let sum = |ops: &[Op]| {
            ops.iter().fold((0u64, 0u32), |(by, ks), o| match *o {
                Op::Elementwise { bytes, kernels } => (by + bytes, ks + kernels),
                _ => (by, ks),
            })
        };
        let (fb, fk) = sum(&layer_forward(&cfg, mk(true)));
        let (ub, uk) = sum(&layer_forward(&cfg, mk(false)));
        assert!(fb < ub, "fused bytes {fb} vs unfused {ub}");
        assert!(fk < uk, "fused kernels {fk} vs unfused {uk}");
    }

    #[test]
    fn full_iteration_flops_match_eq3() {
        // Summing op-list FLOPs over layers + logit layer, ×3 for fwd+bwd,
        // ×recompute forward, must land on Eq. 3 for a real model.
        let cfg = zoo::gpt3_175b();
        let b = 4u64;
        let p = OpListParams::serial(b);
        let layer = list_flops(&layer_forward(&cfg, p));
        let logit = list_flops(&logit_forward(&cfg, p));
        // fwd + recompute fwd + bwd(2×) per layer; logit fwd + bwd only.
        let per_microbatch = cfg.num_layers as f64 * layer * 4.0 + logit * 3.0;
        let batch = 64u64;
        let total = per_microbatch * (batch / b) as f64;
        let eq3 = cfg.flops_per_iteration_eq3(batch);
        let rel = (total - eq3).abs() / eq3;
        assert!(
            rel < 0.01,
            "op-list {total:.4e} vs eq3 {eq3:.4e} (rel {rel})"
        );
    }

    #[test]
    fn price_local_counts_ar_bytes() {
        let cfg = cfg();
        let p = OpListParams {
            microbatch: 2,
            tensor_parallel: 4,
            fused: true,
        };
        let gpu = megatron_cluster::GpuSpec::a100_80gb();
        let (cost, ar) = price_local(&layer_forward(&cfg, p), &gpu);
        assert!(cost.seconds > 0.0);
        assert_eq!(ar, 2 * 2 * cfg.seq_len * cfg.hidden_size * BYTES_FP16);
    }

    #[test]
    #[should_panic(expected = "divide heads")]
    fn rejects_t_not_dividing_heads() {
        let cfg = GptConfig::paper("m", 2, 3072, 12);
        layer_forward(
            &cfg,
            OpListParams {
                microbatch: 1,
                tensor_parallel: 8,
                fused: true,
            },
        );
    }
}
