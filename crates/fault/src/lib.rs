//! Fault injection, failure recovery, and goodput modeling.
//!
//! Large-model training runs for weeks on thousands of GPUs; at that
//! scale failures are routine, and the paper's §5.10 measures the
//! checkpoint I/O that failure recovery leans on. This crate closes the
//! loop on both of the repo's worlds:
//!
//! - **Simulated world** ([`plan`], [`goodput`]): seeded [`FaultPlan`]s
//!   schedule GPU/node deaths, link degradation/flaps, and stragglers
//!   into the `megatron-sim` engine (via per-resource slowdown windows)
//!   and onto `megatron-net` link ports; [`GoodputModel`] composes the
//!   §5.10 checkpoint I/O model with an MTBF failure model to predict
//!   goodput and the Young/Daly optimal checkpoint interval for the
//!   Table 1 zoo.
//! - **Real world** ([`straggler`], plus `megatron_dist::train_with`):
//!   the thread-per-GPU trainer takes in-memory checkpoints, survives
//!   deliberate rank kills with clean errors instead of hangs, resumes
//!   bit-identically, and exports per-rank step times that
//!   [`StragglerReport`] turns into straggler diagnoses.

pub mod goodput;
pub mod plan;
pub mod straggler;

pub use goodput::{ElasticGoodputModel, GoodputModel, RecoveryMeasurement};
pub use plan::{FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultRates, DEATH_FACTOR};
pub use straggler::{RankStats, StragglerReport};

#[cfg(test)]
mod tests {
    use super::*;
    use megatron_core::{CheckpointIo, FilesystemSpec};
    use megatron_model::zoo;
    use megatron_sim::json::Json;
    use megatron_sim::{chrome_trace_json_with_instants, secs_to_time, DagSim};

    /// §5.10 pinned by hand: Megatron serializes fp16 weights + fp32
    /// master weights + two fp32 Adam moments = 14 bytes/param; Selene
    /// loads at the 1 TB/s filesystem peak (384 nodes × 43 GB/s of
    /// storage HCAs far exceeds it) and saves at 40 % of the 683 GB/s
    /// peak = 273.2 GB/s.
    #[test]
    fn section_5_10_hand_computed_values() {
        let cfg = zoo::gpt_1t();
        let fs = FilesystemSpec::selene();
        let io = CheckpointIo::estimate(&cfg, &fs, 384);
        let params = cfg.params_exact();
        assert_eq!(io.bytes, params * 14, "2 + 4 + 4 + 4 bytes per param");
        // The paper's headline: a 13.8 TB checkpoint for the 1T model.
        assert!(
            (io.bytes as f64 / 1e12 - 13.8).abs() < 0.6,
            "got {:.2} TB",
            io.bytes as f64 / 1e12
        );
        assert!((io.read_bandwidth - 1e12).abs() < f64::EPSILON);
        assert!((io.write_bandwidth - 273.2e9).abs() < 1e6);
        assert!((io.load_seconds - io.bytes as f64 / 1e12).abs() < 1e-9);
        assert!((io.save_seconds - io.bytes as f64 / 273.2e9).abs() < 1e-9);
    }

    #[test]
    fn injected_faults_appear_in_chrome_trace() {
        // A tiny simulated world with one straggler window: the exported
        // trace must contain the fault as an instant event with its own
        // category, alongside the ordinary task spans.
        let mut sim = DagSim::new();
        let g0 = sim.add_resource("gpu0");
        sim.add_task(g0, secs_to_time(2.0), &[], 1);
        let plan = FaultPlan {
            horizon_s: 10.0,
            events: vec![FaultEvent {
                at_s: 1.0,
                gpu: 0,
                kind: FaultKind::Straggler {
                    factor: 2.0,
                    duration_s: 5.0,
                },
            }],
        };
        let inj = FaultInjector {
            gpu_compute: &[g0],
            network: None,
            gpus_per_node: 8,
        };
        inj.apply(&mut sim, &plan);
        let result = sim.run().unwrap();
        let trace = chrome_trace_json_with_instants(
            &result,
            &|kind| format!("task-kind-{kind}"),
            &plan.instants(),
        );
        let parsed = Json::parse(&trace).unwrap();
        let events = parsed.as_array().unwrap();
        let faults: Vec<&Json> = events
            .iter()
            .filter(|e| e["cat"].as_str() == Some("fault"))
            .collect();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0]["ph"].as_str(), Some("i"));
        assert_eq!(faults[0]["name"].as_str(), Some("gpu0.straggler"));
        assert!(events.iter().any(|e| e["cat"].as_str() == Some("sim")));
    }

    #[test]
    fn real_trainer_step_times_feed_straggler_report() {
        // End-to-end across the real-world half: train a tiny model on
        // threads, then run the step-time log through the analyzer.
        use megatron_dist::{PtdpSpec, PtdpTrainer};
        use megatron_tensor::gpt::{GptModel, TinyGptConfig};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let cfg = TinyGptConfig {
            vocab: 13,
            seq: 6,
            hidden: 8,
            heads: 4,
            layers: 2,
        };
        let mut rng = StdRng::seed_from_u64(9);
        let master = GptModel::new(cfg, &mut rng);
        let data: Vec<(Vec<usize>, Vec<usize>)> = (0..3)
            .map(|_| {
                let toks = (0..4 * cfg.seq)
                    .map(|_| rng.gen_range(0..cfg.vocab))
                    .collect();
                let tgts = (0..4 * cfg.seq)
                    .map(|_| rng.gen_range(0..cfg.vocab))
                    .collect();
                (toks, tgts)
            })
            .collect();
        let mut spec = PtdpSpec::new(2, 1, 2);
        spec.microbatch = 1;
        let log = PtdpTrainer::new(master, spec).train(&data);
        let report = StragglerReport::analyze(&log.step_times, 1.2);
        assert_eq!(report.ranks.len(), 4, "one stats row per thread");
        for r in &report.ranks {
            assert_eq!(r.steps, 3);
            assert!(r.mean_s > 0.0 && r.max_s >= r.mean_s);
        }
        assert!(report.median_mean_s > 0.0);
    }
}
