//! Fault injection and goodput modeling (under construction).
