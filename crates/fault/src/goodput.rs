//! MTBF-driven goodput modeling and optimal checkpoint intervals.
//!
//! The paper's §5.10 measures checkpoint save/load bandwidth on Selene;
//! this module composes that I/O model (`megatron_core::checkpoint`) with
//! a classic first-order failure model to answer the operational question
//! it raises: *how often should a run of this size checkpoint, and how
//! much goodput survives at a given failure rate?*
//!
//! Model: failures arrive with cluster-wide mean time between failures
//! `M`. Checkpoints cost `δ` (the §5.10 save time) every `τ` seconds of
//! useful work; each failure costs a restart `R` (the §5.10 load time
//! plus job-relaunch overhead) and, on average, `τ/2` of lost work since
//! the last checkpoint. The goodput fraction is
//!
//! ```text
//! f(τ) = τ/(τ+δ) · (1 − (τ/2 + R)/M)
//! ```
//!
//! and the near-optimal interval is Young/Daly's `τ* = √(2δM)`.

use megatron_core::{CheckpointIo, FilesystemSpec};
use megatron_model::zoo::Table1Row;

/// First-order checkpoint/failure model of one training job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoodputModel {
    /// Cluster-wide mean time between failures, seconds.
    pub mtbf_s: f64,
    /// Checkpoint save cost, seconds (§5.10's `save_seconds`).
    pub save_s: f64,
    /// Restart cost per failure, seconds: checkpoint load plus job
    /// relaunch/requeue overhead.
    pub restart_s: f64,
}

impl GoodputModel {
    /// Build the model for one Table 1 row on a given filesystem: the
    /// checkpoint save/load times come from the §5.10 I/O model at the
    /// row's node count (Selene packs 8 GPUs per node).
    pub fn for_table1_row(
        row: &Table1Row,
        fs: &FilesystemSpec,
        mtbf_s: f64,
        relaunch_s: f64,
    ) -> Self {
        let nodes = (row.n_gpus as usize).div_ceil(8);
        let io = CheckpointIo::estimate(&row.config, fs, nodes);
        GoodputModel {
            mtbf_s,
            save_s: io.save_seconds,
            restart_s: io.load_seconds + relaunch_s,
        }
    }

    /// Goodput fraction at checkpoint interval `interval_s`, clamped to
    /// `[0, 1]` (a failure rate high enough to drive the expression
    /// negative means the job makes no progress at all).
    pub fn goodput(&self, interval_s: f64) -> f64 {
        assert!(interval_s > 0.0, "interval must be positive");
        let tau = interval_s;
        let useful = tau / (tau + self.save_s);
        let lost = (tau / 2.0 + self.restart_s) / self.mtbf_s;
        (useful * (1.0 - lost)).clamp(0.0, 1.0)
    }

    /// Fraction of wall-clock spent writing checkpoints at `interval_s`.
    pub fn checkpoint_overhead_fraction(&self, interval_s: f64) -> f64 {
        self.save_s / (interval_s + self.save_s)
    }

    /// Expected fraction of wall-clock lost to failures (half an interval
    /// of redone work plus the restart, per MTBF) at `interval_s`.
    pub fn lost_work_fraction(&self, interval_s: f64) -> f64 {
        ((interval_s / 2.0 + self.restart_s) / self.mtbf_s).min(1.0)
    }

    /// Young/Daly's near-optimal checkpoint interval `√(2δM)`, seconds.
    pub fn young_daly_interval(&self) -> f64 {
        (2.0 * self.save_s * self.mtbf_s).sqrt()
    }

    /// Brute-force the goodput-maximizing interval over a geometric grid
    /// of `steps` points spanning `[lo_s, hi_s]`. Ground truth for
    /// validating [`GoodputModel::young_daly_interval`].
    pub fn optimal_interval_brute_force(&self, lo_s: f64, hi_s: f64, steps: usize) -> f64 {
        assert!(lo_s > 0.0 && hi_s > lo_s && steps >= 2);
        let ratio = (hi_s / lo_s).powf(1.0 / (steps - 1) as f64);
        let mut best = (lo_s, self.goodput(lo_s));
        let mut tau = lo_s;
        for _ in 1..steps {
            tau *= ratio;
            let g = self.goodput(tau);
            if g > best.1 {
                best = (tau, g);
            }
        }
        best.0
    }
}

/// Elastic extension of [`GoodputModel`]: what shrink-and-continue is
/// worth against restart-at-full-topology when the cluster loses capacity
/// for a while.
///
/// An outage of `O` wall seconds forces a choice. The **elastic** policy
/// reconfigures onto the best degraded (p, t, d) and keeps training at
/// `relative_throughput` (ρ) of the full configuration, paying
/// `reconfigure_s` of cross-topology restore beyond what the base model
/// already charges per failure; the **restart** policy restores at the
/// full topology and therefore stalls for the whole outage. Both inherit
/// the base model's checkpoint-save and lost-work overheads. Elastic wins
/// exactly when the work recovered during the outage exceeds the extra
/// reconfiguration cost: `O·ρ > reconfigure_s`
/// ([`ElasticGoodputModel::break_even_outage_s`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElasticGoodputModel {
    /// The underlying checkpoint/failure model (saves, restores, MTBF).
    pub base: GoodputModel,
    /// Degraded-topology throughput relative to full, in (0, 1]. The sim
    /// cost model (`megatron_sim::elastic::CostModel`) predicts it; a real
    /// elastic run measures it as `clean_iter_s / degraded_iter_s`.
    pub relative_throughput: f64,
    /// Extra reconfiguration seconds the elastic policy pays beyond the
    /// base model's per-failure restart cost (typically the grow-side
    /// cross-topology restore; the shrink-side restore is the failure's
    /// ordinary restart, already priced by `base`).
    pub reconfigure_s: f64,
}

impl ElasticGoodputModel {
    /// Build the model from quantities a real elastic run measures: mean
    /// clean (full-topology) and degraded seconds per iteration, and the
    /// grow-side cross-topology restore cost. `ρ` becomes
    /// `clean_iter_s / degraded_iter_s`, clamped to (0, 1] so timer noise
    /// on a degraded segment that happens to run *faster* (tiny jobs)
    /// cannot produce an out-of-domain model.
    pub fn from_measured(
        base: GoodputModel,
        clean_iter_s: f64,
        degraded_iter_s: f64,
        reconfigure_s: f64,
    ) -> ElasticGoodputModel {
        assert!(
            clean_iter_s > 0.0 && degraded_iter_s > 0.0,
            "iteration times must be positive"
        );
        ElasticGoodputModel {
            base,
            relative_throughput: (clean_iter_s / degraded_iter_s).clamp(f64::MIN_POSITIVE, 1.0),
            reconfigure_s: reconfigure_s.max(0.0),
        }
    }

    /// Goodput of shrink-and-continue for a job of `useful_s` seconds of
    /// full-topology work, checkpointing every `interval_s`, through an
    /// outage of `outage_s` wall seconds. During the outage the job runs
    /// at `relative_throughput`, stretching wall-clock by
    /// `outage_s · (1 − ρ)` plus the reconfiguration cost.
    pub fn elastic_goodput(&self, interval_s: f64, useful_s: f64, outage_s: f64) -> f64 {
        assert!(useful_s > 0.0, "job must contain useful work");
        assert!(
            self.relative_throughput > 0.0 && self.relative_throughput <= 1.0,
            "relative throughput must be in (0, 1]"
        );
        let f = self.base.goodput(interval_s);
        if f <= 0.0 {
            return 0.0;
        }
        let (stretch, reconfigure) = if outage_s > 0.0 {
            (
                outage_s * (1.0 - self.relative_throughput),
                self.reconfigure_s,
            )
        } else {
            (0.0, 0.0)
        };
        (useful_s / (useful_s / f + stretch + reconfigure)).clamp(0.0, 1.0)
    }

    /// Goodput of the restart-at-full baseline over the same job: the
    /// outage is pure stall (its post-outage restore is the base model's
    /// ordinary per-failure restart cost).
    pub fn restart_goodput(&self, interval_s: f64, useful_s: f64, outage_s: f64) -> f64 {
        assert!(useful_s > 0.0, "job must contain useful work");
        let f = self.base.goodput(interval_s);
        if f <= 0.0 {
            return 0.0;
        }
        (useful_s / (useful_s / f + outage_s.max(0.0))).clamp(0.0, 1.0)
    }

    /// The outage duration above which elastic beats restart:
    /// `reconfigure_s / ρ`. Shorter outages are not worth the
    /// reconfiguration; longer ones are, strictly.
    pub fn break_even_outage_s(&self) -> f64 {
        self.reconfigure_s / self.relative_throughput
    }
}

/// Empirical recovery accounting from a real supervised run — the
/// measured counterpart of [`GoodputModel`]. The supervisor (in
/// `megatron-dist`) records wall time, per-incident lost work, restore
/// and backoff costs, and the checkpoint store records save windows; this
/// struct turns them into a measured goodput and a like-for-like analytic
/// prediction, so the Young/Daly model can be validated against the real
/// trainer instead of only asserted.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryMeasurement {
    /// Total wall-clock seconds of the supervised run (work + checkpoint
    /// saves + failure detection + restores + backoff).
    pub wall_s: f64,
    /// Iterations of the job (each executed at least once).
    pub n_iterations: usize,
    /// Mean seconds per iteration on the clean path (no failures, no
    /// checkpoint saves) — from the final successful attempt.
    pub clean_iter_s: f64,
    /// Failures the supervisor recovered from.
    pub n_failures: usize,
    /// Total completed iterations that had to be re-executed because they
    /// post-dated the restored checkpoints.
    pub lost_iterations: usize,
    /// Total seconds spent restoring durable checkpoints.
    pub restore_s_total: f64,
    /// Total seconds slept in restart backoff.
    pub backoff_s_total: f64,
    /// Total seconds of failure detection and relaunch overhead: failed
    /// attempts' wall time not accounted for by (re-)executed iterations
    /// or checkpoint saves.
    pub detect_s_total: f64,
    /// Total seconds of checkpoint save windows (first shard write →
    /// manifest commit), across all generations written.
    pub save_s_total: f64,
    /// Generations written.
    pub n_checkpoints: usize,
    /// Checkpoint interval in iterations.
    pub checkpoint_every_iters: usize,
}

impl RecoveryMeasurement {
    /// Measured goodput: the fraction of wall-clock that was irreducible
    /// useful work (`n_iterations` iterations at the clean per-iteration
    /// cost). Everything else — saves, re-executed work, detection,
    /// restores, backoff — is overhead.
    pub fn measured_goodput(&self) -> f64 {
        assert!(self.wall_s > 0.0, "wall time must be positive");
        (self.n_iterations as f64 * self.clean_iter_s / self.wall_s).clamp(0.0, 1.0)
    }

    /// An analytic model parameterized by the *measured* quantities: MTBF
    /// from the observed failure count over the useful-work span, save
    /// cost from the mean observed save window, restart cost from the
    /// mean observed restore + backoff (the relaunch analog).
    pub fn to_model(&self) -> GoodputModel {
        let useful_s = self.n_iterations as f64 * self.clean_iter_s;
        let mtbf_s = if self.n_failures == 0 {
            f64::INFINITY
        } else {
            useful_s / self.n_failures as f64
        };
        let save_s = if self.n_checkpoints == 0 {
            0.0
        } else {
            self.save_s_total / self.n_checkpoints as f64
        };
        let restart_s = if self.n_failures == 0 {
            0.0
        } else {
            (self.restore_s_total + self.backoff_s_total + self.detect_s_total)
                / self.n_failures as f64
        };
        GoodputModel {
            mtbf_s,
            save_s,
            restart_s,
        }
    }

    /// The measured run's checkpoint interval in seconds — `τ` for the
    /// analytic model.
    pub fn interval_s(&self) -> f64 {
        self.checkpoint_every_iters as f64 * self.clean_iter_s
    }

    /// [`GoodputModel::goodput`] of [`RecoveryMeasurement::to_model`] at
    /// the measured interval: what the Young/Daly model predicts for
    /// exactly the conditions the run experienced.
    pub fn predicted_goodput(&self) -> f64 {
        self.to_model().goodput(self.interval_s())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megatron_model::zoo;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn selene_1t(mtbf_s: f64) -> GoodputModel {
        let rows = zoo::table1();
        let row = rows.last().unwrap(); // the 1T row, 3072 GPUs / 384 nodes
        GoodputModel::for_table1_row(row, &FilesystemSpec::selene(), mtbf_s, 120.0)
    }

    #[test]
    fn trillion_row_inherits_section_5_10_costs() {
        let m = selene_1t(4.0 * 3600.0);
        // §5.10: ~50 s save at 273 GB/s, ~14 s load at 1 TB/s.
        assert!(m.save_s > 40.0 && m.save_s < 60.0, "save {}", m.save_s);
        assert!(
            m.restart_s > 120.0 + 10.0 && m.restart_s < 120.0 + 20.0,
            "restart {}",
            m.restart_s
        );
    }

    #[test]
    fn young_daly_matches_brute_force() {
        // Over a realistic MTBF range, √(2δM) must land within 15 % of the
        // brute-force optimum, and its goodput within 0.2 % — the optimum
        // is flat, which is exactly why the approximation is usable.
        for mtbf_h in [1.0, 4.0, 24.0, 24.0 * 7.0] {
            let m = selene_1t(mtbf_h * 3600.0);
            let yd = m.young_daly_interval();
            let bf = m.optimal_interval_brute_force(10.0, m.mtbf_s, 20_000);
            assert!(
                (yd - bf).abs() / bf < 0.15,
                "MTBF {mtbf_h} h: Young/Daly {yd:.0} s vs brute force {bf:.0} s"
            );
            assert!(
                m.goodput(yd) >= 0.998 * m.goodput(bf),
                "MTBF {mtbf_h} h: goodput {:.5} vs optimal {:.5}",
                m.goodput(yd),
                m.goodput(bf)
            );
        }
    }

    #[test]
    fn goodput_monotone_nonincreasing_as_mtbf_shrinks() {
        // Property: at the (per-MTBF) Young/Daly interval, goodput never
        // rises when failures get more frequent. Seeded random model
        // parameters in realistic ranges.
        let mut rng = StdRng::seed_from_u64(0x5eed_fa01);
        for case in 0..64 {
            let save_s = rng.gen_range(5.0..120.0);
            let restart_s = rng.gen_range(10.0..600.0);
            let mut prev = f64::INFINITY;
            // MTBF descending from 30 days to 30 minutes.
            let mut mtbf = 30.0 * 24.0 * 3600.0;
            while mtbf > 1800.0 {
                let m = GoodputModel {
                    mtbf_s: mtbf,
                    save_s,
                    restart_s,
                };
                let g = m.goodput(m.young_daly_interval());
                assert!(
                    g <= prev + 1e-12,
                    "case {case}: goodput rose from {prev} to {g} as MTBF fell to {mtbf}"
                );
                prev = g;
                mtbf /= rng.gen_range(1.2..3.0);
            }
        }
    }

    #[test]
    fn goodput_monotone_at_fixed_interval_too() {
        let mut rng = StdRng::seed_from_u64(0x5eed_fa02);
        for _ in 0..64 {
            let m0 = GoodputModel {
                mtbf_s: 0.0, // overwritten below
                save_s: rng.gen_range(5.0..120.0),
                restart_s: rng.gen_range(10.0..600.0),
            };
            let tau = rng.gen_range(300.0..7200.0);
            let mut prev = f64::INFINITY;
            for mtbf_h in [720.0, 168.0, 24.0, 4.0, 1.0, 0.5] {
                let g = GoodputModel {
                    mtbf_s: mtbf_h * 3600.0,
                    ..m0
                }
                .goodput(tau);
                assert!(g <= prev + 1e-12);
                prev = g;
            }
        }
    }

    #[test]
    fn fractions_decompose_goodput() {
        let m = selene_1t(24.0 * 3600.0);
        let tau = m.young_daly_interval();
        let f = m.goodput(tau);
        let recomposed =
            (1.0 - m.checkpoint_overhead_fraction(tau)) * (1.0 - m.lost_work_fraction(tau));
        assert!((f - recomposed).abs() < 1e-12);
    }

    #[test]
    fn infinite_reliability_recovers_pure_overhead() {
        let m = GoodputModel {
            mtbf_s: f64::INFINITY,
            save_s: 50.0,
            restart_s: 100.0,
        };
        // Only the checkpoint overhead remains; longer intervals always win.
        assert!((m.goodput(1000.0) - 1000.0 / 1050.0).abs() < 1e-12);
        assert!(m.goodput(10_000.0) > m.goodput(1000.0));
    }

    #[test]
    fn hopeless_failure_rate_clamps_to_zero() {
        let m = GoodputModel {
            mtbf_s: 60.0,
            save_s: 50.0,
            restart_s: 500.0,
        };
        assert_eq!(m.goodput(600.0), 0.0);
    }

    fn elastic_model() -> ElasticGoodputModel {
        ElasticGoodputModel {
            base: GoodputModel {
                mtbf_s: 3600.0,
                save_s: 10.0,
                restart_s: 60.0,
            },
            relative_throughput: 0.5,
            reconfigure_s: 30.0,
        }
    }

    #[test]
    fn elastic_equals_restart_without_an_outage() {
        let m = elastic_model();
        let (tau, job) = (600.0, 10_000.0);
        let e = m.elastic_goodput(tau, job, 0.0);
        let r = m.restart_goodput(tau, job, 0.0);
        assert!((e - r).abs() < 1e-12, "no outage, no difference");
        assert!(
            (e - m.base.goodput(tau)).abs() < 1e-12,
            "degenerates to base"
        );
    }

    #[test]
    fn elastic_beats_restart_past_break_even_exactly() {
        let m = elastic_model();
        let (tau, job) = (600.0, 10_000.0);
        let be = m.break_even_outage_s();
        assert!((be - 60.0).abs() < 1e-12, "30 s reconfigure at rho 0.5");
        let eps = 1e-6;
        assert!(m.elastic_goodput(tau, job, be - 1.0) < m.restart_goodput(tau, job, be - 1.0));
        assert!(
            m.elastic_goodput(tau, job, be + 1.0) > m.restart_goodput(tau, job, be + 1.0) + eps,
            "strictly better past break-even"
        );
    }

    #[test]
    fn both_policies_degrade_monotonically_with_outage_length() {
        let m = elastic_model();
        let (tau, job) = (600.0, 10_000.0);
        let mut prev_e = f64::INFINITY;
        let mut prev_r = f64::INFINITY;
        for outage in [0.0, 100.0, 500.0, 2_000.0, 10_000.0] {
            let e = m.elastic_goodput(tau, job, outage);
            let r = m.restart_goodput(tau, job, outage);
            assert!(e <= prev_e + 1e-12 && r <= prev_r + 1e-12);
            prev_e = e;
            prev_r = r;
        }
        // Elastic loses less per outage second: at rho = 0.5 the ratio of
        // the policies approaches 1/(1 − rho) = 2 as the outage dominates.
        let long = 100_000.0;
        assert!(m.elastic_goodput(tau, job, long) > 1.5 * m.restart_goodput(tau, job, long));
    }

    #[test]
    fn perfect_degraded_throughput_makes_outages_free() {
        let m = ElasticGoodputModel {
            relative_throughput: 1.0,
            reconfigure_s: 0.0,
            ..elastic_model()
        };
        let (tau, job) = (600.0, 10_000.0);
        assert!(
            (m.elastic_goodput(tau, job, 5_000.0) - m.base.goodput(tau)).abs() < 1e-12,
            "rho = 1 and free reconfiguration: the outage costs nothing"
        );
    }

    #[test]
    fn measured_elastic_model_clamps_rho_into_domain() {
        let base = elastic_model().base;
        let m = ElasticGoodputModel::from_measured(base, 1.0, 2.0, 30.0);
        assert!((m.relative_throughput - 0.5).abs() < 1e-12);
        assert!((m.break_even_outage_s() - 60.0).abs() < 1e-12);
        // A degraded segment that timed *faster* than clean (noise on a
        // tiny job) still yields a legal model.
        let noisy = ElasticGoodputModel::from_measured(base, 2.0, 1.0, -5.0);
        assert_eq!(noisy.relative_throughput, 1.0);
        assert_eq!(noisy.reconfigure_s, 0.0);
        noisy.elastic_goodput(600.0, 10_000.0, 100.0); // in-domain: no panic
    }

    #[test]
    fn measurement_with_no_failures_reduces_to_save_overhead() {
        let meas = RecoveryMeasurement {
            wall_s: 110.0,
            n_iterations: 100,
            clean_iter_s: 1.0,
            n_failures: 0,
            lost_iterations: 0,
            restore_s_total: 0.0,
            backoff_s_total: 0.0,
            detect_s_total: 0.0,
            save_s_total: 10.0,
            n_checkpoints: 10,
            checkpoint_every_iters: 10,
        };
        // 100 s useful out of 110 s wall; the model sees τ=10 s, δ=1 s,
        // M=∞ — exactly the same ratio.
        assert!((meas.measured_goodput() - 100.0 / 110.0).abs() < 1e-12);
        assert!((meas.predicted_goodput() - 10.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn measurement_model_tracks_measured_goodput_under_failures() {
        // A synthetic run whose books balance exactly: wall = useful +
        // saves + re-executed work + restores + backoff. Measured and
        // predicted goodput then agree closely (the model only idealizes
        // lost work per failure as τ/2 vs the actual average).
        let meas = RecoveryMeasurement {
            wall_s: 100.0 * 1.0 + 20.0 * 0.5 + 4.0 + 2.0 * 1.5 + 2.0 * 0.5,
            n_iterations: 100,
            clean_iter_s: 1.0,
            n_failures: 2,
            lost_iterations: 4, // 2 per failure = τ/2 at τ = 4 iters
            restore_s_total: 2.0,
            backoff_s_total: 1.0,
            detect_s_total: 1.0,
            save_s_total: 10.0,
            n_checkpoints: 20,
            checkpoint_every_iters: 4,
        };
        let measured = meas.measured_goodput();
        let predicted = meas.predicted_goodput();
        assert!(
            (measured - predicted).abs() / measured < 0.10,
            "measured {measured:.4} vs predicted {predicted:.4}"
        );
    }
}
