//! Straggler detection from per-rank step-time statistics.
//!
//! The real trainer (`megatron_dist::TrainLog::step_times`) records
//! wall-clock seconds per executed iteration per thread. In a synchronous
//! PTD-P job every rank steps in lockstep, so one slow rank drags the
//! whole iteration — the paper's throughput numbers implicitly assume no
//! stragglers. This module summarizes the raw timings and flags ranks
//! whose mean step time sits well above the job-wide median.

use std::collections::HashMap;

use megatron_dist::trainer::ThreadKey;
use megatron_dist::{HealthReport, StepSample};

/// Summary statistics of one rank's step times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankStats {
    /// Rank coordinate `(pipeline, data, tensor)`.
    pub thread: ThreadKey,
    /// Executed iterations.
    pub steps: usize,
    /// Mean step time, seconds.
    pub mean_s: f64,
    /// Maximum step time, seconds.
    pub max_s: f64,
    /// Mean step time relative to the job-wide median of rank means.
    pub vs_median: f64,
}

/// Straggler analysis of a whole job.
#[derive(Debug, Clone)]
pub struct StragglerReport {
    /// Per-rank statistics, slowest (by `vs_median`) first.
    pub ranks: Vec<RankStats>,
    /// Median of per-rank mean step times, seconds.
    pub median_mean_s: f64,
    /// Flagging threshold: ranks with `mean > threshold · median` are
    /// stragglers.
    pub threshold: f64,
    /// Ranks the heartbeat monitor declared dead (see
    /// [`StragglerReport::with_liveness`]). Dead ranks are removed from
    /// the straggler ranking — they need a restart, not a slow-rank
    /// diagnosis. Empty when no liveness data was fused.
    pub dead: Vec<ThreadKey>,
}

impl StragglerReport {
    /// Analyze per-rank step times (as produced by
    /// `megatron_dist::TrainLog::step_times`). `threshold` is the
    /// mean-vs-median ratio above which a rank is flagged (1.2 = 20 %
    /// slower than typical).
    pub fn analyze(step_times: &HashMap<ThreadKey, Vec<StepSample>>, threshold: f64) -> Self {
        assert!(
            threshold >= 1.0,
            "threshold below 1 flags the median itself"
        );
        let mut means: Vec<(ThreadKey, usize, f64, f64)> = step_times
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(&k, v)| {
                let mean = v.iter().map(|s| s.seconds).sum::<f64>() / v.len() as f64;
                let max = v.iter().map(|s| s.seconds).fold(0.0f64, f64::max);
                (k, v.len(), mean, max)
            })
            .collect();
        let mut sorted: Vec<f64> = means.iter().map(|&(_, _, m, _)| m).collect();
        sorted.sort_by(f64::total_cmp);
        let median_mean_s = if sorted.is_empty() {
            0.0
        } else if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
        };
        means.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));
        let ranks = means
            .into_iter()
            .map(|(thread, steps, mean_s, max_s)| RankStats {
                thread,
                steps,
                mean_s,
                max_s,
                vs_median: if median_mean_s > 0.0 {
                    mean_s / median_mean_s
                } else {
                    1.0
                },
            })
            .collect();
        StragglerReport {
            ranks,
            median_mean_s,
            threshold,
            dead: Vec::new(),
        }
    }

    /// Fuse a heartbeat-based liveness classification
    /// (`megatron_dist::HealthMonitor::classify`) into the report: ranks
    /// the monitor declared *dead* move out of the straggler ranking into
    /// [`StragglerReport::dead`] — the two conditions demand responses
    /// three orders of magnitude apart in cost (checkpoint restore vs.
    /// nothing), so conflating them in one "slow" list would mislead the
    /// operator the report exists to inform.
    pub fn with_liveness(mut self, health: &HealthReport) -> Self {
        let dead = health.dead();
        self.ranks.retain(|r| !dead.contains(&r.thread));
        // A dead rank's garbage timings must not skew the baseline either:
        // recompute the median and ratios over the survivors.
        let mut sorted: Vec<f64> = self.ranks.iter().map(|r| r.mean_s).collect();
        sorted.sort_by(f64::total_cmp);
        self.median_mean_s = if sorted.is_empty() {
            0.0
        } else if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
        };
        for r in &mut self.ranks {
            r.vs_median = if self.median_mean_s > 0.0 {
                r.mean_s / self.median_mean_s
            } else {
                1.0
            };
        }
        self.dead = dead;
        self
    }

    /// The flagged stragglers (slowest first).
    pub fn stragglers(&self) -> Vec<&RankStats> {
        self.ranks
            .iter()
            .filter(|r| r.vs_median > self.threshold)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times(pairs: &[(ThreadKey, &[f64])]) -> HashMap<ThreadKey, Vec<StepSample>> {
        pairs
            .iter()
            .map(|&(k, v)| {
                let samples = v
                    .iter()
                    .enumerate()
                    .map(|(i, &seconds)| StepSample {
                        epoch: 0,
                        iteration: i,
                        seconds,
                    })
                    .collect();
                (k, samples)
            })
            .collect()
    }

    #[test]
    fn flags_the_slow_rank() {
        let st = times(&[
            ((0, 0, 0), &[1.0, 1.1, 0.9]),
            ((0, 0, 1), &[1.0, 1.0, 1.0]),
            ((1, 0, 0), &[2.5, 2.6, 2.4]),
            ((1, 0, 1), &[1.1, 0.9, 1.0]),
        ]);
        let report = StragglerReport::analyze(&st, 1.5);
        let flagged = report.stragglers();
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].thread, (1, 0, 0));
        assert!(flagged[0].vs_median > 2.0);
        // Slowest first in the full ranking too.
        assert_eq!(report.ranks[0].thread, (1, 0, 0));
    }

    #[test]
    fn uniform_job_has_no_stragglers() {
        let st = times(&[
            ((0, 0, 0), &[1.0, 1.0]),
            ((0, 0, 1), &[1.01, 0.99]),
            ((1, 0, 0), &[1.0, 1.02]),
        ]);
        let report = StragglerReport::analyze(&st, 1.2);
        assert!(report.stragglers().is_empty());
        assert!((report.median_mean_s - 1.0).abs() < 0.02);
    }

    #[test]
    fn liveness_fusion_separates_dead_from_slow() {
        use megatron_dist::{HealthMonitor, PtdpSpec};
        use std::time::Duration;

        // Rank (1,0,0) records huge step times AND stops beating: after
        // fusion it must be reported dead, not merely slow — while the
        // genuinely slow-but-alive rank (1,0,1) stays a straggler.
        let st = times(&[
            ((0, 0, 0), &[1.0, 1.0]),
            ((0, 0, 1), &[1.0, 1.0]),
            ((1, 0, 0), &[9.0, 9.0]),
            ((1, 0, 1), &[2.0, 2.1]),
        ]);
        let spec = PtdpSpec::new(2, 1, 2);
        let mon = HealthMonitor::with_dead_after(
            &spec,
            Duration::from_millis(1),
            Duration::from_millis(10),
        );
        // Flat rank order for (p,d,t)=(2,1,2): (0,0,0)=0, (0,0,1)=1,
        // (1,0,0)=2, (1,0,1)=3. Everyone but rank 2 keeps beating.
        for _ in 0..3 {
            for r in [0usize, 1, 3] {
                mon.beat(r);
            }
            std::thread::sleep(Duration::from_millis(4));
        }
        std::thread::sleep(Duration::from_millis(10));
        for r in [0usize, 1, 3] {
            mon.beat(r);
        }
        let threshold = megatron_dist::DEFAULT_SLOW_THRESHOLD;
        let report =
            StragglerReport::analyze(&st, threshold).with_liveness(&mon.classify(threshold));
        assert_eq!(report.dead, vec![(1, 0, 0)]);
        let flagged: Vec<ThreadKey> = report.stragglers().iter().map(|r| r.thread).collect();
        assert_eq!(flagged, vec![(1, 0, 1)], "dead rank must not be ranked");
    }

    #[test]
    fn empty_and_partial_logs_are_tolerated() {
        let st = times(&[((0, 0, 0), &[]), ((0, 0, 1), &[1.0])]);
        let report = StragglerReport::analyze(&st, 1.2);
        assert_eq!(report.ranks.len(), 1, "empty logs are skipped");
        let report = StragglerReport::analyze(&HashMap::new(), 1.2);
        assert!(report.ranks.is_empty());
        assert_eq!(report.median_mean_s, 0.0);
    }
}
