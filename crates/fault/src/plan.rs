//! Seeded fault plans and their injection into the discrete-event world.
//!
//! A [`FaultPlan`] is a reproducible (seeded) list of timed fault events —
//! GPU deaths, whole-node deaths, link degradations and flaps, compute
//! stragglers — drawn from independent exponential inter-arrival processes,
//! one per fault class. A [`FaultInjector`] lowers the plan onto a
//! [`DagSim`]: deaths and stragglers become slowdown windows on compute
//! resources, link events become slowdown windows on the victim GPU's
//! network egress ports (`megatron-net` registers one NVLink and one IB
//! port per GPU). Every event is also exported as a Chrome-trace instant
//! (category `fault`) so injected runs can be inspected in Perfetto next
//! to the ordinary task spans.

use megatron_net::Network;
use megatron_sim::json::Json;
use megatron_sim::{secs_to_time, DagSim, ResourceId, Time, TraceInstant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A resource stays effectively frozen under this slowdown factor; the
/// engine requires finite factors, so "dead" is modeled as "10⁶× slower
/// for the repair window".
pub const DEATH_FACTOR: f64 = 1e6;

/// What failed and how.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// One GPU stops making progress until repaired/replaced.
    GpuDeath {
        /// Repair/replacement window, seconds.
        repair_s: f64,
    },
    /// A whole node (all its GPUs and their links) goes down.
    NodeDeath {
        /// Repair/replacement window, seconds.
        repair_s: f64,
    },
    /// A GPU's inter-node link runs degraded (e.g. cable errors forcing
    /// retransmits) for a while.
    LinkDegrade {
        /// Work-time multiplier while degraded (≥ 1).
        factor: f64,
        /// Degradation window, seconds.
        duration_s: f64,
    },
    /// A link flaps: `count` short degraded bursts spaced `period_s` apart.
    LinkFlap {
        /// Work-time multiplier during each burst.
        factor: f64,
        /// Burst length, seconds.
        burst_s: f64,
        /// Gap between burst starts, seconds.
        period_s: f64,
        /// Number of bursts.
        count: u32,
    },
    /// A GPU computes slower than its peers (thermal throttling, ECC
    /// retirement, background daemon...).
    Straggler {
        /// Work-time multiplier while straggling (≥ 1).
        factor: f64,
        /// Straggle window, seconds.
        duration_s: f64,
    },
}

impl FaultKind {
    /// Short label for traces and tables.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::GpuDeath { .. } => "gpu-death",
            FaultKind::NodeDeath { .. } => "node-death",
            FaultKind::LinkDegrade { .. } => "link-degrade",
            FaultKind::LinkFlap { .. } => "link-flap",
            FaultKind::Straggler { .. } => "straggler",
        }
    }

    /// Serialize as a tagged JSON object (`{"kind": label, ...params}`).
    pub fn to_json(&self) -> Json {
        match *self {
            FaultKind::GpuDeath { repair_s } => Json::obj([
                ("kind", Json::Str(self.label().into())),
                ("repair_s", Json::Num(repair_s)),
            ]),
            FaultKind::NodeDeath { repair_s } => Json::obj([
                ("kind", Json::Str(self.label().into())),
                ("repair_s", Json::Num(repair_s)),
            ]),
            FaultKind::LinkDegrade { factor, duration_s } => Json::obj([
                ("kind", Json::Str(self.label().into())),
                ("factor", Json::Num(factor)),
                ("duration_s", Json::Num(duration_s)),
            ]),
            FaultKind::LinkFlap {
                factor,
                burst_s,
                period_s,
                count,
            } => Json::obj([
                ("kind", Json::Str(self.label().into())),
                ("factor", Json::Num(factor)),
                ("burst_s", Json::Num(burst_s)),
                ("period_s", Json::Num(period_s)),
                ("count", Json::Num(count as f64)),
            ]),
            FaultKind::Straggler { factor, duration_s } => Json::obj([
                ("kind", Json::Str(self.label().into())),
                ("factor", Json::Num(factor)),
                ("duration_s", Json::Num(duration_s)),
            ]),
        }
    }

    /// Parse a [`FaultKind::to_json`] object back.
    pub fn from_json(j: &Json) -> Option<FaultKind> {
        let num = |key: &str| j.get(key).as_f64();
        Some(match j.get("kind").as_str()? {
            "gpu-death" => FaultKind::GpuDeath {
                repair_s: num("repair_s")?,
            },
            "node-death" => FaultKind::NodeDeath {
                repair_s: num("repair_s")?,
            },
            "link-degrade" => FaultKind::LinkDegrade {
                factor: num("factor")?,
                duration_s: num("duration_s")?,
            },
            "link-flap" => FaultKind::LinkFlap {
                factor: num("factor")?,
                burst_s: num("burst_s")?,
                period_s: num("period_s")?,
                count: num("count")? as u32,
            },
            "straggler" => FaultKind::Straggler {
                factor: num("factor")?,
                duration_s: num("duration_s")?,
            },
            _ => return None,
        })
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Onset time, seconds since simulation start.
    pub at_s: f64,
    /// The victim GPU (for node faults: any GPU of the node — the injector
    /// expands to the whole node).
    pub gpu: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// Mean time between failures per fault class, over the *whole cluster*
/// (set a class to `f64::INFINITY` to disable it).
#[derive(Debug, Clone, Copy)]
pub struct FaultRates {
    /// MTBF of single-GPU deaths, seconds.
    pub gpu_death_mtbf_s: f64,
    /// MTBF of whole-node deaths, seconds.
    pub node_death_mtbf_s: f64,
    /// MTBF of link-degradation episodes, seconds.
    pub link_degrade_mtbf_s: f64,
    /// MTBF of link-flap episodes, seconds.
    pub link_flap_mtbf_s: f64,
    /// MTBF of straggler episodes, seconds.
    pub straggler_mtbf_s: f64,
}

impl FaultRates {
    /// Nothing ever fails.
    pub fn none() -> Self {
        FaultRates {
            gpu_death_mtbf_s: f64::INFINITY,
            node_death_mtbf_s: f64::INFINITY,
            link_degrade_mtbf_s: f64::INFINITY,
            link_flap_mtbf_s: f64::INFINITY,
            straggler_mtbf_s: f64::INFINITY,
        }
    }
}

/// A reproducible schedule of fault events over a time horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Covered horizon, seconds.
    pub horizon_s: f64,
    /// Events sorted by onset time.
    pub events: Vec<FaultEvent>,
}

/// Draws one fault class's parameters from the plan RNG.
type KindDraw = fn(&mut StdRng) -> FaultKind;

impl FaultPlan {
    /// Draw a plan for `n_gpus` GPUs over `horizon_s` seconds. Each fault
    /// class arrives as a Poisson process with the given cluster-wide MTBF
    /// (exponential inter-arrival via inverse-CDF); victims are uniform
    /// over GPUs. The same seed always yields the same plan.
    pub fn generate(seed: u64, n_gpus: usize, horizon_s: f64, rates: &FaultRates) -> Self {
        assert!(n_gpus > 0, "need at least one GPU");
        assert!(horizon_s > 0.0, "horizon must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        let classes: [(f64, KindDraw); 5] = [
            (rates.gpu_death_mtbf_s, |r| FaultKind::GpuDeath {
                repair_s: r.gen_range(300.0..1800.0),
            }),
            (rates.node_death_mtbf_s, |r| FaultKind::NodeDeath {
                repair_s: r.gen_range(600.0..3600.0),
            }),
            (rates.link_degrade_mtbf_s, |r| FaultKind::LinkDegrade {
                factor: r.gen_range(1.5..8.0),
                duration_s: r.gen_range(30.0..600.0),
            }),
            (rates.link_flap_mtbf_s, |r| FaultKind::LinkFlap {
                factor: r.gen_range(4.0..20.0),
                burst_s: r.gen_range(1.0..10.0),
                period_s: r.gen_range(20.0..120.0),
                count: r.gen_range(2u64..6) as u32,
            }),
            (rates.straggler_mtbf_s, |r| FaultKind::Straggler {
                factor: r.gen_range(1.1..2.5),
                duration_s: r.gen_range(60.0..1200.0),
            }),
        ];
        for (mtbf, draw) in classes {
            if !mtbf.is_finite() {
                continue;
            }
            assert!(mtbf > 0.0, "MTBF must be positive");
            let mut t = 0.0f64;
            loop {
                // Exponential inter-arrival: −ln(1−U)·MTBF.
                let u: f64 = rng.gen();
                t += -(1.0 - u).ln() * mtbf;
                if t >= horizon_s {
                    break;
                }
                events.push(FaultEvent {
                    at_s: t,
                    gpu: rng.gen_range(0..n_gpus),
                    kind: draw(&mut rng),
                });
            }
        }
        events.sort_by(|a, b| a.at_s.total_cmp(&b.at_s));
        FaultPlan { horizon_s, events }
    }

    /// Serialize the whole plan (horizon + events) as JSON, so a chaos
    /// scenario can be archived next to its results and replayed exactly.
    /// f64s survive the round-trip bit-exactly (shortest-repr printing).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("horizon_s", Json::Num(self.horizon_s)),
            (
                "events",
                Json::Arr(
                    self.events
                        .iter()
                        .map(|e| {
                            Json::obj([
                                ("at_s", Json::Num(e.at_s)),
                                ("gpu", Json::Num(e.gpu as f64)),
                                ("fault", e.kind.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse a [`FaultPlan::to_json`] document back.
    pub fn from_json(j: &Json) -> Option<FaultPlan> {
        let horizon_s = j.get("horizon_s").as_f64()?;
        let events = j
            .get("events")
            .as_array()?
            .iter()
            .map(|e| {
                Some(FaultEvent {
                    at_s: e.get("at_s").as_f64()?,
                    gpu: e.get("gpu").as_f64()? as usize,
                    kind: FaultKind::from_json(e.get("fault"))?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(FaultPlan { horizon_s, events })
    }

    /// The plan's events as Chrome-trace instants (category `fault`), for
    /// overlay on a simulated timeline via
    /// [`megatron_sim::chrome_trace_json_with_instants`].
    pub fn instants(&self) -> Vec<TraceInstant> {
        self.events
            .iter()
            .map(|e| TraceInstant {
                time: secs_to_time(e.at_s),
                name: format!("gpu{}.{}", e.gpu, e.kind.label()),
                category: "fault".to_string(),
            })
            .collect()
    }
}

/// One slowdown window destined for one resource.
#[derive(Debug, Clone, Copy)]
struct Window {
    resource: ResourceId,
    from: Time,
    to: Time,
    factor: f64,
}

/// Lowers a [`FaultPlan`] onto a [`DagSim`].
pub struct FaultInjector<'a> {
    /// Compute resource per GPU, in GPU order (as registered by the
    /// caller's DAG builder).
    pub gpu_compute: &'a [ResourceId],
    /// Network ports to degrade on link faults and deaths (optional — a
    /// compute-only simulation passes `None`).
    pub network: Option<&'a Network>,
    /// GPUs per node, for expanding node deaths (8 on Selene).
    pub gpus_per_node: usize,
}

impl FaultInjector<'_> {
    /// Apply every event of `plan` as slowdown windows. Windows that would
    /// overlap an already-applied window on the same resource are clipped
    /// to start after it (the engine rejects overlaps); windows swallowed
    /// whole are dropped. Returns the number of windows actually applied.
    pub fn apply(&self, sim: &mut DagSim, plan: &FaultPlan) -> usize {
        let mut windows = Vec::new();
        for ev in &plan.events {
            self.expand(ev, &mut windows);
        }
        // Per-resource overlap resolution: sort by (resource, start) and
        // push each window's start past the previous end.
        windows.sort_by_key(|w| (w.resource, w.from));
        let mut applied = 0;
        let mut last_end: Option<(ResourceId, Time)> = None;
        for mut w in windows {
            if let Some((res, end)) = last_end {
                if res == w.resource && w.from < end {
                    w.from = end;
                }
            }
            if w.from >= w.to {
                continue;
            }
            sim.add_slowdown(w.resource, w.from, w.to, w.factor);
            last_end = Some((w.resource, w.to));
            applied += 1;
        }
        applied
    }

    fn expand(&self, ev: &FaultEvent, out: &mut Vec<Window>) {
        let from = secs_to_time(ev.at_s);
        let mut push = |resource: ResourceId, from: Time, to: Time, factor: f64| {
            out.push(Window {
                resource,
                from,
                to,
                factor,
            });
        };
        match ev.kind {
            FaultKind::GpuDeath { repair_s } => {
                let to = secs_to_time(ev.at_s + repair_s);
                push(self.gpu_compute[ev.gpu], from, to, DEATH_FACTOR);
                if let Some(net) = self.network {
                    push(net.nv_port(ev.gpu), from, to, DEATH_FACTOR);
                    push(net.ib_port(ev.gpu), from, to, DEATH_FACTOR);
                }
            }
            FaultKind::NodeDeath { repair_s } => {
                let to = secs_to_time(ev.at_s + repair_s);
                let node = ev.gpu / self.gpus_per_node;
                for g in node * self.gpus_per_node..(node + 1) * self.gpus_per_node {
                    if g >= self.gpu_compute.len() {
                        break;
                    }
                    push(self.gpu_compute[g], from, to, DEATH_FACTOR);
                    if let Some(net) = self.network {
                        push(net.nv_port(g), from, to, DEATH_FACTOR);
                        push(net.ib_port(g), from, to, DEATH_FACTOR);
                    }
                }
            }
            FaultKind::LinkDegrade { factor, duration_s } => {
                let to = secs_to_time(ev.at_s + duration_s);
                if let Some(net) = self.network {
                    push(net.ib_port(ev.gpu), from, to, factor);
                } else {
                    // Compute-only world: charge the victim's compute
                    // resource so the fault is still visible.
                    push(self.gpu_compute[ev.gpu], from, to, factor);
                }
            }
            FaultKind::LinkFlap {
                factor,
                burst_s,
                period_s,
                count,
            } => {
                for i in 0..count {
                    let start = ev.at_s + i as f64 * period_s;
                    let (f, t) = (secs_to_time(start), secs_to_time(start + burst_s));
                    if let Some(net) = self.network {
                        push(net.ib_port(ev.gpu), f, t, factor);
                    } else {
                        push(self.gpu_compute[ev.gpu], f, t, factor);
                    }
                }
            }
            FaultKind::Straggler { factor, duration_s } => {
                push(
                    self.gpu_compute[ev.gpu],
                    from,
                    secs_to_time(ev.at_s + duration_s),
                    factor,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megatron_cluster::ClusterSpec;
    use megatron_sim::time_to_secs;

    fn demo_rates() -> FaultRates {
        FaultRates {
            gpu_death_mtbf_s: 3600.0,
            node_death_mtbf_s: 4.0 * 3600.0,
            link_degrade_mtbf_s: 1800.0,
            link_flap_mtbf_s: 2.0 * 3600.0,
            straggler_mtbf_s: 900.0,
        }
    }

    #[test]
    fn same_seed_same_plan() {
        let a = FaultPlan::generate(42, 16, 24.0 * 3600.0, &demo_rates());
        let b = FaultPlan::generate(42, 16, 24.0 * 3600.0, &demo_rates());
        assert_eq!(a.events, b.events);
        assert!(!a.events.is_empty(), "a day at these rates produces faults");
    }

    #[test]
    fn different_seed_different_plan() {
        let a = FaultPlan::generate(1, 16, 24.0 * 3600.0, &demo_rates());
        let b = FaultPlan::generate(2, 16, 24.0 * 3600.0, &demo_rates());
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn events_sorted_and_inside_horizon() {
        let plan = FaultPlan::generate(7, 64, 12.0 * 3600.0, &demo_rates());
        for w in plan.events.windows(2) {
            assert!(w[0].at_s <= w[1].at_s);
        }
        for e in &plan.events {
            assert!(e.at_s >= 0.0 && e.at_s < plan.horizon_s);
            assert!(e.gpu < 64);
        }
    }

    #[test]
    fn arrival_count_tracks_mtbf() {
        // Over 200×MTBF, a Poisson process yields ~200 arrivals; seeded
        // draws must land in a generous window around that.
        let rates = FaultRates {
            straggler_mtbf_s: 100.0,
            ..FaultRates::none()
        };
        let plan = FaultPlan::generate(3, 8, 20_000.0, &rates);
        let n = plan.events.len();
        assert!((120..=280).contains(&n), "got {n} events, expected ~200");
    }

    #[test]
    fn halving_every_mtbf_roughly_doubles_arrivals() {
        // Rate scaling: arrival counts are Poisson in horizon/MTBF, so
        // doubling every rate should about double the event count.
        // Averaged over seeds to keep the tolerance honest.
        let base = demo_rates();
        let double = FaultRates {
            gpu_death_mtbf_s: base.gpu_death_mtbf_s / 2.0,
            node_death_mtbf_s: base.node_death_mtbf_s / 2.0,
            link_degrade_mtbf_s: base.link_degrade_mtbf_s / 2.0,
            link_flap_mtbf_s: base.link_flap_mtbf_s / 2.0,
            straggler_mtbf_s: base.straggler_mtbf_s / 2.0,
        };
        let horizon = 48.0 * 3600.0;
        let (mut n1, mut n2) = (0usize, 0usize);
        for seed in 0..8 {
            n1 += FaultPlan::generate(seed, 32, horizon, &base).events.len();
            n2 += FaultPlan::generate(seed + 100, 32, horizon, &double)
                .events
                .len();
        }
        let ratio = n2 as f64 / n1 as f64;
        assert!(
            (1.6..=2.4).contains(&ratio),
            "doubling rates gave {n1} → {n2} events (ratio {ratio:.2})"
        );
    }

    #[test]
    fn disabled_classes_never_fire() {
        let plan = FaultPlan::generate(5, 16, 1e6, &FaultRates::none());
        assert!(plan.events.is_empty());
    }

    #[test]
    fn json_round_trip_is_exact() {
        // Every fault class survives serialize → parse bit-exactly,
        // including the generated plans the chaos harness archives.
        let plan = FaultPlan::generate(42, 16, 24.0 * 3600.0, &demo_rates());
        assert!(!plan.events.is_empty());
        let text = plan.to_json().to_string();
        let back = FaultPlan::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.horizon_s, plan.horizon_s);
        assert_eq!(back.events, plan.events);

        // Hand-built events cover the classes a random draw might miss.
        let hand = FaultPlan {
            horizon_s: 10.0,
            events: vec![
                FaultEvent {
                    at_s: 0.125,
                    gpu: 3,
                    kind: FaultKind::LinkFlap {
                        factor: 7.5,
                        burst_s: 1.5,
                        period_s: 30.0,
                        count: 4,
                    },
                },
                FaultEvent {
                    at_s: 2.0,
                    gpu: 0,
                    kind: FaultKind::NodeDeath { repair_s: 600.0 },
                },
            ],
        };
        let back =
            FaultPlan::from_json(&Json::parse(&hand.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back.events, hand.events);
    }

    #[test]
    fn json_rejects_malformed_plans() {
        assert!(FaultPlan::from_json(&Json::parse("{}").unwrap()).is_none());
        let bad_kind =
            r#"{"horizon_s":1,"events":[{"at_s":0,"gpu":0,"fault":{"kind":"gremlin"}}]}"#;
        assert!(FaultPlan::from_json(&Json::parse(bad_kind).unwrap()).is_none());
    }

    #[test]
    fn straggler_window_stretches_victim_only() {
        let mut sim = DagSim::new();
        let g0 = sim.add_resource("gpu0");
        let g1 = sim.add_resource("gpu1");
        let work = secs_to_time(10.0);
        let a = sim.add_task(g0, work, &[], 1);
        let b = sim.add_task(g1, work, &[], 1);
        let plan = FaultPlan {
            horizon_s: 100.0,
            events: vec![FaultEvent {
                at_s: 0.0,
                gpu: 0,
                kind: FaultKind::Straggler {
                    factor: 2.0,
                    duration_s: 100.0,
                },
            }],
        };
        let inj = FaultInjector {
            gpu_compute: &[g0, g1],
            network: None,
            gpus_per_node: 8,
        };
        assert_eq!(inj.apply(&mut sim, &plan), 1);
        let result = sim.run().unwrap();
        let fa = time_to_secs(result.finish_of(a).unwrap());
        let fb = time_to_secs(result.finish_of(b).unwrap());
        assert!((fa - 20.0).abs() < 1e-6, "victim took {fa}");
        assert!((fb - 10.0).abs() < 1e-6, "bystander took {fb}");
    }

    #[test]
    fn node_death_freezes_every_gpu_of_the_node() {
        let mut sim = DagSim::new();
        let gpus: Vec<_> = (0..4)
            .map(|g| sim.add_resource(format!("gpu{g}")))
            .collect();
        let tasks: Vec<_> = gpus
            .iter()
            .map(|&g| sim.add_task(g, secs_to_time(1.0), &[], 1))
            .collect();
        // 2 GPUs per node; kill node 0 (gpus 0-1) for 50 s at t=0.
        let plan = FaultPlan {
            horizon_s: 100.0,
            events: vec![FaultEvent {
                at_s: 0.0,
                gpu: 1,
                kind: FaultKind::NodeDeath { repair_s: 50.0 },
            }],
        };
        let inj = FaultInjector {
            gpu_compute: &gpus,
            network: None,
            gpus_per_node: 2,
        };
        inj.apply(&mut sim, &plan);
        let result = sim.run().unwrap();
        for (g, &t) in tasks.iter().enumerate() {
            let f = time_to_secs(result.finish_of(t).unwrap());
            if g < 2 {
                // Dead until repair; the 1 s of work completes right after.
                assert!(f >= 50.0, "gpu{g} finished at {f}, node was dead");
            } else {
                assert!((f - 1.0).abs() < 1e-6, "gpu{g} finished at {f}");
            }
        }
    }

    #[test]
    fn link_faults_hit_network_ports() {
        let mut sim = DagSim::new();
        let cluster = ClusterSpec::selene(16);
        let gpus: Vec<_> = (0..16)
            .map(|g| sim.add_resource(format!("gpu{g}")))
            .collect();
        let net = Network::new(&mut sim, cluster);
        // Degrade gpu 3's IB port 4× for the whole run, then send
        // cross-node traffic from gpu 3 and from gpu 4 (both node 0, peers
        // on node 1).
        let plan = FaultPlan {
            horizon_s: 1e4,
            events: vec![FaultEvent {
                at_s: 0.0,
                gpu: 3,
                kind: FaultKind::LinkDegrade {
                    factor: 4.0,
                    duration_s: 1e4,
                },
            }],
        };
        let inj = FaultInjector {
            gpu_compute: &gpus,
            network: Some(&net),
            gpus_per_node: 8,
        };
        inj.apply(&mut sim, &plan);
        let bytes = 1 << 30;
        let slow = net.send(&mut sim, 3, 8, bytes, &[], 3);
        let fine = net.send(&mut sim, 4, 9, bytes, &[], 3);
        let result = sim.run().unwrap();
        let ts = time_to_secs(result.finish_of(slow).unwrap());
        let tf = time_to_secs(result.finish_of(fine).unwrap());
        assert!(
            (ts / tf - 4.0).abs() < 0.05,
            "degraded link {ts} s vs healthy {tf} s"
        );
    }

    #[test]
    fn overlapping_generated_windows_are_resolved() {
        // Two stragglers overlapping on the same GPU must not panic the
        // engine (which rejects overlapping windows): the second is
        // clipped to start where the first ends.
        let mut sim = DagSim::new();
        let g0 = sim.add_resource("gpu0");
        let plan = FaultPlan {
            horizon_s: 100.0,
            events: vec![
                FaultEvent {
                    at_s: 0.0,
                    gpu: 0,
                    kind: FaultKind::Straggler {
                        factor: 2.0,
                        duration_s: 50.0,
                    },
                },
                FaultEvent {
                    at_s: 25.0,
                    gpu: 0,
                    kind: FaultKind::Straggler {
                        factor: 3.0,
                        duration_s: 50.0,
                    },
                },
            ],
        };
        let inj = FaultInjector {
            gpu_compute: &[g0],
            network: None,
            gpus_per_node: 8,
        };
        assert_eq!(inj.apply(&mut sim, &plan), 2);
        sim.add_task(g0, secs_to_time(100.0), &[], 1);
        sim.run().unwrap(); // must not panic
    }

    #[test]
    fn instants_carry_fault_category() {
        let plan = FaultPlan::generate(11, 8, 3600.0, &demo_rates());
        let instants = plan.instants();
        assert_eq!(instants.len(), plan.events.len());
        for (i, e) in instants.iter().zip(&plan.events) {
            assert_eq!(i.category, "fault");
            assert!(i.name.starts_with(&format!("gpu{}", e.gpu)));
        }
    }
}
