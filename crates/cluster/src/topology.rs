//! Node and cluster interconnect description.

use crate::GpuSpec;

/// Which physical link class a transfer between two GPUs rides on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// Same GPU — no transfer needed.
    Local,
    /// Intra-node NVLink/NVSwitch.
    NvLink,
    /// Inter-node InfiniBand.
    InfiniBand,
}

/// A multi-GPU server (the paper's DGX A100).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// GPUs per node (8 on a DGX A100).
    pub gpus_per_node: usize,
    /// Effective NVLink/NVSwitch bandwidth per GPU per direction, B/s.
    /// (A100 NVLink3 via NVSwitch: 300 GB/s raw, ~250 GB/s effective.)
    pub nvlink_bandwidth: f64,
    /// NVLink transfer latency, seconds.
    pub nvlink_latency: f64,
    /// InfiniBand HCAs per node (8 × HDR on a DGX A100).
    pub ib_hcas_per_node: usize,
    /// Effective bandwidth per HCA per direction, B/s
    /// (HDR 200 Gb/s = 25 GB/s raw, ~21.5 GB/s effective).
    pub ib_bandwidth: f64,
    /// InfiniBand end-to-end latency through the fat tree, seconds.
    pub ib_latency: f64,
}

impl NodeSpec {
    /// DGX A100 as deployed in Selene.
    pub fn dgx_a100() -> Self {
        NodeSpec {
            gpus_per_node: 8,
            nvlink_bandwidth: 250e9,
            nvlink_latency: 2.0e-6,
            ib_hcas_per_node: 8,
            ib_bandwidth: 21.5e9,
            ib_latency: 5.0e-6,
        }
    }

    /// Aggregate injection bandwidth of one node into the fat tree, B/s.
    pub fn node_injection_bandwidth(&self) -> f64 {
        self.ib_bandwidth * self.ib_hcas_per_node as f64
    }
}

/// A cluster: `n_nodes` identical nodes in a full-bisection fat tree.
///
/// Selene's three-level (leaf/spine/core) fat tree with 850 switches is
/// modeled as non-blocking: inter-node contention arises only at the HCAs
/// (injection/ejection), which is accurate for a full-bisection topology
/// under the paper's traffic patterns.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Per-GPU compute model.
    pub gpu: GpuSpec,
    /// Per-node interconnect model.
    pub node: NodeSpec,
    /// Number of nodes.
    pub n_nodes: usize,
}

impl ClusterSpec {
    /// A Selene-like cluster with enough DGX A100 nodes for `n_gpus`.
    ///
    /// # Panics
    /// If `n_gpus` is not a positive multiple of 8.
    pub fn selene(n_gpus: usize) -> Self {
        let node = NodeSpec::dgx_a100();
        assert!(
            n_gpus > 0 && n_gpus.is_multiple_of(node.gpus_per_node),
            "n_gpus={n_gpus} must be a positive multiple of {}",
            node.gpus_per_node
        );
        let n_nodes = n_gpus / node.gpus_per_node;
        ClusterSpec {
            gpu: GpuSpec::a100_80gb(),
            node,
            n_nodes,
        }
    }

    /// A cluster with a custom node size (used in tests and ablations).
    pub fn custom(gpu: GpuSpec, node: NodeSpec, n_nodes: usize) -> Self {
        ClusterSpec { gpu, node, n_nodes }
    }

    /// Total number of GPUs.
    pub fn total_gpus(&self) -> usize {
        self.n_nodes * self.node.gpus_per_node
    }

    /// Node index hosting a global GPU rank.
    #[inline]
    pub fn node_of(&self, gpu: usize) -> usize {
        gpu / self.node.gpus_per_node
    }

    /// Index of a GPU within its node.
    #[inline]
    pub fn local_rank(&self, gpu: usize) -> usize {
        gpu % self.node.gpus_per_node
    }

    /// Link class connecting two global GPU ranks.
    pub fn link_class(&self, a: usize, b: usize) -> LinkClass {
        if a == b {
            LinkClass::Local
        } else if self.node_of(a) == self.node_of(b) {
            LinkClass::NvLink
        } else {
            LinkClass::InfiniBand
        }
    }

    /// Point-to-point bandwidth for a link class, B/s (infinite for Local).
    pub fn bandwidth(&self, class: LinkClass) -> f64 {
        match class {
            LinkClass::Local => f64::INFINITY,
            LinkClass::NvLink => self.node.nvlink_bandwidth,
            LinkClass::InfiniBand => self.node.ib_bandwidth,
        }
    }

    /// Point-to-point latency for a link class, seconds (zero for Local).
    pub fn latency(&self, class: LinkClass) -> f64 {
        match class {
            LinkClass::Local => 0.0,
            LinkClass::NvLink => self.node.nvlink_latency,
            LinkClass::InfiniBand => self.node.ib_latency,
        }
    }

    /// Time for one point-to-point message of `bytes` over `class`.
    pub fn p2p_time(&self, class: LinkClass, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        self.latency(class) + bytes / self.bandwidth(class)
    }

    /// Theoretical bisection bandwidth of the inter-node network, B/s:
    /// half the nodes injecting at full rate (full-bisection fat tree).
    pub fn bisection_bandwidth(&self) -> f64 {
        (self.n_nodes as f64 / 2.0) * self.node.node_injection_bandwidth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selene_sizes() {
        let c = ClusterSpec::selene(3072);
        assert_eq!(c.n_nodes, 384);
        assert_eq!(c.total_gpus(), 3072);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn selene_rejects_non_multiple() {
        ClusterSpec::selene(12);
    }

    #[test]
    fn link_classification() {
        let c = ClusterSpec::selene(16);
        assert_eq!(c.link_class(3, 3), LinkClass::Local);
        assert_eq!(c.link_class(0, 7), LinkClass::NvLink);
        assert_eq!(c.link_class(0, 8), LinkClass::InfiniBand);
        assert_eq!(c.link_class(15, 7), LinkClass::InfiniBand);
    }

    #[test]
    fn node_and_local_rank() {
        let c = ClusterSpec::selene(32);
        assert_eq!(c.node_of(0), 0);
        assert_eq!(c.node_of(8), 1);
        assert_eq!(c.local_rank(13), 5);
    }

    #[test]
    fn p2p_time_orders_links() {
        let c = ClusterSpec::selene(16);
        let bytes = 16.0 * 1024.0 * 1024.0;
        let nv = c.p2p_time(LinkClass::NvLink, bytes);
        let ib = c.p2p_time(LinkClass::InfiniBand, bytes);
        assert!(nv < ib, "NVLink must beat InfiniBand");
        assert_eq!(c.p2p_time(LinkClass::Local, bytes), 0.0);
        assert_eq!(c.p2p_time(LinkClass::InfiniBand, 0.0), 0.0);
    }

    #[test]
    fn selene_bisection_magnitude() {
        // 384 nodes × 8 HCAs × 21.5 GB/s ≈ 66 TB/s injected; bisection ≈ 33 TB/s.
        let c = ClusterSpec::selene(3072);
        let bi = c.bisection_bandwidth();
        assert!(bi > 20e12 && bi < 50e12, "got {bi}");
    }
}
