//! GPU cluster hardware substrate.
//!
//! The paper ran on the Selene supercomputer: DGX A100 nodes (8 × A100-80GB
//! connected by NVLink/NVSwitch, 8 × 200 Gb/s HDR InfiniBand HCAs per node)
//! in a three-level fat-tree. We reproduce that machine as a parameterized
//! model:
//!
//! - [`GpuSpec`] answers "how long does this kernel take on one GPU?" with a
//!   roofline model (compute-bound vs memory-bound) plus per-kernel launch
//!   overhead and a dimension-granularity efficiency factor. This is the
//!   substitution for real CUDA kernels: the paper's throughput phenomena
//!   (microbatch-size sensitivity, growing %-of-peak with model size,
//!   operator-fusion wins) are all functions of arithmetic intensity and
//!   kernel granularity, which the roofline captures.
//! - [`NodeSpec`] and [`ClusterSpec`] describe the interconnect: NVLink
//!   bandwidth/latency within a node, InfiniBand rails across nodes, and the
//!   placement of GPUs onto nodes.

mod gpu;
mod topology;

pub use gpu::{GpuSpec, KernelCost};
pub use topology::{ClusterSpec, LinkClass, NodeSpec};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        let a100 = GpuSpec::a100_80gb();
        assert!(a100.peak_matmul_flops > a100.mem_bandwidth);
        let v100 = GpuSpec::v100_32gb();
        assert!(v100.peak_matmul_flops < a100.peak_matmul_flops);
        assert!(v100.mem_capacity < a100.mem_capacity);
    }
}
