//! Roofline compute-time model for a single GPU.

/// Cost of one kernel under the roofline model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCost {
    /// Wall-clock seconds, including launch overhead.
    pub seconds: f64,
    /// Floating-point operations performed (throughput accounting).
    pub flops: f64,
    /// Bytes moved to/from HBM.
    pub bytes: f64,
}

impl KernelCost {
    /// Zero cost (e.g. an elided kernel).
    pub const ZERO: KernelCost = KernelCost {
        seconds: 0.0,
        flops: 0.0,
        bytes: 0.0,
    };

    /// Sum of two costs executed back to back.
    #[must_use]
    pub fn then(self, other: KernelCost) -> KernelCost {
        KernelCost {
            seconds: self.seconds + other.seconds,
            flops: self.flops + other.flops,
            bytes: self.bytes + other.bytes,
        }
    }
}

/// Performance model of one GPU.
///
/// Kernel time = `max(flops / (peak · eff), bytes / mem_bandwidth) +
/// kernel_overhead`, where `eff` shrinks for small GEMM dimensions (tile
/// quantization / low occupancy), matching the empirical behaviour the paper
/// leans on in §3.4 and Figure 7 ("per-GPU throughput increases by up to
/// 1.3× with a larger microbatch size").
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Human-readable device name.
    pub name: String,
    /// Peak matmul throughput in FLOP/s (A100 fp16 tensor core: 312e12).
    pub peak_matmul_flops: f64,
    /// HBM bandwidth in B/s.
    pub mem_bandwidth: f64,
    /// Device memory capacity in bytes.
    pub mem_capacity: u64,
    /// Fixed per-kernel launch + tail overhead in seconds.
    pub kernel_overhead: f64,
    /// Fraction of peak a large, well-shaped GEMM sustains (cuBLAS fp16 on
    /// A100 reaches 0.8–0.9 of tensor-core peak for large shapes).
    pub max_gemm_efficiency: f64,
    /// Half-saturation constant for the GEMM inner/column dimension
    /// granularity factor: a dimension of `gemm_dim_half` elements runs at
    /// 50 % of the asymptotic efficiency. Models tile quantization on small
    /// per-tensor-parallel-rank shards.
    pub gemm_dim_half: f64,
    /// Half-saturation constant for the GEMM rows dimension (`m = b·s`).
    /// Larger than `gemm_dim_half`: a proxy for wave quantization /
    /// occupancy, the mechanism behind the paper's Figure 7 ("per-GPU
    /// throughput increases by up to 1.3× with a larger microbatch size").
    pub gemm_rows_half: f64,
}

impl GpuSpec {
    /// NVIDIA A100-SXM4-80GB (the paper's device; peak 312 teraFLOP/s fp16).
    pub fn a100_80gb() -> Self {
        GpuSpec {
            name: "A100-80GB".to_string(),
            peak_matmul_flops: 312e12,
            mem_bandwidth: 2.0e12,
            mem_capacity: 80 * (1 << 30),
            kernel_overhead: 4.5e-6,
            max_gemm_efficiency: 0.82,
            gemm_dim_half: 48.0,
            gemm_rows_half: 640.0,
        }
    }

    /// NVIDIA V100-SXM2-32GB (the GPT-3 "288 years on a single V100" device).
    pub fn v100_32gb() -> Self {
        GpuSpec {
            name: "V100-32GB".to_string(),
            peak_matmul_flops: 125e12,
            mem_bandwidth: 0.9e12,
            mem_capacity: 32 * (1 << 30),
            kernel_overhead: 5.0e-6,
            max_gemm_efficiency: 0.80,
            gemm_dim_half: 48.0,
            gemm_rows_half: 640.0,
        }
    }

    /// Granularity efficiency factor for one GEMM dimension.
    #[inline]
    fn dim_factor(x: f64, half: f64) -> f64 {
        x / (x + half)
    }

    /// Effective GEMM efficiency (fraction of peak) for an `m × k × n`
    /// product. Monotone increasing in every dimension, asymptote
    /// `max_gemm_efficiency`.
    pub fn gemm_efficiency(&self, m: f64, k: f64, n: f64) -> f64 {
        self.max_gemm_efficiency
            * Self::dim_factor(m, self.gemm_rows_half)
            * Self::dim_factor(k, self.gemm_dim_half)
            * Self::dim_factor(n, self.gemm_dim_half)
    }

    /// Cost of a single `m × k × n` GEMM with `bpe` bytes per element.
    pub fn gemm(&self, m: u64, k: u64, n: u64, bpe: u64) -> KernelCost {
        self.batched_gemm(1, m, k, n, bpe, true)
    }

    /// Cost of a batched `m × k × n` GEMM.
    ///
    /// `strided` selects the paper's §4.2 data-layout optimization (one
    /// strided batched kernel); when false the batch pays one launch
    /// overhead per member, modelling the pre-optimization layout.
    pub fn batched_gemm(
        &self,
        batch: u64,
        m: u64,
        k: u64,
        n: u64,
        bpe: u64,
        strided: bool,
    ) -> KernelCost {
        if batch == 0 || m == 0 || k == 0 || n == 0 {
            return KernelCost::ZERO;
        }
        let (mf, kf, nf, bf) = (m as f64, k as f64, n as f64, batch as f64);
        let flops = 2.0 * bf * mf * kf * nf;
        let bytes = bf * (mf * kf + kf * nf + mf * nf) * bpe as f64;
        let eff = self.gemm_efficiency(mf, kf, nf);
        let t_compute = flops / (self.peak_matmul_flops * eff);
        let t_mem = bytes / self.mem_bandwidth;
        let launches = if strided { 1.0 } else { bf };
        KernelCost {
            seconds: t_compute.max(t_mem) + launches * self.kernel_overhead,
            flops,
            bytes,
        }
    }

    /// Achieved TFLOP/s of one device that executed `flops` floating-point
    /// operations in `seconds` of wall clock. This is the "achieved
    /// teraFLOP/s per GPU" column of the paper's Table 1.
    pub fn achieved_tflops(&self, flops: f64, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            return 0.0;
        }
        flops / seconds / 1e12
    }

    /// Model FLOPs utilization: achieved throughput as a fraction of this
    /// device's `peak_matmul_flops` (the paper's "percentage of peak"
    /// column). `flops` and `seconds` are per device.
    pub fn mfu(&self, flops: f64, seconds: f64) -> f64 {
        if seconds <= 0.0 || self.peak_matmul_flops <= 0.0 {
            return 0.0;
        }
        flops / seconds / self.peak_matmul_flops
    }

    /// Cost of element-wise work moving `bytes` to/from HBM across `kernels`
    /// kernel launches. Fusion (§4.2) reduces both `kernels` and `bytes`
    /// (fewer intermediate round trips).
    pub fn elementwise(&self, bytes: u64, kernels: u32) -> KernelCost {
        if bytes == 0 && kernels == 0 {
            return KernelCost::ZERO;
        }
        KernelCost {
            seconds: bytes as f64 / self.mem_bandwidth + kernels as f64 * self.kernel_overhead,
            // Element-wise FLOPs are negligible next to GEMMs and the paper's
            // Eq. 3 excludes them; we account time and bytes only.
            flops: 0.0,
            bytes: bytes as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a100() -> GpuSpec {
        GpuSpec::a100_80gb()
    }

    #[test]
    fn large_gemm_is_compute_bound_near_max_eff() {
        let g = a100();
        let c = g.gemm(8192, 12288, 12288, 2);
        let achieved = c.flops / c.seconds;
        let frac = achieved / g.peak_matmul_flops;
        assert!(
            frac > 0.55,
            "large GEMM should approach max eff, got {frac}"
        );
        assert!(frac <= g.max_gemm_efficiency + 1e-9);
    }

    #[test]
    fn skinny_gemm_is_slow() {
        let g = a100();
        // m=1 row: tensor cores cannot be fed; far below peak, and never
        // faster than the memory-bandwidth floor.
        let c = g.gemm(1, 4096, 4096, 2);
        let t_mem = c.bytes / g.mem_bandwidth;
        assert!(c.seconds >= t_mem, "roofline memory floor violated");
        let frac = c.flops / c.seconds / g.peak_matmul_flops;
        assert!(
            frac < 0.05,
            "skinny GEMM should be far below peak, got {frac}"
        );
    }

    #[test]
    fn efficiency_monotone_in_each_dim() {
        let g = a100();
        let base = g.gemm_efficiency(256.0, 256.0, 256.0);
        assert!(g.gemm_efficiency(512.0, 256.0, 256.0) > base);
        assert!(g.gemm_efficiency(256.0, 512.0, 256.0) > base);
        assert!(g.gemm_efficiency(256.0, 256.0, 512.0) > base);
    }

    #[test]
    fn per_gpu_throughput_rises_with_microbatch_size() {
        // The Figure 7 phenomenon: throughput per GPU increases with b.
        let g = a100();
        let (s, h) = (2048u64, 4096u64);
        let tput = |b: u64| {
            // one MLP fwd: (b*s × h) × (h × 4h) then (b*s × 4h) × (4h × h)
            let c = g.gemm(b * s, h, 4 * h, 2).then(g.gemm(b * s, 4 * h, h, 2));
            c.flops / c.seconds
        };
        assert!(tput(2) > tput(1));
        assert!(tput(8) > tput(2));
        // Paper: "up to 1.3×" from b=1 to large b; our model should show a
        // material gain in the same direction.
        assert!(tput(16) / tput(1) > 1.05);
    }

    #[test]
    fn batched_strided_cheaper_than_unstrided() {
        let g = a100();
        let strided = g.batched_gemm(96, 2048, 128, 2048, 2, true);
        let loopy = g.batched_gemm(96, 2048, 128, 2048, 2, false);
        assert!(strided.seconds < loopy.seconds);
        assert_eq!(strided.flops, loopy.flops);
    }

    #[test]
    fn zero_sized_gemm_is_free() {
        let g = a100();
        assert_eq!(g.gemm(0, 128, 128, 2), KernelCost::ZERO);
        assert_eq!(g.batched_gemm(4, 128, 0, 128, 2, true), KernelCost::ZERO);
    }

    #[test]
    fn elementwise_fusion_saves_time() {
        let g = a100();
        // bias + gelu unfused: 2 kernels, intermediate written+read again.
        let unfused = g.elementwise(4 * 1_000_000, 2);
        let fused = g.elementwise(2 * 1_000_000, 1);
        assert!(fused.seconds < unfused.seconds);
    }

    #[test]
    fn mfu_and_achieved_tflops_consistent() {
        let g = a100();
        // 156e12 FLOPs in 1 s = 156 TFLOP/s = 50 % of the A100's 312e12 peak.
        assert!((g.achieved_tflops(156e12, 1.0) - 156.0).abs() < 1e-9);
        assert!((g.mfu(156e12, 1.0) - 0.5).abs() < 1e-12);
        // Degenerate inputs are safe.
        assert_eq!(g.achieved_tflops(1e12, 0.0), 0.0);
        assert_eq!(g.mfu(1e12, 0.0), 0.0);
    }

    #[test]
    fn kernel_cost_then_accumulates() {
        let a = KernelCost {
            seconds: 1.0,
            flops: 2.0,
            bytes: 3.0,
        };
        let b = KernelCost {
            seconds: 0.5,
            flops: 1.0,
            bytes: 1.0,
        };
        let c = a.then(b);
        assert_eq!(c.seconds, 1.5);
        assert_eq!(c.flops, 3.0);
        assert_eq!(c.bytes, 4.0);
    }
}
