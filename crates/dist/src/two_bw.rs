//! PipeDream-2BW: pipeline parallelism *without* flushes (the relaxed
//! weight-update semantics the paper's §2.2 explicitly defers to future
//! work, and §6 discusses as related work).
//!
//! Instead of draining the pipeline at every batch boundary, microbatches
//! stream continuously. Each stage double-buffers its weights: a microbatch
//! runs forward *and* backward against the weight version that was current
//! when it entered the stage, gradients accumulate per batch, and after a
//! stage has seen all `m` backward passes of batch `k` it generates version
//! `k+1` locally — no global synchronization, weight staleness bounded by
//! one batch (`W(t+1) = W(t) − ν·∇f(W(t−1))`).
//!
//! Implemented for pure pipeline parallelism (`t = d = 1`), the setting the
//! PipeDream-2BW paper analyzes. The tests verify: bounded staleness,
//! convergence on a memorization task, agreement with synchronous training
//! at `p = 1` (where 2BW degenerates to ordinary training), and the absence
//! of pipeline flushes (in-flight microbatches from adjacent batches
//! coexist).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use megatron_tensor::gpt::GptModel;
use megatron_tensor::layers::cross_entropy;
use megatron_tensor::{Adam, Matrix};
use std::sync::mpsc::{channel as unbounded, Receiver, Sender};

use crate::comm::Group;
use crate::trainer::{build_thread_model, PtdpSpec, ThreadModel};

/// Configuration for a 2BW run.
#[derive(Debug, Clone, Copy)]
pub struct TwoBwSpec {
    /// Pipeline depth `p`.
    pub pipeline: usize,
    /// Microbatch size `b` (samples).
    pub microbatch: usize,
    /// Microbatches per batch `m` (one weight version per batch).
    pub microbatches_per_batch: usize,
    /// Adam learning rate.
    pub lr: f32,
}

/// Outcome of a 2BW run.
pub struct TwoBwLog {
    /// Mean loss per batch (computed at the last stage).
    pub losses: Vec<f32>,
    /// Maximum observed weight staleness in batches (2BW guarantees ≤ 1).
    pub max_staleness: usize,
    /// Maximum number of *distinct batches* simultaneously in flight on any
    /// stage (> 1 proves no flush separates batches).
    pub max_concurrent_batches: usize,
}

/// One stage's double-buffered state.
struct StageState {
    /// Two weight versions; slot `k % 2` holds version `k`.
    versions: [ThreadModel; 2],
    /// Version id stored in each slot (`usize::MAX` = empty).
    version_ids: [usize; 2],
    adam: Adam,
}

impl StageState {
    /// Latest available version id.
    fn latest(&self) -> usize {
        self.version_ids
            .iter()
            .copied()
            .filter(|&v| v != usize::MAX)
            .max()
            .expect("at least version 0 exists")
    }
}

/// Train with the 2BW no-flush schedule; `data` supplies one (tokens,
/// targets) pair per *batch* (each `m·b·seq` long).
pub fn train_2bw(
    master: &GptModel,
    spec: TwoBwSpec,
    data: &[(Vec<usize>, Vec<usize>)],
) -> TwoBwLog {
    let cfg = master.cfg;
    let p = spec.pipeline;
    let m = spec.microbatches_per_batch;
    let b = spec.microbatch;
    let seq = cfg.seq;
    assert!(
        cfg.layers.is_multiple_of(p),
        "layers must divide into p stages"
    );
    for (toks, tgts) in data {
        assert_eq!(
            toks.len(),
            m * b * seq,
            "each batch must hold m·b·seq tokens"
        );
        assert_eq!(tgts.len(), m * b * seq);
    }
    let n_batches = data.len();
    let total_mbs = n_batches * m;

    // Channels between adjacent stages.
    let mut fwd_tx: Vec<Option<Sender<Matrix>>> = (0..p).map(|_| None).collect();
    let mut fwd_rx: Vec<Option<Receiver<Matrix>>> = (0..p).map(|_| None).collect();
    let mut bwd_tx: Vec<Option<Sender<Matrix>>> = (0..p).map(|_| None).collect();
    let mut bwd_rx: Vec<Option<Receiver<Matrix>>> = (0..p).map(|_| None).collect();
    for s in 0..p.saturating_sub(1) {
        let (ftx, frx) = unbounded();
        fwd_tx[s] = Some(ftx);
        fwd_rx[s + 1] = Some(frx);
        let (btx, brx) = unbounded();
        bwd_tx[s + 1] = Some(btx);
        bwd_rx[s] = Some(brx);
    }

    let losses = Arc::new(Mutex::new(vec![0.0f32; n_batches]));
    let max_staleness = Arc::new(AtomicUsize::new(0));
    let max_concurrent = Arc::new(AtomicUsize::new(0));
    // A trivial (size-1) tensor group satisfies the block API.
    let solo_groups: Vec<_> = (0..p).map(|_| Group::new(1)).collect();

    // Base spec used to carve the master into stage shards (t = d = 1).
    let base = PtdpSpec::new(p, 1, 1);

    std::thread::scope(|scope| {
        for pi in 0..p {
            let fwd_in = fwd_rx[pi].take();
            let fwd_out = fwd_tx[pi].take();
            let bwd_in = bwd_rx[pi].take();
            let bwd_out = bwd_tx[pi].take();
            let losses = Arc::clone(&losses);
            let max_staleness = Arc::clone(&max_staleness);
            let max_concurrent = Arc::clone(&max_concurrent);
            let tg = solo_groups[pi].member(0);
            scope.spawn(move || {
                let layers_per_stage = cfg.layers / p;
                let last = pi == p - 1;
                let mut state = StageState {
                    versions: [
                        build_thread_model(master, &base, pi, 0),
                        build_thread_model(master, &base, pi, 0),
                    ],
                    version_ids: [0, usize::MAX],
                    adam: Adam::new(spec.lr),
                };

                // Per-microbatch stash: (version slot, input, ...) plus
                // per-batch gradient-completion counters.
                struct Stash {
                    slot: usize,
                    input: Matrix,
                }
                let mut stash: HashMap<usize, Stash> = HashMap::new();
                let mut done_backwards: HashMap<usize, usize> = HashMap::new();
                let mut batch_loss = vec![0.0f32; n_batches];

                // 1F1B without cooldown between batches: warm-up once, then
                // strict alternation over the whole stream.
                let warmup = (p - 1 - pi).min(total_mbs);
                let mut next_f = 0usize;
                let mut next_b = 0usize;

                let mb_tokens = |mb: usize| {
                    let (toks, _) = &data[mb / m];
                    let lo = (mb % m) * b * seq;
                    &toks[lo..lo + b * seq]
                };
                let mb_targets = |mb: usize| {
                    let (_, tgts) = &data[mb / m];
                    let lo = (mb % m) * b * seq;
                    &tgts[lo..lo + b * seq]
                };

                let do_forward = |mb: usize,
                                  state: &mut StageState,
                                  stash: &mut HashMap<usize, Stash>,
                                  batch_loss: &mut Vec<f32>| {
                    let batch = mb / m;
                    // 2BW: use the latest locally available version; record
                    // staleness relative to the ideal W(batch−1).
                    let version = state.latest();
                    let ideal = batch.saturating_sub(1);
                    max_staleness.fetch_max(ideal.saturating_sub(version), Ordering::Relaxed);
                    let slot = version % 2;

                    // Track distinct in-flight batches (flushlessness).
                    let mut batches: Vec<usize> = stash.keys().map(|&k| k / m).collect();
                    batches.push(batch);
                    batches.sort_unstable();
                    batches.dedup();
                    max_concurrent.fetch_max(batches.len(), Ordering::Relaxed);

                    let input = if pi == 0 {
                        state.versions[slot]
                            .embed
                            .as_ref()
                            .expect("stage 0 embed")
                            .forward(mb_tokens(mb), seq, &tg)
                    } else {
                        fwd_in.as_ref().unwrap().recv().expect("fwd recv")
                    };
                    let mut x = input.clone();
                    let mut caches = Vec::with_capacity(layers_per_stage);
                    for blk in &state.versions[slot].chunks[0] {
                        let (nx, c) = blk.forward(&x, b, seq, &tg);
                        x = nx;
                        caches.push(c);
                    }
                    if last {
                        let head = state.versions[slot].head.as_ref().expect("head");
                        let (loss, _) = head_loss(head, &x, mb_targets(mb), &tg);
                        batch_loss[batch] += loss / m as f32;
                    } else {
                        fwd_out.as_ref().unwrap().send(x).expect("fwd send");
                    }
                    // Recompute-style stash: keep the input; rebuild caches
                    // at backward time against the SAME version.
                    drop(caches);
                    stash.insert(mb, Stash { slot, input });
                };

                let do_backward = |mb: usize,
                                   state: &mut StageState,
                                   stash: &mut HashMap<usize, Stash>,
                                   done_backwards: &mut HashMap<usize, usize>,
                                   batch_loss: &Vec<f32>| {
                    let batch = mb / m;
                    let Stash { slot, input } = stash.remove(&mb).expect("fwd before bwd");
                    // Rebuild activations against the stashed version.
                    let mut x = input;
                    let mut caches = Vec::with_capacity(layers_per_stage);
                    {
                        let model = &state.versions[slot];
                        for blk in &model.chunks[0] {
                            let (nx, c) = blk.forward(&x, b, seq, &tg);
                            x = nx;
                            caches.push(c);
                        }
                    }
                    let mut dx = if last {
                        let head = state.versions[slot].head.as_ref().expect("head");
                        let (_, dlast) = head_loss(head, &x, mb_targets(mb), &tg);
                        let head_mut = state.versions[slot].head.as_mut().expect("head");
                        head_backward_2bw(head_mut, dlast, &tg)
                    } else {
                        bwd_in.as_ref().unwrap().recv().expect("bwd recv")
                    };
                    {
                        let model = &mut state.versions[slot];
                        for (blk, c) in model.chunks[0].iter_mut().zip(&caches).rev() {
                            dx = blk.backward(c, &dx, b, seq, &tg);
                        }
                        if pi == 0 {
                            model
                                .embed
                                .as_mut()
                                .expect("embed")
                                .backward(mb_tokens(mb), seq, &dx);
                        }
                    }
                    if pi > 0 {
                        bwd_out.as_ref().unwrap().send(dx).expect("bwd send");
                    }

                    let done = done_backwards.entry(batch).or_insert(0);
                    *done += 1;
                    if *done == m {
                        // Generate version batch+1 from the version the
                        // gradients were computed on (1-stale update).
                        let inv_m = 1.0 / m as f32;
                        let new_slot = (batch + 1) % 2;
                        let old_slot = slot;
                        // new params start from the freshest version's
                        // params (which is `old_slot`'s: versions advance
                        // one batch at a time).
                        if new_slot != old_slot {
                            let snapshot = snapshot_params(&mut state.versions[old_slot]);
                            restore_params(&mut state.versions[new_slot], &snapshot);
                        }
                        {
                            let model = &mut state.versions[old_slot];
                            model.visit_grads(&mut |g| {
                                for v in g.iter_mut() {
                                    *v *= inv_m;
                                }
                            });
                        }
                        // Apply Adam to the new slot using old slot's grads.
                        let grads = snapshot_grads(&mut state.versions[old_slot]);
                        apply_update(&mut state.versions[new_slot], &grads, &mut state.adam);
                        state.versions[old_slot].visit_grads(&mut |g| g.fill(0.0));
                        state.versions[new_slot].visit_grads(&mut |g| g.fill(0.0));
                        state.version_ids[new_slot] = batch + 1;
                        if last {
                            losses.lock().unwrap()[batch] = batch_loss[batch];
                        }
                    }
                };

                for _ in 0..warmup {
                    do_forward(next_f, &mut state, &mut stash, &mut batch_loss);
                    next_f += 1;
                }
                while next_b < total_mbs {
                    if next_f < total_mbs {
                        do_forward(next_f, &mut state, &mut stash, &mut batch_loss);
                        next_f += 1;
                    }
                    do_backward(
                        next_b,
                        &mut state,
                        &mut stash,
                        &mut done_backwards,
                        &batch_loss,
                    );
                    next_b += 1;
                }
            });
        }
    });

    TwoBwLog {
        losses: Arc::try_unwrap(losses).unwrap().into_inner().unwrap(),
        max_staleness: max_staleness.load(Ordering::Relaxed),
        max_concurrent_batches: max_concurrent.load(Ordering::Relaxed),
    }
}

fn head_loss(
    head: &crate::trainer::HeadShard,
    x: &Matrix,
    targets: &[usize],
    tg: &crate::comm::GroupMember,
) -> (
    f32,
    (megatron_tensor::layers::LayerNormCache, Matrix, Matrix),
) {
    let _ = tg;
    match head {
        crate::trainer::HeadShard::Replicated(ln, lm) => {
            let (hf, ln_cache) = ln.forward(x);
            let logits = lm.forward(&hf);
            let (loss, dlogits) = cross_entropy(&logits, targets);
            (loss, (ln_cache, hf, dlogits))
        }
        crate::trainer::HeadShard::VocabParallel(..) => {
            unreachable!("2BW runs with t = 1 (replicated head)")
        }
    }
}

fn head_backward_2bw(
    head: &mut crate::trainer::HeadShard,
    cache: (megatron_tensor::layers::LayerNormCache, Matrix, Matrix),
    _tg: &crate::comm::GroupMember,
) -> Matrix {
    let (ln_cache, hf, dlogits) = cache;
    match head {
        crate::trainer::HeadShard::Replicated(ln, lm) => {
            let dhf = lm.backward(&hf, &dlogits);
            ln.backward(&ln_cache, &dhf)
        }
        crate::trainer::HeadShard::VocabParallel(..) => unreachable!(),
    }
}

fn snapshot_params(model: &mut ThreadModel) -> Vec<f32> {
    let mut out = Vec::new();
    model.visit_params(&mut |p| out.extend_from_slice(p));
    out
}

fn restore_params(model: &mut ThreadModel, snapshot: &[f32]) {
    let mut off = 0;
    model.visit_params(&mut |p| {
        p.copy_from_slice(&snapshot[off..off + p.len()]);
        off += p.len();
    });
    assert_eq!(off, snapshot.len());
}

fn snapshot_grads(model: &mut ThreadModel) -> Vec<f32> {
    let mut out = Vec::new();
    model.visit_grads(&mut |g| out.extend_from_slice(g));
    out
}

fn apply_update(model: &mut ThreadModel, grads: &[f32], adam: &mut Adam) {
    // Borrow all params mutably, pair with the gradient snapshot.
    let mut off = 0;
    let mut grads_owned = grads.to_vec();
    let mut pairs: Vec<(*mut [f32], (usize, usize))> = Vec::new();
    model.visit_params(&mut |p| {
        pairs.push((p as *mut [f32], (off, off + p.len())));
        off += p.len();
    });
    assert_eq!(off, grads.len());
    let mut step_pairs: Vec<(&mut [f32], &mut [f32])> = pairs
        .into_iter()
        .map(|(p, (lo, hi))| {
            // SAFETY: visit_params yields disjoint borrows; grads slices are
            // disjoint ranges of one buffer.
            let params = unsafe { &mut *p };
            let g = unsafe {
                std::slice::from_raw_parts_mut(grads_owned.as_mut_ptr().add(lo), hi - lo)
            };
            (params, g)
        })
        .collect();
    adam.step(&mut step_pairs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use megatron_tensor::gpt::TinyGptConfig;
    use rand::SeedableRng;

    fn cfg() -> TinyGptConfig {
        TinyGptConfig {
            vocab: 16,
            seq: 6,
            hidden: 8,
            heads: 2,
            layers: 4,
        }
    }

    fn memorization_data(
        c: TinyGptConfig,
        m: usize,
        b: usize,
        batches: usize,
    ) -> Vec<(Vec<usize>, Vec<usize>)> {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(111);
        let toks: Vec<usize> = (0..m * b * c.seq)
            .map(|_| rng.gen_range(0..c.vocab))
            .collect();
        let tgts: Vec<usize> = (0..m * b * c.seq)
            .map(|_| rng.gen_range(0..c.vocab))
            .collect();
        (0..batches).map(|_| (toks.clone(), tgts.clone())).collect()
    }

    #[test]
    fn staleness_is_bounded_by_one() {
        let c = cfg();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let master = GptModel::new(c, &mut rng);
        let spec = TwoBwSpec {
            pipeline: 2,
            microbatch: 1,
            microbatches_per_batch: 4,
            lr: 0.01,
        };
        let data = memorization_data(c, 4, 1, 6);
        let log = train_2bw(&master, spec, &data);
        assert!(
            log.max_staleness <= 1,
            "2BW guarantees 1-stale updates, saw {}",
            log.max_staleness
        );
    }

    #[test]
    fn batches_overlap_without_flush() {
        let c = cfg();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let master = GptModel::new(c, &mut rng);
        let spec = TwoBwSpec {
            pipeline: 4,
            microbatch: 1,
            microbatches_per_batch: 2, // m < p forces cross-batch overlap
            lr: 0.01,
        };
        let data = memorization_data(c, 2, 1, 8);
        let log = train_2bw(&master, spec, &data);
        assert!(
            log.max_concurrent_batches >= 2,
            "no-flush schedule must interleave adjacent batches, saw {}",
            log.max_concurrent_batches
        );
    }

    #[test]
    fn converges_on_memorization() {
        let c = cfg();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let master = GptModel::new(c, &mut rng);
        let spec = TwoBwSpec {
            pipeline: 2,
            microbatch: 1,
            microbatches_per_batch: 4,
            lr: 0.02,
        };
        let data = memorization_data(c, 4, 1, 25);
        let log = train_2bw(&master, spec, &data);
        let first = log.losses[0];
        let last = *log.losses.last().unwrap();
        assert!(
            last < first * 0.6,
            "2BW should still converge: {first} -> {last} ({:?})",
            log.losses
        );
    }

    #[test]
    fn single_stage_matches_synchronous_training() {
        // p = 1: no staleness, 2BW degenerates to ordinary training.
        let c = cfg();
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let master = GptModel::new(c, &mut rng);
        let (m, b) = (2usize, 2usize);
        let data = memorization_data(c, m, b, 5);
        let spec = TwoBwSpec {
            pipeline: 1,
            microbatch: b,
            microbatches_per_batch: m,
            lr: 0.01,
        };
        let log = train_2bw(&master, spec, &data);

        // Synchronous reference with the same microbatching.
        let mut sync = master.clone();
        let mut adam = Adam::new(0.01);
        let mut sync_losses = Vec::new();
        for (toks, tgts) in &data {
            sync.zero_grads();
            let mut loss = 0.0;
            for mb in 0..m {
                let lo = mb * b * c.seq;
                loss += sync.loss_and_grad(&toks[lo..lo + b * c.seq], &tgts[lo..lo + b * c.seq], b)
                    / m as f32;
            }
            sync.visit(&mut |_, g| {
                for v in g.iter_mut() {
                    *v /= m as f32;
                }
            });
            let mut pairs = sync.param_grad_pairs();
            adam.step(&mut pairs);
            sync_losses.push(loss);
        }
        for (i, (a, b2)) in log.losses.iter().zip(&sync_losses).enumerate() {
            assert!((a - b2).abs() < 1e-4, "batch {i}: 2bw {a} vs sync {b2}");
        }
        assert_eq!(log.max_staleness, 0);
    }
}
