//! Thread-per-GPU distributed training runtime.
//!
//! Every "GPU" is an OS thread; collectives are the `megatron-collective`
//! ring/hierarchical step programs executed over per-edge mailboxes
//! (deterministic chunk routing, so every member of a group computes
//! bit-identical results and sends exactly the bytes the simulator
//! models); pipeline stages exchange activations and gradients over
//! channels. On top of that substrate this
//! crate implements the paper's three parallelism axes *for real*:
//!
//! - **Tensor model parallelism** (§2.3): column-parallel QKV/fc1 and
//!   row-parallel proj/fc2 with the conjugate `f`/`g` operators — two
//!   all-reduces forward, two backward per layer ([`block`]).
//! - **Pipeline model parallelism** (§2.2): the GPipe, 1F1B, and
//!   interleaved 1F1B schedules from `megatron-schedule`, executed with
//!   strict optimizer semantics (flush + synchronized step).
//! - **Data parallelism** (§2.1): batch sharding with averaged gradient
//!   all-reduce.
//!
//! The headline property, proven in this crate's tests and the workspace
//! integration tests: for any (p, t, d) and schedule, PTD-P training
//! computes the *same* losses and the *same* final weights as serial
//! single-process training (up to f32 reduction rounding).

pub mod assemble;
pub mod block;
pub mod checkpoint;
pub mod comm;
pub mod health;
pub mod proc;
pub mod shard;
pub mod supervisor;
pub mod trainer;
pub mod two_bw;
pub mod vocab;

pub use block::{BlockKv, ParallelBlock, ParallelBlockCache};
pub use checkpoint::{CheckpointError, CheckpointStore, Restored};
pub use comm::{
    broadcast_bytes, ring_all_gather_bytes, ring_all_reduce_bytes, ring_reduce_scatter_bytes,
    CollectiveKind, CollectiveOp, CommError, CommPanic, CommVolume, FaultProfile, Group,
    GroupMember, StallContext, TransportConfig, WireKind, BYTES_F32, DEFAULT_COMM_TIMEOUT,
};
pub use health::{HealthMonitor, HealthReport, RankCondition, DEFAULT_SLOW_THRESHOLD};
pub use proc::{
    ElasticProcReport, JobSpec, LaunchHandle, ProcIncident, ProcKill, ProcOutcome, ProcReport,
    ProcSupervisor, RankOutput, SocketFault, SocketFaultPlan, WorkerExit,
};
pub use supervisor::{
    CapacityEvent, Incident, IncidentSeverity, Reconfiguration, ReconfigureDirection, Supervisor,
    SupervisorConfig, SupervisorReport, TransientIncident,
};
pub use trainer::{
    KillSwitch, PtdpSpec, PtdpTrainer, RankCommOps, RankCommVolume, RunControl, StepSample,
    ThreadKey, ThreadState, TrainError, TrainLog, TrainOutcome, TrainSnapshot,
};
