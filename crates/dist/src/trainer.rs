//! The PTD-P trainer: real tensor + pipeline + data parallel training over
//! `p·t·d` threads, with strict optimizer semantics (§2.2's pipeline flush
//! before every optimizer step).
//!
//! Construction mirrors the paper exactly:
//! - the model's layers are split into `p·v` stages assigned round-robin
//!   (stage `c·p + device`, §2.2.2);
//! - each stage's blocks are tensor-parallel shards across `t` threads
//!   (§2.3);
//! - the batch is sharded over `d` replicas and each replica's share is cut
//!   into `m = B/(d·b)` microbatches driven by a
//!   [`megatron_schedule::ScheduleKind`] program;
//! - after the flush, gradients are scaled by `1/m`, mean-all-reduced
//!   across the data group, and stepped with per-thread Adam (identical
//!   state on every replica — verified in tests).
//!
//! The first stage owns the (replicated-across-`t`) embedding; the last
//! stage owns the final LayerNorm + LM head. That matches Megatron's
//! placement, minus vocab-parallel embeddings (a documented simplification
//! — see DESIGN.md).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use megatron_schedule::{Pass, ScheduleKind};
use megatron_tensor::gpt::GptModel;
use megatron_tensor::layers::{cross_entropy, Embedding, LayerNorm, LayerNormCache, Linear};
use megatron_tensor::{Adam, AdamState, Matrix};
use std::sync::mpsc::{channel as unbounded, Receiver, Sender};

use megatron_telemetry::{RankTracer, SpanArgs, SpanKind, TelemetrySink};

use crate::block::{ParallelBlock, ParallelBlockCache};
use crate::checkpoint::CheckpointStore;
use crate::comm::{
    ring_all_gather_bytes, ring_all_reduce_bytes, ring_reduce_scatter_bytes, CommError, CommPanic,
    CommVolume, Group, GroupMember, BYTES_F32, DEFAULT_COMM_TIMEOUT,
};
use crate::vocab::{VocabHeadCache, VocabParallelEmbedding, VocabParallelHead};

/// Parallelization plan for [`PtdpTrainer`].
#[derive(Debug, Clone, Copy)]
pub struct PtdpSpec {
    /// Pipeline-parallel size `p`.
    pub pipeline: usize,
    /// Tensor-parallel size `t`.
    pub tensor: usize,
    /// Data-parallel size `d`.
    pub data: usize,
    /// Model chunks per device `v` (1 = non-interleaved).
    pub chunks: usize,
    /// Microbatch size `b` (samples).
    pub microbatch: usize,
    /// Pipeline schedule.
    pub schedule: ScheduleKind,
    /// Adam learning rate.
    pub lr: f32,
    /// Shard optimizer state across data-parallel ranks (the "sharded data
    /// parallelism" of the paper's related work / ZeRO stage 1): gradients
    /// arrive by reduce-scatter, each rank Adam-steps its 1/d slice, and
    /// updated parameters return by all-gather. Numerically identical to
    /// replicated Adam; optimizer memory drops by d.
    pub shard_optimizer: bool,
    /// §3.5 activation recomputation: stash only each chunk's input during
    /// the forward pass and rerun the forward just before the backward.
    /// Numerically identical (the rebuilt caches are bit-equal); activation
    /// memory drops from full per-layer caches to one input tensor.
    pub recompute: bool,
    /// Shard the token-embedding table and LM head over the vocabulary
    /// dimension across the tensor group (Megatron's layout), with the
    /// distributed cross-entropy that never materializes full logits.
    pub vocab_parallel: bool,
    /// Collective timeout for every process group of a run under this
    /// spec. [`RunControl::comm_timeout`] can override it per run (the
    /// supervisor shortens it on retry attempts so repeat failures are
    /// detected faster).
    pub comm_timeout: Duration,
}

impl PtdpSpec {
    /// A (p, t, d) spec with 1F1B, no interleaving, microbatch 1.
    pub fn new(pipeline: usize, tensor: usize, data: usize) -> Self {
        PtdpSpec {
            pipeline,
            tensor,
            data,
            chunks: 1,
            microbatch: 1,
            schedule: ScheduleKind::OneFOneB,
            lr: 0.01,
            shard_optimizer: false,
            recompute: false,
            vocab_parallel: false,
            comm_timeout: DEFAULT_COMM_TIMEOUT,
        }
    }

    /// Total threads.
    pub fn world(&self) -> usize {
        self.pipeline * self.tensor * self.data
    }

    /// The thread coordinate of a flat rank index, in the trainer's spawn
    /// order: pipeline outermost, then data, tensor innermost.
    pub fn thread_key(&self, rank: usize) -> ThreadKey {
        assert!(rank < self.world(), "rank {rank} out of range");
        let ti = rank % self.tensor;
        let di = (rank / self.tensor) % self.data;
        let pi = rank / (self.tensor * self.data);
        (pi, di, ti)
    }
}

/// Thread coordinate `(pipeline, data, tensor)`.
pub type ThreadKey = (usize, usize, usize);
/// Shared per-thread output map.
type SharedMap<V> = Arc<Mutex<HashMap<ThreadKey, V>>>;

/// One timed training step of one thread. Samples are indexed by
/// (incident `epoch`, absolute `iteration`), so a run resumed after a
/// supervisor restart never interleaves its timings with the pre-failure
/// attempt's — a plain `Vec<f64>` lost that provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepSample {
    /// Supervisor incident epoch (attempt number; 0 for a clean run). Set
    /// from [`RunControl::epoch`].
    pub epoch: usize,
    /// Absolute iteration index into the run's data.
    pub iteration: usize,
    /// Wall-clock seconds the step took on this thread.
    pub seconds: f64,
}

/// Per-thread communication totals for one run: tensor-group and
/// data-parallel-group collective volumes (algorithmic ring bytes, f32)
/// plus pipeline p2p activation/gradient sends.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankCommVolume {
    /// Tensor-parallel group collectives (the §3.2 per-layer all-reduces).
    pub tensor: CommVolume,
    /// Data-parallel group collectives (gradient averaging / ZeRO).
    pub data: CommVolume,
    /// Bytes this thread sent over pipeline stage boundaries (§3.2's
    /// `bsh`-sized transfers).
    pub p2p_send_bytes: f64,
}

impl RankCommVolume {
    /// Total bytes across all channels.
    pub fn total_bytes(&self) -> f64 {
        self.tensor.total_bytes() + self.data.total_bytes() + self.p2p_send_bytes
    }
}

/// Result of a training run.
pub struct TrainLog {
    /// Mean loss per iteration (averaged over microbatches and replicas).
    /// A resumed run only fills the entries it executed.
    pub losses: Vec<f32>,
    /// Flattened final parameters per thread, keyed `(pipeline, data,
    /// tensor)` — in each thread's canonical visit order, for equivalence
    /// checks against shards of a serially trained model.
    pub final_params: HashMap<ThreadKey, Vec<f32>>,
    /// Peak stashed-activation floats per thread — the §3.5 memory metric
    /// (GPipe stashes m microbatches, 1F1B at most p, recompute only the
    /// chunk inputs).
    pub peak_stash_floats: HashMap<ThreadKey, usize>,
    /// Wall-clock step samples per thread, tagged (epoch, iteration) — the
    /// raw material for straggler detection (`megatron-fault`) and the
    /// supervisor's goodput accounting.
    pub step_times: HashMap<ThreadKey, Vec<StepSample>>,
    /// Communication volume per thread (threads that completed the run).
    pub comm_volumes: HashMap<ThreadKey, RankCommVolume>,
}

/// One thread's share of an in-memory checkpoint: its flattened parameters
/// plus the full Adam state. Exact f32 copies, so a restore resumes
/// bit-identically.
#[derive(Debug, Clone)]
pub struct ThreadState {
    /// Flattened parameters in canonical visit order.
    pub params: Vec<f32>,
    /// Optimizer state.
    pub adam: AdamState,
}

/// A consistent in-memory checkpoint of the whole job, taken after the
/// optimizer step of iteration `next_iter - 1`.
#[derive(Debug, Clone, Default)]
pub struct TrainSnapshot {
    /// First iteration a resumed run should execute.
    pub next_iter: usize,
    /// Per-thread state, keyed `(pipeline, data, tensor)`.
    pub threads: HashMap<ThreadKey, ThreadState>,
}

/// Deliberately kill one rank mid-iteration (fault-injection hook): the
/// thread poisons its groups and exits halfway through its schedule ops
/// for that iteration, as if its GPU died.
#[derive(Debug, Clone, Copy)]
pub struct KillSwitch {
    /// Which thread dies.
    pub thread: ThreadKey,
    /// Iteration (0-based, absolute) during which it dies.
    pub iteration: usize,
}

/// Failure-handling knobs for [`PtdpTrainer::train_with`].
#[derive(Default)]
pub struct RunControl {
    /// Snapshot the full job state every `k` iterations (after the
    /// optimizer step of iterations k-1, 2k-1, ...).
    pub checkpoint_every: Option<usize>,
    /// Resume from a previous checkpoint instead of the master weights.
    pub restore: Option<TrainSnapshot>,
    /// Kill a rank mid-iteration.
    pub kill: Option<KillSwitch>,
    /// Override [`PtdpSpec::comm_timeout`] for this run only.
    pub comm_timeout: Option<Duration>,
    /// Persist every in-memory checkpoint to this store as well: each
    /// thread writes its own shard and the thread completing a generation
    /// commits it (canonical layout + manifest).
    pub durable: Option<Arc<CheckpointStore>>,
    /// Incident epoch this run belongs to (the supervisor's attempt
    /// counter). Tags every [`StepSample`] and telemetry span, so samples
    /// from different restart attempts never interleave.
    pub epoch: usize,
    /// Telemetry sink: when set, every thread records per-microbatch
    /// fwd/bwd/comm/opt/checkpoint/bubble spans and the run feeds the
    /// metrics registry (iteration times, comm volume, bubble fraction).
    pub telemetry: Option<Arc<TelemetrySink>>,
}

/// Why a thread of a training run stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// This rank was deliberately killed by a [`KillSwitch`].
    Killed(ThreadKey),
    /// A collective failed (peer died or timed out).
    Comm(CommError),
    /// A pipeline channel closed because a peer exited early.
    PipelineBroken,
    /// The restore snapshot has no state for this thread.
    MissingThreadState(ThreadKey),
    /// Writing a durable checkpoint shard or committing a generation
    /// failed (I/O error). The run is aborted: silently continuing would
    /// leave the job without restore points.
    Checkpoint(String),
    /// A thread panicked for a reason other than a communicator failure.
    ThreadPanicked(String),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Killed(k) => write!(f, "rank {k:?} was killed"),
            TrainError::Comm(e) => write!(f, "collective failed: {e}"),
            TrainError::PipelineBroken => write!(f, "pipeline channel closed by a dead peer"),
            TrainError::MissingThreadState(k) => {
                write!(f, "snapshot has no state for thread {k:?}")
            }
            TrainError::Checkpoint(m) => write!(f, "durable checkpoint failed: {m}"),
            TrainError::ThreadPanicked(m) => write!(f, "worker thread panicked: {m}"),
        }
    }
}

impl std::error::Error for TrainError {}

/// Everything a (possibly failed) [`PtdpTrainer::train_with`] run produced.
pub struct TrainOutcome {
    /// Losses / final params / instrumentation. On a failed run, only the
    /// entries completed before the failure are filled.
    pub log: TrainLog,
    /// The first error observed, if the run did not complete. A run with a
    /// [`KillSwitch`] always reports an error (`Killed` on the dead rank's
    /// side, a comm/pipeline error from the survivors).
    pub error: Option<TrainError>,
    /// The most recent checkpoint completed by *every* thread, if
    /// checkpointing was enabled and one completed before the failure.
    pub snapshot: Option<TrainSnapshot>,
}

/// Embedding owned by a first-stage thread: replicated or vocab-sharded.
pub(crate) enum EmbedShard {
    Replicated(Embedding),
    VocabParallel(VocabParallelEmbedding),
}

impl EmbedShard {
    pub(crate) fn forward(&self, toks: &[usize], seq: usize, tg: &GroupMember) -> Matrix {
        match self {
            EmbedShard::Replicated(e) => e.forward(toks, seq),
            EmbedShard::VocabParallel(e) => e.forward(toks, seq, tg),
        }
    }

    pub(crate) fn backward(&mut self, toks: &[usize], seq: usize, dx: &Matrix) {
        match self {
            EmbedShard::Replicated(e) => e.backward(toks, seq, dx),
            EmbedShard::VocabParallel(e) => e.backward(toks, seq, dx),
        }
    }

    fn visit(&mut self, f: &mut impl FnMut(&mut [f32], &mut [f32])) {
        match self {
            EmbedShard::Replicated(e) => e.visit(f),
            EmbedShard::VocabParallel(e) => e.visit(f),
        }
    }
}

impl EmbedShard {
    /// Merge tensor-group shards back into a serial [`Embedding`].
    pub(crate) fn assemble(shards: &[&EmbedShard]) -> Embedding {
        match shards[0] {
            EmbedShard::Replicated(e) => e.clone(),
            EmbedShard::VocabParallel(_) => {
                let parts: Vec<Matrix> = shards
                    .iter()
                    .map(|s| match s {
                        EmbedShard::VocabParallel(e) => e.tokens.clone(),
                        EmbedShard::Replicated(_) => unreachable!("mixed embed layouts"),
                    })
                    .collect();
                let tokens = Matrix::concat_rows(&parts);
                let positions = match shards[0] {
                    EmbedShard::VocabParallel(e) => e.positions.clone(),
                    EmbedShard::Replicated(_) => unreachable!(),
                };
                let (vr, vc) = (tokens.rows(), tokens.cols());
                let (pr, pc) = (positions.rows(), positions.cols());
                Embedding {
                    tokens,
                    positions,
                    gtokens: Matrix::zeros(vr, vc),
                    gpositions: Matrix::zeros(pr, pc),
                }
            }
        }
    }
}

/// LM head owned by a last-stage thread: replicated or vocab-sharded.
pub(crate) enum HeadShard {
    Replicated(LayerNorm, Linear),
    VocabParallel(LayerNorm, VocabParallelHead),
}

impl HeadShard {
    fn visit(&mut self, f: &mut impl FnMut(&mut [f32], &mut [f32])) {
        match self {
            HeadShard::Replicated(ln, lm) => {
                ln.visit(f);
                lm.visit(f);
            }
            HeadShard::VocabParallel(ln, hd) => {
                ln.visit(f);
                hd.visit(f);
            }
        }
    }
}

impl HeadShard {
    /// Merge tensor-group shards back into the serial final LayerNorm + LM
    /// head pair.
    pub(crate) fn assemble(shards: &[&HeadShard]) -> (LayerNorm, Linear) {
        match shards[0] {
            HeadShard::Replicated(ln, lm) => (ln.clone(), lm.clone()),
            HeadShard::VocabParallel(ln, _) => {
                let parts: Vec<Matrix> = shards
                    .iter()
                    .map(|s| match s {
                        HeadShard::VocabParallel(_, hd) => hd.w.w.clone(),
                        HeadShard::Replicated(..) => unreachable!("mixed head layouts"),
                    })
                    .collect();
                let w = Matrix::concat_cols(&parts);
                let (r, c) = (w.rows(), w.cols());
                (
                    ln.clone(),
                    Linear {
                        w,
                        b: None,
                        gw: Matrix::zeros(r, c),
                        gb: vec![0.0; c],
                    },
                )
            }
        }
    }
}

/// The model shard owned by one thread.
pub(crate) struct ThreadModel {
    /// Blocks per owned chunk (index = chunk id).
    pub(crate) chunks: Vec<Vec<ParallelBlock>>,
    pub(crate) embed: Option<EmbedShard>,
    pub(crate) head: Option<HeadShard>,
}

impl ThreadModel {
    fn visit(&mut self, f: &mut impl FnMut(&mut [f32], &mut [f32])) {
        if let Some(e) = &mut self.embed {
            e.visit(f);
        }
        for chunk in &mut self.chunks {
            for b in chunk {
                b.visit(f);
            }
        }
        if let Some(h) = &mut self.head {
            h.visit(f);
        }
    }

    /// Visit parameter slices only (reassembly helper).
    pub(crate) fn visit_params(&mut self, f: &mut impl FnMut(&mut [f32])) {
        self.visit(&mut |p, _| f(p));
    }

    /// Visit gradient slices only (2BW helper).
    pub(crate) fn visit_grads(&mut self, f: &mut impl FnMut(&mut [f32])) {
        self.visit(&mut |_, g| f(g));
    }

    fn param_grad_pairs(&mut self) -> Vec<(&mut [f32], &mut [f32])> {
        let mut raw: Vec<(*mut [f32], *mut [f32])> = Vec::new();
        self.visit(&mut |p, g| raw.push((p as *mut [f32], g as *mut [f32])));
        // SAFETY: visit yields disjoint field borrows.
        raw.into_iter()
            .map(|(p, g)| unsafe { (&mut *p, &mut *g) })
            .collect()
    }

    pub(crate) fn flat_params(&mut self) -> Vec<f32> {
        let mut out = Vec::new();
        self.visit(&mut |p, _| out.extend_from_slice(p));
        out
    }

    /// Overwrite every parameter from a flat snapshot (inverse of
    /// [`ThreadModel::flat_params`]).
    pub(crate) fn set_flat_params(&mut self, vals: &[f32]) {
        let mut off = 0;
        self.visit(&mut |p, _| {
            p.copy_from_slice(&vals[off..off + p.len()]);
            off += p.len();
        });
        assert_eq!(off, vals.len(), "snapshot parameter count mismatch");
    }
}

/// Per-microbatch forward cache for one chunk.
struct ChunkCache {
    /// Full per-block caches (empty in recompute mode).
    block_caches: Vec<ParallelBlockCache>,
    /// Recompute mode: the chunk's input activation, stashed instead.
    input: Option<Matrix>,
    // Last stage only: loss path (absent in recompute mode — rebuilt).
    head: Option<HeadCache>,
    // First stage only: token slice for embedding backward.
    tokens: Option<Vec<usize>>,
}

impl ChunkCache {
    /// `f32` values held (activation-memory instrumentation, §3.5).
    fn float_count(&self) -> usize {
        self.block_caches
            .iter()
            .map(|c| c.float_count())
            .sum::<usize>()
            + self.input.as_ref().map_or(0, Matrix::len)
            + self
                .head
                .as_ref()
                .map_or(0, |h| h.hidden_final.len() + h.dlogits.len())
    }
}

struct HeadCache {
    ln: LayerNormCache,
    hidden_final: Matrix,
    /// Replicated path: full dlogits; vocab-parallel path: the local shard.
    dlogits: DLogits,
}

enum DLogits {
    Full(Matrix),
    Shard(VocabHeadCache),
}

impl DLogits {
    fn len(&self) -> usize {
        match self {
            DLogits::Full(m) => m.len(),
            DLogits::Shard(c) => c.dlogits.len(),
        }
    }
}

/// Channel endpoints for one thread.
#[derive(Default)]
struct Endpoints {
    fwd_in: HashMap<usize, Receiver<Matrix>>,
    fwd_out: HashMap<usize, Sender<Matrix>>,
    bwd_in: HashMap<usize, Receiver<Matrix>>,
    bwd_out: HashMap<usize, Sender<Matrix>>,
}

/// Real PTD-P training over threads.
pub struct PtdpTrainer {
    master: GptModel,
    spec: PtdpSpec,
}

impl PtdpTrainer {
    /// Validate the spec against the master model and build the trainer.
    ///
    /// # Panics
    /// On any §3.1-style divisibility violation.
    pub fn new(master: GptModel, spec: PtdpSpec) -> Self {
        let cfg = master.cfg;
        assert!(
            cfg.heads.is_multiple_of(spec.tensor),
            "t must divide attention heads"
        );
        assert!(
            cfg.layers.is_multiple_of(spec.pipeline * spec.chunks),
            "layers must divide into p·v stages"
        );
        assert_eq!(
            spec.schedule.chunks(),
            spec.chunks,
            "schedule/spec chunk mismatch"
        );
        PtdpTrainer { master, spec }
    }

    /// Train for one iteration per element of `data`; each element is the
    /// full global batch (`tokens`, `targets`), both `B·seq` long.
    ///
    /// # Panics
    /// If any worker fails (use [`PtdpTrainer::train_with`] for the
    /// fallible path).
    pub fn train(&self, data: &[(Vec<usize>, Vec<usize>)]) -> TrainLog {
        let out = self.train_with(data, RunControl::default());
        if let Some(e) = out.error {
            panic!("training failed: {e}");
        }
        out.log
    }

    /// Like [`PtdpTrainer::train`] with failure handling: periodic
    /// in-memory checkpoints, restore-from-snapshot, deliberate rank
    /// kills, and a collective timeout. Never panics on worker failure —
    /// the first error is reported in the outcome instead.
    pub fn train_with(&self, data: &[(Vec<usize>, Vec<usize>)], ctl: RunControl) -> TrainOutcome {
        let spec = self.spec;
        let cfg = self.master.cfg;
        let (p, t, d, v) = (spec.pipeline, spec.tensor, spec.data, spec.chunks);
        let stages = p * v;
        let seq = cfg.seq;

        assert!(!data.is_empty(), "need at least one iteration of data");
        let batch_total = data[0].0.len() / seq;
        for (tok, tgt) in data {
            assert_eq!(tok.len(), batch_total * seq, "uneven iteration batches");
            assert_eq!(tgt.len(), batch_total * seq);
        }
        assert!(
            batch_total.is_multiple_of(d * spec.microbatch),
            "B={batch_total} must divide by d·b = {}",
            d * spec.microbatch
        );
        let per_replica = batch_total / d;
        let m = per_replica / spec.microbatch;
        let schedule = spec.schedule.build(p, m);
        schedule.validate().expect("generated schedule is valid");

        // --- Process groups ---
        let timeout = ctl.comm_timeout.unwrap_or(spec.comm_timeout);
        let tensor_groups: HashMap<(usize, usize), Arc<Group>> = (0..p)
            .flat_map(|pi| (0..d).map(move |di| ((pi, di), Group::with_timeout(t, timeout))))
            .collect();
        let data_groups: HashMap<(usize, usize), Arc<Group>> = (0..p)
            .flat_map(|pi| (0..t).map(move |ti| ((pi, ti), Group::with_timeout(d, timeout))))
            .collect();

        // --- Channels (per (di, ti) lane, per stage boundary) ---
        let mut endpoints: HashMap<(usize, usize, usize), Endpoints> = (0..p)
            .flat_map(|pi| {
                (0..d)
                    .flat_map(move |di| (0..t).map(move |ti| ((pi, di, ti), Endpoints::default())))
            })
            .collect();
        for di in 0..d {
            for ti in 0..t {
                for s in 0..stages.saturating_sub(1) {
                    let from_dev = s % p;
                    let to_dev = (s + 1) % p;
                    let (ftx, frx) = unbounded();
                    let (btx, brx) = unbounded();
                    endpoints
                        .get_mut(&(from_dev, di, ti))
                        .unwrap()
                        .fwd_out
                        .insert(s, ftx);
                    endpoints
                        .get_mut(&(to_dev, di, ti))
                        .unwrap()
                        .fwd_in
                        .insert(s + 1, frx);
                    endpoints
                        .get_mut(&(to_dev, di, ti))
                        .unwrap()
                        .bwd_out
                        .insert(s + 1, btx);
                    endpoints
                        .get_mut(&(from_dev, di, ti))
                        .unwrap()
                        .bwd_in
                        .insert(s, brx);
                }
            }
        }

        let losses = Arc::new(Mutex::new(vec![0.0f32; data.len()]));
        let final_params: SharedMap<Vec<f32>> = Arc::new(Mutex::new(HashMap::new()));
        let peak_stash: SharedMap<usize> = Arc::new(Mutex::new(HashMap::new()));
        let step_times: SharedMap<Vec<StepSample>> = Arc::new(Mutex::new(HashMap::new()));
        let comm_volumes: SharedMap<RankCommVolume> = Arc::new(Mutex::new(HashMap::new()));
        // Checkpoints accumulate per iteration; threads may drift by up to
        // a pipeline flush, so only an iteration every thread finished
        // counts as a restorable snapshot.
        let ckpts: Mutex<HashMap<usize, HashMap<ThreadKey, ThreadState>>> =
            Mutex::new(HashMap::new());
        let ctl = &ctl;

        let results: Vec<(ThreadKey, Result<(), TrainError>)> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p * d * t);
            for pi in 0..p {
                for di in 0..d {
                    for ti in 0..t {
                        let ep = endpoints.remove(&(pi, di, ti)).unwrap();
                        let tg = tensor_groups[&(pi, di)].member(ti);
                        let dg = data_groups[&(pi, ti)].member(di);
                        let losses = Arc::clone(&losses);
                        let final_params = Arc::clone(&final_params);
                        let peak_stash = Arc::clone(&peak_stash);
                        let step_times = Arc::clone(&step_times);
                        let comm_volumes = Arc::clone(&comm_volumes);
                        let master = &self.master;
                        let schedule = &schedule;
                        let ckpts = &ckpts;
                        handles.push((
                            (pi, di, ti),
                            scope.spawn(move || {
                                run_thread(ThreadArgs {
                                    pi,
                                    di,
                                    ti,
                                    spec,
                                    master,
                                    schedule,
                                    data,
                                    ep,
                                    tg,
                                    dg,
                                    losses,
                                    final_params,
                                    peak_stash,
                                    step_times,
                                    comm_volumes,
                                    ctl,
                                    ckpts,
                                })
                            }),
                        ));
                    }
                }
            }
            handles
                .into_iter()
                .map(|(key, h)| (key, h.join().unwrap_or_else(|p| Err(classify_panic(&p)))))
                .collect()
        });

        // Prefer the deliberate kill as the headline error (the comm errors
        // on the survivors are its consequences).
        let error = results
            .iter()
            .find_map(|(_, r)| match r {
                Err(e @ TrainError::Killed(_)) => Some(e.clone()),
                _ => None,
            })
            .or_else(|| results.iter().find_map(|(_, r)| r.as_ref().err().cloned()));

        let world = p * d * t;
        let snapshot = ckpts
            .into_inner()
            .unwrap()
            .into_iter()
            .filter(|(_, threads)| threads.len() == world)
            .max_by_key(|(next_iter, _)| *next_iter)
            .map(|(next_iter, threads)| TrainSnapshot { next_iter, threads });

        let comm_volumes = Arc::try_unwrap(comm_volumes).unwrap().into_inner().unwrap();
        if let Some(sink) = &ctl.telemetry {
            let mut total = 0.0f64;
            for ((cpi, cdi, cti), vol) in &comm_volumes {
                let bytes = vol.total_bytes();
                sink.metrics
                    .counter(&format!("comm_bytes.rank.p{cpi}d{cdi}t{cti}"))
                    .add(bytes as u64);
                total += bytes;
            }
            sink.metrics.counter("comm_bytes_total").add(total as u64);
        }

        TrainOutcome {
            log: TrainLog {
                losses: Arc::try_unwrap(losses).unwrap().into_inner().unwrap(),
                final_params: Arc::try_unwrap(final_params).unwrap().into_inner().unwrap(),
                peak_stash_floats: Arc::try_unwrap(peak_stash).unwrap().into_inner().unwrap(),
                step_times: Arc::try_unwrap(step_times).unwrap().into_inner().unwrap(),
                comm_volumes,
            },
            error,
            snapshot,
        }
    }
}

/// Map a worker panic to a [`TrainError`]. The inner tensor/vocab
/// collectives surface communicator failures by panicking with a typed
/// [`CommPanic`] payload; anything else is a genuine bug in the worker.
/// No string matching: a reworded panic message can never flip the
/// classification.
fn classify_panic(payload: &(dyn std::any::Any + Send)) -> TrainError {
    if let Some(CommPanic(e)) = payload.downcast_ref::<CommPanic>() {
        return TrainError::Comm(*e);
    }
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic".to_string());
    TrainError::ThreadPanicked(msg)
}

struct ThreadArgs<'a> {
    pi: usize,
    di: usize,
    ti: usize,
    spec: PtdpSpec,
    master: &'a GptModel,
    schedule: &'a megatron_schedule::PipelineSchedule,
    data: &'a [(Vec<usize>, Vec<usize>)],
    ep: Endpoints,
    tg: GroupMember,
    dg: GroupMember,
    losses: Arc<Mutex<Vec<f32>>>,
    final_params: SharedMap<Vec<f32>>,
    peak_stash: SharedMap<usize>,
    step_times: SharedMap<Vec<StepSample>>,
    comm_volumes: SharedMap<RankCommVolume>,
    ctl: &'a RunControl,
    ckpts: &'a Mutex<HashMap<usize, HashMap<ThreadKey, ThreadState>>>,
}

/// Per-iteration context every telemetry span is tagged with.
#[derive(Clone, Copy)]
struct SpanCtx {
    iteration: usize,
    epoch: usize,
}

/// Close a telemetry span opened at `start_ns`, if tracing is on. Returns
/// the span duration in ns (0 when tracing is off), so call sites can
/// accumulate e.g. bubble time for the metrics counters.
fn emit(
    tracer: &mut Option<RankTracer>,
    ctx: SpanCtx,
    kind: SpanKind,
    name: &'static str,
    start_ns: Option<u64>,
    args: SpanArgs,
) -> u64 {
    match (tracer.as_mut(), start_ns) {
        (Some(tr), Some(t0)) => tr.close(kind, name, t0, ctx.iteration, ctx.epoch, args),
        _ => 0,
    }
}

/// Current hub time, if tracing is on (span-open helper).
fn tnow(tracer: &Option<RankTracer>) -> Option<u64> {
    tracer.as_ref().map(RankTracer::now)
}

/// Build the shard thread `(pi, ti)` owns from the master weights.
pub(crate) fn build_thread_model(
    master: &GptModel,
    spec: &PtdpSpec,
    pi: usize,
    ti: usize,
) -> ThreadModel {
    let cfg = master.cfg;
    let (p, t, v) = (spec.pipeline, spec.tensor, spec.chunks);
    let stages = p * v;
    let layers_per_stage = cfg.layers / stages;
    let vocab_parallel = spec.vocab_parallel && t > 1;
    ThreadModel {
        chunks: (0..v)
            .map(|c| {
                let stage = c * p + pi;
                let lo = stage * layers_per_stage;
                (lo..lo + layers_per_stage)
                    .map(|l| ParallelBlock::from_serial(&master.blocks[l], cfg.heads, t, ti))
                    .collect()
            })
            .collect(),
        embed: (pi == 0).then(|| {
            if vocab_parallel {
                EmbedShard::VocabParallel(VocabParallelEmbedding::from_serial(&master.embed, t, ti))
            } else {
                EmbedShard::Replicated(master.embed.clone())
            }
        }),
        // The last global stage (stages−1) lives on device (stages−1) % p,
        // which is p−1 (and chunk v−1).
        head: (pi == (stages - 1) % p).then(|| {
            if vocab_parallel {
                HeadShard::VocabParallel(
                    master.final_ln.clone(),
                    VocabParallelHead::from_serial(&master.lm_head, t, ti),
                )
            } else {
                HeadShard::Replicated(master.final_ln.clone(), master.lm_head.clone())
            }
        }),
    }
}

/// Final-LayerNorm → head → loss, for either head layout. Returns the
/// (replicated) mean loss and the backward cache.
fn head_forward(
    head: &HeadShard,
    x: &Matrix,
    targets: &[usize],
    tg: &GroupMember,
) -> (f32, HeadCache) {
    match head {
        HeadShard::Replicated(ln, lm) => {
            let (hf, ln_cache) = ln.forward(x);
            let logits = lm.forward(&hf);
            let (loss, dlogits) = cross_entropy(&logits, targets);
            (
                loss,
                HeadCache {
                    ln: ln_cache,
                    hidden_final: hf,
                    dlogits: DLogits::Full(dlogits),
                },
            )
        }
        HeadShard::VocabParallel(ln, hd) => {
            let (hf, ln_cache) = ln.forward(x);
            let (loss, cache) = hd.forward_loss(&hf, targets, tg);
            (
                loss,
                HeadCache {
                    ln: ln_cache,
                    hidden_final: hf,
                    dlogits: DLogits::Shard(cache),
                },
            )
        }
    }
}

/// Head backward for either layout; returns the gradient entering the
/// final LayerNorm's input.
fn head_backward(head: &mut HeadShard, hc: &HeadCache, tg: &GroupMember) -> Matrix {
    match (head, &hc.dlogits) {
        (HeadShard::Replicated(ln, lm), DLogits::Full(dlogits)) => {
            let dhf = lm.backward(&hc.hidden_final, dlogits);
            ln.backward(&hc.ln, &dhf)
        }
        (HeadShard::VocabParallel(ln, hd), DLogits::Shard(cache)) => {
            let mut dhf = hd.backward_partial(&hc.hidden_final, cache);
            // f operator of the column-parallel head: all-reduce the
            // partial hidden gradient.
            tg.all_reduce_sum(dhf.as_mut_slice());
            ln.backward(&hc.ln, &dhf)
        }
        _ => unreachable!("head layout and cache variant always match"),
    }
}

fn run_thread(args: ThreadArgs<'_>) -> Result<(), TrainError> {
    let ThreadArgs {
        pi,
        di,
        ti,
        spec,
        master,
        schedule,
        data,
        ep,
        tg,
        dg,
        losses,
        final_params,
        peak_stash,
        step_times,
        comm_volumes,
        ctl,
        ckpts,
    } = args;
    let cfg = master.cfg;
    let (p, v) = (spec.pipeline, spec.chunks);
    let stages = p * v;
    let last_stage = stages - 1;
    let layers_per_stage = cfg.layers / stages;
    let seq = cfg.seq;
    let b = spec.microbatch;
    let per_replica = data[0].0.len() / seq / spec.data;
    let m = per_replica / b;
    let key: ThreadKey = (pi, di, ti);

    // Any early return must poison both groups first, or peers blocked in
    // a collective would sit out the full timeout instead of failing fast.
    let fail = |e: CommError| {
        tg.poison();
        dg.poison();
        TrainError::Comm(e)
    };
    let broken = || {
        tg.poison();
        dg.poison();
        TrainError::PipelineBroken
    };

    let mut model = build_thread_model(master, &spec, pi, ti);
    let mut adam = Adam::new(spec.lr);
    let owns_last = model.head.is_some();

    // Telemetry: one single-writer tracer per thread (publishes into the
    // hub on drop, so spans survive the error paths too), plus cached
    // handles to the shared bubble/step counters.
    let flat_rank = pi * (spec.data * spec.tensor) + di * spec.tensor + ti;
    let mut tracer = ctl.telemetry.as_ref().map(|s| s.hub.tracer(flat_rank, key));
    let iter_counters = ctl.telemetry.as_ref().map(|s| {
        (
            s.metrics.counter(TelemetrySink::BUBBLE_NS),
            s.metrics.counter(TelemetrySink::STEP_NS),
        )
    });
    let mut p2p_send_bytes = 0.0f64;

    let start_iter = if let Some(snap) = &ctl.restore {
        let st = snap.threads.get(&key).ok_or_else(|| {
            tg.poison();
            dg.poison();
            TrainError::MissingThreadState(key)
        })?;
        model.set_flat_params(&st.params);
        adam.import_state(st.adam.clone());
        snap.next_iter
    } else {
        0
    };
    let kill_iter = ctl.kill.filter(|k| k.thread == key).map(|k| k.iteration);

    for (iter, (tokens, targets)) in data.iter().enumerate().skip(start_iter) {
        let iter_start = Instant::now();
        let ctx = SpanCtx {
            iteration: iter,
            epoch: ctl.epoch,
        };
        let mut bubble_ns = 0u64;
        // This replica's slice.
        let lo = di * per_replica * seq;
        let replica_tokens = &tokens[lo..lo + per_replica * seq];
        let replica_targets = &targets[lo..lo + per_replica * seq];
        let mb_tokens = |mb: usize| &replica_tokens[mb * b * seq..(mb + 1) * b * seq];
        let mb_targets = |mb: usize| &replica_targets[mb * b * seq..(mb + 1) * b * seq];

        model.visit(&mut |_, g| g.fill(0.0));
        let mut stash: HashMap<(usize, usize), ChunkCache> = HashMap::new();
        let mut stash_floats = 0usize;
        let mut loss_sum = 0.0f32;

        for (opi, op) in schedule.ops[pi].iter().enumerate() {
            // Fault-injection hook: die halfway through this iteration's
            // op list, as if the GPU failed mid-step.
            if kill_iter == Some(iter) && opi == schedule.ops[pi].len() / 2 {
                tg.poison();
                dg.poison();
                return Err(TrainError::Killed(key));
            }
            let stage = schedule.stage_of(pi, op.chunk);
            match op.pass {
                Pass::Forward => {
                    let toks = mb_tokens(op.microbatch);
                    let mb_args = SpanArgs {
                        bytes: None,
                        microbatch: Some(op.microbatch),
                        chunk: Some(op.chunk),
                    };
                    let t_in = tnow(&tracer);
                    let input = if stage == 0 {
                        model
                            .embed
                            .as_ref()
                            .expect("stage 0 owns embed")
                            .forward(toks, seq, &tg)
                    } else {
                        ep.fwd_in[&stage].recv().map_err(|_| broken())?
                    };
                    // For stage 0 the time since t_in is embedding compute
                    // (part of the forward span); everywhere else it is a
                    // pipeline wait (bubble).
                    let t_fwd = if stage == 0 {
                        t_in
                    } else {
                        bubble_ns += emit(
                            &mut tracer,
                            ctx,
                            SpanKind::Bubble,
                            "pipeline-wait-fwd",
                            t_in,
                            mb_args,
                        );
                        tnow(&tracer)
                    };
                    let mut x = input.clone();
                    let mut block_caches = Vec::with_capacity(layers_per_stage);
                    for blk in &model.chunks[op.chunk] {
                        let (nx, c) = blk.forward(&x, b, seq, &tg);
                        x = nx;
                        if !spec.recompute {
                            block_caches.push(c);
                        }
                    }
                    let mut cache = ChunkCache {
                        block_caches,
                        input: spec.recompute.then_some(input),
                        head: None,
                        tokens: (stage == 0).then(|| toks.to_vec()),
                    };
                    if stage == last_stage {
                        let head = model.head.as_ref().expect("last stage owns head");
                        let targets = mb_targets(op.microbatch);
                        let (loss, head_cache) = head_forward(head, &x, targets, &tg);
                        loss_sum += loss;
                        if !spec.recompute {
                            cache.head = Some(head_cache);
                        }
                        emit(
                            &mut tracer,
                            ctx,
                            SpanKind::Forward,
                            "forward",
                            t_fwd,
                            mb_args,
                        );
                    } else {
                        emit(
                            &mut tracer,
                            ctx,
                            SpanKind::Forward,
                            "forward",
                            t_fwd,
                            mb_args,
                        );
                        let send_bytes = x.len() as f64 * BYTES_F32;
                        let t_send = tnow(&tracer);
                        ep.fwd_out[&stage].send(x).map_err(|_| broken())?;
                        emit(
                            &mut tracer,
                            ctx,
                            SpanKind::Comm,
                            "p2p-send-fwd",
                            t_send,
                            SpanArgs {
                                bytes: Some(send_bytes),
                                ..mb_args
                            },
                        );
                        p2p_send_bytes += send_bytes;
                    }
                    stash_floats += cache.float_count();
                    let mut peak = peak_stash.lock().unwrap();
                    let e = peak.entry((pi, di, ti)).or_insert(0);
                    *e = (*e).max(stash_floats);
                    drop(peak);
                    stash.insert((op.microbatch, op.chunk), cache);
                }
                Pass::Backward => {
                    let mb_args = SpanArgs {
                        bytes: None,
                        microbatch: Some(op.microbatch),
                        chunk: Some(op.chunk),
                    };
                    let mut cache = stash
                        .remove(&(op.microbatch, op.chunk))
                        .expect("backward before forward");
                    stash_floats -= cache.float_count();
                    if spec.recompute {
                        // §3.5: rerun the forward pass from the stashed
                        // input to rebuild all intermediate activations
                        // (bit-identical to the discarded ones).
                        let t_rc = tnow(&tracer);
                        let mut x = cache.input.take().expect("recompute stash");
                        let mut rebuilt = Vec::with_capacity(layers_per_stage);
                        for blk in &model.chunks[op.chunk] {
                            let (nx, c) = blk.forward(&x, b, seq, &tg);
                            x = nx;
                            rebuilt.push(c);
                        }
                        cache.block_caches = rebuilt;
                        if stage == last_stage {
                            let head = model.head.as_ref().expect("head");
                            let (_, head_cache) =
                                head_forward(head, &x, mb_targets(op.microbatch), &tg);
                            cache.head = Some(head_cache);
                        }
                        emit(
                            &mut tracer,
                            ctx,
                            SpanKind::Forward,
                            "recompute-forward",
                            t_rc,
                            mb_args,
                        );
                    }
                    let (mut dx, t_bwd) = if stage == last_stage {
                        let t0 = tnow(&tracer);
                        let hc = cache.head.as_ref().expect("head cache");
                        let head = model.head.as_mut().expect("head");
                        (head_backward(head, hc, &tg), t0)
                    } else {
                        let t_wait = tnow(&tracer);
                        let dx = ep.bwd_in[&stage].recv().map_err(|_| broken())?;
                        bubble_ns += emit(
                            &mut tracer,
                            ctx,
                            SpanKind::Bubble,
                            "pipeline-wait-bwd",
                            t_wait,
                            mb_args,
                        );
                        (dx, tnow(&tracer))
                    };
                    for (blk, c) in model.chunks[op.chunk]
                        .iter_mut()
                        .zip(&cache.block_caches)
                        .rev()
                    {
                        dx = blk.backward(c, &dx, b, seq, &tg);
                    }
                    if stage > 0 {
                        emit(
                            &mut tracer,
                            ctx,
                            SpanKind::Backward,
                            "backward",
                            t_bwd,
                            mb_args,
                        );
                        let send_bytes = dx.len() as f64 * BYTES_F32;
                        let t_send = tnow(&tracer);
                        ep.bwd_out[&stage].send(dx).map_err(|_| broken())?;
                        emit(
                            &mut tracer,
                            ctx,
                            SpanKind::Comm,
                            "p2p-send-bwd",
                            t_send,
                            SpanArgs {
                                bytes: Some(send_bytes),
                                ..mb_args
                            },
                        );
                        p2p_send_bytes += send_bytes;
                    } else {
                        let toks = cache.tokens.as_ref().expect("stage-0 tokens");
                        model
                            .embed
                            .as_mut()
                            .expect("stage 0 owns embed")
                            .backward(toks, seq, &dx);
                        emit(
                            &mut tracer,
                            ctx,
                            SpanKind::Backward,
                            "backward",
                            t_bwd,
                            mb_args,
                        );
                    }
                }
            }
        }
        assert!(stash.is_empty(), "flush left microbatches in flight");

        // --- Pipeline flush complete: optimizer semantics ---
        // Gradients currently hold Σ over microbatches of per-microbatch
        // means; rescale to the replica mean, then average over replicas.
        let inv_m = 1.0 / m as f32;
        model.visit(&mut |_, g| {
            for x in g.iter_mut() {
                *x *= inv_m;
            }
        });

        // Report loss (last stage, tensor rank 0): replica mean, then mean
        // over data-parallel replicas.
        if owns_last && ti == 0 {
            let mut l = [loss_sum * inv_m];
            let t_loss = tnow(&tracer);
            dg.try_all_reduce_mean(&mut l).map_err(&fail)?;
            emit(
                &mut tracer,
                ctx,
                SpanKind::Comm,
                "loss-allreduce",
                t_loss,
                SpanArgs::bytes(ring_all_reduce_bytes(spec.data, 1)),
            );
            if di == 0 {
                losses.lock().unwrap()[iter] = l[0];
            }
        }

        if spec.data > 1 && spec.shard_optimizer {
            // ZeRO-1 path: reduce-scatter gradients, step the owned slice,
            // all-gather updated parameters. The rank-ordered reductions
            // make this bit-identical to the replicated path.
            let d = spec.data;
            let mut flat_p = Vec::new();
            let mut flat_g = Vec::new();
            model.visit(&mut |pp, gg| {
                flat_p.extend_from_slice(pp);
                flat_g.extend_from_slice(gg);
            });
            let n0 = flat_g.len();
            let pad = (d - n0 % d) % d;
            flat_g.resize(n0 + pad, 0.0);
            flat_p.resize(n0 + pad, 0.0);
            let chunk = (n0 + pad) / d;
            let t_rs = tnow(&tracer);
            let mut gshard = dg.try_reduce_scatter_sum(&flat_g).map_err(&fail)?;
            emit(
                &mut tracer,
                ctx,
                SpanKind::Comm,
                "grad-reduce-scatter",
                t_rs,
                SpanArgs::bytes(ring_reduce_scatter_bytes(d, flat_g.len())),
            );
            let inv_d = 1.0 / d as f32;
            for x in &mut gshard {
                *x *= inv_d;
            }
            let lo = di * chunk;
            let mut pshard = flat_p[lo..lo + chunk].to_vec();
            let t_opt = tnow(&tracer);
            adam.step(&mut [(&mut pshard, &mut gshard)]);
            emit(
                &mut tracer,
                ctx,
                SpanKind::Optimizer,
                "adam-step",
                t_opt,
                SpanArgs::NONE,
            );
            let t_ag = tnow(&tracer);
            let mut gathered = dg.try_all_gather(&pshard).map_err(&fail)?;
            emit(
                &mut tracer,
                ctx,
                SpanKind::Comm,
                "param-allgather",
                t_ag,
                SpanArgs::bytes(ring_all_gather_bytes(d, pshard.len())),
            );
            gathered.truncate(n0);
            let mut off = 0;
            model.visit(&mut |pp, _| {
                pp.copy_from_slice(&gathered[off..off + pp.len()]);
                off += pp.len();
            });
        } else {
            // Data-parallel gradient averaging, parameter by parameter
            // (same order on every member of the group).
            if spec.data > 1 {
                let t_ar = tnow(&tracer);
                let ar_before = dg.comm_volume().all_reduce_bytes;
                let mut comm_err: Option<CommError> = None;
                model.visit(&mut |_, g| {
                    if comm_err.is_none() {
                        if let Err(e) = dg.try_all_reduce_mean(g) {
                            comm_err = Some(e);
                        }
                    }
                });
                if let Some(e) = comm_err {
                    return Err(fail(e));
                }
                emit(
                    &mut tracer,
                    ctx,
                    SpanKind::Comm,
                    "grad-allreduce",
                    t_ar,
                    SpanArgs::bytes(dg.comm_volume().all_reduce_bytes - ar_before),
                );
            }
            let mut pairs = model.param_grad_pairs();
            let t_opt = tnow(&tracer);
            adam.step(&mut pairs);
            emit(
                &mut tracer,
                ctx,
                SpanKind::Optimizer,
                "adam-step",
                t_opt,
                SpanArgs::NONE,
            );
        }

        // --- Optimizer step done: checkpoint + instrumentation ---
        if let Some(k) = ctl.checkpoint_every {
            if k > 0 && (iter + 1).is_multiple_of(k) {
                let t_ck = tnow(&tracer);
                let state = ThreadState {
                    params: model.flat_params(),
                    adam: adam.export_state(),
                };
                let ckpt_fail = |e: crate::checkpoint::CheckpointError| {
                    tg.poison();
                    dg.poison();
                    TrainError::Checkpoint(e.to_string())
                };
                if let Some(store) = &ctl.durable {
                    store
                        .write_shard(&spec, key, iter + 1, &state)
                        .map_err(ckpt_fail)?;
                }
                // The thread whose shard completes the generation commits
                // it (canonical layout + manifest); peers may already be
                // running the next iteration.
                let complete = {
                    let mut map = ckpts.lock().unwrap();
                    let entry = map.entry(iter + 1).or_default();
                    entry.insert(key, state);
                    (entry.len() == spec.world()).then(|| entry.clone())
                };
                if let (Some(threads), Some(store)) = (complete, &ctl.durable) {
                    store
                        .commit_generation(&spec, cfg, iter + 1, &threads)
                        .map_err(ckpt_fail)?;
                }
                emit(
                    &mut tracer,
                    ctx,
                    SpanKind::Checkpoint,
                    "checkpoint-save",
                    t_ck,
                    SpanArgs::NONE,
                );
            }
        }
        let seconds = iter_start.elapsed().as_secs_f64();
        if let Some((bubble_ctr, step_ctr)) = &iter_counters {
            bubble_ctr.add(bubble_ns);
            step_ctr.add((seconds * 1e9).round() as u64);
        }
        // Satellite fix: samples carry (incident epoch, iteration) so a
        // supervisor restart can't interleave its timings with the ones
        // recorded before the fault (they used to be bare f64 pushes).
        step_times
            .lock()
            .unwrap()
            .entry(key)
            .or_default()
            .push(StepSample {
                epoch: ctl.epoch,
                iteration: iter,
                seconds,
            });
        if owns_last && ti == 0 && di == 0 {
            if let Some(sink) = &ctl.telemetry {
                sink.record_iteration(ctl.epoch, iter, seconds);
            }
        }
    }

    comm_volumes.lock().unwrap().insert(
        key,
        RankCommVolume {
            tensor: tg.comm_volume(),
            data: dg.comm_volume(),
            p2p_send_bytes,
        },
    );
    final_params
        .lock()
        .unwrap()
        .insert(key, model.flat_params());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use megatron_tensor::gpt::TinyGptConfig;
    use rand::Rng;
    use rand::SeedableRng;

    fn tiny(layers: usize) -> TinyGptConfig {
        TinyGptConfig {
            vocab: 13,
            seq: 6,
            hidden: 8,
            heads: 4,
            layers,
        }
    }

    fn make_data(
        cfg: TinyGptConfig,
        batch: usize,
        iterations: usize,
        seed: u64,
    ) -> Vec<(Vec<usize>, Vec<usize>)> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..iterations)
            .map(|_| {
                let tokens: Vec<usize> = (0..batch * cfg.seq)
                    .map(|_| rng.gen_range(0..cfg.vocab))
                    .collect();
                let targets: Vec<usize> = (0..batch * cfg.seq)
                    .map(|_| rng.gen_range(0..cfg.vocab))
                    .collect();
                (tokens, targets)
            })
            .collect()
    }

    /// Serial reference: same data, same init, same Adam.
    fn serial_losses(
        master: &GptModel,
        data: &[(Vec<usize>, Vec<usize>)],
        lr: f32,
    ) -> (Vec<f32>, GptModel) {
        let mut model = master.clone();
        let mut adam = Adam::new(lr);
        let batch = data[0].0.len() / model.cfg.seq;
        let mut losses = Vec::new();
        for (tokens, targets) in data {
            model.zero_grads();
            losses.push(model.loss_and_grad(tokens, targets, batch));
            let mut pairs = model.param_grad_pairs();
            adam.step(&mut pairs);
        }
        (losses, model)
    }

    fn assert_losses_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() < tol,
                "iteration {i}: ptdp {x} vs serial {y} (all: {a:?} vs {b:?})"
            );
        }
    }

    fn run_case(cfg: TinyGptConfig, spec: PtdpSpec, batch: usize) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let master = GptModel::new(cfg, &mut rng);
        let data = make_data(cfg, batch, 4, 5);
        let (serial, _) = serial_losses(&master, &data, spec.lr);
        let log = PtdpTrainer::new(master, spec).train(&data);
        assert_losses_close(&log.losses, &serial, 5e-3);
    }

    #[test]
    fn tensor_parallel_only_matches_serial() {
        let mut spec = PtdpSpec::new(1, 4, 1);
        spec.microbatch = 4;
        run_case(tiny(2), spec, 4);
    }

    #[test]
    fn pipeline_1f1b_matches_serial() {
        let mut spec = PtdpSpec::new(2, 1, 1);
        spec.microbatch = 1;
        run_case(tiny(2), spec, 4);
    }

    #[test]
    fn pipeline_gpipe_matches_serial() {
        let mut spec = PtdpSpec::new(2, 1, 1);
        spec.schedule = ScheduleKind::GPipe;
        spec.microbatch = 2;
        run_case(tiny(2), spec, 4);
    }

    #[test]
    fn interleaved_schedule_matches_serial() {
        let mut spec = PtdpSpec::new(2, 1, 1);
        spec.chunks = 2;
        spec.schedule = ScheduleKind::Interleaved { chunks: 2 };
        spec.microbatch = 1;
        run_case(tiny(4), spec, 4); // m = 4 = multiple of p = 2
    }

    #[test]
    fn data_parallel_only_matches_serial() {
        let mut spec = PtdpSpec::new(1, 1, 2);
        spec.microbatch = 2;
        run_case(tiny(2), spec, 4);
    }

    #[test]
    fn full_ptdp_matches_serial() {
        // p=2, t=2, d=2 → 8 threads.
        let mut spec = PtdpSpec::new(2, 2, 2);
        spec.microbatch = 1;
        run_case(tiny(2), spec, 8);
    }

    #[test]
    fn final_weights_match_serial_shards() {
        let cfg = tiny(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let master = GptModel::new(cfg, &mut rng);
        let data = make_data(cfg, 4, 3, 21);
        let spec = {
            let mut s = PtdpSpec::new(2, 2, 1);
            s.microbatch = 1;
            s
        };
        let (_, serial_model) = serial_losses(&master, &data, spec.lr);
        let log = PtdpTrainer::new(master, spec).train(&data);

        // Rebuild each thread's expected final shard from the serially
        // trained model and compare flattened parameters.
        for ((pi, _di, ti), got) in &log.final_params {
            let mut expect = build_thread_model(&serial_model, &spec, *pi, *ti);
            let want = expect.flat_params();
            assert_eq!(want.len(), got.len(), "thread ({pi},{ti}) param count");
            let max_diff = want
                .iter()
                .zip(got)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(
                max_diff < 5e-3,
                "thread ({pi},{ti}): weights diverged by {max_diff}"
            );
        }
    }

    #[test]
    fn replicas_stay_consistent() {
        // All data-parallel replicas of the same stage must end
        // bit-identical: deterministic collectives guarantee it.
        let cfg = tiny(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let master = GptModel::new(cfg, &mut rng);
        let data = make_data(cfg, 8, 3, 17);
        let mut spec = PtdpSpec::new(2, 1, 2);
        spec.microbatch = 2;
        let log = PtdpTrainer::new(master, spec).train(&data);
        for pi in 0..2 {
            let a = &log.final_params[&(pi, 0, 0)];
            let b = &log.final_params[&(pi, 1, 0)];
            assert_eq!(a, b, "stage {pi} replicas diverged");
        }
    }

    #[test]
    fn losses_decrease_under_ptdp() {
        // Memorize a fixed batch: loss must drop under the full 3-D layout.
        let cfg = tiny(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let master = GptModel::new(cfg, &mut rng);
        let one = make_data(cfg, 8, 1, 77).remove(0);
        let data: Vec<_> = (0..15).map(|_| one.clone()).collect();
        let mut spec = PtdpSpec::new(2, 2, 2);
        spec.microbatch = 1;
        spec.lr = 0.02;
        let log = PtdpTrainer::new(master, spec).train(&data);
        assert!(
            log.losses[14] < log.losses[0] * 0.6,
            "losses: {:?}",
            log.losses
        );
    }

    #[test]
    fn sharded_optimizer_matches_replicated() {
        // ZeRO-1 sharding must be numerically indistinguishable from
        // replicated Adam (rank-ordered reductions on both paths).
        let cfg = tiny(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let master = GptModel::new(cfg, &mut rng);
        let data = make_data(cfg, 8, 4, 23);
        let mut spec = PtdpSpec::new(1, 1, 4);
        spec.microbatch = 2;
        let replicated = PtdpTrainer::new(master.clone(), spec).train(&data);
        spec.shard_optimizer = true;
        let sharded = PtdpTrainer::new(master, spec).train(&data);
        for (a, b) in replicated.losses.iter().zip(&sharded.losses) {
            assert!(
                (a - b).abs() < 1e-6,
                "{:?} vs {:?}",
                replicated.losses,
                sharded.losses
            );
        }
        // Final weights identical too.
        for (k, v) in &replicated.final_params {
            let w = &sharded.final_params[k];
            let max = v
                .iter()
                .zip(w)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f32, f32::max);
            assert!(max < 1e-6, "thread {k:?} diverged by {max}");
        }
    }

    #[test]
    fn sharded_optimizer_with_full_ptdp() {
        let cfg = tiny(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let master = GptModel::new(cfg, &mut rng);
        let data = make_data(cfg, 8, 3, 29);
        let mut spec = PtdpSpec::new(2, 2, 2);
        spec.microbatch = 1;
        spec.shard_optimizer = true;
        let (serial, _) = serial_losses(&master, &data, spec.lr);
        let log = PtdpTrainer::new(master, spec).train(&data);
        assert_losses_close(&log.losses, &serial, 5e-3);
    }

    #[test]
    fn vocab_parallel_matches_serial() {
        // Sharded embedding + head with distributed cross-entropy must
        // reproduce serial training. vocab=13 doesn't divide by 4, so use a
        // model with vocab 16 here.
        let cfg = TinyGptConfig {
            vocab: 16,
            seq: 6,
            hidden: 8,
            heads: 4,
            layers: 2,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(53);
        let master = GptModel::new(cfg, &mut rng);
        let data = make_data(cfg, 4, 4, 19);
        let mut spec = PtdpSpec::new(1, 4, 1);
        spec.microbatch = 2;
        spec.vocab_parallel = true;
        let (serial, _) = serial_losses(&master, &data, spec.lr);
        let log = PtdpTrainer::new(master, spec).train(&data);
        assert_losses_close(&log.losses, &serial, 5e-3);
    }

    #[test]
    fn vocab_parallel_full_ptdp() {
        let cfg = TinyGptConfig {
            vocab: 16,
            seq: 6,
            hidden: 8,
            heads: 4,
            layers: 2,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(59);
        let master = GptModel::new(cfg, &mut rng);
        let data = make_data(cfg, 8, 3, 67);
        let mut spec = PtdpSpec::new(2, 2, 2);
        spec.microbatch = 1;
        spec.vocab_parallel = true;
        spec.recompute = true; // compose with recomputation too
        let (serial, _) = serial_losses(&master, &data, spec.lr);
        let log = PtdpTrainer::new(master, spec).train(&data);
        assert_losses_close(&log.losses, &serial, 5e-3);
    }

    #[test]
    fn recompute_matches_full_caching_bitwise() {
        // §3.5: rebuilt activations are bit-identical, so training with
        // recomputation produces exactly the same losses and weights.
        let cfg = tiny(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(61);
        let master = GptModel::new(cfg, &mut rng);
        let data = make_data(cfg, 8, 3, 37);
        let mut spec = PtdpSpec::new(2, 2, 1);
        spec.microbatch = 2;
        let full = PtdpTrainer::new(master.clone(), spec).train(&data);
        spec.recompute = true;
        let rc = PtdpTrainer::new(master, spec).train(&data);
        assert_eq!(full.losses, rc.losses, "losses must be bit-identical");
        for (k, v) in &full.final_params {
            assert_eq!(v, &rc.final_params[k], "weights diverged at {k:?}");
        }
        // And the stash peak must be much smaller with recomputation.
        for (k, &full_peak) in &full.peak_stash_floats {
            let rc_peak = rc.peak_stash_floats[k];
            assert!(
                rc_peak * 3 < full_peak,
                "thread {k:?}: recompute peak {rc_peak} vs full {full_peak}"
            );
        }
    }

    #[test]
    fn gpipe_stashes_more_than_1f1b() {
        // §2.2.1's memory claim, measured on the real engine: GPipe keeps
        // activations for all m microbatches, 1F1B for at most p.
        let cfg = tiny(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(71);
        let master = GptModel::new(cfg, &mut rng);
        let data = make_data(cfg, 8, 1, 43); // m = 8 microbatches
        let mut spec = PtdpSpec::new(2, 1, 1);
        spec.microbatch = 1;
        spec.schedule = ScheduleKind::GPipe;
        let gpipe = PtdpTrainer::new(master.clone(), spec).train(&data);
        spec.schedule = ScheduleKind::OneFOneB;
        let f1b1 = PtdpTrainer::new(master, spec).train(&data);
        // Device 0 under GPipe holds all 8; under 1F1B at most p = 2.
        let g0 = gpipe.peak_stash_floats[&(0, 0, 0)];
        let f0 = f1b1.peak_stash_floats[&(0, 0, 0)];
        assert!(
            g0 >= 3 * f0,
            "GPipe peak {g0} should far exceed 1F1B peak {f0}"
        );
    }

    /// Kill a rank mid-iteration, grab the last full checkpoint, resume,
    /// and demand the resumed run lands bit-identically on an
    /// uninterrupted one.
    fn kill_and_restart_bitwise(cfg: TinyGptConfig, spec: PtdpSpec, batch: usize) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(123);
        let master = GptModel::new(cfg, &mut rng);
        let data = make_data(cfg, batch, 6, 91);

        // Run A: uninterrupted reference.
        let a = PtdpTrainer::new(master.clone(), spec).train(&data);
        for v in a.step_times.values() {
            assert_eq!(v.len(), 6, "every thread times every iteration");
            let iters: Vec<usize> = v.iter().map(|s| s.iteration).collect();
            assert_eq!(iters, vec![0, 1, 2, 3, 4, 5]);
            assert!(v.iter().all(|s| s.epoch == 0));
        }

        // Run B: checkpoint every 2 iterations, kill a rank during iter 4.
        let ctl = RunControl {
            checkpoint_every: Some(2),
            kill: Some(KillSwitch {
                thread: (0, 0, 0),
                iteration: 4,
            }),
            comm_timeout: Some(Duration::from_secs(5)),
            ..Default::default()
        };
        let b = PtdpTrainer::new(master.clone(), spec).train_with(&data, ctl);
        assert_eq!(b.error, Some(TrainError::Killed((0, 0, 0))));
        let snap = b.snapshot.expect("a checkpoint completed before the kill");
        assert_eq!(snap.next_iter, 4, "latest full checkpoint is after iter 3");
        assert_eq!(snap.threads.len(), spec.world());

        // Run C: resume from the snapshot, tagged as incident epoch 1.
        let resume_iter = snap.next_iter;
        let ctl = RunControl {
            restore: Some(snap),
            epoch: 1,
            ..Default::default()
        };
        let c = PtdpTrainer::new(master, spec).train_with(&data, ctl);
        assert!(c.error.is_none(), "resume failed: {:?}", c.error);
        // Satellite fix: step samples keep iteration identity across a
        // restart, so the resumed run's timings can't be confused with the
        // pre-kill attempt's.
        for v in c.log.step_times.values() {
            assert!(!v.is_empty());
            assert!(v.iter().all(|s| s.epoch == 1 && s.iteration >= resume_iter));
        }
        assert_eq!(a.final_params.len(), c.log.final_params.len());
        for (k, v) in &a.final_params {
            assert_eq!(
                v, &c.log.final_params[k],
                "thread {k:?} weights not bit-identical after resume"
            );
        }
        assert_eq!(
            a.losses[4..],
            c.log.losses[4..],
            "resumed-iteration losses must be bit-identical"
        );
    }

    #[test]
    fn kill_and_restart_1f1b() {
        let mut spec = PtdpSpec::new(2, 2, 1);
        spec.microbatch = 1;
        kill_and_restart_bitwise(tiny(2), spec, 4);
    }

    #[test]
    fn kill_and_restart_gpipe() {
        let mut spec = PtdpSpec::new(2, 1, 2);
        spec.schedule = ScheduleKind::GPipe;
        spec.microbatch = 1;
        kill_and_restart_bitwise(tiny(2), spec, 4);
    }

    #[test]
    fn kill_and_restart_interleaved() {
        let mut spec = PtdpSpec::new(2, 1, 1);
        spec.chunks = 2;
        spec.schedule = ScheduleKind::Interleaved { chunks: 2 };
        spec.microbatch = 1;
        kill_and_restart_bitwise(tiny(4), spec, 4);
    }

    #[test]
    fn restore_missing_thread_state_errors() {
        let cfg = tiny(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let master = GptModel::new(cfg, &mut rng);
        let data = make_data(cfg, 4, 2, 11);
        let mut spec = PtdpSpec::new(2, 1, 1);
        spec.microbatch = 1;
        let ctl = RunControl {
            restore: Some(TrainSnapshot {
                next_iter: 1,
                threads: HashMap::new(),
            }),
            comm_timeout: Some(Duration::from_millis(200)),
            ..Default::default()
        };
        let out = PtdpTrainer::new(master, spec).train_with(&data, ctl);
        assert!(
            matches!(out.error, Some(TrainError::MissingThreadState(_))),
            "got {:?}",
            out.error
        );
    }

    #[test]
    #[should_panic(expected = "layers must divide")]
    fn rejects_uneven_layer_split() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let master = GptModel::new(tiny(3), &mut rng);
        PtdpTrainer::new(master, PtdpSpec::new(2, 1, 1));
    }

    #[test]
    #[should_panic(expected = "must divide by d·b")]
    fn rejects_indivisible_batch() {
        let cfg = tiny(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let master = GptModel::new(cfg, &mut rng);
        let data = make_data(cfg, 3, 1, 5);
        let mut spec = PtdpSpec::new(1, 1, 2);
        spec.microbatch = 1;
        PtdpTrainer::new(master, spec).train(&data);
    }
}
