//! Durable sharded checkpoints — the on-disk counterpart of the trainer's
//! in-memory [`TrainSnapshot`], modeled on §5.10's per-rank checkpoint
//! layout.
//!
//! Every rank serializes its [`ThreadState`] (parameters + Adam moments,
//! exact f32 bits) to its own shard file under a *generation* directory
//! `gen-<next_iter>`. Each file is written atomically: temp file → CRC-32
//! footer → rename, so a crash mid-write leaves a temp file, never a torn
//! shard. The rank whose shard completes the generation commits it by
//! writing (1) a *canonical* full-model layout — parameters and both Adam
//! moments assembled into serial visit order via [`crate::assemble`] — and
//! (2) a manifest recording the (p, t, d) topology and iteration. The
//! manifest is the commit record: a generation without one is invisible to
//! the loader.
//!
//! Restore ([`CheckpointStore::load_latest`]) scans generations newest
//! first, verifies every checksum, and falls back to the next older
//! complete generation on any corruption — it returns clean errors, never
//! panics. A run whose (p, t, d) matches the manifest restores from the
//! shards bit-identically; a run with a *different* topology (e.g. a
//! shrunken cluster after a failure) restores from the canonical layout,
//! resharded on the fly for the new (p, t, d). ZeRO-1 runs
//! (`shard_optimizer`) skip the canonical layout — their Adam moments
//! cover only a 1/d slice, so only same-topology restore is possible and
//! cross-topology attempts fail with a clean error.
//!
//! The elastic supervisor ([`crate::supervisor::Supervisor::run_elastic`])
//! is the main cross-topology consumer: a shrink restores the latest
//! generation into the cost model's best degraded (p, t, d), and a grow
//! waits for the next checkpoint boundary precisely because the boundary
//! is where a fresh canonical layout is guaranteed on disk. Resharding is
//! pure slicing of exact f32 bits — never arithmetic — which is what
//! makes post-reconfiguration training bit-identical to a fresh launch at
//! the new topology (see `tests/recovery.rs` and the round-trip property
//! in `tests/proptest_invariants.rs`).

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use megatron_tensor::gpt::{GptModel, TinyGptConfig};
use megatron_tensor::AdamState;
use rand::SeedableRng;

use crate::assemble::assemble_from_flat;
use crate::trainer::{build_thread_model, PtdpSpec, ThreadKey, ThreadState, TrainSnapshot};

const SHARD_MAGIC: &[u8; 8] = b"MGSHARD1";
const CANON_MAGIC: &[u8; 8] = b"MGCANON1";
const MANIFEST_MAGIC: &[u8; 8] = b"MGMANIF1";
const MANIFEST_NAME: &str = "MANIFEST.bin";
const CANONICAL_NAME: &str = "canonical.bin";

/// Why a durable checkpoint operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem error while writing or reading.
    Io(String),
    /// A file failed validation: bad magic, bad checksum, truncated, or
    /// inconsistent with its manifest.
    Corrupt(String),
    /// The checkpoint cannot be restored into the requesting topology
    /// (e.g. no canonical layout for a cross-topology restore).
    TopologyMismatch(String),
    /// No complete generation survives validation.
    NoneAvailable,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(m) => write!(f, "checkpoint I/O error: {m}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            CheckpointError::TopologyMismatch(m) => write!(f, "topology mismatch: {m}"),
            CheckpointError::NoneAvailable => write!(f, "no restorable checkpoint generation"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A restored job state plus provenance.
#[derive(Debug)]
pub struct Restored {
    /// The snapshot to hand to [`RunControl::restore`](crate::RunControl).
    pub snapshot: TrainSnapshot,
    /// Generation it came from (== `snapshot.next_iter`).
    pub generation: usize,
    /// Whether it was resharded from the canonical layout because the
    /// stored topology differs from the requesting spec.
    pub cross_topology: bool,
    /// Human-readable notes about generations that were skipped (corrupt,
    /// wrong topology without canonical, ...), newest first.
    pub notes: Vec<String>,
}

#[derive(Default)]
struct StoreStats {
    /// Generation → instant its first shard write began.
    open: HashMap<usize, Instant>,
    /// Committed generations with their save wall-clock window (first
    /// shard write start → manifest rename), in commit order.
    committed: Vec<(usize, f64)>,
}

/// A directory of checkpoint generations shared by all ranks of a job.
pub struct CheckpointStore {
    root: PathBuf,
    keep: usize,
    stats: Mutex<StoreStats>,
}

impl CheckpointStore {
    /// Open (creating if needed) a store rooted at `root`, keeping the 3
    /// newest generations.
    pub fn open(root: impl Into<PathBuf>) -> Result<Arc<CheckpointStore>, CheckpointError> {
        CheckpointStore::open_with_keep(root, 3)
    }

    /// Like [`CheckpointStore::open`] with an explicit retention count
    /// (`keep >= 1` newest generations survive pruning).
    pub fn open_with_keep(
        root: impl Into<PathBuf>,
        keep: usize,
    ) -> Result<Arc<CheckpointStore>, CheckpointError> {
        assert!(keep >= 1, "must keep at least one generation");
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| CheckpointError::Io(e.to_string()))?;
        Ok(Arc::new(CheckpointStore {
            root,
            keep,
            stats: Mutex::new(StoreStats::default()),
        }))
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Committed (manifest-bearing) generations, oldest first.
    pub fn generations(&self) -> Vec<usize> {
        let mut gens: Vec<usize> = self
            .gen_dirs()
            .into_iter()
            .filter(|(_, dir)| dir.join(MANIFEST_NAME).is_file())
            .map(|(g, _)| g)
            .collect();
        gens.sort_unstable();
        gens
    }

    /// Per-generation save wall-clock windows `(generation, seconds)`,
    /// measured from the first shard write to the manifest commit. The
    /// empirical `δ` for [`megatron_fault`]'s goodput model.
    pub fn save_windows(&self) -> Vec<(usize, f64)> {
        self.stats.lock().unwrap().committed.clone()
    }

    /// Write one rank's shard for generation `next_iter` atomically.
    /// Threads of the same generation may call this concurrently.
    pub fn write_shard(
        &self,
        spec: &PtdpSpec,
        key: ThreadKey,
        next_iter: usize,
        state: &ThreadState,
    ) -> Result<(), CheckpointError> {
        self.stats
            .lock()
            .unwrap()
            .open
            .entry(next_iter)
            .or_insert_with(Instant::now);
        let dir = self.gen_dir(next_iter);
        fs::create_dir_all(&dir).map_err(|e| CheckpointError::Io(e.to_string()))?;
        let mut enc = Enc::new(SHARD_MAGIC);
        enc.topology(spec);
        enc.u64(key.0 as u64);
        enc.u64(key.1 as u64);
        enc.u64(key.2 as u64);
        enc.u64(next_iter as u64);
        enc.u64(state.adam.t);
        enc.f32s(&state.params);
        enc.f32s(&state.adam.m);
        enc.f32s(&state.adam.v);
        write_atomic(&dir.join(shard_name(key)), &enc.finish())
    }

    /// Commit generation `next_iter`: write the canonical full-model
    /// layout (unless the run shards its optimizer state) and then the
    /// manifest, both atomically. Called once, by the rank whose shard
    /// completed the generation; prunes generations beyond the retention
    /// count afterwards.
    pub fn commit_generation(
        &self,
        spec: &PtdpSpec,
        cfg: TinyGptConfig,
        next_iter: usize,
        threads: &HashMap<ThreadKey, ThreadState>,
    ) -> Result<(), CheckpointError> {
        let dir = self.gen_dir(next_iter);
        fs::create_dir_all(&dir).map_err(|e| CheckpointError::Io(e.to_string()))?;

        // Canonical layout: parameters and Adam moments of data-replica 0,
        // assembled into serial visit order. Moments are positional with
        // the parameters, so the same unshard machinery applies; under
        // ZeRO-1 each rank's moments cover only a 1/d slice, so no
        // canonical layout is possible.
        let full_moments = !spec.shard_optimizer
            && (0..spec.pipeline).all(|pi| {
                (0..spec.tensor).all(|ti| {
                    threads
                        .get(&(pi, 0, ti))
                        .is_some_and(|st| st.adam.m.len() == st.params.len())
                })
            });
        if full_moments {
            let adam_t = threads[&(0, 0, 0)].adam.t;
            let mut enc = Enc::new(CANON_MAGIC);
            enc.config(cfg);
            enc.u64(next_iter as u64);
            enc.u64(adam_t);
            for select in [
                (|st: &ThreadState| st.params.clone()) as fn(&ThreadState) -> Vec<f32>,
                |st| st.adam.m.clone(),
                |st| st.adam.v.clone(),
            ] {
                let mut model =
                    assemble_from_flat(cfg, spec, &mut |pi, ti| select(&threads[&(pi, 0, ti)]));
                let mut flat = Vec::new();
                model.visit(&mut |p, _| flat.extend_from_slice(p));
                enc.f32s(&flat);
            }
            write_atomic(&dir.join(CANONICAL_NAME), &enc.finish())?;
        }

        let mut enc = Enc::new(MANIFEST_MAGIC);
        enc.topology(spec);
        enc.config(cfg);
        enc.u64(next_iter as u64);
        enc.u8(full_moments as u8);
        enc.u64(spec.world() as u64);
        write_atomic(&dir.join(MANIFEST_NAME), &enc.finish())?;

        let mut stats = self.stats.lock().unwrap();
        if let Some(t0) = stats.open.remove(&next_iter) {
            stats
                .committed
                .push((next_iter, t0.elapsed().as_secs_f64()));
        }
        drop(stats);

        self.prune();
        Ok(())
    }

    /// Launcher-side committer for process mode: scan *uncommitted*
    /// generation directories and commit every one whose full world of
    /// shard files is present and valid. In process mode each worker
    /// writes only its own shard — no single worker ever holds the whole
    /// world's thread states in memory, so the in-trainer commit path
    /// can never fire; the launcher, the one process that sees every
    /// shard on disk, performs the commit instead. Generations with
    /// missing or invalid shards (a worker died mid-generation) are left
    /// uncommitted for retention pruning to sweep. Returns the
    /// generations committed by this call, oldest first.
    pub fn commit_complete_generations(
        &self,
        spec: &PtdpSpec,
        cfg: TinyGptConfig,
    ) -> Result<Vec<usize>, CheckpointError> {
        let mut dirs = self.gen_dirs();
        dirs.sort_unstable_by_key(|d| d.0);
        let mut committed = Vec::new();
        for (generation, dir) in dirs {
            if dir.join(MANIFEST_NAME).is_file() {
                continue; // already committed
            }
            let mut threads = HashMap::new();
            let mut complete = true;
            'load: for pi in 0..spec.pipeline {
                for di in 0..spec.data {
                    for ti in 0..spec.tensor {
                        let key = (pi, di, ti);
                        if !dir.join(shard_name(key)).is_file() {
                            complete = false;
                            break 'load;
                        }
                        // Shard writes are atomic (temp + rename), so a
                        // present-but-invalid shard is corrupt, not
                        // in-flight — skip the generation either way.
                        match self.load_shard(&dir, spec, key, generation) {
                            Ok(st) => {
                                threads.insert(key, st);
                            }
                            Err(_) => {
                                complete = false;
                                break 'load;
                            }
                        }
                    }
                }
            }
            if !complete {
                continue;
            }
            self.commit_generation(spec, cfg, generation, &threads)?;
            committed.push(generation);
        }
        Ok(committed)
    }

    /// Restore the newest generation that survives full validation into a
    /// snapshot for `spec`, falling back to older generations on any
    /// corruption or topology obstacle. Never panics on bad files.
    pub fn load_latest(
        &self,
        spec: &PtdpSpec,
        cfg: TinyGptConfig,
    ) -> Result<Restored, CheckpointError> {
        let mut dirs = self.gen_dirs();
        dirs.sort_unstable_by_key(|d| std::cmp::Reverse(d.0));
        let mut notes = Vec::new();
        for (generation, dir) in dirs {
            match self.load_generation(&dir, generation, spec, cfg) {
                Ok((snapshot, cross_topology)) => {
                    return Ok(Restored {
                        snapshot,
                        generation,
                        cross_topology,
                        notes,
                    })
                }
                Err(e) => notes.push(format!("gen-{generation:08}: {e}")),
            }
        }
        Err(CheckpointError::NoneAvailable)
    }

    /// Restore exactly `generation`, ignoring any newer (or older)
    /// generations in the store.
    ///
    /// This is the launcher-pinned restore path: a supervisor that
    /// respawns workers records which generation it healed from, and the
    /// workers must restore *that* state even if the shared store has
    /// since advanced (e.g. replaying a segment for a determinism audit
    /// after later segments already checkpointed past it).
    pub fn load_pinned(
        &self,
        spec: &PtdpSpec,
        cfg: TinyGptConfig,
        generation: usize,
    ) -> Result<Restored, CheckpointError> {
        let dir = self.gen_dir(generation);
        if !dir.is_dir() {
            return Err(CheckpointError::NoneAvailable);
        }
        let (snapshot, cross_topology) = self.load_generation(&dir, generation, spec, cfg)?;
        Ok(Restored {
            snapshot,
            generation,
            cross_topology,
            notes: Vec::new(),
        })
    }

    fn load_generation(
        &self,
        dir: &Path,
        generation: usize,
        spec: &PtdpSpec,
        cfg: TinyGptConfig,
    ) -> Result<(TrainSnapshot, bool), CheckpointError> {
        let manifest = Dec::read(&dir.join(MANIFEST_NAME), MANIFEST_MAGIC)?;
        let mut dec = manifest;
        let topo = dec.topology()?;
        let stored_cfg = dec.config()?;
        let next_iter = dec.u64()? as usize;
        let has_canonical = dec.u8()? != 0;
        let n_shards = dec.u64()? as usize;
        dec.done()?;
        if stored_cfg != cfg {
            return Err(CheckpointError::TopologyMismatch(format!(
                "stored model config {stored_cfg:?} != requested {cfg:?}"
            )));
        }
        if next_iter != generation {
            return Err(CheckpointError::Corrupt(format!(
                "manifest iteration {next_iter} != directory generation {generation}"
            )));
        }

        if topo == Topology::of(spec) {
            // Same topology: bit-identical restore from the per-rank shards.
            if n_shards != spec.world() {
                return Err(CheckpointError::Corrupt(format!(
                    "manifest lists {n_shards} shards for a world of {}",
                    spec.world()
                )));
            }
            let mut threads = HashMap::new();
            for pi in 0..spec.pipeline {
                for di in 0..spec.data {
                    for ti in 0..spec.tensor {
                        let key = (pi, di, ti);
                        let state = self.load_shard(dir, spec, key, next_iter)?;
                        threads.insert(key, state);
                    }
                }
            }
            return Ok((TrainSnapshot { next_iter, threads }, false));
        }

        // Different topology: reshard the canonical layout.
        if spec.shard_optimizer {
            return Err(CheckpointError::TopologyMismatch(
                "cannot reshard a checkpoint into a ZeRO-1 run: optimizer \
                 slices depend on the data-parallel size"
                    .into(),
            ));
        }
        if !has_canonical {
            return Err(CheckpointError::TopologyMismatch(format!(
                "stored topology {topo:?} != requested {:?} and no canonical \
                 layout is present",
                Topology::of(spec)
            )));
        }
        let mut dec = Dec::read(&dir.join(CANONICAL_NAME), CANON_MAGIC)?;
        let stored_cfg = dec.config()?;
        let canon_iter = dec.u64()? as usize;
        let adam_t = dec.u64()?;
        let params = dec.f32s()?;
        let m = dec.f32s()?;
        let v = dec.f32s()?;
        dec.done()?;
        if stored_cfg != cfg || canon_iter != next_iter {
            return Err(CheckpointError::Corrupt(
                "canonical layout disagrees with its manifest".into(),
            ));
        }
        if m.len() != params.len() || v.len() != params.len() {
            return Err(CheckpointError::Corrupt(
                "canonical moment vectors not positional with parameters".into(),
            ));
        }
        let snapshot = reshard_canonical(cfg, spec, next_iter, adam_t, &params, &m, &v)?;
        Ok((snapshot, true))
    }

    fn load_shard(
        &self,
        dir: &Path,
        spec: &PtdpSpec,
        key: ThreadKey,
        next_iter: usize,
    ) -> Result<ThreadState, CheckpointError> {
        let mut dec = Dec::read(&dir.join(shard_name(key)), SHARD_MAGIC)?;
        let topo = dec.topology()?;
        let stored_key = (
            dec.u64()? as usize,
            dec.u64()? as usize,
            dec.u64()? as usize,
        );
        let stored_iter = dec.u64()? as usize;
        let adam_t = dec.u64()?;
        let params = dec.f32s()?;
        let m = dec.f32s()?;
        let v = dec.f32s()?;
        dec.done()?;
        if topo != Topology::of(spec) || stored_key != key || stored_iter != next_iter {
            return Err(CheckpointError::Corrupt(format!(
                "shard {} header disagrees with its manifest",
                shard_name(key)
            )));
        }
        Ok(ThreadState {
            params,
            adam: AdamState { t: adam_t, m, v },
        })
    }

    fn gen_dir(&self, next_iter: usize) -> PathBuf {
        self.root.join(format!("gen-{next_iter:08}"))
    }

    /// All generation directories (committed or not) as `(iter, path)`.
    fn gen_dirs(&self) -> Vec<(usize, PathBuf)> {
        let Ok(entries) = fs::read_dir(&self.root) else {
            return Vec::new();
        };
        entries
            .flatten()
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let iter: usize = name.strip_prefix("gen-")?.parse().ok()?;
                e.path().is_dir().then_some((iter, e.path()))
            })
            .collect()
    }

    /// Remove every generation directory except the newest `keep`.
    fn prune(&self) {
        let mut dirs = self.gen_dirs();
        dirs.sort_unstable_by_key(|d| std::cmp::Reverse(d.0));
        for (_, dir) in dirs.into_iter().skip(self.keep) {
            let _ = fs::remove_dir_all(dir);
        }
    }
}

/// Reshard the canonical serial layout into per-thread states for `spec`.
fn reshard_canonical(
    cfg: TinyGptConfig,
    spec: &PtdpSpec,
    next_iter: usize,
    adam_t: u64,
    params: &[f32],
    m: &[f32],
    v: &[f32],
) -> Result<TrainSnapshot, CheckpointError> {
    // Rebuild three serial models — parameters and the two moment vectors
    // riding in the parameter slots — then cut each into the new spec's
    // per-thread shards. Moments stay positional with parameters through
    // both directions of the trip.
    let mut threads = HashMap::new();
    let mut per_vector: Vec<HashMap<(usize, usize), Vec<f32>>> = Vec::with_capacity(3);
    for vals in [params, m, v] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut model = GptModel::new(cfg, &mut rng);
        let mut off = 0usize;
        let mut overrun = false;
        model.visit(&mut |p, _| {
            if off + p.len() <= vals.len() {
                p.copy_from_slice(&vals[off..off + p.len()]);
            } else {
                overrun = true;
            }
            off += p.len();
        });
        if overrun || off != vals.len() {
            return Err(CheckpointError::Corrupt(format!(
                "canonical vector has {} values, model wants {off}",
                vals.len()
            )));
        }
        let mut shards = HashMap::new();
        for pi in 0..spec.pipeline {
            for ti in 0..spec.tensor {
                let flat = build_thread_model(&model, spec, pi, ti).flat_params();
                shards.insert((pi, ti), flat);
            }
        }
        per_vector.push(shards);
    }
    for pi in 0..spec.pipeline {
        for ti in 0..spec.tensor {
            let p_flat = &per_vector[0][&(pi, ti)];
            let m_flat = &per_vector[1][&(pi, ti)];
            let v_flat = &per_vector[2][&(pi, ti)];
            for di in 0..spec.data {
                threads.insert(
                    (pi, di, ti),
                    ThreadState {
                        params: p_flat.clone(),
                        adam: AdamState {
                            t: adam_t,
                            m: m_flat.clone(),
                            v: v_flat.clone(),
                        },
                    },
                );
            }
        }
    }
    Ok(TrainSnapshot { next_iter, threads })
}

fn shard_name(key: ThreadKey) -> String {
    format!("shard-p{}-d{}-t{}.bin", key.0, key.1, key.2)
}

/// The topology fields that must match for a shard-level restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Topology {
    p: u64,
    t: u64,
    d: u64,
    chunks: u64,
    vocab_parallel: bool,
    shard_optimizer: bool,
}

impl Topology {
    fn of(spec: &PtdpSpec) -> Topology {
        Topology {
            p: spec.pipeline as u64,
            t: spec.tensor as u64,
            d: spec.data as u64,
            chunks: spec.chunks as u64,
            vocab_parallel: spec.vocab_parallel,
            shard_optimizer: spec.shard_optimizer,
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected), bitwise — plenty fast for toy-scale
/// shards and dependency-free.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Little-endian binary encoder with a trailing CRC-32 footer.
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new(magic: &[u8; 8]) -> Enc {
        Enc {
            buf: magic.to_vec(),
        }
    }

    fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    fn f32s(&mut self, xs: &[f32]) {
        self.u64(xs.len() as u64);
        for x in xs {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    fn topology(&mut self, spec: &PtdpSpec) {
        let t = Topology::of(spec);
        self.u64(t.p);
        self.u64(t.t);
        self.u64(t.d);
        self.u64(t.chunks);
        self.u8(t.vocab_parallel as u8);
        self.u8(t.shard_optimizer as u8);
    }

    fn config(&mut self, cfg: TinyGptConfig) {
        self.u64(cfg.vocab as u64);
        self.u64(cfg.seq as u64);
        self.u64(cfg.hidden as u64);
        self.u64(cfg.heads as u64);
        self.u64(cfg.layers as u64);
    }

    fn finish(mut self) -> Vec<u8> {
        let crc = crc32(&self.buf);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.buf
    }
}

/// Checked little-endian decoder over a fully CRC-validated buffer.
struct Dec {
    buf: Vec<u8>,
    pos: usize,
}

impl Dec {
    /// Read `path`, verify magic and CRC-32 footer, and position the
    /// cursor after the magic.
    fn read(path: &Path, magic: &[u8; 8]) -> Result<Dec, CheckpointError> {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
        let buf = fs::read(path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                CheckpointError::Corrupt(format!("{name} is missing"))
            } else {
                CheckpointError::Io(format!("{name}: {e}"))
            }
        })?;
        if buf.len() < magic.len() + 4 {
            return Err(CheckpointError::Corrupt(format!(
                "{name} is truncated ({} bytes)",
                buf.len()
            )));
        }
        let (body, footer) = buf.split_at(buf.len() - 4);
        let want = u32::from_le_bytes(footer.try_into().unwrap());
        if crc32(body) != want {
            return Err(CheckpointError::Corrupt(format!(
                "{name} fails its CRC-32 check"
            )));
        }
        if &body[..magic.len()] != magic {
            return Err(CheckpointError::Corrupt(format!("{name} has a bad magic")));
        }
        Ok(Dec {
            buf: body.to_vec(),
            pos: magic.len(),
        })
    }

    fn take(&mut self, n: usize) -> Result<&[u8], CheckpointError> {
        if self.pos + n > self.buf.len() {
            return Err(CheckpointError::Corrupt("record is truncated".into()));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32s(&mut self) -> Result<Vec<f32>, CheckpointError> {
        let n = self.u64()? as usize;
        // Guard against a corrupt length field asking for more bytes than
        // the (already CRC-valid, but still bounded) buffer holds.
        if n > self.buf.len() / 4 + 1 {
            return Err(CheckpointError::Corrupt(format!(
                "implausible vector length {n}"
            )));
        }
        let bytes = self.take(n * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn topology(&mut self) -> Result<Topology, CheckpointError> {
        Ok(Topology {
            p: self.u64()?,
            t: self.u64()?,
            d: self.u64()?,
            chunks: self.u64()?,
            vocab_parallel: self.u8()? != 0,
            shard_optimizer: self.u8()? != 0,
        })
    }

    fn config(&mut self) -> Result<TinyGptConfig, CheckpointError> {
        Ok(TinyGptConfig {
            vocab: self.u64()? as usize,
            seq: self.u64()? as usize,
            hidden: self.u64()? as usize,
            heads: self.u64()? as usize,
            layers: self.u64()? as usize,
        })
    }

    fn done(&mut self) -> Result<(), CheckpointError> {
        if self.pos != self.buf.len() {
            return Err(CheckpointError::Corrupt(format!(
                "{} trailing bytes after the last field",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Write `bytes` to `path` atomically (temp file in the same directory,
/// then rename).
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, bytes).map_err(|e| CheckpointError::Io(format!("{}: {e}", tmp.display())))?;
    fs::rename(&tmp, path).map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn cfg() -> TinyGptConfig {
        TinyGptConfig {
            vocab: 16,
            seq: 6,
            hidden: 8,
            heads: 4,
            layers: 2,
        }
    }

    fn tmp_store(name: &str) -> (PathBuf, Arc<CheckpointStore>) {
        let root = std::env::temp_dir().join(format!("mgckpt-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let store = CheckpointStore::open(&root).unwrap();
        (root, store)
    }

    /// Per-thread states derived from a seeded master model, with Adam
    /// moments that are simple functions of the parameters so resharding
    /// is independently checkable.
    fn synthetic_states(
        cfg: TinyGptConfig,
        spec: &PtdpSpec,
        seed: u64,
    ) -> HashMap<ThreadKey, ThreadState> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let master = GptModel::new(cfg, &mut rng);
        let mut threads = HashMap::new();
        for pi in 0..spec.pipeline {
            for ti in 0..spec.tensor {
                let params = build_thread_model(&master, spec, pi, ti).flat_params();
                let m: Vec<f32> = params.iter().map(|x| x + 1.0).collect();
                let v: Vec<f32> = params.iter().map(|x| x * x).collect();
                for di in 0..spec.data {
                    threads.insert(
                        (pi, di, ti),
                        ThreadState {
                            params: params.clone(),
                            adam: AdamState {
                                t: 7,
                                m: m.clone(),
                                v: v.clone(),
                            },
                        },
                    );
                }
            }
        }
        threads
    }

    fn save_generation(
        store: &CheckpointStore,
        spec: &PtdpSpec,
        next_iter: usize,
        threads: &HashMap<ThreadKey, ThreadState>,
    ) {
        for (key, st) in threads {
            store.write_shard(spec, *key, next_iter, st).unwrap();
        }
        store
            .commit_generation(spec, cfg(), next_iter, threads)
            .unwrap();
    }

    #[test]
    fn same_topology_roundtrip_is_bit_exact() {
        let (root, store) = tmp_store("roundtrip");
        let mut spec = PtdpSpec::new(2, 2, 2);
        spec.vocab_parallel = true;
        let threads = synthetic_states(cfg(), &spec, 11);
        save_generation(&store, &spec, 4, &threads);

        let r = store.load_latest(&spec, cfg()).unwrap();
        assert_eq!(r.generation, 4);
        assert!(!r.cross_topology);
        assert!(r.notes.is_empty());
        assert_eq!(r.snapshot.next_iter, 4);
        assert_eq!(r.snapshot.threads.len(), spec.world());
        for (key, want) in &threads {
            let got = &r.snapshot.threads[key];
            assert_eq!(got.params, want.params, "{key:?} params");
            assert_eq!(got.adam.t, want.adam.t);
            assert_eq!(got.adam.m, want.adam.m, "{key:?} m");
            assert_eq!(got.adam.v, want.adam.v, "{key:?} v");
        }
        // Atomic writes leave no temp files behind.
        for entry in fs::read_dir(store.gen_dir(4)).unwrap().flatten() {
            assert!(
                !entry.file_name().to_string_lossy().ends_with(".tmp"),
                "leftover temp file {:?}",
                entry.file_name()
            );
        }
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn launcher_committer_commits_only_complete_generations() {
        let (root, store) = tmp_store("committer");
        let spec = PtdpSpec::new(2, 2, 2);
        let threads = synthetic_states(cfg(), &spec, 31);
        // Generation 2: every shard present but no manifest (the process-
        // mode worker situation). Generation 4: one shard missing (its
        // writer died mid-generation).
        for (key, st) in &threads {
            store.write_shard(&spec, *key, 2, st).unwrap();
        }
        for (key, st) in &threads {
            if *key != (1, 1, 1) {
                store.write_shard(&spec, *key, 4, st).unwrap();
            }
        }
        assert!(store.generations().is_empty(), "nothing committed yet");

        let committed = store.commit_complete_generations(&spec, cfg()).unwrap();
        assert_eq!(committed, vec![2]);
        assert_eq!(store.generations(), vec![2]);

        let r = store.load_latest(&spec, cfg()).unwrap();
        assert_eq!(r.generation, 2);
        assert!(!r.cross_topology);
        for (key, want) in &threads {
            assert_eq!(r.snapshot.threads[key].params, want.params, "{key:?}");
        }
        // Idempotent: gen 2 already committed, gen 4 still incomplete.
        let again = store.commit_complete_generations(&spec, cfg()).unwrap();
        assert!(again.is_empty(), "{again:?}");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn cross_topology_reshard_matches_direct_build() {
        let (root, store) = tmp_store("cross");
        let from = PtdpSpec::new(2, 2, 2);
        let threads = synthetic_states(cfg(), &from, 23);
        save_generation(&store, &from, 6, &threads);

        // Restore into (p=1, t=2, d=2): shards must equal cutting the
        // same master model directly for the new spec, and the moments
        // must keep their elementwise relation to the parameters.
        let to = PtdpSpec::new(1, 2, 2);
        let r = store.load_latest(&to, cfg()).unwrap();
        assert!(r.cross_topology);
        assert_eq!(r.snapshot.threads.len(), to.world());
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let master = GptModel::new(cfg(), &mut rng);
        for pi in 0..to.pipeline {
            for ti in 0..to.tensor {
                let want = build_thread_model(&master, &to, pi, ti).flat_params();
                for di in 0..to.data {
                    let got = &r.snapshot.threads[&(pi, di, ti)];
                    assert_eq!(got.params, want, "({pi},{di},{ti}) params");
                    assert_eq!(got.adam.t, 7);
                    for (mm, pp) in got.adam.m.iter().zip(&got.params) {
                        assert_eq!(*mm, pp + 1.0, "moment lost positional alignment");
                    }
                    for (vv, pp) in got.adam.v.iter().zip(&got.params) {
                        assert_eq!(*vv, pp * pp);
                    }
                }
            }
        }
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn zero1_generations_skip_canonical_and_reject_resharding() {
        let (root, store) = tmp_store("zero1");
        let mut spec = PtdpSpec::new(1, 2, 2);
        spec.shard_optimizer = true;
        let mut threads = synthetic_states(cfg(), &spec, 31);
        // ZeRO-1 moments cover a 1/d slice.
        for st in threads.values_mut() {
            let half = st.params.len().div_ceil(2);
            st.adam.m.truncate(half);
            st.adam.v.truncate(half);
        }
        save_generation(&store, &spec, 2, &threads);
        assert!(
            !store.gen_dir(2).join(CANONICAL_NAME).exists(),
            "ZeRO-1 runs must not write a canonical layout"
        );

        // Same topology restores fine, slice moments and all.
        let same = store.load_latest(&spec, cfg()).unwrap();
        assert_eq!(
            same.snapshot.threads[&(0, 1, 0)].adam.m,
            threads[&(0, 1, 0)].adam.m
        );

        // A different topology has nothing to reshard from.
        let other = PtdpSpec::new(2, 2, 1);
        let err = store.load_latest(&other, cfg()).unwrap_err();
        assert_eq!(err, CheckpointError::NoneAvailable);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn corrupt_newest_generation_falls_back_to_older() {
        let (root, store) = tmp_store("fallback");
        let spec = PtdpSpec::new(2, 1, 2);
        let threads = synthetic_states(cfg(), &spec, 47);
        save_generation(&store, &spec, 2, &threads);
        save_generation(&store, &spec, 4, &threads);

        // Flip one byte in a gen-4 shard: the loader must reject gen-4
        // with a clean note and restore gen-2.
        let victim = store.gen_dir(4).join(shard_name((1, 0, 0)));
        let mut bytes = fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&victim, &bytes).unwrap();

        let r = store.load_latest(&spec, cfg()).unwrap();
        assert_eq!(r.generation, 2);
        assert_eq!(r.notes.len(), 1);
        assert!(r.notes[0].contains("gen-00000004"), "{:?}", r.notes);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn fuzzed_corruption_never_panics() {
        // Truncations and byte flips at arbitrary offsets, over every file
        // of a generation: load_latest must always return Ok(older) — the
        // intact gen-2 — or a clean error, and never panic.
        let (root, store) = tmp_store("fuzz");
        let spec = PtdpSpec::new(2, 1, 1);
        let threads = synthetic_states(cfg(), &spec, 53);
        save_generation(&store, &spec, 2, &threads);
        save_generation(&store, &spec, 4, &threads);

        let files: Vec<PathBuf> = fs::read_dir(store.gen_dir(4))
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .collect();
        assert!(files.len() >= 3, "shards + canonical + manifest");
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xbadc0de);
        for round in 0..60 {
            let path = &files[rng.gen_range(0..files.len())];
            let pristine = fs::read(path).unwrap();
            let mut bytes = pristine.clone();
            if rng.gen_range(0..2) == 0 {
                bytes.truncate(rng.gen_range(0..bytes.len()));
            } else {
                let off = rng.gen_range(0..bytes.len());
                bytes[off] ^= 1 << rng.gen_range(0..8);
            }
            fs::write(path, &bytes).unwrap();
            let is_canonical = path.file_name().unwrap() == CANONICAL_NAME;
            match store.load_latest(&spec, cfg()) {
                Ok(r) => {
                    // Gen-4 may only survive if the mutation landed in the
                    // canonical layout — the same-topology path reads just
                    // the shards and manifest (CRC covers every byte of
                    // those, so a flip anywhere in them is always caught).
                    assert!(
                        r.generation == 2 || is_canonical || bytes == pristine,
                        "round {round}: corrupt gen-4 restored from {:?}",
                        path.file_name()
                    );
                }
                Err(e) => assert_eq!(e, CheckpointError::NoneAvailable, "round {round}"),
            }
            // And the cross-topology path (manifest + canonical) must be
            // equally unpanickable under the same corruption.
            let cross = PtdpSpec::new(1, 1, 1);
            match store.load_latest(&cross, cfg()) {
                Ok(_) => {}
                Err(e) => assert_eq!(e, CheckpointError::NoneAvailable, "round {round} cross"),
            }
            fs::write(path, &pristine).unwrap();
        }
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn uncommitted_generation_is_invisible() {
        let (root, store) = tmp_store("uncommitted");
        let spec = PtdpSpec::new(2, 1, 1);
        let threads = synthetic_states(cfg(), &spec, 59);
        save_generation(&store, &spec, 2, &threads);
        // Generation 4 writes shards but never commits (no manifest): a
        // crash between the last shard and the manifest.
        for (key, st) in &threads {
            store.write_shard(&spec, *key, 4, st).unwrap();
        }
        let r = store.load_latest(&spec, cfg()).unwrap();
        assert_eq!(r.generation, 2);
        assert_eq!(store.generations(), vec![2]);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn prune_keeps_newest_generations() {
        let root = std::env::temp_dir().join(format!("mgckpt-{}-prune", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let store = CheckpointStore::open_with_keep(&root, 2).unwrap();
        let spec = PtdpSpec::new(1, 1, 2);
        let threads = synthetic_states(cfg(), &spec, 61);
        for gen in [2, 4, 6] {
            save_generation(&store, &spec, gen, &threads);
        }
        assert_eq!(store.generations(), vec![4, 6]);
        assert!(!store.gen_dir(2).exists());
        assert_eq!(store.save_windows().len(), 3);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn wrong_model_config_is_rejected_cleanly() {
        let (root, store) = tmp_store("wrongcfg");
        let spec = PtdpSpec::new(1, 1, 1);
        let threads = synthetic_states(cfg(), &spec, 67);
        save_generation(&store, &spec, 2, &threads);
        let mut other = cfg();
        other.layers = 4;
        let err = store.load_latest(&spec, other).unwrap_err();
        assert_eq!(err, CheckpointError::NoneAvailable);
        let _ = fs::remove_dir_all(root);
    }
}
