//! Weight sharding between a serial model and its tensor-parallel shards
//! (§2.3's partitioning, Figure 5).

use megatron_tensor::layers::Linear;
use megatron_tensor::Matrix;

/// Column-parallel shard `r` of `t`: contiguous output-column range,
/// bias sharded alongside.
pub fn shard_columns(lin: &Linear, t: usize, r: usize) -> Linear {
    assert!(lin.w.cols().is_multiple_of(t), "columns must divide by t");
    let chunk = lin.w.cols() / t;
    let (c0, c1) = (r * chunk, (r + 1) * chunk);
    Linear {
        w: lin.w.columns(c0, c1),
        b: lin.b.as_ref().map(|b| b[c0..c1].to_vec()),
        gw: Matrix::zeros(lin.w.rows(), chunk),
        gb: vec![0.0; chunk],
    }
}

/// Row-parallel shard `r` of `t`: contiguous input-row range. The bias (if
/// any) is NOT sharded — it must be applied once after the all-reduce; the
/// caller keeps it replicated.
pub fn shard_rows(lin: &Linear, t: usize, r: usize) -> Linear {
    assert!(lin.w.rows().is_multiple_of(t), "rows must divide by t");
    let chunk = lin.w.rows() / t;
    let (r0, r1) = (r * chunk, (r + 1) * chunk);
    Linear {
        w: lin.w.rows_slice(r0, r1),
        b: None,
        gw: Matrix::zeros(chunk, lin.w.cols()),
        gb: vec![0.0; lin.w.cols()],
    }
}

/// Head-aware column shard of a fused QKV projection (`h × 3h`): rank `r`
/// takes its `heads/t` heads' columns from each of the Q, K, and V
/// sections, producing an `h × 3h/t` shard laid out `[q_r | k_r | v_r]`.
pub fn shard_qkv(lin: &Linear, heads: usize, t: usize, r: usize) -> Linear {
    let h3 = lin.w.cols();
    assert!(h3.is_multiple_of(3));
    let h = h3 / 3;
    assert!(heads.is_multiple_of(t) && h.is_multiple_of(heads));
    let hd = h / heads;
    let heads_local = heads / t;
    let span = heads_local * hd;
    let (c0, c1) = (r * span, (r + 1) * span);
    let parts: Vec<Matrix> = (0..3)
        .map(|sec| lin.w.columns(sec * h + c0, sec * h + c1))
        .collect();
    let w = Matrix::concat_cols(&parts);
    let b = lin.b.as_ref().map(|b| {
        let mut out = Vec::with_capacity(3 * span);
        for sec in 0..3 {
            out.extend_from_slice(&b[sec * h + c0..sec * h + c1]);
        }
        out
    });
    let (rows, cols) = (w.rows(), w.cols());
    Linear {
        w,
        b,
        gw: Matrix::zeros(rows, cols),
        gb: vec![0.0; cols],
    }
}

/// Row-parallel shard of the attention output projection (`h × h`): rank
/// `r` takes the input rows corresponding to its heads.
pub fn shard_proj(lin: &Linear, heads: usize, t: usize, r: usize) -> Linear {
    let h = lin.w.rows();
    assert!(heads.is_multiple_of(t) && h.is_multiple_of(heads));
    let span = (heads / t) * (h / heads);
    let (r0, r1) = (r * span, (r + 1) * span);
    Linear {
        w: lin.w.rows_slice(r0, r1),
        b: None,
        gw: Matrix::zeros(span, lin.w.cols()),
        gb: vec![0.0; lin.w.cols()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megatron_tensor::gemm;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    #[test]
    fn column_shards_reassemble_output() {
        let mut r = rng();
        let lin = Linear::new(4, 6, true, &mut r);
        let x = Matrix::randn(3, 4, 1.0, &mut r);
        let full = lin.forward(&x);
        let parts: Vec<Matrix> = (0..2)
            .map(|i| shard_columns(&lin, 2, i).forward(&x))
            .collect();
        let joined = Matrix::concat_cols(&parts);
        assert!(joined.max_abs_diff(&full) < 1e-6);
    }

    #[test]
    fn row_shards_sum_to_output() {
        let mut r = rng();
        let lin = Linear::new(6, 4, false, &mut r);
        let x = Matrix::randn(3, 6, 1.0, &mut r);
        let full = lin.forward(&x);
        let mut acc = Matrix::zeros(3, 4);
        for i in 0..3 {
            let shard = shard_rows(&lin, 3, i);
            let xs = x.columns(i * 2, (i + 1) * 2);
            acc.add_assign(&shard.forward(&xs));
        }
        assert!(acc.max_abs_diff(&full) < 1e-5);
    }

    #[test]
    fn qkv_shard_selects_head_columns() {
        let mut r = rng();
        let (h, heads, t) = (8usize, 4usize, 2usize);
        let lin = Linear::new(h, 3 * h, true, &mut r);
        let shard = shard_qkv(&lin, heads, t, 1);
        assert_eq!(shard.w.cols(), 3 * h / t);
        // Rank 1's q section = serial columns [h/2, h).
        for row in 0..h {
            for c in 0..h / t {
                assert_eq!(shard.w.get(row, c), lin.w.get(row, h / 2 + c));
                // k section offset: local h/t..2h/t ↔ serial h + h/2 ...
                assert_eq!(shard.w.get(row, h / t + c), lin.w.get(row, h + h / 2 + c));
            }
        }
        let b = shard.b.as_ref().unwrap();
        let fb = lin.b.as_ref().unwrap();
        assert_eq!(b[0], fb[h / 2]);
        assert_eq!(b[h / t], fb[h + h / 2]);
    }

    #[test]
    fn proj_shard_matches_head_rows() {
        let mut r = rng();
        let (h, heads, t) = (8usize, 4usize, 2usize);
        let lin = Linear::new(h, h, true, &mut r);
        let shard = shard_proj(&lin, heads, t, 1);
        assert_eq!(shard.w.rows(), h / t);
        assert_eq!(shard.w.get(0, 3), lin.w.get(h / 2, 3));
        assert!(shard.b.is_none(), "row-parallel bias stays replicated");
    }

    #[test]
    fn qkv_plus_attention_partition_is_lossless() {
        // Splitting QKV by heads then concatenating per-head outputs must
        // equal the serial computation (the §2.3 claim that multi-head
        // attention is inherently parallel).
        let mut r = rng();
        let (h, heads) = (8usize, 4usize);
        let lin = Linear::new(h, 3 * h, true, &mut r);
        let x = Matrix::randn(5, h, 1.0, &mut r);
        let full = lin.forward(&x);
        // Serial q section, head 2 and 3 = rank 1 of t=2.
        let q_full = full.columns(0, h);
        let shard = shard_qkv(&lin, heads, 2, 1);
        let local = shard.forward(&x);
        let q_local = local.columns(0, h / 2);
        assert!(q_local.max_abs_diff(&q_full.columns(h / 2, h)) < 1e-5);
    }

    #[test]
    fn gemm_reference_identity() {
        // Sanity: column split of W is equivalent to splitting the GEMM.
        let mut r = rng();
        let a = Matrix::randn(3, 4, 1.0, &mut r);
        let w = Matrix::randn(4, 6, 1.0, &mut r);
        let full = gemm::matmul(&a, &w);
        let left = gemm::matmul(&a, &w.columns(0, 3));
        let right = gemm::matmul(&a, &w.columns(3, 6));
        assert!(Matrix::concat_cols(&[left, right]).max_abs_diff(&full) < 1e-5);
    }
}
