//! Vocab-parallel embedding and output layer (Megatron's actual layout):
//! the token-embedding table and the LM head are sharded over the
//! vocabulary dimension across the tensor group, and the cross-entropy is
//! computed *without ever materializing the full logits* on any rank —
//! max and sum-exp statistics travel through two small all-reduces.

use megatron_tensor::layers::{Embedding, Linear};
use megatron_tensor::Matrix;

use crate::comm::GroupMember;

/// Token + position embedding with the token table sharded by vocabulary
/// range (`rank r` owns rows `[r·V/t, (r+1)·V/t)`).
pub struct VocabParallelEmbedding {
    /// This rank's token rows, `(V/t) × h`.
    pub tokens: Matrix,
    /// Token-shard gradient.
    pub gtokens: Matrix,
    /// Replicated position table, `s × h`.
    pub positions: Matrix,
    /// Position-table gradient (identical across ranks).
    pub gpositions: Matrix,
    vocab_start: usize,
    vocab_end: usize,
}

impl VocabParallelEmbedding {
    /// Shard rank `r` of `t` from a serial [`Embedding`].
    pub fn from_serial(embed: &Embedding, t: usize, r: usize) -> Self {
        let vocab = embed.tokens.rows();
        assert!(vocab.is_multiple_of(t), "vocab must divide by t");
        let chunk = vocab / t;
        let (lo, hi) = (r * chunk, (r + 1) * chunk);
        VocabParallelEmbedding {
            tokens: embed.tokens.rows_slice(lo, hi),
            gtokens: Matrix::zeros(chunk, embed.tokens.cols()),
            positions: embed.positions.clone(),
            gpositions: Matrix::zeros(embed.positions.rows(), embed.positions.cols()),
            vocab_start: lo,
            vocab_end: hi,
        }
    }

    /// Forward: local lookup (out-of-shard tokens contribute zero), then an
    /// all-reduce re-materializes the full embedding; positions are added
    /// after the reduction (they are replicated).
    pub fn forward(&self, token_ids: &[usize], seq: usize, comm: &GroupMember) -> Matrix {
        let h = self.tokens.cols();
        let mut out = Matrix::zeros(token_ids.len(), h);
        for (row, &tok) in token_ids.iter().enumerate() {
            if tok >= self.vocab_start && tok < self.vocab_end {
                out.row_mut(row)
                    .copy_from_slice(self.tokens.row(tok - self.vocab_start));
            }
        }
        comm.all_reduce_sum(out.as_mut_slice());
        for row in 0..token_ids.len() {
            let pos = row % seq;
            let dst = out.row_mut(row);
            for (c, d) in dst.iter_mut().enumerate() {
                *d += self.positions.get(pos, c);
            }
        }
        out
    }

    /// Backward: scatter-add into the owned shard only; position gradients
    /// accumulate identically on every rank.
    pub fn backward(&mut self, token_ids: &[usize], seq: usize, dy: &Matrix) {
        for (row, &tok) in token_ids.iter().enumerate() {
            let pos = row % seq;
            let src = dy.row(row);
            if tok >= self.vocab_start && tok < self.vocab_end {
                let local = tok - self.vocab_start;
                for (c, &g) in src.iter().enumerate() {
                    self.gtokens.set(local, c, self.gtokens.get(local, c) + g);
                }
            }
            for (c, &g) in src.iter().enumerate() {
                self.gpositions.set(pos, c, self.gpositions.get(pos, c) + g);
            }
        }
    }

    /// Visit (param, grad) pairs.
    pub fn visit(&mut self, f: &mut impl FnMut(&mut [f32], &mut [f32])) {
        f(self.tokens.as_mut_slice(), self.gtokens.as_mut_slice());
        f(
            self.positions.as_mut_slice(),
            self.gpositions.as_mut_slice(),
        );
    }
}

/// Column-parallel LM head (`h × V/t` shard) with distributed cross-entropy.
pub struct VocabParallelHead {
    /// This rank's logit columns.
    pub w: Linear,
    vocab_start: usize,
    vocab_end: usize,
}

/// Cache for [`VocabParallelHead::backward_partial`].
pub struct VocabHeadCache {
    /// Local `∂loss/∂logits` shard.
    pub dlogits: Matrix,
}

impl VocabParallelHead {
    /// Shard rank `r` of `t` from a serial LM head (`h × V`, bias-free).
    pub fn from_serial(head: &Linear, t: usize, r: usize) -> Self {
        assert!(head.b.is_none(), "LM head must be bias-free");
        let vocab = head.w.cols();
        assert!(vocab.is_multiple_of(t), "vocab must divide by t");
        let chunk = vocab / t;
        let (lo, hi) = (r * chunk, (r + 1) * chunk);
        VocabParallelHead {
            w: Linear {
                w: head.w.columns(lo, hi),
                b: None,
                gw: Matrix::zeros(head.w.rows(), chunk),
                gb: vec![0.0; chunk],
            },
            vocab_start: lo,
            vocab_end: hi,
        }
    }

    /// Forward + distributed cross-entropy: returns the (replicated) mean
    /// loss and the cache for backward. No rank ever holds full logits.
    pub fn forward_loss(
        &self,
        hidden: &Matrix,
        targets: &[usize],
        comm: &GroupMember,
    ) -> (f32, VocabHeadCache) {
        assert_eq!(hidden.rows(), targets.len());
        let logits = self.w.forward(hidden); // N × V/t
        let n = targets.len();

        // Row maxima across the full vocabulary (all-reduce max).
        let mut maxes: Vec<f32> = (0..n)
            .map(|r| {
                logits
                    .row(r)
                    .iter()
                    .fold(f32::NEG_INFINITY, |a, &b| a.max(b))
            })
            .collect();
        comm.all_reduce_max(&mut maxes);

        // Row Σexp over the full vocabulary, plus the target logit (owned
        // by exactly one rank; others contribute zero).
        let mut stats = vec![0.0f32; 2 * n];
        for r in 0..n {
            let m = maxes[r];
            stats[r] = logits.row(r).iter().map(|&l| (l - m).exp()).sum();
            let t = targets[r];
            if t >= self.vocab_start && t < self.vocab_end {
                stats[n + r] = logits.get(r, t - self.vocab_start);
            }
        }
        comm.all_reduce_sum(&mut stats);

        let mut loss = 0.0f32;
        let mut dlogits = Matrix::zeros(n, logits.cols());
        for r in 0..n {
            let (z, tl, m) = (stats[r], stats[n + r], maxes[r]);
            loss += z.ln() + m - tl;
            let drow = dlogits.row_mut(r);
            for (c, d) in drow.iter_mut().enumerate() {
                let p = (logits.get(r, c) - m).exp() / z;
                let is_target =
                    targets[r] >= self.vocab_start && targets[r] - self.vocab_start == c;
                *d = (p - if is_target { 1.0 } else { 0.0 }) / n as f32;
            }
        }
        (loss / n as f32, VocabHeadCache { dlogits })
    }

    /// Backward: accumulate the weight-shard gradient and return the
    /// (partial) hidden gradient — the caller must all-reduce it across the
    /// tensor group (the `f`-operator of the vocab-parallel GEMM).
    pub fn backward_partial(&mut self, hidden: &Matrix, cache: &VocabHeadCache) -> Matrix {
        self.w.backward(hidden, &cache.dlogits)
    }

    /// Visit (param, grad) pairs.
    pub fn visit(&mut self, f: &mut impl FnMut(&mut [f32], &mut [f32])) {
        self.w.visit(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Group;
    use megatron_tensor::layers::cross_entropy;
    use rand::SeedableRng;
    use std::thread;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(321)
    }

    fn with_group<T: Send>(t: usize, f: impl Fn(GroupMember) -> T + Sync) -> Vec<T> {
        let group = Group::new(t);
        thread::scope(|s| {
            let hs: Vec<_> = (0..t)
                .map(|r| {
                    let m = group.member(r);
                    s.spawn(|| f(m))
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn vocab_parallel_embedding_matches_serial() {
        let mut r = rng();
        let mut serial = Embedding::new(12, 4, 6, &mut r);
        let toks = [0usize, 5, 11, 3];
        let want = serial.forward(&toks, 4);
        let outs = with_group(4, |m| {
            let emb = VocabParallelEmbedding::from_serial(&serial, 4, m.rank());
            emb.forward(&toks, 4, &m)
        });
        for out in &outs {
            assert!(out.max_abs_diff(&want) < 1e-5);
        }
        // Gradients: shard scatter matches serial scatter rows.
        let dy = Matrix::from_fn(4, 6, |r, c| (r + c) as f32);
        serial.backward(&toks, 4, &dy);
        let shards = with_group(4, |m| {
            let mut emb = VocabParallelEmbedding::from_serial(&serial, 4, m.rank());
            emb.backward(&toks, 4, &dy);
            (m.rank(), emb.gtokens.clone(), emb.gpositions.clone())
        });
        for (rank, gt, gp) in shards {
            let want_gt = serial.gtokens.rows_slice(rank * 3, (rank + 1) * 3);
            assert!(gt.max_abs_diff(&want_gt) < 1e-5, "rank {rank} token grads");
            assert!(gp.max_abs_diff(&serial.gpositions) < 1e-5, "rank {rank}");
        }
    }

    #[test]
    fn distributed_cross_entropy_matches_serial() {
        let mut r = rng();
        let (h, v, n) = (6usize, 12usize, 5usize);
        let head = Linear::new(h, v, false, &mut r);
        let hidden = Matrix::randn(n, h, 1.0, &mut r);
        let targets = [0usize, 3, 7, 11, 5];

        // Serial reference.
        let logits = head.forward(&hidden);
        let (want_loss, want_dlogits) = cross_entropy(&logits, &targets);

        for t in [1usize, 2, 4] {
            let results = with_group(t, |m| {
                let hd = VocabParallelHead::from_serial(&head, t, m.rank());
                let (loss, cache) = hd.forward_loss(&hidden, &targets, &m);
                (m.rank(), loss, cache.dlogits)
            });
            for (rank, loss, dlogits) in results {
                assert!(
                    (loss - want_loss).abs() < 1e-5,
                    "t={t} rank {rank}: {loss} vs {want_loss}"
                );
                let chunk = v / t;
                let want = want_dlogits.columns(rank * chunk, (rank + 1) * chunk);
                assert!(dlogits.max_abs_diff(&want) < 1e-5, "t={t} rank {rank}");
            }
        }
    }

    #[test]
    fn distributed_head_backward_matches_serial() {
        let mut r = rng();
        let (h, v, n) = (6usize, 8usize, 4usize);
        let head = Linear::new(h, v, false, &mut r);
        let hidden = Matrix::randn(n, h, 1.0, &mut r);
        let targets = [1usize, 2, 3, 4];

        let mut serial = head.clone();
        let logits = serial.forward(&hidden);
        let (_, dlogits) = cross_entropy(&logits, &targets);
        let want_dhidden = serial.backward(&hidden, &dlogits);

        let results = with_group(2, |m| {
            let mut hd = VocabParallelHead::from_serial(&head, 2, m.rank());
            let (_, cache) = hd.forward_loss(&hidden, &targets, &m);
            let mut dh = hd.backward_partial(&hidden, &cache);
            m.all_reduce_sum(dh.as_mut_slice());
            (m.rank(), dh, hd.w.gw.clone())
        });
        for (rank, dh, gw) in results {
            assert!(dh.max_abs_diff(&want_dhidden) < 1e-5, "rank {rank} dhidden");
            let want_gw = serial.gw.columns(rank * 4, (rank + 1) * 4);
            assert!(gw.max_abs_diff(&want_gw) < 1e-5, "rank {rank} gw");
        }
    }

    #[test]
    fn no_rank_holds_full_logits() {
        // Structural: the local dlogits shard has V/t columns.
        let mut r = rng();
        let head = Linear::new(4, 8, false, &mut r);
        let hidden = Matrix::randn(3, 4, 1.0, &mut r);
        let results = with_group(4, |m| {
            let hd = VocabParallelHead::from_serial(&head, 4, m.rank());
            let (_, cache) = hd.forward_loss(&hidden, &[0, 1, 2], &m);
            cache.dlogits.cols()
        });
        assert!(results.iter().all(|&c| c == 2));
    }
}
